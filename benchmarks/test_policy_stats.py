"""§4 "Specialization policy": specialized / successful / deoptimized.

The paper reports, per suite: SunSpider 56 specialized (18 successful,
38 deoptimized), V8 37 (11, 26), Kraken 38 (14, 24).  The suites here
are smaller, so the counts are smaller; the checked shape is that a
meaningful fraction of specializations succeed (stay valid for the
whole run) and the rest deoptimize exactly once each.
"""

import pytest

from repro.workloads import ALL_SUITES


@pytest.mark.parametrize("suite_name", sorted(ALL_SUITES))
def test_policy_counts(benchmark, suite_name, all_sweeps):
    sweeps = {s.suite_name: s for s in all_sweeps}
    sweep = sweeps[suite_name]

    def collect():
        specialized = successful = deoptimized = 0
        for name in sweep.benchmarks():
            run = sweep.run_for("all", name)
            specialized += len(run.specialized)
            successful += len(run.successful)
            deoptimized += len(run.deoptimized)
        return specialized, successful, deoptimized

    specialized, successful, deoptimized = benchmark.pedantic(collect, rounds=1, iterations=1)
    print(
        "\n%s: specialized=%d successful=%d deoptimized=%d"
        % (suite_name, specialized, successful, deoptimized)
    )
    assert specialized == successful + deoptimized
    assert specialized > 0
    assert successful > 0, "some functions must stay specialized (win-win)"
    assert deoptimized > 0, "some functions must deoptimize (varying args)"


def test_one_specialization_attempt_per_function(benchmark, sunspider_sweep):
    """The policy never re-specializes a deoptimized function, so
    invalidations are bounded by the number of specialized functions."""

    def check():
        for name in sunspider_sweep.benchmarks():
            run = sunspider_sweep.run_for("all", name)
            assert run.summary["deoptimized"] <= run.summary["specialized"]
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
