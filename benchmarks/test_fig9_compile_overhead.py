"""Figure 9 (c, d): compilation overhead per optimization config.

Compile cycles only (the time the engine "spends analyzing, optimizing
and generating code").  Negative numbers mean the configuration spends
*more* compile time than the baseline, positive numbers less.

Shape checked against the paper: configurations with more passes pay
more, but parameter specialization shrinks graphs (folded parameters,
dead guards) so the net overhead stays small — the paper even observes
compile-time *improvements* on SunSpider.
"""

from conftest import SWEEP_CONFIGS

from repro.bench.harness import format_figure9, speedup_rows


def test_figure9_compile_overhead(benchmark, all_sweeps):
    table = benchmark.pedantic(
        lambda: format_figure9(
            all_sweeps, SWEEP_CONFIGS, "compile_cycles", "compilation overhead"
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + table)

    for sweep in all_sweeps:
        rows = speedup_rows(sweep, SWEEP_CONFIGS, "compile_cycles")
        for config_name, (arith, _geo, _detail) in rows.items():
            # Bounded overhead: no configuration should multiply
            # compile time (paper's worst case is ~+16% on Kraken;
            # give the model head room).
            assert arith > -300.0, (
                "%s on %s has runaway compile overhead (%.1f%%)"
                % (config_name, sweep.suite_name, arith)
            )


def test_specialized_compiles_do_less_work_per_binary(benchmark, sunspider_sweep):
    """Per-binary compile work shrinks under specialization even
    though deopt-driven recompiles add binaries (paper §4)."""

    def per_binary():
        base_total = spec_total = 0
        base_bins = spec_bins = 0
        for name in sunspider_sweep.benchmarks():
            base = sunspider_sweep.run_for("baseline", name)
            spec = sunspider_sweep.run_for("all", name)
            base_total += base.compile_cycles
            spec_total += spec.compile_cycles
            base_bins += base.summary["compiles"]
            spec_bins += spec.summary["compiles"]
        return base_total / max(1, base_bins), spec_total / max(1, spec_bins)

    base_avg, spec_avg = benchmark.pedantic(per_binary, rounds=1, iterations=1)
    print("\nAverage compile cycles per binary: baseline=%.0f, specialized=%.0f"
          % (base_avg, spec_avg))
    # Specialized graphs run more passes, so allow some slack, but the
    # per-binary work must stay in the same ballpark (not blow up).
    assert spec_avg < base_avg * 3.0
