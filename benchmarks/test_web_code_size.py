"""§4 code size on real web pages (google / facebook / twitter).

The paper ran the techniques on web-replay benchmarks and got code-size
reductions of 12.07% (google), 16.08% (facebook) and 22.10% (twitter),
with 5.0% / 4.9% / 23.1% more recompiled functions.  Our synthetic
website programs (see DESIGN.md E10) reproduce the mechanism: mostly
argument-monomorphic helpers (specialization shrinks their code), plus
a controlled polymorphic fraction (higher for the twitter stand-in)
that forces recompiles.
"""

import pytest

from repro import BASELINE, FULL_SPEC, Engine
from repro.workloads.web import WEBSITES, generate_website_program


@pytest.mark.parametrize("site,functions,poly", WEBSITES, ids=[w[0] for w in WEBSITES])
def test_website_code_size_and_recompiles(benchmark, site, functions, poly):
    source = generate_website_program(site, functions, poly)

    def run_both():
        base_engine = Engine(config=BASELINE, hot_call_threshold=5)
        base_out = base_engine.run_source(source)
        spec_engine = Engine(config=FULL_SPEC, hot_call_threshold=5)
        spec_out = spec_engine.run_source(source)
        assert base_out == spec_out
        return base_engine, spec_engine

    base_engine, spec_engine = benchmark.pedantic(run_both, rounds=1, iterations=1)

    base_sizes = {
        base_engine.stats.function_names[cid]: size
        for cid, size in base_engine.stats.code_sizes.items()
    }
    spec_sizes = {
        spec_engine.stats.function_names[cid]: size
        for cid, size in spec_engine.stats.code_sizes.items()
    }
    common = set(base_sizes) & set(spec_sizes)
    assert common, "both modes must compile some hot helpers"
    reductions = [
        (base_sizes[name] - spec_sizes[name]) / float(base_sizes[name])
        for name in common
        if base_sizes[name] > 0
    ]
    avg_reduction = 100.0 * sum(reductions) / len(reductions)

    base_compiles = base_engine.stats.compiles
    spec_compiles = spec_engine.stats.compiles
    recompile_growth = 100.0 * (spec_compiles - base_compiles) / max(1, base_compiles)

    print(
        "\n%-18s functions=%d poly=%.0f%%: code size %+.2f%%, recompiles %+.1f%%"
        % (site, len(common), 100 * poly, avg_reduction, recompile_growth)
    )
    assert avg_reduction > 0.0, "specialized web code should be smaller"
    assert spec_compiles >= base_compiles


def test_twitter_recompiles_more_than_google(benchmark):
    """The paper's twitter page recompiled 23.1% more functions vs
    google's 5.0%; our stand-ins encode that via the polymorphic
    fraction."""

    def growth(site_spec):
        site, functions, poly = site_spec
        source = generate_website_program(site, functions, poly)
        base_engine = Engine(config=BASELINE, hot_call_threshold=5)
        base_engine.run_source(source)
        spec_engine = Engine(config=FULL_SPEC, hot_call_threshold=5)
        spec_engine.run_source(source)
        return (
            spec_engine.stats.compiles - base_engine.stats.compiles
        ) / max(1.0, base_engine.stats.compiles)

    def both():
        google = [w for w in WEBSITES if "google" in w[0]][0]
        twitter = [w for w in WEBSITES if "twitter" in w[0]][0]
        return growth(google), growth(twitter)

    google_growth, twitter_growth = benchmark.pedantic(both, rounds=1, iterations=1)
    print("\nrecompile growth: google %+.1f%%, twitter %+.1f%%"
          % (100 * google_growth, 100 * twitter_growth))
    assert twitter_growth >= google_growth
