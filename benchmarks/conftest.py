"""Shared fixtures for the figure/table benchmarks.

The expensive artefact — the Figure 9 sweep (every suite × baseline +
eleven optimization configurations) — is computed once per session and
shared by the Figure 9, Figure 10, policy and recompilation benches.

Set ``REPRO_BENCH_FAST=1`` to sweep a reduced configuration set (quick
smoke run); the default regenerates the full paper table.
"""

import os

import pytest

from repro.engine.config import BASELINE, FULL_SPEC, OptConfig, PAPER_CONFIGS
from repro.workloads import ALL_SUITES
from repro.bench.harness import run_suite_sweep

FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))

#: Configurations swept: the paper's eleven, or a fast subset.
SWEEP_CONFIGS = (
    [
        OptConfig("PS", param_spec=True),
        OptConfig("PS+CP", param_spec=True, constprop=True),
        FULL_SPEC,
    ]
    if FAST
    else PAPER_CONFIGS
)

_SWEEPS = {}


def get_sweep(suite_name):
    """Run (or fetch) the full sweep for one suite."""
    sweep = _SWEEPS.get(suite_name)
    if sweep is None:
        sweep = run_suite_sweep(
            suite_name, ALL_SUITES[suite_name], configs=SWEEP_CONFIGS
        )
        _SWEEPS[suite_name] = sweep
    return sweep


@pytest.fixture(scope="session")
def sunspider_sweep():
    return get_sweep("sunspider")


@pytest.fixture(scope="session")
def v8_sweep():
    return get_sweep("v8")


@pytest.fixture(scope="session")
def kraken_sweep():
    return get_sweep("kraken")


@pytest.fixture(scope="session")
def all_sweeps(sunspider_sweep, v8_sweep, kraken_sweep):
    return [sunspider_sweep, v8_sweep, kraken_sweep]
