"""Figure 10: per-function native code size, baseline vs specialized.

The paper reports average per-function size reductions of 16.72%
(SunSpider), 18.84% (V8) and 15.94% (Kraken), using the smallest
binary each mode generated for each function.  The bench regenerates
the per-function series and the averages, and checks the direction and
rough magnitude (positive double-digit reduction).
"""

import pytest

from repro.bench.figures import code_size_study
from repro.workloads import ALL_SUITES

PAPER_REDUCTIONS = {"sunspider": 16.72, "v8": 18.84, "kraken": 15.94}


@pytest.mark.parametrize("suite_name", sorted(ALL_SUITES))
def test_figure10_code_size(benchmark, suite_name):
    report = benchmark.pedantic(
        lambda: code_size_study(ALL_SUITES[suite_name]), rounds=1, iterations=1
    )
    series = report.series()
    reduction = 100.0 * report.average_reduction()
    print("\nFigure 10 — %s (paper: %.2f%% average reduction)" % (suite_name, PAPER_REDUCTIONS[suite_name]))
    print("  measured average reduction: %.2f%%" % reduction)
    print("  %-44s %10s %12s" % ("function", "baseline", "specialized"))
    for name, base, spec in series:
        print("  %-44s %10d %12d" % (name, base, spec))

    assert series, "both modes must compile a common set of functions"
    assert reduction > 0.0, "specialized code should be smaller on average"
    assert reduction < 80.0, "reduction suspiciously large"


def test_size_series_is_ordered_by_baseline(benchmark):
    report = benchmark.pedantic(
        lambda: code_size_study(ALL_SUITES["sunspider"]), rounds=1, iterations=1
    )
    baselines = [base for _n, base, _s in report.series()]
    assert baselines == sorted(baselines)
