"""Figure 4: parameter types of single-argument-set functions.

Paper claims checked:

* the web is object/string-dominated (35.57% objects, 32.95% strings,
  only 6.36% integers);
* the benchmark suites use integers far more than the web (37.5%,
  48.72%, 33.03% for SunSpider/V8/Kraken).
"""

import pytest

from repro.bench.figures import parameter_types, suite_histograms, web_histograms
from repro.telemetry.histograms import FIGURE4_CATEGORIES
from repro.workloads import ALL_SUITES
from repro.workloads.web import WebCorpusConfig


@pytest.fixture(scope="module")
def distributions():
    rows = {"WEB": parameter_types(web_histograms(WebCorpusConfig(num_functions=2300)))}
    for name, suite in ALL_SUITES.items():
        rows[name] = parameter_types(suite_histograms(suite))
    return rows


def test_figure4_distributions(benchmark, distributions):
    rows = benchmark.pedantic(lambda: distributions, rounds=1, iterations=1)
    print("\nFigure 4 — parameter type mix of single-argument-set functions:")
    header = "  %-10s" % "population" + "".join("%11s" % c for c in FIGURE4_CATEGORIES)
    print(header)
    for name, dist in rows.items():
        print("  %-10s" % name + "".join("%10.1f%%" % (100 * dist[c]) for c in FIGURE4_CATEGORIES))

    web = rows["WEB"]
    # Web: objects and strings dominate; integers are rare.
    assert web["object"] > 0.25
    assert web["string"] > 0.25
    assert web["int"] < 0.15

    # Benchmarks use integers much more often than the web.
    for suite_name in ALL_SUITES:
        assert rows[suite_name]["int"] > web["int"], (
            "%s should be more integer-heavy than the web" % suite_name
        )


def test_distribution_sums_to_one(benchmark, distributions):
    rows = benchmark.pedantic(lambda: distributions, rounds=1, iterations=1)
    for name, dist in rows.items():
        assert abs(sum(dist.values()) - 1.0) < 1e-6 or sum(dist.values()) == 0.0
