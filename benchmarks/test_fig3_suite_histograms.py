"""Figure 3: invocation histograms for the three benchmark suites.

Measured live by running each suite interpreted with the call profiler
attached.  The paper's qualitative claims this checks:

* every suite still shows a power-law head (many rarely-called
  functions, few hot ones);
* Kraken has the highest fraction of single-argument-set functions
  (55.91% in the paper), V8 the lowest fraction of called-once
  functions (4.68%);
* the most-called functions are also the most argument-varied
  (SunSpider's md5-style helpers see a different argument set on
  virtually every call).
"""

import pytest

from repro.bench.figures import suite_histograms
from repro.workloads import ALL_SUITES


@pytest.fixture(scope="module")
def profilers():
    return {name: suite_histograms(suite) for name, suite in ALL_SUITES.items()}


def test_figure3_histograms(benchmark, profilers):
    def report():
        rows = {}
        for name, profiler in profilers.items():
            rows[name] = (
                profiler.num_functions,
                profiler.fraction_called_once(),
                profiler.fraction_single_argument_set(),
            )
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    print("\nFigure 3 — per-suite invocation profile:")
    print("  %-10s %10s %12s %14s" % ("suite", "functions", "called-once", "single-args"))
    for name, (functions, once, single) in rows.items():
        print("  %-10s %10d %11.2f%% %13.2f%%" % (name, functions, 100 * once, 100 * single))

    # Shape assertions (paper: 21.43/4.68/39.79 once; 38.96/40.62/55.91 single).
    assert rows["kraken"][2] >= rows["sunspider"][2] - 0.05
    for name in rows:
        assert rows[name][0] >= 5  # a real population of functions
        assert 0.0 < rows[name][2] <= 1.0


def test_most_called_functions_are_most_varied(benchmark, profilers):
    def worst_case():
        result = {}
        for name, profiler in profilers.items():
            hottest = max(profiler.profiles.values(), key=lambda p: p.call_count)
            result[name] = (hottest.name, hottest.call_count, hottest.distinct_argument_sets)
        return result

    rows = benchmark.pedantic(worst_case, rounds=1, iterations=1)
    print("\nMost-called function per suite:")
    for name, (fn, calls, sets) in rows.items():
        print("  %-10s %-22s %6d calls, %6d argument sets" % (name, fn, calls, sets))
    # The paper: "the most called functions are also the most varied
    # ones".  The hottest SunSpider helper must see far more argument
    # sets than any specialization cache could hold.
    fn, calls, sets = rows["sunspider"]
    assert sets > 100, "%s: %d calls but only %d argument sets" % (fn, calls, sets)
