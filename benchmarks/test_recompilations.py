"""§4 "Impact on number of recompilations".

The paper: compilations of the same function grow by 3.6% (SunSpider),
4.35% (V8) and 7.58% (Kraken) when parameter specialization is on —
"despite the highly speculative nature of our approach, its drawback
is not so big as one could at first expect".  The bench checks the
growth is positive but bounded.
"""

import pytest

from repro.workloads import ALL_SUITES


@pytest.mark.parametrize("suite_name", sorted(ALL_SUITES))
def test_recompilation_growth(benchmark, suite_name, all_sweeps):
    sweeps = {s.suite_name: s for s in all_sweeps}
    sweep = sweeps[suite_name]

    def collect():
        base = spec = 0
        for name in sweep.benchmarks():
            base += sweep.run_for("baseline", name).summary["compiles"]
            spec += sweep.run_for("all", name).summary["compiles"]
        return base, spec

    base, spec = benchmark.pedantic(collect, rounds=1, iterations=1)
    growth = 100.0 * (spec - base) / base if base else 0.0
    print("\n%s: compiles baseline=%d specialized=%d growth=%+.2f%%" % (suite_name, base, spec, growth))
    assert spec >= base, "specialization can only add compilations"
    assert growth < 150.0, "recompilation storm: policy is broken"
