"""Ablation: the §6 future-work extensions on top of the paper's passes.

Measures what overflow-check elimination and loop unrolling add on
kernels shaped to exercise them — the experiments the paper's
conclusion proposes ("loop-unrolling and overflow-check elimination in
the context of runtime-value specialization").
"""

import pytest

from repro import FULL_SPEC, Engine
from repro.engine.config import OptConfig

CONFIGS = [
    FULL_SPEC,
    OptConfig(
        "all+ovf",
        param_spec=True, constprop=True, loop_inversion=True, dce=True,
        bounds_check=True, overflow_elim=True,
    ),
    OptConfig(
        "all+unroll",
        param_spec=True, constprop=True, loop_inversion=True, dce=True,
        bounds_check=True, unroll=True,
    ),
    OptConfig(
        "extended",
        param_spec=True, constprop=True, loop_inversion=True, dce=True,
        bounds_check=True, overflow_elim=True, unroll=True,
    ),
]

KERNELS = {
    # Bounded induction arithmetic: every add's overflow guard clears.
    "overflow-friendly": """
        function kernel(n) {
          var s = 0;
          for (var i = 0; i < n; i++) s = (s & 8191) + i;
          return s;
        }
        var t = 0;
        for (var r = 0; r < 200; r++) t += kernel(500);
        print(t);
    """,
    # A short constant-trip loop in a hot function: full unrolling
    # applies, and constant propagation then folds the whole body to
    # `return 18`.
    "unroll-friendly": """
        function kernel(a) {
          var s = 0;
          for (var i = 0; i < 6; i++) s = s + a;
          return s;
        }
        var acc = 0;
        for (var r = 0; r < 3000; r++) acc = (acc + kernel(3)) & 0xffff;
        print(acc);
    """,
}


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_extension_ablation(benchmark, kernel):
    source = KERNELS[kernel]

    def sweep():
        rows = {}
        expected = None
        for config in CONFIGS:
            # Compile via the call path: a binary OSR-entered inside a
            # loop cannot unroll that loop (its OSR edge is a second
            # entry), so give the kernels time to compile at a call.
            engine = Engine(
                config=config, hot_call_threshold=5, osr_backedge_threshold=10 ** 9
            )
            printed = engine.run_source(source)
            if expected is None:
                expected = printed
            assert printed == expected, config.name
            rows[config.name] = engine.stats.total_cycles
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = rows["all"]
    print("\nAblation (extensions) — %s:" % kernel)
    for config in CONFIGS:
        cycles = rows[config.name]
        print(
            "  %-12s %12d cycles  (%+.2f%% vs all-five)"
            % (config.name, cycles, 100.0 * (base - cycles) / base)
        )

    if kernel == "overflow-friendly":
        assert rows["all+ovf"] < base
    if kernel == "unroll-friendly":
        assert rows["all+unroll"] < base
    assert rows["extended"] <= base * 1.01
