"""Ablation: specialization-cache capacity (paper §6).

The paper caches one specialized binary per function and conjectures
this is "the best tradeoff".  This ablation sweeps the capacity over
workloads with different argument-set diversity:

* monomorphic calls — capacity is irrelevant;
* two alternating argument sets — capacity 2 keeps both binaries live
  (no deoptimization), capacity 1 falls back to generic code;
* high diversity (md5-style) — every capacity eventually deoptimizes,
  so bigger caches only add compile time.
"""

import pytest

from repro import FULL_SPEC, Engine

WORKLOADS = {
    "monomorphic": """
        function f(a, b) { return (a * b) & 1023; }
        var s = 0;
        for (var i = 0; i < 4000; i++) s += f(12, 34);
        print(s);
    """,
    "two-sets": """
        function f(a, b) { return (a * b) & 1023; }
        var s = 0;
        for (var i = 0; i < 4000; i++) s += i % 2 ? f(12, 34) : f(56, 78);
        print(s);
    """,
    "high-diversity": """
        function f(a, b) { return (a * b) & 1023; }
        var s = 0;
        for (var i = 0; i < 4000; i++) s += f(i, i + 1);
        print(s);
    """,
}

CAPACITIES = [1, 2, 4]


def run(source, capacity):
    engine = Engine(config=FULL_SPEC, spec_cache_capacity=capacity, hot_call_threshold=5)
    printed = engine.run_source(source)
    return printed, engine.stats


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_cache_capacity_sweep(benchmark, workload):
    source = WORKLOADS[workload]

    def sweep():
        rows = {}
        baseline_output = None
        for capacity in CAPACITIES:
            printed, stats = run(source, capacity)
            if baseline_output is None:
                baseline_output = printed
            assert printed == baseline_output
            rows[capacity] = (
                stats.total_cycles,
                len(stats.deoptimized_functions),
                stats.compiles,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation (cache capacity) — %s:" % workload)
    print("  %-9s %12s %8s %9s" % ("capacity", "cycles", "deopts", "compiles"))
    for capacity in CAPACITIES:
        cycles, deopts, compiles = rows[capacity]
        print("  %-9d %12d %8d %9d" % (capacity, cycles, deopts, compiles))

    if workload == "two-sets":
        # Capacity 2 retains both specializations: strictly fewer
        # deoptimizations, and no slower than the paper's capacity 1.
        assert rows[2][1] < rows[1][1]
        assert rows[2][0] <= rows[1][0] * 1.02
    if workload == "monomorphic":
        # Capacity does not matter when one set suffices.
        assert rows[1][1] == rows[2][1] == rows[4][1] == 0
