"""Figures 1 & 2: Alexa-top-100 call and argument-set histograms.

Paper numbers this regenerates (via the seeded synthetic corpus whose
parameters come from the paper itself — see DESIGN.md E1/E2):

* 48.88% of functions are called exactly once; 11.12% twice.
* 59.91% of functions are always called with the same argument set,
  8.71% with two sets, 4.60% with three.
"""

from repro.bench.figures import web_histograms
from repro.workloads.web import WebCorpusConfig


def _corpus(benchmark):
    return benchmark.pedantic(
        lambda: web_histograms(WebCorpusConfig(num_functions=2300)),
        rounds=1,
        iterations=1,
    )


def test_figure1_call_count_histogram(benchmark):
    profiler = _corpus(benchmark)
    histogram = profiler.call_count_histogram()
    total = float(profiler.num_functions)

    print("\nFigure 1 — fraction of functions called n times (head):")
    for count in range(1, 11):
        print("  %2d calls: %5.2f%%" % (count, 100.0 * histogram.get(count, 0) / total))
    tail_max = max(histogram)
    print("  most-called function: %d calls (paper: 1956)" % tail_max)

    once = histogram.get(1, 0) / total
    twice = histogram.get(2, 0) / total
    assert abs(once - 0.4888) < 0.05, "paper: 48.88%% called once, got %.2f%%" % (100 * once)
    assert abs(twice - 0.1112) < 0.05
    assert tail_max > 100  # a power-law tail exists


def test_figure2_argument_set_histogram(benchmark):
    profiler = _corpus(benchmark)
    histogram = profiler.argument_set_histogram()
    total = float(profiler.num_functions)

    print("\nFigure 2 — fraction of functions with n distinct argument sets (head):")
    for count in range(1, 11):
        print("  %2d sets: %5.2f%%" % (count, 100.0 * histogram.get(count, 0) / total))

    single = profiler.fraction_single_argument_set()
    assert abs(single - 0.5991) < 0.05, (
        "paper: 59.91%% single argument set, got %.2f%%" % (100 * single)
    )
    # The cache-hit claim of Section 2: specialization would be a hit
    # for ~60% of web functions.
    assert single > 0.5


def test_argument_sets_never_exceed_calls(benchmark):
    profiler = _corpus(benchmark)
    for profile in profiler.profiles.values():
        assert profile.distinct_argument_sets <= profile.call_count
