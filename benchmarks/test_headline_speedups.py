"""§4 headline results.

The paper's abstract: "we have been able to speedup SunSpider by
5.38%" (best configuration), 4.8% on V8, 1.2% on Kraken, and 49% on
``bitops-bits-in-byte``.  Absolute numbers differ under the cycle
model; the checked shape is:

* the best configuration gives a clear positive mean on SunSpider;
* every suite's best configuration is non-negative (specialization
  pays for itself);
* ``bitops-bits-in-byte`` shows a dramatic single-benchmark gain.
"""

from conftest import SWEEP_CONFIGS

from repro.bench.harness import speedup_rows


def _best(sweep):
    rows = speedup_rows(sweep, SWEEP_CONFIGS)
    name, (arith, geo, detail) = max(rows.items(), key=lambda kv: kv[1][0])
    return name, arith, geo, dict(zip(sweep.benchmarks(), detail))


def test_headline_suite_speedups(benchmark, all_sweeps):
    results = benchmark.pedantic(
        lambda: {s.suite_name: _best(s) for s in all_sweeps}, rounds=1, iterations=1
    )
    paper = {"sunspider": 5.38, "v8": 4.8, "kraken": 1.2}
    print("\nHeadline: best configuration per suite (paper in parentheses):")
    for suite_name, (config, arith, geo, _detail) in results.items():
        print(
            "  %-10s best=%-14s arith=%+6.2f%% geo=%+6.2f%%  (paper: +%.2f%%)"
            % (suite_name, config, arith, geo, paper[suite_name])
        )
    assert results["sunspider"][1] > 1.0, "SunSpider should show a clear win"
    for suite_name, (_config, arith, _geo, _detail) in results.items():
        assert arith > -2.0, "%s best config should not lose" % suite_name


def test_headline_bits_in_byte(benchmark, sunspider_sweep):
    def best_gain():
        rows = speedup_rows(sunspider_sweep, SWEEP_CONFIGS)
        names = sunspider_sweep.benchmarks()
        return max(
            dict(zip(names, row[2]))["bitops-bits-in-byte"] for row in rows.values()
        )

    gain = benchmark.pedantic(best_gain, rounds=1, iterations=1)
    print("\nbitops-bits-in-byte best-config speedup: %+.2f%% (paper: +49%%)" % gain)
    assert gain > 10.0
