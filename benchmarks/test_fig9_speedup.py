"""Figure 9 (a, b): overall runtime speedup per optimization config.

Regenerates the paper's main table: three suites × the eleven
optimization configurations, as arithmetic and geometric mean percent
speedups over the IonMonkey baseline.  Absolute numbers come from the
deterministic cycle model; what must match the paper is the *shape*:

* parameter-specialization configurations speed SunSpider up by a few
  percent on average (paper: 4.46–5.38%);
* constant propagation alone is a slight loss (paper: −1.04% —
  "without parameter specialization, constant propagation has little
  room to improve the code");
* the optimizations are not cumulative: the all-five column is not
  the best column (paper §4).
"""

from conftest import SWEEP_CONFIGS

from repro.bench.harness import format_figure9, speedup_rows


def test_figure9_runtime_speedup(benchmark, all_sweeps):
    table = benchmark.pedantic(
        lambda: format_figure9(all_sweeps, SWEEP_CONFIGS, "total_cycles", "runtime speedup"),
        rounds=1,
        iterations=1,
    )
    print("\n" + table)

    sunspider = speedup_rows(all_sweeps[0], SWEEP_CONFIGS)
    by_name = {name: row[0] for name, row in sunspider.items()}

    # Specialization pays for itself on SunSpider (paper: ~+5%).
    spec_columns = [v for name, v in by_name.items() if name != "CP"]
    assert max(spec_columns) > 0.0, "no specialization config speeds SunSpider up"

    # Constant propagation alone doesn't help (paper: -1.04%).
    if "CP" in by_name:
        assert by_name["CP"] < 2.0


def test_figure9_per_benchmark_detail(benchmark, sunspider_sweep):
    rows = benchmark.pedantic(
        lambda: speedup_rows(sunspider_sweep, SWEEP_CONFIGS), rounds=1, iterations=1
    )
    best = max(rows.items(), key=lambda kv: kv[1][0])
    print("\nBest SunSpider config: %s (%.2f%% arith mean)" % (best[0], best[1][0]))
    names = sunspider_sweep.benchmarks()
    print("Per-benchmark speedups under %s:" % best[0])
    for name, speedup in zip(names, best[1][2]):
        print("  %-28s %+7.2f%%" % (name, speedup))
    # The paper's headline single benchmark: bitops-bits-in-byte gains
    # dramatically (49% there, double digits here) under its best
    # configuration — which includes loop inversion, not necessarily
    # the config that is best on average.
    bits_best = max(
        dict(zip(names, row[2]))["bitops-bits-in-byte"] for row in rows.values()
    )
    print("bitops-bits-in-byte best-config speedup: %+.2f%%" % bits_best)
    assert bits_best > 10.0


def test_outputs_identical_across_configs(benchmark, all_sweeps):
    # The harness already verified outputs; assert it really covered
    # every cell of the table.
    def count_cells():
        cells = 0
        for sweep in all_sweeps:
            for config_name, runs in sweep.runs.items():
                cells += len(runs)
        return cells

    cells = benchmark.pedantic(count_cells, rounds=1, iterations=1)
    expected = sum(len(s.runs) for s in all_sweeps) * 0  # computed below
    total_benchmarks = sum(len(s.benchmarks()) for s in all_sweeps)
    assert cells == total_benchmarks * (len(SWEEP_CONFIGS) + 1)
