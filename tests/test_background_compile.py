"""The background-compilation lane: timeline, accounting, determinism.

Three layers of enforcement (docs/COMPILE_PIPELINE.md):

* the `CompileQueue` timeline arithmetic in isolation — dispatch
  latency, the busy single-helper lane, FIFO readiness, cancellation;
* engine-level accounting — hidden vs stalled compile cycles, the
  `total_cycles` identity, enqueue/install trace events, the pending
  sentinel, and profiler exactness with the distinct compile-lane;
* the differential contract over the real benchmark suites at
  *default* thresholds: `background_compile=True` must print exactly
  what the synchronous engine prints, never cost more than a whisker,
  and win on aggregate — while `background_compile=False` must be the
  synchronous engine, bit for bit.
"""

import math

import pytest

from repro.engine.compile_queue import CompileJob, CompileQueue
from repro.engine.config import FULL_SPEC
from repro.engine.runtime_engine import Engine
from repro.jsvm.bytecode import CodeObject
from repro.telemetry.profiler import CycleProfiler, LANE_TIER
from repro.telemetry.reports import annotate_function, to_collapsed
from repro.telemetry.tracing import Tracer
from repro.workloads import ALL_SUITES

from tests.conftest import FAST

#: A hot loop-free callee driven from a top-level loop: the lane's
#: target case.  The callee enqueues at the hotness trip and installs
#: at a later call while the loop keeps interpreting it.
LOOP_FREE_CALLEE = """
function poly(a) { return a * a + 3 * a + 1; }
var s = 0;
for (var i = 0; i < 80; i++) s += poly(7);
print(s);
"""


def _job(cycles):
    return CompileJob(None, None, None, [], None, cycles)


def _observables(engine, printed):
    return {
        "printed": list(printed),
        "summary": engine.stats.summary(),
        "as_dict": engine.stats.as_dict(),
        "cycles": engine.executor.cycles,
        "interp_ops": engine.interpreter.ops_executed,
    }


def _run(source, trace=False, **kwargs):
    CodeObject._next_id = 1
    tracer = Tracer() if trace else None
    engine = Engine(config=FULL_SPEC, tracer=tracer, **dict(FAST, **kwargs))
    printed = engine.run_source(source)
    return engine, printed, (list(tracer.events) if tracer else None)


class TestQueueTimeline:
    """The lane's schedule arithmetic, in isolation."""

    def test_dispatch_latency_before_lane_starts(self):
        queue = CompileQueue(dispatch_delay=100)
        ready = queue.schedule(1, _job(500), now=1000)
        # start = max(1000 + 100, 0) = 1100; ready = 1100 + 500.
        assert ready == 1600
        assert queue.lane_cycle == 1600

    def test_busy_lane_delays_the_next_job(self):
        queue = CompileQueue(dispatch_delay=100)
        queue.schedule(1, _job(500), now=1000)
        # Enqueued while the helper is still on job 1: starts when the
        # lane frees (1600), not at its own dispatch point (1300).
        ready = queue.schedule(2, _job(300), now=1200)
        assert ready == 1600 + 300

    def test_idle_lane_does_not_advance_time_backwards(self):
        queue = CompileQueue(dispatch_delay=100)
        queue.schedule(1, _job(10), now=50)
        # The lane went idle at 160; a much later enqueue starts from
        # its own dispatch point, not the stale lane clock.
        ready = queue.schedule(2, _job(10), now=5000)
        assert ready == 5000 + 100 + 10

    def test_take_ready_is_fifo_and_threshold_exact(self):
        queue = CompileQueue(dispatch_delay=0)
        queue.schedule(1, _job(100), now=0)  # ready at 100
        queue.schedule(2, _job(100), now=0)  # lane busy: ready at 200
        assert queue.take_ready(99) == []
        first = queue.take_ready(100)
        assert [job.ready_at for job in first] == [100]
        assert queue.has_job(2) and not queue.has_job(1)
        both = queue.take_ready(10_000)
        assert [job.ready_at for job in both] == [200]

    def test_cancel_drops_without_rewinding_the_lane(self):
        queue = CompileQueue(dispatch_delay=0)
        queue.schedule(1, _job(100), now=0)
        lane_before = queue.lane_cycle
        queue.cancel(1)
        assert queue.dropped == 1 and not queue.pending
        assert queue.lane_cycle == lane_before  # wasted, not refunded
        queue.cancel(1)  # idempotent on absent jobs
        assert queue.dropped == 1


class TestLaneAccounting:
    """Hidden vs stalled cycles and the trace narration."""

    def test_hidden_cycles_leave_total_cycles(self):
        engine, printed, _ = _run(LOOP_FREE_CALLEE, background_compile=True)
        stats = engine.stats
        assert stats.compile_cycles_hidden > 0
        assert stats.background_installs >= 1
        ledger = stats.as_dict()
        # The invariant the whole lane hangs on: only *stalled* compile
        # time is on the program's critical path.
        assert ledger["total_cycles"] == (
            ledger["interp_cycles"]
            + ledger["native_cycles"]
            + ledger["compile_cycles_stalled"]
            + ledger["bailout_cycles"]
            + ledger["invalidation_cycles"]
        )
        assert ledger["compile_cycles"] == (
            ledger["compile_cycles_stalled"] + ledger["compile_cycles_hidden"]
        )

    def test_sync_engine_has_no_lane(self):
        engine, _, _ = _run(LOOP_FREE_CALLEE, background_compile=False)
        assert engine.compile_queue is None
        assert engine.stats.compile_cycles_hidden == 0
        assert engine.stats.background_installs == 0

    def test_output_matches_synchronous_engine(self):
        _, sync_printed, _ = _run(LOOP_FREE_CALLEE, background_compile=False)
        _, lane_printed, _ = _run(LOOP_FREE_CALLEE, background_compile=True)
        assert lane_printed == sync_printed

    def test_enqueue_and_install_events(self):
        _, _, events = _run(LOOP_FREE_CALLEE, background_compile=True, trace=True)
        enqueues = [e for e in events if e["event"] == "enqueue" and e["fn"] == "poly"]
        installs = [e for e in events if e["event"] == "install" and e["fn"] == "poly"]
        assert len(enqueues) == 1  # pending sentinel: no re-enqueue
        assert len(installs) == 1
        install = installs[0]
        # Installs happen at the first poll point past readiness.
        assert install["ts"] >= install["ready_at"]
        assert install["waited_cycles"] == install["ts"] - install["ready_at"]
        assert install["ts"] > enqueues[0]["ts"]

    def test_profiler_attributes_the_lane_exactly(self):
        CodeObject._next_id = 1
        profiler = CycleProfiler()
        engine = Engine(
            config=FULL_SPEC,
            background_compile=True,
            cycle_profiler=profiler,
            **FAST
        )
        engine.run_source(LOOP_FREE_CALLEE)
        assert profiler.attributed_cycles() == engine.stats.total_cycles
        assert profiler.lane_cycles() == engine.stats.compile_cycles_hidden > 0
        rows = profiler.attribution()
        assert any(row["tier"] == LANE_TIER for row in rows)
        collapsed = to_collapsed(profiler)
        assert "[%s]" % LANE_TIER in collapsed
        assert "compiler lane" in annotate_function(profiler, "poly")


class TestDeterminism:
    """Both lane settings are bit-reproducible run to run."""

    def test_background_run_repeats_exactly(self):
        first_engine, first_printed, first_events = _run(
            LOOP_FREE_CALLEE, background_compile=True, trace=True
        )
        second_engine, second_printed, second_events = _run(
            LOOP_FREE_CALLEE, background_compile=True, trace=True
        )
        assert _observables(first_engine, first_printed) == _observables(
            second_engine, second_printed
        )
        assert first_events == second_events

    def test_lane_off_is_the_default_engine(self):
        explicit_engine, explicit_printed, explicit_events = _run(
            LOOP_FREE_CALLEE, background_compile=False, trace=True
        )
        CodeObject._next_id = 1
        default_tracer = Tracer()
        default_engine = Engine(config=FULL_SPEC, tracer=default_tracer, **FAST)
        default_printed = default_engine.run_source(LOOP_FREE_CALLEE)
        assert _observables(explicit_engine, explicit_printed) == _observables(
            default_engine, default_printed
        )
        assert explicit_events == list(default_tracer.events)


def _suite_cycles(backend, background):
    """Per-benchmark (printed, total_cycles) over every suite benchmark."""
    results = {}
    for suite_name, suite in ALL_SUITES.items():
        for benchmark in suite:
            engine = Engine(
                config=FULL_SPEC,
                executor_backend=backend,
                background_compile=background,
            )
            printed = engine.run_source(benchmark.source)
            results[(suite_name, benchmark.name)] = (
                list(printed),
                engine.stats.total_cycles,
            )
    return results


#: Cheap cross-suite slice for the slower reference backend.
SIMPLE_BACKEND_SUBSET = [
    ("sunspider", "access-nsieve"),
    ("sunspider", "controlflow-recursive"),
    ("v8", "richards"),
    ("kraken", "stanford-crypto-ccm"),
]


class TestSuiteDifferential:
    """All 38 benchmarks, default thresholds: same answers, fewer cycles."""

    def test_closure_backend_full_sweep(self):
        sync = _suite_cycles("closure", background=False)
        lane = _suite_cycles("closure", background=True)
        assert set(sync) == set(lane) and len(sync) == 38
        ratios = []
        for key in sync:
            sync_printed, sync_cycles = sync[key]
            lane_printed, lane_cycles = lane[key]
            assert lane_printed == sync_printed, "output drift in %s/%s" % key
            ratio = lane_cycles / float(sync_cycles)
            # controlflow-recursive inherently pays ~0.4% (extra
            # interpreted calls while its binaries sit on the lane);
            # nothing may regress beyond that order.
            assert ratio <= 1.005, "%s/%s regressed: %.5f" % (key + (ratio,))
            ratios.append(ratio)
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        assert geomean < 1.0  # the lane wins on aggregate
        assert sum(c for _, c in lane.values()) < sum(c for _, c in sync.values())

    @pytest.mark.parametrize("suite_name,bench_name", SIMPLE_BACKEND_SUBSET)
    def test_simple_backend_output_parity(self, suite_name, bench_name):
        source = next(
            b.source for b in ALL_SUITES[suite_name] if b.name == bench_name
        )
        runs = {}
        for background in (False, True):
            engine = Engine(
                config=FULL_SPEC,
                executor_backend="simple",
                background_compile=background,
            )
            runs[background] = (
                engine.run_source(source),
                engine.stats.total_cycles,
            )
        assert runs[True][0] == runs[False][0]
        assert runs[True][1] <= runs[False][1] * 1.005
