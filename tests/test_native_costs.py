"""Static cycle pricing: assembly-time costs equal the dynamic formula.

The executor used to price every instruction inside its dispatch loop
(dict lookup + overflow surcharge + spill scan).  Assembly now stamps
``static_cost`` once per instruction; these tests pin the static
price to an independent reimplementation of the old dynamic formula,
for every opcode in the cost model and across every operand-placement
variant that contributes to the price.
"""

import pytest

from repro.engine.config import CostModel
from repro.engine.jit import compile_function
from repro.engine.config import BASELINE
from repro.lir.lir_nodes import LInstruction, Snapshot
from repro.lir.native import (
    CHECKED_ARITH,
    annotate_static_costs,
    static_instruction_cost,
)
from repro.lir.regalloc import NUM_REGS

from tests.helpers import compile_and_profile


def _dynamic_cost(instruction, cost_model):
    """The retired per-step pricing, reimplemented as an oracle."""
    cost = cost_model.native_costs.get(instruction.op, cost_model.native_op)
    if instruction.snapshot is not None and instruction.op in CHECKED_ARITH:
        cost += 1
    if instruction.dest is not None and instruction.dest >= NUM_REGS:
        cost += cost_model.spill_access
    for loc in instruction.srcs:
        if loc >= NUM_REGS:
            cost += cost_model.spill_access
    return cost


def _snapshot():
    return Snapshot(pc=0, mode="at", num_args=0, num_locals=0, vregs=[])


REG = 0
SPILL = NUM_REGS + 3
IMMEDIATE = -1  # negative: immediate pool, free of memory traffic

#: Every placement combination whose components the formula prices.
VARIANTS = [
    dict(dest=None, srcs=[], snapshot=None),
    dict(dest=REG, srcs=[REG, REG], snapshot=None),
    dict(dest=SPILL, srcs=[REG], snapshot=None),
    dict(dest=REG, srcs=[SPILL, SPILL], snapshot=None),
    dict(dest=SPILL, srcs=[SPILL, IMMEDIATE], snapshot=None),
    dict(dest=REG, srcs=[IMMEDIATE, IMMEDIATE], snapshot=None),
    dict(dest=REG, srcs=[REG, REG], snapshot=_snapshot()),
    dict(dest=SPILL, srcs=[SPILL, REG], snapshot=_snapshot()),
]

_MODEL = CostModel()
ALL_OPS = sorted(_MODEL.native_costs) + ["some_unknown_op"]


@pytest.mark.parametrize("op", ALL_OPS)
def test_static_matches_dynamic_for_every_op(op):
    model = CostModel()
    for variant in VARIANTS:
        instruction = LInstruction(op, **variant)
        assert static_instruction_cost(instruction, model) == _dynamic_cost(
            instruction, model
        ), (op, variant)


def test_checked_arith_surcharge_requires_guard():
    model = CostModel()
    for op in sorted(CHECKED_ARITH):
        bare = LInstruction(op, dest=REG, srcs=[REG, REG])
        guarded = LInstruction(op, dest=REG, srcs=[REG, REG], snapshot=_snapshot())
        assert (
            static_instruction_cost(guarded, model)
            == static_instruction_cost(bare, model) + 1
        )
    # A guard on non-arithmetic carries no surcharge.
    bare = LInstruction("move", dest=REG, srcs=[REG])
    guarded = LInstruction("move", dest=REG, srcs=[REG], snapshot=_snapshot())
    assert static_instruction_cost(guarded, model) == static_instruction_cost(
        bare, model
    )


def test_spill_pricing_is_per_operand():
    model = CostModel()
    base = static_instruction_cost(LInstruction("add_i", dest=REG, srcs=[REG, REG]), model)
    one = static_instruction_cost(LInstruction("add_i", dest=REG, srcs=[SPILL, REG]), model)
    three = static_instruction_cost(
        LInstruction("add_i", dest=SPILL, srcs=[SPILL, SPILL]), model
    )
    assert one == base + model.spill_access
    assert three == base + 3 * model.spill_access
    # Immediates are instruction-encoded constants: no spill traffic.
    imm = static_instruction_cost(
        LInstruction("add_i", dest=REG, srcs=[IMMEDIATE, REG]), model
    )
    assert imm == base


def test_annotate_stamps_every_instruction():
    instructions = [
        LInstruction("add_i", dest=REG, srcs=[REG, REG]),
        LInstruction("move", dest=SPILL, srcs=[REG]),
    ]
    assert all(instruction.static_cost is None for instruction in instructions)
    annotate_static_costs(instructions)
    model = CostModel()
    for instruction in instructions:
        assert instruction.static_cost == static_instruction_cost(instruction, model)


def test_generate_native_prices_whole_binary():
    _top, code = compile_and_profile(
        "function f(a, b) { var s = 0; for (var i = 0; i < a; i++) s += b; return s; }"
        " f(3, 4);"
    )
    native = compile_function(code, BASELINE, feedback=code.feedback).native
    model = CostModel()
    assert native.instructions
    for instruction in native.instructions:
        assert instruction.static_cost == static_instruction_cost(instruction, model)


def test_cost_table_cached_per_model():
    _top, code = compile_and_profile("function f(a) { return a + 1; } f(1);")
    native = compile_function(code, BASELINE, feedback=code.feedback).native
    model = CostModel()
    table = native.cost_table(model)
    assert table == [instruction.static_cost for instruction in native.instructions]
    assert native.cost_table(model) is table  # memoized per binary
    other = CostModel()
    assert native.cost_table(other) is not table  # keyed by model identity
    assert native.cost_table(other) == table
