"""Tests for the optimization passes of the paper's Section 3."""

from repro.engine.config import BASELINE, FULL_SPEC, OptConfig
from repro.jsvm.bytecode import Op
from repro.jsvm.bytecompiler import compile_source
from repro.mir import instructions as mi
from repro.mir.builder import build_mir
from repro.mir.specializer import specialize_types
from repro.mir.verifier import verify_graph
from repro.opts.bounds_check import run_bounds_check_elimination
from repro.opts.constprop import run_constant_propagation
from repro.opts.dce import run_dce
from repro.opts.gvn import run_gvn
from repro.opts.inlining import run_inlining
from repro.opts.licm import run_licm
from repro.opts.loop_inversion import rotate_loops
from repro.opts.pass_manager import optimize

from tests.helpers import compile_and_profile, count, instrs


def built(source, name=None, param_values=None, rotate=False, this_value=None):
    _top, code = compile_and_profile(source, name)
    if rotate:
        rotate_loops(code)
    graph = build_mir(
        code, feedback=code.feedback, param_values=param_values, this_value=this_value
    )
    return graph, code


def typed(source, **kwargs):
    graph, code = built(source, **kwargs)
    specialize_types(graph)
    verify_graph(graph)
    return graph


class TestConstProp:
    def test_folds_constant_arithmetic(self):
        graph = typed("function f(a) { return a * 2 + 1; } f(10);", param_values=[10])
        folded = run_constant_propagation(graph)
        verify_graph(graph)
        assert folded >= 2
        returns = instrs(graph, mi.MReturn)
        assert isinstance(returns[0].operands[0], mi.MConstant)
        assert returns[0].operands[0].value == 21

    def test_int32_overflow_fold_never_materializes_a_double(self):
        # A specialized `a - b` can fold out of int32; the lattice keeps
        # the true JS value, but the INT32-typed definition must not be
        # replaced with a double constant — that would delete its
        # overflow bailout and feed a raw float into INT32-typed uses.
        source = (
            "function f(a, b) { var s = 0;"
            " for (var i = 0; i < 3; i++) { s = (a - b) & i; }"
            " return s; } f(-2147483647, 65535);"
        )
        graph = typed(source, param_values=[-2147483647, 65535])
        run_constant_propagation(graph)
        verify_graph(graph)
        assert count(graph, mi.MBinaryArithI) >= 1
        assert not [
            c for c in instrs(graph, mi.MConstant) if type(c.value) is float
        ]
        # Propagation through the overflowed value is kept: a fully
        # constant consumer still folds, to the JS-correct int32.
        folded = typed(
            "function f(a, b) { return (a - b) & 255; } f(-2147483647, 65535);",
            param_values=[-2147483647, 65535],
        )
        run_constant_propagation(folded)
        returns = instrs(folded, mi.MReturn)
        assert isinstance(returns[0].operands[0], mi.MConstant)
        assert returns[0].operands[0].value == 2  # ToInt32(-2147549182) & 255

    def test_folds_through_phis(self):
        source = "function f(c) { var x; if (c) x = 5; else x = 5; return x + 1; } f(true);"
        graph = typed(source)
        run_constant_propagation(graph)
        returns = instrs(graph, mi.MReturn)
        assert isinstance(returns[0].operands[0], mi.MConstant)
        assert returns[0].operands[0].value == 6

    def test_loop_variant_not_folded(self):
        graph = typed(
            "function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; } f(5);"
        )
        run_constant_propagation(graph)
        returns = instrs(graph, mi.MReturn)
        assert not isinstance(returns[0].operands[0], mi.MConstant)

    def test_folds_typeof_constant(self):
        graph = typed("function f(a) { return typeof a; } f(3);", param_values=[3])
        run_constant_propagation(graph)
        constants = [c.value for c in instrs(graph, mi.MConstant)]
        assert "number" in constants
        assert count(graph, mi.MTypeOf) == 0

    def test_folds_typeof_by_type_without_constant(self):
        graph = typed("function f(a) { return typeof a; } f(3);")
        run_constant_propagation(graph)
        # `a` is unboxed to Int32 by feedback, so typeof folds by type.
        constants = [c.value for c in instrs(graph, mi.MConstant)]
        assert "number" in constants

    def test_specialization_erases_type_guards(self):
        # Paper Figure 7(b): "We have folded the two type guards in
        # block L3" — guards on specialization constants disappear
        # (some during baseline simplification, the rest in constprop),
        # while the generic compile keeps them all.
        source = """
        function f(a, i) { return a[i]; }
        var arr = [1, 2, 3];
        f(arr, 1);
        """
        from repro.jsvm.objects import JSArray

        def guard_count(param_values):
            _top, code = compile_and_profile(source)
            graph = build_mir(code, feedback=code.feedback, param_values=param_values)
            specialize_types(graph)
            run_constant_propagation(graph)
            return count(graph, mi.MUnbox) + count(graph, mi.MTypeBarrier)

        generic_guards = guard_count(None)
        specialized_guards = guard_count([JSArray([1, 2, 3]), 1])
        assert specialized_guards < generic_guards

    def test_strict_equality_of_disjoint_types(self):
        graph = typed("function f(a, b) { return a === b; } f(1, 'x');")
        run_constant_propagation(graph)
        constants = [c.value for c in instrs(graph, mi.MConstant)]
        assert False in constants

    def test_folds_string_length(self):
        graph = typed(
            "function f(s) { return s.length; } f('hello');", param_values=["hello"]
        )
        run_constant_propagation(graph)
        constants = [c.value for c in instrs(graph, mi.MConstant)]
        assert 5 in constants

    def test_folds_pure_native_call(self):
        # A pure builtin passed as a parameter becomes a constant
        # callee whose constant-argument call folds at compile time.
        source = "function f(g, x) { return g(2, x); } f(Math.pow, 10);"
        _top, code = compile_and_profile(source, "f")
        from repro.jsvm.runtime import Runtime

        pow_fn = Runtime().globals["Math"].get("pow")
        graph = build_mir(code, feedback=code.feedback, param_values=[pow_fn, 10])
        specialize_types(graph)
        run_constant_propagation(graph)
        constants = [c.value for c in instrs(graph, mi.MConstant)]
        assert 1024 in constants
        assert count(graph, mi.MCall) == 0

    def test_impure_native_not_folded(self):
        source = "function f() { return Math.random(); } f();"
        graph = typed(source, param_values=[])
        run_constant_propagation(graph)
        assert count(graph, mi.MCall) == 1


class TestDCE:
    def test_removes_untaken_branch(self):
        source = "function f(c) { if (c) return 1; return 2; } f(true);"
        graph = typed(source, param_values=[True])
        run_constant_propagation(graph)
        blocks_before = len(graph.blocks)
        branches, blocks, _instructions = run_dce(graph)
        verify_graph(graph)
        assert branches >= 1
        assert len(graph.blocks) < blocks_before

    def test_keeps_function_entry(self):
        source = "function f(c) { if (c) return 1; return 2; } f(true);"
        graph = typed(source, param_values=[True])
        run_constant_propagation(graph)
        run_dce(graph)
        assert graph.entry in graph.blocks

    def test_removes_dead_pure_instructions(self):
        source = "function f(a, b) { var unused = a * b; return a; } f(2, 3);"
        graph = typed(source)
        before = graph.num_instructions()
        run_dce(graph)
        verify_graph(graph)
        assert graph.num_instructions() < before

    def test_keeps_stores(self):
        source = "function f(o) { o.x = 1; return 0; } f({});"
        graph = typed(source)
        run_dce(graph)
        assert count(graph, mi.MStoreProperty) == 1

    def test_keeps_calls(self):
        source = "function f(g) { g(); return 0; } f(function() { return 1; });"
        graph = typed(source)
        run_dce(graph)
        assert count(graph, mi.MCall) == 1

    def test_resume_point_uses_keep_values_alive(self):
        # A value only referenced by a guard's resume point must survive.
        source = "function f(a, i) { var x = a.length; return a[i] + x; } f([1,2], 0);"
        graph = typed(source)
        run_dce(graph)
        verify_graph(graph)


class TestGVN:
    def test_merges_congruent_arithmetic(self):
        source = "function f(a, b) { return (a + b) * (a + b); } f(1, 2);"
        graph = typed(source)
        merged = run_gvn(graph)
        verify_graph(graph)
        assert merged >= 1
        assert count(graph, mi.MBinaryArithI) == 2  # one add + one mul

    def test_merges_duplicate_constants(self):
        source = "function f(a) { return a + 7 + 7; } f(1);"
        graph = typed(source)
        run_gvn(graph)
        sevens = [c for c in instrs(graph, mi.MConstant) if c.value == 7]
        assert len(sevens) == 1

    def test_does_not_merge_across_non_dominating_paths(self):
        source = """
        function f(c, a, b) {
          var x;
          if (c) x = a + b; else x = a + b;
          return x;
        }
        f(true, 1, 2);
        """
        graph = typed(source)
        merged = run_gvn(graph)
        # Neither add dominates the other: no merge.
        assert count(graph, mi.MBinaryArithI) == 2

    def test_loads_not_merged(self):
        # arraylength is a heap load; GVN must not merge across stores.
        source = "function f(a) { var x = a.length; a[10] = 1; return x + a.length; } f([1]);"
        graph = typed(source)
        run_gvn(graph)
        assert count(graph, mi.MArrayLength) >= 2


class TestLoopInversion:
    def test_rotates_while(self):
        code = compile_source("function f(n) { var i = 0; while (i < n) i++; return i; }")
        target = [c for c in code.constants if hasattr(c, "instructions")][0]
        before = len(target.instructions)
        rotated = rotate_loops(target, recursive=False)
        assert rotated == 1
        assert len(target.instructions) > before  # duplicated test
        target.validate()

    def test_rotated_semantics_preserved(self):
        from repro.jsvm.interpreter import Interpreter

        source = """
        function f(n) { var s = 0, i = 0; while (i < n) { s += i; i++; } return s; }
        print(f(0), f(1), f(5));
        """
        code = compile_source(source)
        plain = Interpreter().run_code(code) or None
        plain_out = []
        interp = Interpreter()
        code2 = compile_source(source)
        interp.run_code(code2)
        plain_out = interp.runtime.printed
        rotated_interp = Interpreter()
        code3 = compile_source(source)
        rotate_loops(code3)
        rotated_interp.run_code(code3)
        assert rotated_interp.runtime.printed == plain_out == ["0 0 10"]

    def test_do_while_not_rotated(self):
        code = compile_source("function f(n) { var i = 0; do i++; while (i < n); return i; }")
        target = [c for c in code.constants if hasattr(c, "instructions")][0]
        assert rotate_loops(target, recursive=False) == 0

    def test_nested_loops_both_rotated(self):
        source = "function f(n) { var s = 0; var i = 0; while (i < n) { var j = 0; while (j < n) { s++; j++; } i++; } return s; }"
        code = compile_source(source)
        target = [c for c in code.constants if hasattr(c, "instructions")][0]
        assert rotate_loops(target, recursive=False) == 2
        target.validate()

    def test_loop_with_continue_rotates(self):
        from repro.jsvm.interpreter import Interpreter

        source = """
        function f(n) { var s = 0, i = 0; while (i < n) { i++; if (i % 2) continue; s += i; } return s; }
        print(f(10));
        """
        code = compile_source(source)
        rotate_loops(code)
        interp = Interpreter()
        interp.run_code(code)
        assert interp.runtime.printed == ["30"]

    def test_rotated_loop_shape_is_do_while(self):
        # After rotation + specialization, the MIR loop header should
        # have no in-loop exit (do-while shape), unlocking LICM.
        source = "function f(n) { var i = 0; while (i < n) i++; return i; } f(10);"
        graph = typed(source, rotate=True)
        from repro.opts.loops import find_loops

        loops = find_loops(graph)
        assert loops
        assert any(loop.is_do_while_shaped() for loop in loops)


class TestLICM:
    def test_hoists_invariant_arithmetic(self):
        source = """
        function f(n, a, b) {
          var s = 0;
          for (var i = 0; i < n; i++) s += a * b;
          return s;
        }
        f(10, 2, 3);
        """
        graph = typed(source)
        hoisted = run_licm(graph)
        verify_graph(graph)
        assert hoisted >= 1

    def test_does_not_hoist_loads_past_stores(self):
        source = """
        function f(n, a) {
          var s = 0;
          for (var i = 0; i < n; i++) { a[0] = i; s += a.length; }
          return s;
        }
        f(5, [1, 2]);
        """
        graph = typed(source)
        from repro.opts.loops import find_loops

        loops_before = {
            id(b) for loop in find_loops(graph) for b in loop.blocks
        }
        arraylengths = instrs(graph, mi.MArrayLength)
        run_licm(graph)
        # Loop contains a store: loads must stay inside.
        for length in arraylengths:
            assert id(length.block) in loops_before

    def test_hoists_variant_free_guarded_ops_only_when_guaranteed(self):
        # Non-rotated loop: faultable generic load must not be hoisted.
        source = """
        function f(n, o) {
          var s = 0;
          var i = 0;
          while (i < n) { s += o.k; i++; }
          return s;
        }
        f(3, {k: 1});
        """
        graph = typed(source)
        run_licm(graph)
        verify_graph(graph)


class TestBoundsCheckElimination:
    SOURCE = """
    function f(s) {
      var total = 0;
      for (var i = 2; i < 100; i++) total += s[i];
      return total;
    }
    var arr = [];
    for (var k = 0; k < 100; k++) arr[k] = k;
    f(arr);
    """

    def _specialized_graph(self):
        from repro.jsvm.objects import JSArray

        _top, code = compile_and_profile(self.SOURCE, "f")
        array = JSArray(list(range(100)))
        graph = build_mir(code, feedback=code.feedback, param_values=[array])
        specialize_types(graph)
        run_constant_propagation(graph)
        return graph

    def test_eliminates_with_constant_array_and_bounds(self):
        graph = self._specialized_graph()
        assert count(graph, mi.MBoundsCheck) == 1
        removed = run_bounds_check_elimination(graph)
        verify_graph(graph)
        assert removed == 1
        assert count(graph, mi.MBoundsCheck) == 0

    def test_not_eliminated_without_specialization(self):
        _top, code = compile_and_profile(self.SOURCE, "f")
        graph = build_mir(code, feedback=code.feedback)
        specialize_types(graph)
        run_constant_propagation(graph)
        removed = run_bounds_check_elimination(graph)
        assert removed == 0  # array length unknown at compile time

    def test_not_eliminated_when_index_may_exceed(self):
        from repro.jsvm.objects import JSArray

        source = self.SOURCE.replace("i < 100", "i < 200")
        _top, code = compile_and_profile(source, "f")
        graph = build_mir(code, feedback=code.feedback, param_values=[JSArray(list(range(100)))])
        specialize_types(graph)
        run_constant_propagation(graph)
        assert run_bounds_check_elimination(graph) == 0

    def test_generic_store_blocks_elimination(self):
        from repro.jsvm.objects import JSArray, JSObject

        source = """
        function f(s, o) {
          var total = 0;
          for (var i = 0; i < 10; i++) { o[i] = 1; total += s[i]; }
          return total;
        }
        f([0,1,2,3,4,5,6,7,8,9], "notanobject");
        """
        _top, code = compile_and_profile(source, "f")
        graph = build_mir(
            code,
            feedback=code.feedback,
            param_values=[JSArray(list(range(10))), "notanobject"],
        )
        specialize_types(graph)
        run_constant_propagation(graph)
        # The generic setelem on `o` may resize arrays: give up.
        if count(graph, mi.MSetElemV) > 0:
            assert run_bounds_check_elimination(graph) == 0


class TestInlining:
    MAP_SOURCE = """
    function inc(x) { return x + 1; }
    function map(s, b, n, f) {
      var i = b;
      while (i < n) { s[i] = f(s[i]); i++; }
      return s;
    }
    map([1, 2, 3, 4, 5], 2, 5, inc);
    """

    def _specialized_map(self):
        from repro.jsvm.objects import JSArray
        from repro.jsvm.values import JSFunction

        top, code = compile_and_profile(self.MAP_SOURCE, "map")
        inc_code = [
            c for c in top.constants if hasattr(c, "instructions") and c.name == "inc"
        ][0]
        inc_function = JSFunction(inc_code, ())
        array = JSArray([1, 2, 3, 4, 5])
        graph = build_mir(
            code, feedback=code.feedback, param_values=[array, 2, 5, inc_function]
        )
        return graph

    def test_inlines_closure_parameter(self):
        graph = self._specialized_map()
        assert count(graph, mi.MCall) == 1
        inlined = run_inlining(graph)
        verify_graph(graph)
        assert inlined == 1
        assert count(graph, mi.MCall) == 0

    def test_inlined_guards_resume_at_call(self):
        graph = self._specialized_map()
        call = instrs(graph, mi.MCall)[0]
        call_pc = call.resume_point.pc
        run_inlining(graph)
        # The inlined body's guards (inc's add) restart the whole CALL;
        # the caller's own result barrier may stay "after"-mode.
        at_call = [
            instruction
            for instruction in graph.all_instructions()
            if instruction.is_guard
            and instruction.resume_point is not None
            and instruction.resume_point.pc == call_pc
            and instruction.resume_point.mode == "at"
        ]
        assert at_call, "inlined guards should adopt the call's resume point"

    def test_effectful_callee_not_inlined(self):
        from repro.jsvm.values import JSFunction

        source = """
        function logger(x) { someGlobal = x; return x; }
        function host(f) { return f(1); }
        host(logger);
        """
        top, code = compile_and_profile(source, "host")
        logger_code = [
            c for c in top.constants if hasattr(c, "instructions") and c.name == "logger"
        ][0]
        graph = build_mir(
            code, feedback=code.feedback, param_values=[JSFunction(logger_code, ())]
        )
        assert run_inlining(graph) == 0

    def test_callee_with_calls_not_inlined(self):
        from repro.jsvm.values import JSFunction

        source = """
        function wrapper(x) { return Math.floor(x); }
        function host(f) { return f(1.5); }
        host(wrapper);
        """
        top, code = compile_and_profile(source, "host")
        wrapper_code = [
            c for c in top.constants if hasattr(c, "instructions") and c.name == "wrapper"
        ][0]
        graph = build_mir(
            code, feedback=code.feedback, param_values=[JSFunction(wrapper_code, ())]
        )
        assert run_inlining(graph) == 0

    def test_non_constant_callee_not_inlined(self):
        graph, _code = built(self.MAP_SOURCE, "map")
        assert run_inlining(graph) == 0


class TestFullPipeline:
    def test_pipeline_all_configs_produce_valid_graphs(self):
        source = """
        function kernel(a, b, n) {
          var s = 0;
          for (var i = 0; i < n; i++) s += (a * i + b) & 255;
          return s;
        }
        kernel(3, 5, 50);
        """
        from repro.engine.config import PAPER_CONFIGS

        for config in [BASELINE, FULL_SPEC] + PAPER_CONFIGS:
            _top, code = compile_and_profile(source, "kernel")
            if config.loop_inversion:
                rotate_loops(code)
            params = [3, 5, 50] if config.param_spec else None
            graph = build_mir(code, feedback=code.feedback, param_values=params)
            optimize(graph, config, loop_inversion_applied=config.loop_inversion)
            verify_graph(graph)

    def test_specialized_graph_is_smaller(self):
        # Figure 10's mechanism: specialization + folding shrinks code.
        source = """
        function kernel(a, b, n) {
          var s = 0;
          for (var i = 0; i < n; i++) s += (a * i + b) & 255;
          return s;
        }
        kernel(3, 5, 50);
        """
        _top, code = compile_and_profile(source, "kernel")
        baseline_graph = build_mir(code, feedback=code.feedback)
        optimize(baseline_graph, BASELINE)
        spec_graph = build_mir(code, feedback=code.feedback, param_values=[3, 5, 50])
        optimize(spec_graph, FULL_SPEC)
        assert spec_graph.num_instructions() < baseline_graph.num_instructions()


class TestConstPropTermination:
    """Regression tests for fixpoint termination (NaN constants used to
    flap the `changed` flag forever; bottom-as-top evaluation could
    double folded strings every round)."""

    def test_nan_producing_fold_terminates(self):
        source = 'function f(a, b) { var c = a * b; return "" + c; } f("k", 2);'
        graph = typed(source, param_values=["k", 2])
        run_constant_propagation(graph)  # must not hang
        constants = [c.value for c in instrs(graph, mi.MConstant)]
        assert "NaN" in constants

    def test_negative_zero_constant_preserved(self):
        source = "function f(a) { return 1 / (a * 0); } f(-3);"
        graph = typed(source, param_values=[-3])
        run_constant_propagation(graph)
        constants = [c.value for c in instrs(graph, mi.MConstant)]
        assert float("-inf") in constants  # 1 / -0 folded correctly

    def test_string_folding_is_bounded(self):
        # A doubling chain must stop folding at the size cap instead of
        # materializing enormous compile-time strings.
        body = "\n".join("s = s + s;" for _ in range(24))
        source = 'function f(s) { %s return s.length; } f("xy");' % body
        graph = typed(source, param_values=["xy"])
        run_constant_propagation(graph)
        for constant in instrs(graph, mi.MConstant):
            if isinstance(constant.value, str):
                assert len(constant.value) <= 8192

    def test_differential_after_bounded_folding(self):
        from tests.conftest import FAST, assert_same_output

        body = "\n".join("s = s + s;" for _ in range(16))
        source = """
        function f(s) { %s return s.length; }
        var r = 0;
        for (var i = 0; i < 25; i++) r = f("xy");
        print(r);
        """ % body
        assert_same_output(source, **FAST)
