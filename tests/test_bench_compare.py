"""The bench regression sentinel (repro.bench.compare + the tools).

The contract under test, straight from docs/METRICS.md: deterministic
model cycles compare with **zero tolerance** — a planted 10% cycle
regression is flagged while two runs of the same tree compare clean —
host seconds get the widest band (15%), speedup ratios a 10% band,
and exact work counters are report-only.
"""

import copy
import importlib.util
import io
import json
import os

import pytest

from repro.bench.compare import (
    THRESHOLDS,
    compare_results,
    format_compare,
    load_compare_json,
    write_compare_json,
)
from repro.tools.cli import main as cli_main


def make_results():
    """A minimal result dict in the BENCH_wallclock.json shape."""
    return {
        "protocol": {"repeats": 3},
        "suites": {
            "sunspider": {
                "reference_seconds": 1.20,
                "closure_seconds": 0.60,
                "whole_seconds": 0.40,
                "sim_instructions": 100000,
                "closure_sips": 166666.0,
                "speedup": 2.0,
                "whole_speedup": 3.0,
            }
        },
        "geomean_speedup": 2.0,
        "geomean_whole_speedup": 3.0,
        "background_compile": {
            "suites": {
                "sunspider": {
                    "sync_cycles": 1000000,
                    "background_cycles": 900000,
                    "cycle_ratio": 0.9,
                }
            },
            "geomean_cycle_ratio": 0.9,
        },
        "warm_cache": {
            "cold_seconds": 0.5,
            "warm_seconds": 0.25,
            "speedup": 2.0,
            "disk_hits": 12,
            "cycles_identical": True,
        },
        "serving": {
            "requests": 160,
            "rejected": 0,
            "batches": 40,
            "tenants": 6,
            "p50_latency_cycles": 650000,
            "p99_latency_cycles": 2600000,
            "total_latency_cycles": 120000000,
            "cold_hit_rate": 0.58,
            "warm_hit_rate": 1.0,
            "isolation_violations": 0,
            "cycles_identical": True,
        },
    }


def by_metric(report, metric):
    return [d for d in report["deltas"] if d["metric"] == metric]


def statuses(report):
    return {d["status"] for d in report["deltas"]}


def _load_tool(name):
    """Import a tools/*.py script as a module (they are not packages)."""
    path = os.path.join(os.path.dirname(__file__), "..", "tools", name + ".py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestClassification:
    def test_identical_runs_compare_clean(self):
        report = compare_results(make_results(), make_results())
        assert report["status"] == "pass"
        assert report["regressions"] == 0
        assert report["improvements"] == 0
        assert report["changes"] == 0
        assert statuses(report) == {"ok"}
        assert {d["section"] for d in report["deltas"]} == {
            "backends",
            "background",
            "warm-cache",
            "serving",
        }

    def test_sips_metrics_are_not_diffed(self):
        report = compare_results(make_results(), make_results())
        assert not by_metric(report, "closure_sips")

    def test_planted_10pct_cycle_regression_is_flagged(self):
        current = make_results()
        row = current["background_compile"]["suites"]["sunspider"]
        row["background_cycles"] = int(row["background_cycles"] * 1.10)
        report = compare_results(current, make_results())
        assert report["status"] == "fail"
        regressed = [d for d in report["deltas"] if d["status"] == "regressed"]
        assert [(d["suite"], d["metric"]) for d in regressed] == [
            ("sunspider", "background_cycles")
        ]
        assert regressed[0]["kind"] == "cycles"
        assert regressed[0]["delta_pct"] == pytest.approx(10.0, abs=0.01)
        assert regressed[0]["threshold_pct"] == 0.0

    def test_cycles_have_zero_tolerance(self):
        current = make_results()
        current["background_compile"]["suites"]["sunspider"]["sync_cycles"] += 1
        report = compare_results(current, make_results())
        assert report["regressions"] == 1  # a single cycle is a regression

    def test_time_band_is_15_percent(self):
        baseline = make_results()
        within = make_results()
        within["suites"]["sunspider"]["closure_seconds"] = 0.60 * 1.10
        assert compare_results(within, baseline)["status"] == "pass"
        over = make_results()
        over["suites"]["sunspider"]["closure_seconds"] = 0.60 * 1.20
        report = compare_results(over, baseline)
        assert report["status"] == "fail"
        (delta,) = [d for d in report["deltas"] if d["status"] == "regressed"]
        assert delta["metric"] == "closure_seconds" and delta["kind"] == "time"
        faster = make_results()
        faster["suites"]["sunspider"]["closure_seconds"] = 0.60 * 0.80
        report = compare_results(faster, baseline)
        assert report["status"] == "pass" and report["improvements"] == 1

    def test_ratio_direction_higher_is_better(self):
        baseline = make_results()
        slower = make_results()
        slower["suites"]["sunspider"]["speedup"] = 2.0 * 0.85  # -15% < -10%
        report = compare_results(slower, baseline)
        assert [d["status"] for d in by_metric(report, "speedup")
                if d["section"] == "backends"] == ["regressed"]
        better = make_results()
        better["suites"]["sunspider"]["speedup"] = 2.0 * 1.20
        report = compare_results(better, baseline)
        assert [d["status"] for d in by_metric(report, "speedup")
                if d["section"] == "backends"] == ["improved"]

    def test_exact_metrics_report_but_never_fail(self):
        current = make_results()
        current["suites"]["sunspider"]["sim_instructions"] += 5000
        report = compare_results(current, make_results())
        assert report["status"] == "pass"
        assert report["changes"] == 1
        (delta,) = by_metric(report, "sim_instructions")
        assert delta["status"] == "changed" and delta["threshold_pct"] is None

    def test_metric_missing_from_current_is_a_regression(self):
        current = make_results()
        del current["suites"]["sunspider"]["whole_speedup"]
        report = compare_results(current, make_results())
        assert report["status"] == "fail"
        (delta,) = by_metric(report, "whole_speedup")
        assert delta["status"] == "missing" and delta["current"] is None

    def test_warm_cache_divergence_is_a_regression(self):
        current = make_results()
        current["warm_cache"]["cycles_identical"] = False
        report = compare_results(current, make_results())
        assert report["status"] == "fail"
        (delta,) = by_metric(report, "cycles_identical")
        assert delta["status"] == "regressed"

    def test_threshold_override_widens_the_band(self):
        current = make_results()
        current["suites"]["sunspider"]["closure_seconds"] = 0.60 * 1.20
        assert compare_results(current, make_results())["status"] == "fail"
        relaxed = compare_results(
            current, make_results(), thresholds={"time": 0.50}
        )
        assert relaxed["status"] == "pass"
        assert relaxed["thresholds"]["time"] == 0.50
        assert relaxed["thresholds"]["cycles"] == THRESHOLDS["cycles"]

    def test_planted_serving_latency_regression_is_flagged(self):
        current = make_results()
        current["serving"]["p99_latency_cycles"] = int(
            current["serving"]["p99_latency_cycles"] * 1.05
        )
        report = compare_results(current, make_results())
        assert report["status"] == "fail"
        regressed = [d for d in report["deltas"] if d["status"] == "regressed"]
        assert [(d["section"], d["metric"]) for d in regressed] == [
            ("serving", "p99_latency_cycles")
        ]
        assert regressed[0]["kind"] == "cycles"
        assert regressed[0]["threshold_pct"] == 0.0

    def test_serving_latencies_have_zero_tolerance(self):
        current = make_results()
        current["serving"]["p50_latency_cycles"] += 1
        assert compare_results(current, make_results())["status"] == "fail"

    def test_serving_hit_rate_drop_is_a_ratio_regression(self):
        current = make_results()
        current["serving"]["warm_hit_rate"] = 0.85  # -15% < the 10% band
        report = compare_results(current, make_results())
        assert report["status"] == "fail"
        (delta,) = [d for d in report["deltas"] if d["status"] == "regressed"]
        assert (delta["metric"], delta["kind"]) == ("warm_hit_rate", "ratio")

    def test_serving_isolation_violations_always_regress(self):
        current = make_results()
        current["serving"]["isolation_violations"] = 1
        report = compare_results(current, make_results())
        assert report["status"] == "fail"
        (delta,) = by_metric(report, "isolation_violations")
        assert delta["status"] == "regressed" and delta["current"] == 1

    def test_serving_cold_warm_divergence_is_a_regression(self):
        current = make_results()
        current["serving"]["cycles_identical"] = False
        report = compare_results(current, make_results())
        assert report["status"] == "fail"
        regressed = [d for d in report["deltas"] if d["status"] == "regressed"]
        assert [(d["section"], d["metric"]) for d in regressed] == [
            ("serving", "cycles_identical")
        ]

    def test_serving_request_counts_are_report_only(self):
        current = make_results()
        current["serving"]["batches"] += 3
        report = compare_results(current, make_results())
        assert report["status"] == "pass"
        (delta,) = by_metric(report, "batches")
        assert delta["status"] == "changed"

    def test_sections_narrow_the_comparison(self):
        report = compare_results(
            make_results(), make_results(), sections=("background",)
        )
        assert {d["section"] for d in report["deltas"]} == {"background"}

    def test_section_absent_from_current_is_skipped(self):
        current = make_results()
        del current["warm_cache"]
        report = compare_results(current, make_results())
        assert report["status"] == "pass"
        assert "warm-cache" not in {d["section"] for d in report["deltas"]}


class TestFormatting:
    def test_format_elides_quiet_rows(self):
        current = make_results()
        current["background_compile"]["suites"]["sunspider"][
            "background_cycles"
        ] = 990000
        report = compare_results(current, make_results())
        table = format_compare(report)
        assert "FAIL" in table and "background_cycles" in table
        assert "closure_seconds" not in table  # ok rows hidden by default
        assert "closure_seconds" in format_compare(report, verbose=True)

    def test_format_clean_report(self):
        table = format_compare(compare_results(make_results(), make_results()))
        assert "PASS" in table and "within thresholds" in table

    def test_json_roundtrip(self, tmp_path):
        report = compare_results(make_results(), make_results())
        path = str(tmp_path / "delta.json")
        write_compare_json(report, path)
        assert load_compare_json(path) == report


class TestSentinelTools:
    """tools/bench_compare.py and tools/perf_gate.py --from-compare."""

    @pytest.fixture
    def files(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_results()))
        regressed = make_results()
        row = regressed["background_compile"]["suites"]["sunspider"]
        row["background_cycles"] = int(row["background_cycles"] * 1.10)
        bad = tmp_path / "regressed.json"
        bad.write_text(json.dumps(regressed))
        return str(baseline), str(bad), tmp_path

    def test_clean_diff_exits_zero(self, files, capsys):
        baseline, _, _ = files
        tool = _load_tool("bench_compare")
        assert tool.main(["--baseline", baseline, "--input", baseline]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exits_one_unless_report_only(self, files, capsys):
        baseline, bad, tmp_path = files
        tool = _load_tool("bench_compare")
        delta = str(tmp_path / "bench-delta.json")
        assert (
            tool.main(
                ["--baseline", baseline, "--input", bad, "--json-out", delta]
            )
            == 1
        )
        assert "FAIL" in capsys.readouterr().out
        report = load_compare_json(delta)
        assert report["status"] == "fail" and report["regressions"] == 1
        assert (
            tool.main(
                ["--baseline", baseline, "--input", bad, "--report-only"]
            )
            == 0
        )
        capsys.readouterr()

    def test_usage_errors_exit_two(self, files, capsys):
        baseline, _, tmp_path = files
        tool = _load_tool("bench_compare")
        assert (
            tool.main(
                ["--baseline", baseline, "--input", baseline, "--sections", "nope"]
            )
            == 2
        )
        assert (
            tool.main(
                [
                    "--baseline",
                    baseline,
                    "--input",
                    baseline,
                    "--threshold",
                    "bogus=0.5",
                ]
            )
            == 2
        )
        assert tool.main(["--baseline", str(tmp_path / "absent.json")]) == 2
        capsys.readouterr()

    def test_threshold_flag_widens_the_band(self, files, capsys):
        baseline, _, tmp_path = files
        slow = make_results()
        slow["suites"]["sunspider"]["closure_seconds"] = 0.60 * 1.20
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slow))
        tool = _load_tool("bench_compare")
        argv = ["--baseline", baseline, "--input", str(slow_path)]
        assert tool.main(argv) == 1
        assert tool.main(argv + ["--threshold", "time=0.5"]) == 0
        capsys.readouterr()

    def test_perf_gate_consumes_the_delta_report(self, files, capsys):
        baseline, bad, tmp_path = files
        compare = _load_tool("bench_compare")
        gate = _load_tool("perf_gate")
        clean = str(tmp_path / "clean-delta.json")
        broken = str(tmp_path / "broken-delta.json")
        compare.main(
            ["--baseline", baseline, "--input", baseline, "--json-out", clean]
        )
        compare.main(
            [
                "--baseline",
                baseline,
                "--input",
                bad,
                "--json-out",
                broken,
                "--report-only",
            ]
        )
        capsys.readouterr()
        assert gate.main(["--from-compare", clean]) == 0
        assert "perf gate passed" in capsys.readouterr().out
        assert gate.main(["--from-compare", broken]) == 1
        assert "PERF GATE FAILED" in capsys.readouterr().out


class TestCompareCLI:
    """``repro bench --compare`` — the sentinel inside the main CLI."""

    def run_cli(self, argv):
        out = io.StringIO()
        return cli_main(argv, out=out), out.getvalue()

    @pytest.fixture
    def files(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_results()))
        regressed = make_results()
        row = regressed["background_compile"]["suites"]["sunspider"]
        row["background_cycles"] = int(row["background_cycles"] * 1.10)
        bad = tmp_path / "regressed.json"
        bad.write_text(json.dumps(regressed))
        return str(baseline), str(bad), tmp_path

    def test_identical_inputs_pass(self, files):
        baseline, _, _ = files
        code, output = self.run_cli(
            ["bench", "--compare", baseline, "--input", baseline]
        )
        assert code == 0
        assert "PASS" in output

    def test_regression_fails_unless_report_only(self, files):
        baseline, bad, tmp_path = files
        delta = str(tmp_path / "delta.json")
        code, output = self.run_cli(
            ["bench", "--compare", baseline, "--input", bad, "--json-out", delta]
        )
        assert code == 1
        assert "FAIL" in output and "background_cycles" in output
        assert load_compare_json(delta)["regressions"] == 1
        code, _ = self.run_cli(
            ["bench", "--compare", baseline, "--input", bad, "--report-only"]
        )
        assert code == 0

    def test_bad_inputs_raise_usage_errors(self, files):
        baseline, _, tmp_path = files
        with pytest.raises(SystemExit, match="no baseline"):
            self.run_cli(["bench", "--compare", str(tmp_path / "absent.json")])
        with pytest.raises(SystemExit, match="unknown sections"):
            self.run_cli(
                [
                    "bench",
                    "--compare",
                    baseline,
                    "--input",
                    baseline,
                    "--sections",
                    "nope",
                ]
            )
