"""The deterministic metrics registry (docs/METRICS.md).

Four contracts under test:

* **closed schema** — the registry rejects undeclared names and kind
  mismatches at record time, and every payload partitions exactly into
  ``METRIC_SCHEMA``'s counters, gauges and histograms;
* **deterministic snapshots** — the time series is a function of the
  engine's cycle clock alone, so repeat runs export bit-identical
  JSONL on every backend;
* **zero cost when enabled** — attaching a registry cannot move any
  observable (output, stats, cycles, trace stream) on any of the three
  executor backends;
* **exact merge** — folding the per-worker payloads of a ``--jobs N``
  sweep yields the same numbers as a single-process sweep.
"""

import io
import json

import pytest

from repro import FULL_SPEC, Engine
from repro.telemetry.metrics import (
    METRIC_SCHEMA,
    MetricsRegistry,
    empty_payload,
    format_dashboard,
    merge_payloads,
    snapshots_to_jsonl,
    to_prometheus,
)
from repro.telemetry.tracing import Tracer
from repro.tools.cli import main as cli_main

from tests.conftest import FAST

HOT_LOOP = """
function poly(a) { return a * a + 3 * a + 1; }
var s = 0;
for (var i = 0; i < 80; i++) s += poly(i % 4);
print(s);
"""

SHAPY = """
function getx(o) { return o.x; }
var a = {x: 1};
var b = {y: 9, x: 2};
var s = 0;
for (var i = 0; i < 60; i++) s += getx(i % 2 == 0 ? a : b);
print(s);
"""


class _Bench(object):
    """Minimal benchmark carrier for harness tests (picklable)."""

    def __init__(self, name, source):
        self.name = name
        self.source = source


SUITE = [_Bench("hot", HOT_LOOP), _Bench("shapy", SHAPY)]


def run_metered(source, interval=0, **engine_kwargs):
    """One engine pass with a fresh registry; returns (printed, engine, reg)."""
    registry = MetricsRegistry(snapshot_interval=interval)
    kwargs = dict(FAST)
    kwargs.update(engine_kwargs)
    engine = Engine(config=FULL_SPEC, metrics=registry, **kwargs)
    printed = engine.run_source(source)
    return printed, engine, registry


class TestRegistrySchema:
    def test_unknown_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown metric"):
            registry.inc("repro_engine_nope_total")
        with pytest.raises(ValueError, match="unknown metric"):
            registry.set_gauge("bogus", 1)
        with pytest.raises(ValueError, match="unknown metric"):
            registry.observe("bogus_histogram", 5)

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="is a gauge, not a counter"):
            registry.inc("repro_engine_total_cycles")
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            registry.set_gauge("repro_engine_compiles_total", 1)
        with pytest.raises(ValueError, match="is a counter, not a histogram"):
            registry.observe("repro_engine_compiles_total", 1)

    def test_payload_partitions_the_schema(self):
        payload = empty_payload()
        counters = set(payload["counters"])
        gauges = set(payload["gauges"])
        histograms = set(payload["histograms"])
        assert counters | gauges | histograms == set(METRIC_SCHEMA)
        assert not (counters & gauges or counters & histograms or gauges & histograms)
        for name in counters:
            assert METRIC_SCHEMA[name]["type"] == "counter"
        for name in histograms:
            assert list(payload["histograms"][name]["buckets"]) == list(
                METRIC_SCHEMA[name]["buckets"]
            )

    def test_observe_bucket_boundaries(self):
        registry = MetricsRegistry()
        name = "repro_compile_cycles_per_compile"
        bounds = METRIC_SCHEMA[name]["buckets"]
        registry.observe(name, bounds[0])  # on the bound: first bucket
        registry.observe(name, bounds[0] + 1)  # past it: second bucket
        registry.observe(name, bounds[-1] + 1)  # past the last: +Inf slot
        cell = registry.histograms[name]
        assert cell["counts"][0] == 1
        assert cell["counts"][1] == 1
        assert cell["counts"][-1] == 1
        assert cell["count"] == 3
        assert cell["sum"] == bounds[0] + bounds[0] + 1 + bounds[-1] + 1


class TestSnapshotBoundaries:
    def test_at_most_one_snapshot_per_crossing(self):
        now = [0]
        registry = MetricsRegistry(snapshot_interval=100, clock=lambda: now[0])
        registry.maybe_snapshot()
        assert registry.snapshots == []
        now[0] = 99
        registry.maybe_snapshot()
        assert registry.snapshots == []
        now[0] = 100
        registry.maybe_snapshot()
        registry.maybe_snapshot()  # same instant: no second snapshot
        assert [snap["ts"] for snap in registry.snapshots] == [100]
        now[0] = 550  # jumped 4 boundaries: still just one snapshot
        registry.maybe_snapshot()
        assert [snap["ts"] for snap in registry.snapshots] == [100, 550]
        now[0] = 560  # inside the 500..600 window again: nothing
        registry.maybe_snapshot()
        assert len(registry.snapshots) == 2
        registry.finalize()  # closing snapshot regardless of boundary
        assert [snap["ts"] for snap in registry.snapshots] == [100, 550, 560]
        assert [snap["seq"] for snap in registry.snapshots] == [0, 1, 2]

    def test_interval_zero_disables_the_series(self):
        now = [10 ** 9]
        registry = MetricsRegistry(snapshot_interval=0, clock=lambda: now[0])
        registry.maybe_snapshot()
        assert registry.snapshots == []
        registry.finalize()
        assert len(registry.snapshots) == 1

    def test_collectors_run_before_every_snapshot(self):
        registry = MetricsRegistry()
        registry.collectors.append(
            lambda: registry.set_gauge("repro_engine_functions_hot", 7)
        )
        registry.finalize()
        assert registry.snapshots[0]["gauges"]["repro_engine_functions_hot"] == 7


class TestEngineIntegration:
    def test_counters_mirror_the_stats_ledger(self):
        printed, engine, registry = run_metered(HOT_LOOP)
        stats = engine.stats
        c = registry.counters
        assert printed and stats.compiles > 0
        assert c["repro_engine_compiles_total"] == stats.compiles
        assert c["repro_engine_bailouts_total"] == stats.bailouts
        assert c["repro_engine_invalidations_total"] == stats.invalidations
        assert c["repro_engine_calls_interp_total"] == stats.interp_calls
        assert c["repro_engine_calls_native_total"] > 0
        assert registry.gauges["repro_engine_total_cycles"] == stats.total_cycles

    def test_spec_cache_and_ic_instrumentation(self):
        _, engine, registry = run_metered(SHAPY)
        c = registry.counters
        g = registry.gauges
        assert c["repro_spec_cache_stores_total"] > 0
        assert c["repro_spec_cache_hits_total"] + c["repro_spec_cache_misses_total"] > 0
        assert g["repro_spec_cache_entries"] > 0
        assert g["repro_engine_functions_hot"] == len(engine.states)
        # getx's property site saw two shapes: a polymorphic IC.
        assert g["repro_engine_ic_sites_poly"] >= 1
        assert c["repro_engine_ic_transitions_total"] >= 2

    def test_background_queue_metrics(self):
        _, engine, registry = run_metered(HOT_LOOP, background_compile=True)
        queue = engine.compile_queue
        c = registry.counters
        assert c["repro_compile_queue_enqueued_total"] == queue.enqueued > 0
        assert c["repro_compile_queue_installed_total"] == queue.installed > 0
        assert registry.gauges["repro_compile_queue_depth_high_water"] >= 1
        assert registry.gauges["repro_compile_queue_lane_cycle"] > 0
        latency = registry.histograms["repro_compile_install_latency_cycles"]
        assert latency["count"] == queue.installed
        assert sum(latency["counts"]) == latency["count"]
        cost = registry.histograms["repro_compile_cycles_per_compile"]
        assert cost["count"] == engine.stats.compiles

    def test_queue_depth_trace_events(self):
        tracer = Tracer(channels=("compile",))
        registry = MetricsRegistry()
        engine = Engine(
            config=FULL_SPEC,
            background_compile=True,
            metrics=registry,
            tracer=tracer,
            **FAST
        )
        engine.run_source(HOT_LOOP)
        depth_events = [
            event for event in tracer.events if event["event"] == "queue_depth"
        ]
        assert depth_events
        assert {event["action"] for event in depth_events} <= {
            "enqueue",
            "install",
            "drop",
        }
        assert all(event["depth"] >= 0 for event in depth_events)
        enqueues = [e for e in depth_events if e["action"] == "enqueue"]
        assert len(enqueues) == engine.compile_queue.enqueued

    def test_periodic_snapshots_are_deterministic(self):
        _, _, first = run_metered(HOT_LOOP, interval=2000, background_compile=True)
        _, _, second = run_metered(HOT_LOOP, interval=2000, background_compile=True)
        assert len(first.snapshots) > 1
        timestamps = [snap["ts"] for snap in first.snapshots]
        assert timestamps == sorted(timestamps)
        assert snapshots_to_jsonl(first.as_dict()) == snapshots_to_jsonl(
            second.as_dict()
        )


class TestZeroCostWhenEnabled:
    @pytest.mark.parametrize("backend", ["simple", "closure", "whole"])
    def test_metrics_move_no_observable(self, backend):
        """Output, stats, cycles and the trace stream are identical with
        the registry attached or absent, on every executor backend."""

        def run(metrics):
            from repro.jsvm.bytecode import CodeObject

            # Comparable code ids across the two runs (the id counter is
            # process-global), so the trace streams can be diffed whole.
            CodeObject._next_id = 1
            tracer = Tracer()
            engine = Engine(
                config=FULL_SPEC,
                executor_backend=backend,
                metrics=metrics,
                tracer=tracer,
                **FAST
            )
            printed = engine.run_source(SHAPY)
            return printed, engine, list(tracer.events)

        import re

        def normalize(events):
            # Spec keys embed heap-object identities (``('ref', id)``)
            # that differ between any two runs; mask them so the rest of
            # the stream must match exactly.
            return [
                {
                    field: re.sub(r"'ref', \d+", "'ref', 0", value)
                    if isinstance(value, str)
                    else value
                    for field, value in event.items()
                }
                for event in events
            ]

        plain_printed, plain_engine, plain_events = run(None)
        metered_printed, metered_engine, metered_events = run(
            MetricsRegistry(snapshot_interval=1000)
        )
        assert metered_printed == plain_printed
        assert metered_engine.stats.total_cycles == plain_engine.stats.total_cycles
        assert metered_engine.stats.summary() == plain_engine.stats.summary()
        assert normalize(metered_events) == normalize(plain_events)


class TestMergeExactness:
    def test_merge_sums_counters_and_folds_gauges(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.inc("repro_engine_compiles_total", 3)
        right.inc("repro_engine_compiles_total", 4)
        left.set_gauge("repro_spec_cache_entries", 5)  # merge: sum
        right.set_gauge("repro_spec_cache_entries", 2)
        left.set_gauge("repro_compile_queue_depth_high_water", 3)  # merge: max
        right.set_gauge("repro_compile_queue_depth_high_water", 9)
        left.observe("repro_compile_install_latency_cycles", 300)
        right.observe("repro_compile_install_latency_cycles", 300)
        right.observe("repro_compile_install_latency_cycles", 10 ** 9)
        merged = merge_payloads([left.as_dict(), right.as_dict()])
        assert merged["counters"]["repro_engine_compiles_total"] == 7
        assert merged["gauges"]["repro_spec_cache_entries"] == 7
        assert merged["gauges"]["repro_compile_queue_depth_high_water"] == 9
        cell = merged["histograms"]["repro_compile_install_latency_cycles"]
        assert cell["count"] == 3
        assert cell["counts"][1] == 2  # two 300s in the (256, 1024] bucket
        assert cell["counts"][-1] == 1  # the outlier in +Inf
        assert cell["sum"] == 600 + 10 ** 9
        assert merged["snapshots"] == []  # time series never merge

    def test_merge_ignores_undeclared_names(self):
        payload = empty_payload()
        payload["counters"]["not_a_metric"] = 99
        merged = merge_payloads([payload])
        assert "not_a_metric" not in merged["counters"]

    def test_merge_is_order_independent(self):
        payloads = []
        for seed in (1, 2, 3):
            registry = MetricsRegistry()
            registry.inc("repro_spec_cache_hits_total", seed)
            registry.set_gauge("repro_compile_queue_lane_cycle", seed * 100)
            payloads.append(registry.as_dict())
        forward = merge_payloads(payloads)
        backward = merge_payloads(list(reversed(payloads)))
        assert forward == backward

    def test_jobs4_sweep_merges_to_single_process_totals(self):
        """The ISSUE's aggregation-exactness check: a ``--jobs 4`` sweep's
        per-worker payloads fold to exactly the serial sweep's numbers."""
        from repro.bench.harness import run_suite_sweep

        def fleet(jobs):
            sweep = run_suite_sweep(
                "micro",
                SUITE,
                configs=[FULL_SPEC],
                engine_kwargs=dict(FAST),
                jobs=jobs,
                collect_metrics=True,
            )
            payloads = [
                run.metrics
                for by_bench in sweep.runs.values()
                for run in by_bench.values()
            ]
            assert len(payloads) == 2 * len(SUITE)
            assert all(payload is not None for payload in payloads)
            return merge_payloads(payloads)

        serial = fleet(jobs=1)
        parallel = fleet(jobs=4)
        assert parallel == serial
        assert serial["counters"]["repro_engine_compiles_total"] > 0


class TestExporters:
    def test_prometheus_exposition_parses(self):
        _, _, registry = run_metered(HOT_LOOP, background_compile=True)
        text = to_prometheus(registry)
        samples = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = int(value)
        for name, spec in METRIC_SCHEMA.items():
            assert "# HELP %s %s" % (name, spec["help"]) in text
            assert "# TYPE %s %s" % (name, spec["type"]) in text
            if spec["type"] == "histogram":
                cumulative = [
                    samples['%s_bucket{le="%d"}' % (name, bound)]
                    for bound in spec["buckets"]
                ]
                assert cumulative == sorted(cumulative)
                assert samples['%s_bucket{le="+Inf"}' % name] == samples[
                    "%s_count" % name
                ]
            else:
                assert name in samples

    def test_jsonl_lines_are_sorted_json(self):
        _, _, registry = run_metered(HOT_LOOP, interval=2000)
        text = snapshots_to_jsonl(registry.as_dict())
        lines = text.splitlines()
        assert len(lines) == len(registry.snapshots) >= 1
        for line in lines:
            record = json.loads(line)
            assert line == json.dumps(record, sort_keys=True)
            assert set(record) == {"ts", "seq", "counters", "gauges", "histograms"}

    def test_dashboard_renders_health_lines(self):
        _, _, registry = run_metered(HOT_LOOP, interval=2000, background_compile=True)
        panel = format_dashboard(registry.as_dict(), title="unit test")
        assert "== unit test ==" in panel
        assert "tier mix" in panel
        assert "spec cache" in panel
        assert "disk cache" in panel
        assert "IC sites" in panel
        assert "cycle rate" in panel  # the snapshot sparkline section

    def test_dashboard_tolerates_the_empty_payload(self):
        panel = format_dashboard(empty_payload())
        assert "tier mix" in panel and "cycle rate" not in panel


class TestMetricsCLI:
    def run_cli(self, argv):
        out = io.StringIO()
        return cli_main(argv, out=out), out.getvalue()

    @pytest.fixture
    def script(self, tmp_path):
        path = tmp_path / "prog.js"
        path.write_text(HOT_LOOP)
        return str(path)

    def test_metrics_defaults_to_prometheus_text(self, script):
        code, output = self.run_cli(["metrics", script])
        assert code == 0
        assert output.startswith("# HELP ")
        assert "# TYPE repro_engine_total_cycles gauge" in output
        assert "# TYPE repro_compile_install_latency_cycles histogram" in output

    def test_metrics_writes_exports(self, script, tmp_path):
        prom = tmp_path / "metrics.prom"
        jsonl = tmp_path / "metrics.jsonl"
        code, output = self.run_cli(
            [
                "metrics",
                script,
                "--interval",
                "2000",
                "--prometheus",
                str(prom),
                "--jsonl",
                str(jsonl),
            ]
        )
        assert code == 0
        assert "wrote Prometheus exposition" in output
        assert prom.read_text().startswith("# HELP ")
        lines = jsonl.read_text().strip().splitlines()
        assert lines and all(json.loads(line) for line in lines)

    def test_metrics_json_dump(self, script):
        code, output = self.run_cli(["metrics", script, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert set(payload["counters"]) == {
            name
            for name, spec in METRIC_SCHEMA.items()
            if spec["type"] == "counter"
        }

    def test_top_dashboard(self, script):
        code, output = self.run_cli(["top", script])
        assert code == 0
        assert "repro top" in output
        assert "tier mix" in output
