"""Unit tests for MIR instruction/def-use/graph primitives."""

import pytest

from repro.errors import CompilerError
from repro.jsvm.bytecode import Op
from repro.mir.graph import MIRGraph
from repro.mir.instructions import (
    MBinaryArithI,
    MConstant,
    MGoto,
    MPhi,
    MReturn,
    MTest,
    ResumePoint,
)
from repro.mir.types import MIRType
from repro.mir.verifier import verify_graph


class FakeCode(object):
    name = "<fake>"


def tiny_graph():
    """entry -> body -> return c1 + c2"""
    graph = MIRGraph(FakeCode())
    entry = graph.new_block()
    graph.entry = entry
    c1 = entry.append(MConstant(1))
    c2 = entry.append(MConstant(2))
    add = entry.append(MBinaryArithI(Op.ADD, c1, c2))
    entry.append(MReturn(add))
    return graph, entry, c1, c2, add


class TestDefUse:
    def test_uses_registered(self):
        _graph, _entry, c1, c2, add = tiny_graph()
        assert any(consumer is add for consumer, _ in c1.uses)
        assert any(consumer is add for consumer, _ in c2.uses)

    def test_replace_all_uses(self):
        graph, entry, c1, _c2, add = tiny_graph()
        c9 = entry.insert_before(add, MConstant(9))
        c1.replace_all_uses_with(c9)
        assert add.operands[0] is c9
        assert not c1.has_uses()
        assert any(consumer is add for consumer, _ in c9.uses)

    def test_replace_with_self_is_noop(self):
        _graph, _entry, c1, _c2, add = tiny_graph()
        c1.replace_all_uses_with(c1)
        assert add.operands[0] is c1

    def test_remove_instruction_releases_operands(self):
        graph, entry, c1, c2, add = tiny_graph()
        ret = entry.instructions[-1]
        entry.remove_instruction(ret)
        entry.remove_instruction(add)
        assert not c1.has_uses()
        assert not c2.has_uses()

    def test_set_operand_updates_uses(self):
        _graph, entry, c1, c2, add = tiny_graph()
        add.set_operand(0, c2)
        assert not c1.has_uses()
        assert len([u for u, _ in c2.uses if u is add]) == 2

    def test_resume_point_counts_as_use(self):
        graph, entry, c1, c2, add = tiny_graph()
        resume = ResumePoint(0, ResumePoint.MODE_AT, [c1], [], [c2])
        add.attach_resume_point(resume)
        assert len(c1.uses) == 2  # add operand + resume point
        add.release_operands()
        assert not c1.has_uses()

    def test_resume_point_layout(self):
        _graph, _entry, c1, c2, add = tiny_graph()
        resume = ResumePoint(5, ResumePoint.MODE_AFTER, [c1, c2], [add], [c1])
        assert resume.args == [c1, c2]
        assert resume.locals == [add]
        assert resume.stack == [c1]


class TestPhis:
    def test_phi_operands_align_with_predecessors(self):
        graph = MIRGraph(FakeCode())
        a = graph.new_block()
        b = graph.new_block()
        join = graph.new_block()
        graph.entry = a
        phi = MPhi(MIRType.INT32)
        join.add_phi(phi)
        ca = a.append(MConstant(1))
        cb = b.append(MConstant(2))
        join.add_predecessor(a)
        phi.add_input(ca)
        join.add_predecessor(b)
        phi.add_input(cb)
        assert len(phi.operands) == len(join.predecessors)

    def test_remove_predecessor_trims_phi(self):
        graph = MIRGraph(FakeCode())
        a = graph.new_block()
        b = graph.new_block()
        join = graph.new_block()
        phi = MPhi(MIRType.INT32)
        join.add_phi(phi)
        ca = a.append(MConstant(1))
        cb = b.append(MConstant(2))
        join.add_predecessor(a)
        phi.add_input(ca)
        join.add_predecessor(b)
        phi.add_input(cb)
        join.remove_predecessor(a)
        assert phi.operands == [cb]
        assert not ca.has_uses()
        # The remaining use is re-indexed to position 0.
        assert (phi, 0) in cb.uses


class TestVerifier:
    def test_valid_graph_passes(self):
        graph, _entry, _c1, _c2, _add = tiny_graph()
        verify_graph(graph)

    def test_missing_terminator_caught(self):
        graph = MIRGraph(FakeCode())
        block = graph.new_block()
        graph.entry = block
        block.append(MConstant(1))
        with pytest.raises(CompilerError):
            verify_graph(graph)

    def test_phi_operand_count_mismatch_caught(self):
        graph, entry, c1, _c2, _add = tiny_graph()
        other = graph.new_block()
        phi = MPhi(MIRType.INT32)
        other.add_phi(phi)
        phi.add_input(c1)  # one operand, zero predecessors
        other.append(MReturn(c1))
        with pytest.raises(CompilerError):
            verify_graph(graph)

    def test_edge_symmetry_caught(self):
        graph, entry, _c1, _c2, _add = tiny_graph()
        orphan = graph.new_block()
        orphan.append(MReturn(entry.instructions[0]))
        # entry -> orphan edge without predecessor registration
        entry.remove_instruction(entry.instructions[-1])
        entry.append(MGoto(orphan))
        with pytest.raises(CompilerError):
            verify_graph(graph)


class TestCongruence:
    def test_constants_congruent_by_value(self):
        a, b = MConstant(5), MConstant(5)
        a.id, b.id = 1, 2
        assert a.congruence_key() == b.congruence_key()

    def test_int_float_constants_differ(self):
        a, b = MConstant(5), MConstant(5.0)
        a.id, b.id = 1, 2
        assert a.congruence_key() != b.congruence_key()

    def test_arith_congruence_includes_op(self):
        c1, c2 = MConstant(1), MConstant(2)
        c1.id, c2.id = 1, 2
        add = MBinaryArithI(Op.ADD, c1, c2)
        sub = MBinaryArithI(Op.SUB, c1, c2)
        add.id, sub.id = 3, 4
        assert add.congruence_key() != sub.congruence_key()

    def test_effectful_not_congruent(self):
        from repro.mir.instructions import MCall

        c = MConstant(1)
        c.id = 1
        call = MCall(c, c, [])
        call.id = 2
        assert call.congruence_key() is None
