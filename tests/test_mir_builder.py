"""Tests for bytecode → MIR construction."""

import pytest

from repro.errors import NotCompilable
from repro.jsvm.bytecompiler import compile_source
from repro.jsvm.feedback import TypeFeedback
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.values import UNDEFINED
from repro.mir import instructions as mi
from repro.mir.builder import build_mir
from repro.mir.printer import format_graph
from repro.mir.types import MIRType
from repro.mir.verifier import verify_graph


def function_code(source, name=None):
    code = compile_source(source)
    found = []

    def walk(c):
        for constant in c.constants:
            if hasattr(constant, "instructions"):
                found.append(constant)
                walk(constant)

    walk(code)
    if name is None:
        return found[0]
    return [c for c in found if c.name == name][0]


def profiled_code(source, name=None):
    """Compile, attach feedback, run interpreted to warm it."""
    toplevel = compile_source(source)
    code = function_code(source, name)
    # Re-find within this toplevel (function_code compiled separately).
    found = []

    def walk(c):
        for constant in c.constants:
            if hasattr(constant, "instructions"):
                found.append(constant)
                walk(constant)

    walk(toplevel)
    target = [c for c in found if c.name == code.name][0]
    target.feedback = TypeFeedback(target.num_params)
    interp = Interpreter()

    original_call = interp.call_function

    def recording_call(function, this_value, args):
        if function.code is target:
            target.feedback.record_args(args, this_value)
        return original_call(function, this_value, args)

    interp.call_function = recording_call
    interp.run_code(toplevel)
    return target


def instrs_of(graph, cls):
    return [i for i in graph.all_instructions() if isinstance(i, cls)]


MAP_SOURCE = """
function inc(x) { return x + 1; }
function map(s, b, n, f) {
  var i = b;
  while (i < n) { s[i] = f(s[i]); i++; }
  return s;
}
map([1, 2, 3, 4, 5], 2, 5, inc);
"""


class TestBasicConstruction:
    def test_simple_function(self):
        code = function_code("function f(a, b) { return a + b; }")
        graph = build_mir(code)
        verify_graph(graph)
        assert graph.entry is not None
        assert graph.osr_entry is None
        assert instrs_of(graph, mi.MParameter)
        assert instrs_of(graph, mi.MReturn)

    def test_entry_has_checkoverrecursed(self):
        graph = build_mir(function_code("function f() { return 1; }"))
        assert len(instrs_of(graph, mi.MCheckOverRecursed)) == 1

    def test_loop_creates_phis(self):
        code = function_code("function f(n) { var s = 0; while (s < n) s++; return s; }")
        graph = build_mir(code)
        verify_graph(graph)
        assert instrs_of(graph, mi.MPhi)

    def test_straightline_has_no_phis_after_simplify(self):
        code = function_code("function f(a) { var x = a; var y = x; return y; }")
        graph = build_mir(code)
        assert not instrs_of(graph, mi.MPhi)

    def test_if_else_join_phi(self):
        code = function_code("function f(c) { var x; if (c) x = 1; else x = 2; return x; }")
        graph = build_mir(code)
        verify_graph(graph)
        phis = instrs_of(graph, mi.MPhi)
        assert len(phis) >= 1

    def test_call_shape(self):
        code = function_code("function f(g) { return g(1, 2); }")
        graph = build_mir(code)
        calls = instrs_of(graph, mi.MCall)
        assert len(calls) == 1
        assert len(calls[0].call_args) == 2

    def test_resume_points_on_guard_candidates(self):
        code = function_code("function f(a, b) { return a + b; }")
        graph = build_mir(code)
        binary = instrs_of(graph, mi.MBinaryV)[0]
        assert binary.resume_point is not None
        assert binary.resume_point.mode == "after"

    def test_getelem_resume_mode_at(self):
        code = function_code("function f(a, i) { return a[i]; }")
        graph = build_mir(code)
        load = instrs_of(graph, mi.MGetElemV)[0]
        assert load.resume_point.mode == "at"

    def test_printer_smoke(self):
        graph = build_mir(function_code("function f(a) { return a; }"))
        text = format_graph(graph)
        assert "parameter" in text


class TestNotCompilable:
    def test_free_variables_rejected(self):
        code = function_code(
            "function o() { var c = 1; return function i() { return c; }; }", "i"
        )
        with pytest.raises(NotCompilable):
            build_mir(code)

    def test_cell_variables_rejected(self):
        code = function_code(
            "function o() { var c = 1; return function i() { return c; }; }", "o"
        )
        with pytest.raises(NotCompilable):
            build_mir(code)

    def test_closure_creating_function_without_capture_ok(self):
        code = function_code("function o() { return function i() { return 1; }; }", "o")
        graph = build_mir(code)
        assert instrs_of(graph, mi.MLambda)


class TestParameterSpecialization:
    def test_constants_replace_parameters(self):
        code = function_code("function f(a, b) { return a + b; }")
        graph = build_mir(code, param_values=[3, 4])
        assert graph.specialized
        assert not instrs_of(graph, mi.MParameter)
        constants = [c.value for c in instrs_of(graph, mi.MConstant)]
        assert 3 in constants and 4 in constants

    def test_this_value_specialized(self):
        code = function_code("function f() { return this; }")
        graph = build_mir(code, param_values=[], this_value="THIS")
        constants = [c.value for c in instrs_of(graph, mi.MConstant)]
        assert "THIS" in constants

    def test_unspecialized_keeps_parameters(self):
        code = function_code("function f(a) { return a; }")
        graph = build_mir(code)
        assert not graph.specialized
        assert instrs_of(graph, mi.MParameter)


class TestOSR:
    def test_osr_entry_block(self):
        code = function_code("function f(n) { var s = 0; while (s < n) s++; return s; }")
        # Find the loop-header pc: the target of the backward jump.
        from repro.jsvm.bytecode import Op

        backward = [i for i in code.instructions if i.op == Op.JUMP and i.arg < code.instructions.index(i)]
        osr_pc = backward[0].arg
        graph = build_mir(
            code,
            osr_pc=osr_pc,
            osr_args=[100],
            osr_locals=[UNDEFINED] * code.num_locals,
        )
        verify_graph(graph)
        assert graph.osr_entry is not None
        assert instrs_of(graph, mi.MOsrValue)

    def test_specialized_osr_uses_constants(self):
        code = function_code("function f(n) { var s = 0; while (s < n) s++; return s; }")
        from repro.jsvm.bytecode import Op

        backward = [i for i in code.instructions if i.op == Op.JUMP and i.arg < code.instructions.index(i)]
        osr_pc = backward[0].arg
        graph = build_mir(
            code,
            param_values=[100],
            osr_pc=osr_pc,
            osr_args=[100],
            osr_locals=[5] * code.num_locals,
        )
        verify_graph(graph)
        assert graph.osr_entry is not None
        assert not instrs_of(graph, mi.MOsrValue)  # constants instead


class TestTypeFeedbackIntegration:
    def test_arg_unbox_guards_from_profile(self):
        code = profiled_code("function f(a, b) { return a + b; } f(1, 2); f(3, 4);")
        graph = build_mir(code, feedback=code.feedback)
        unboxes = instrs_of(graph, mi.MUnbox)
        assert any(u.type == MIRType.INT32 for u in unboxes)

    def test_polymorphic_args_stay_boxed(self):
        code = profiled_code("function f(a) { return a; } f(1); f('x');")
        graph = build_mir(code, feedback=code.feedback)
        assert not instrs_of(graph, mi.MUnbox)

    def test_generic_mode_disables_guards(self):
        code = profiled_code("function f(a, b) { return a + b; } f(1, 2);")
        graph = build_mir(code, feedback=code.feedback, generic=True)
        assert not instrs_of(graph, mi.MUnbox)
        assert not instrs_of(graph, mi.MTypeBarrier)

    def test_array_receiver_speculation(self):
        code = profiled_code(MAP_SOURCE, "map")
        graph = build_mir(code, feedback=code.feedback)
        verify_graph(graph)
        unboxes = instrs_of(graph, mi.MUnbox)
        assert any(u.type == MIRType.ARRAY for u in unboxes)
