"""Tests for the optimization pipeline driver and its cost accounting."""

from repro.engine.config import BASELINE, FULL_SPEC, OptConfig
from repro.engine.jit import compile_function
from repro.mir.builder import build_mir
from repro.opts.pass_manager import optimize

from tests.helpers import compile_and_profile

SOURCE = """
function kernel(a, n) {
  var s = 0;
  for (var i = 0; i < n; i++) s += (a * i) & 255;
  return s;
}
kernel(7, 40);
"""


def fresh_graph(param_values=None):
    _top, code = compile_and_profile(SOURCE, "kernel")
    return build_mir(code, feedback=code.feedback, param_values=param_values)


class TestPassGating:
    def test_baseline_runs_no_configurable_passes(self):
        work = optimize(fresh_graph(), BASELINE)
        assert "constprop" not in work.units
        assert "dce" not in work.units
        assert "bounds_check" not in work.units
        assert "inlining" not in work.units
        # Baseline IonMonkey passes always run.
        assert "type_specialization" in work.units
        assert "gvn" in work.units
        assert "licm" in work.units

    def test_full_config_runs_everything(self):
        work = optimize(fresh_graph(param_values=[7, 40]), FULL_SPEC)
        for name in ("type_specialization", "gvn", "constprop", "dce", "licm", "bounds_check"):
            assert name in work.units, name

    def test_inlining_needs_specialized_graph(self):
        work = optimize(fresh_graph(param_values=None), FULL_SPEC)
        assert "inlining" not in work.units

    def test_loop_inversion_cost_charged_when_flagged(self):
        work = optimize(fresh_graph(), BASELINE, loop_inversion_applied=True)
        assert "loop_inversion" in work.units

    def test_work_units_positive(self):
        work = optimize(fresh_graph(), FULL_SPEC)
        assert work.total_units > 0
        assert all(units > 0 for units in work.units.values())


class TestCompileFunction:
    def test_param_values_ignored_without_param_spec(self):
        _top, code = compile_and_profile(SOURCE, "kernel")
        result = compile_function(
            code, BASELINE, feedback=code.feedback, param_values=[7, 40]
        )
        assert not result.native.meta["specialized"]

    def test_specialized_metadata(self):
        _top, code = compile_and_profile(SOURCE, "kernel")
        result = compile_function(
            code, FULL_SPEC, feedback=code.feedback, param_values=[7, 40]
        )
        assert result.native.meta["specialized"]
        assert result.native.meta["specialized_args"] == [7, 40]

    def test_keep_graph(self):
        _top, code = compile_and_profile(SOURCE, "kernel")
        result = compile_function(code, BASELINE, feedback=code.feedback, keep_graph=True)
        assert result.graph is not None
        result = compile_function(code, BASELINE, feedback=code.feedback)
        assert result.graph is None

    def test_codegen_stats_present(self):
        _top, code = compile_and_profile(SOURCE, "kernel")
        result = compile_function(code, BASELINE, feedback=code.feedback)
        assert result.codegen_stats["lir_instructions"] > 0
        assert result.codegen_stats["intervals"] > 0


class TestGraphSurgery:
    def test_merge_blocks(self):
        from repro.opts.dce import merge_blocks
        from repro.mir.verifier import verify_graph

        graph = fresh_graph()
        before = len(graph.blocks)
        merged = merge_blocks(graph)
        verify_graph(graph)
        assert merged >= 0
        assert len(graph.blocks) == before - merged

    def test_compact_removes_unreachable(self):
        from repro.mir.instructions import MGoto
        from repro.mir.verifier import verify_graph

        graph = fresh_graph()
        # Manufacture an unreachable block.
        dead = graph.new_block()
        goto = MGoto(graph.entry)
        dead.append(goto)
        graph.entry.add_predecessor(dead)
        removed = graph.compact()
        assert removed >= 1
        verify_graph(graph)
