"""Deoptless recovery: the specialization dispatch table (docs/DEOPTLESS.md).

The §4 policy answers a failed precondition with discard-and-recompile;
`Engine(deoptless=True)` instead retains every compiled sibling in a
per-function dispatch table and re-enters whichever one's preconditions
hold.  Four layers of coverage:

* the dispatch flows in isolation — respecialize, generalize after
  repeated misses, OSR-entry dispatch, table-fill promotion, and the
  identity-key gate that keeps one-allocation regimes out of the table;
* the retrain no-op detector (`deopt.retrain_noop`) that keeps a
  shape-guarded binary whose retrain recompile would be bit-identical;
* the differential contract over the churn suite: deoptless prints
  exactly what §4 prints, strictly cheaper, with fewer invalidations,
  bit-identical across all three executor backends and across a
  cold-then-warm code cache;
* the chaos-injector upgrades that exercise the same regime from the
  fault side — Nth-execution firing, the seeded random schedule, and
  the post-run entry-guard replay.
"""

import pytest

from repro import FULL_SPEC, Engine
from repro.cache import DiskCodeCache
from repro.engine.bailout import GuardFaultInjector, exercise_entry_guards
from repro.engine.runtime_engine import _key_recurrable, _spec_key
from repro.jsvm.bytecode import CodeObject
from repro.jsvm.objects import reset_shapes
from repro.jsvm.values import UNDEFINED
from repro.lir.executor import Bailout
from repro.telemetry.profiler import CycleProfiler
from repro.telemetry.tracing import Tracer
from repro.workloads.churn import CHURN, POLYMORPHIC_DISPATCH, SPEC_CHURN

from tests.conftest import FAST


def run(source, trace=False, **kwargs):
    """One deterministic engine run: fresh code ids and shape registry."""
    CodeObject._next_id = 1
    reset_shapes()
    tracer = Tracer(channels=("deoptless", "deopt")) if trace else None
    engine = Engine(config=FULL_SPEC, tracer=tracer, **dict(FAST, **kwargs))
    printed = engine.run_source(source)
    events = list(tracer.events) if trace else None
    return engine, printed, events


def state_of(engine, name):
    return next(s for s in engine.states.values() if s.code.name == name)


def deoptless_events(events, kind=None, reason=None):
    picked = [e for e in events if e["ch"] == "deoptless"]
    if kind is not None:
        picked = [e for e in picked if e["event"] == "dispatch" and e["kind"] == kind]
    if reason is not None:
        picked = [e for e in picked if e["event"] == "miss" and e["reason"] == reason]
    return picked


#: Five regimes cycling against a four-line table: the fifth regime
#: overflows into the generalized sibling, and every return of regimes
#: 0-3 must dispatch back into its retained specialized line.
CYCLING_REGIMES = """
function g(k) { return (k * 5 + 1) & 255; }
var total = 0;
for (var p = 0; p < 15; p++) {
    for (var c = 0; c < 4; c++) total = (total + g(p % 5)) & 65535;
}
print(total);
"""

#: Every phase brings a never-repeating argument value: no regime
#: recurs, so the table must converge on the generalized catch-all.
DRIFTING_REGIMES = """
function g(k) { return (k * 5 + 1) & 255; }
var total = 0;
for (var p = 0; p < 12; p++) {
    for (var c = 0; c < 4; c++) total = (total + g(p)) & 65535;
}
print(total);
"""

#: Two recurring regimes through a loop-bearing body: phase flips are
#: caught mid-loop, so recovery dispatches through the OSR entry.
OSR_REGIMES = """
function f(k) {
    var acc = 0;
    for (var i = 0; i < 40; i++) {
        if (k == 0) acc = (acc + i) & 255;
        else acc = (acc ^ i) & 255;
    }
    return acc;
}
var total = 0;
for (var p = 0; p < 10; p++) {
    for (var c = 0; c < 5; c++) total = (total + f(p % 2)) & 65535;
}
print(total);
"""

#: Two recurring regimes through a loop-free body: the second earns a
#: table line by recurring, without ever reaching the miss threshold.
TWO_REGIMES_FLAT = """
function f(k) { return (k * 7 + 3) & 255; }
var total = 0;
for (var p = 0; p < 8; p++) {
    for (var c = 0; c < 6; c++) total = (total + f(p % 2)) & 65535;
}
print(total);
"""

#: A fresh receiver allocation per call: every spec key carries a
#: ('ref', id) component that can never match again.
ONE_SHOT_RECEIVERS = """
function h(o) { return o.v + 1; }
var total = 0;
for (var i = 0; i < 30; i++) {
    var box = {v: i};
    total = (total + h(box)) & 65535;
}
print(total);
"""


class TestDispatchTable:
    """The recovery flows of docs/DEOPTLESS.md, one scenario each."""

    def test_respecialize_reenters_the_retained_sibling(self):
        engine, printed, events = run(CYCLING_REGIMES, trace=True, deoptless=True)
        _, baseline, _ = run(CYCLING_REGIMES)
        assert printed == baseline
        # The table filled to capacity, the fifth regime generalized...
        state = state_of(engine, "g")
        assert len(state.spec_cache) == engine.deoptless_table_capacity == 4
        assert state.generalized is not None
        # ...and returning regimes re-entered their specialized lines
        # instead of discarding anything.
        assert deoptless_events(events, kind="respecialize")
        assert engine.stats.deoptless_reentries > 0
        assert engine.stats.invalidations == 0
        assert engine.stats.retrain_noops == 0

    def test_generalize_after_repeated_misses(self):
        engine, printed, events = run(DRIFTING_REGIMES, trace=True, deoptless=True)
        _, baseline, _ = run(DRIFTING_REGIMES)
        assert printed == baseline
        misses = deoptless_events(events, reason="new-args")
        assert len(misses) >= engine.deoptless_miss_threshold
        generalizes = [e for e in events if e["event"] == "generalize"]
        assert len(generalizes) == 1
        assert generalizes[0]["misses"] == engine.deoptless_miss_threshold
        assert engine.stats.deoptless_generalized_compiles == 1
        assert state_of(engine, "g").generalized is not None
        # The generalized sibling keeps catching the drift natively.
        assert deoptless_events(events, kind="call")

    def test_phase_flip_mid_loop_dispatches_through_the_osr_entry(self):
        engine, printed, events = run(OSR_REGIMES, trace=True, deoptless=True)
        _, baseline, _ = run(OSR_REGIMES)
        assert printed == baseline
        assert deoptless_events(events, reason="osr-state-mismatch")
        osr_dispatches = deoptless_events(events, kind="osr")
        assert osr_dispatches
        assert all(e["osr_pc"] is not None for e in osr_dispatches)
        assert engine.stats.invalidations == 0

    def test_table_growth_waits_for_a_recurring_key(self):
        engine, printed, events = run(TWO_REGIMES_FLAT, trace=True, deoptless=True)
        _, baseline, _ = run(TWO_REGIMES_FLAT)
        assert printed == baseline
        # The second regime missed exactly once, then earned its line
        # by recurring — below the generalization threshold, so the
        # catch-all was never compiled.
        assert len(deoptless_events(events, reason="new-args")) == 1
        state = state_of(engine, "f")
        assert len(state.spec_cache) == 2
        assert state.generalized is None
        assert engine.stats.deoptless_generalized_compiles == 0
        assert engine.stats.invalidations == 0

    def test_identity_keys_never_earn_a_table_line(self):
        engine, printed, _ = run(ONE_SHOT_RECEIVERS, trace=True, deoptless=True)
        _, baseline, _ = run(ONE_SHOT_RECEIVERS)
        assert printed == baseline
        # Thirty distinct receivers: without the identity gate each
        # would recur at the _MISS_KEY_BOUND ledger and flood the
        # table; with it, only the initial compile's line exists and
        # the generalized sibling carries the traffic.
        state = state_of(engine, "h")
        assert len(state.spec_cache) == 1
        assert state.generalized is not None
        assert state.native is state.generalized

    def test_key_recurrability_gate(self):
        # Primitive components match by value: recurrable.
        assert _key_recurrable(_spec_key(UNDEFINED, [1]))
        assert _key_recurrable(_spec_key(UNDEFINED, [1.5, "s", True]))
        # Any ('ref', id) component matches by identity and dies with
        # its allocation: never recurrable.
        assert not _key_recurrable((("undefined",), (("ref", 123),)))
        assert not _key_recurrable((("ref", 5), ()))

    def test_stats_ledger_carries_the_deoptless_counters(self):
        engine, _, _ = run(CYCLING_REGIMES, deoptless=True)
        snapshot = engine.stats.as_dict()
        for key in (
            "deoptless_reentries",
            "deoptless_misses",
            "deoptless_generalized_compiles",
            "retrain_noops",
        ):
            assert key in snapshot
        assert snapshot["deoptless_reentries"] == engine.stats.deoptless_reentries


#: A mono-shape accessor: compiles with a shape guard whose baked id
#: set equals the site's inline cache, the precondition for the
#: retrain-noop scenarios below.
MONO_ACCESSOR = """
function get(o) { return o.a + o.b; }
var p = {a: 1, b: 2};
var total = 0;
for (var i = 0; i < 20; i++) total = total + get(p);
print(total);
"""


def shape_guarded_state(**kwargs):
    engine, _, _ = run(MONO_ACCESSOR, trace=True, **kwargs)
    state = state_of(engine, "get")
    assert state.native is not None
    feedback = state.code.feedback
    pc, entries = next(iter(feedback.shape_ics.items()))
    return engine, state, pc, entries[0]


def shape_bail(pc, shape_id):
    return Bailout(None, [], [], [], pc, "at", "shape-miss", "guardshape", actual=shape_id)


class TestRetrainNoop:
    """deopt.retrain_noop: skip the discard a recompile would undo.

    A genuine organic trigger needs a binary whose guard set lags the
    live IC while the fingerprint still matches — the guard bakes the
    full IC, so these tests drive the engine's bailout accounting
    directly with a hand-built guardshape Bailout.
    """

    def test_predicate_accepts_only_cached_shapes_at_a_live_fingerprint(self):
        engine, state, pc, shape_id = shape_guarded_state()
        assert engine._retrain_noop(state, shape_bail(pc, shape_id))
        # A shape the IC has not seen: recording it would change the
        # IC, so the retrain is real.
        assert not engine._retrain_noop(state, shape_bail(pc, shape_id + 999))
        # An unknown failing shape is conservatively a real retrain.
        assert not engine._retrain_noop(state, shape_bail(pc, None))
        # A stale fingerprint means the IC moved since this binary
        # compiled: the recompile would differ, so no skip.
        state.native.meta["ic_fingerprint"] = "stale"
        assert not engine._retrain_noop(state, shape_bail(pc, shape_id))

    def test_noop_branch_keeps_the_binary_and_counts(self):
        engine, state, pc, shape_id = shape_guarded_state()
        invalidations = engine.stats.invalidations
        engine._note_bailout(state, shape_bail(pc, shape_id), None)
        assert engine.stats.retrain_noops == 1
        assert state.native is not None
        assert engine.stats.invalidations == invalidations
        noop_events = [
            e for e in engine.tracer.events if e["event"] == "retrain_noop"
        ]
        assert len(noop_events) == 1
        assert noop_events[0]["resume_pc"] == pc
        assert noop_events[0]["shape"] == shape_id

    def test_novel_shape_still_retrains(self):
        engine, state, pc, shape_id = shape_guarded_state()
        invalidations = engine.stats.invalidations
        engine._note_bailout(state, shape_bail(pc, shape_id + 999), None)
        assert state.native is None
        assert engine.stats.invalidations == invalidations + 1
        assert engine.stats.retrain_noops == 0

    def test_deoptless_mode_routes_shape_misses_to_the_table(self):
        engine, state, pc, shape_id = shape_guarded_state(deoptless=True)
        misses = engine.stats.deoptless_misses
        engine._note_bailout(state, shape_bail(pc, shape_id + 999), None)
        # Deoptless never discards on a shape miss: the binary stays
        # in the table and the miss ledger advances instead.
        assert state.native is not None
        assert engine.stats.deoptless_misses == misses + 1
        assert engine.stats.invalidations == 0


def run_bench(bench, backend="simple", **kwargs):
    CodeObject._next_id = 1
    reset_shapes()
    engine = Engine(config=FULL_SPEC, executor_backend=backend, **kwargs)
    printed = engine.run_source(bench.source)
    return engine, printed


class TestChurnDifferential:
    """The acceptance contract over the churn suite, per benchmark."""

    @pytest.mark.parametrize("bench", CHURN, ids=lambda b: b.name)
    def test_deoptless_wins_without_changing_output(self, bench):
        off, printed_off = run_bench(bench)
        on, printed_on = run_bench(bench, deoptless=True)
        assert printed_on == printed_off
        # The suite is churn by construction: §4 pays invalidations on
        # every phase flip, the dispatch table pays none and is
        # strictly cheaper end to end.
        assert off.stats.invalidations > 0
        assert on.stats.invalidations < off.stats.invalidations
        assert on.stats.total_cycles < off.stats.total_cycles

    @pytest.mark.parametrize("bench", CHURN, ids=lambda b: b.name)
    def test_profiler_stays_exact_with_the_table_on(self, bench):
        # Every dispatched re-entry charges deoptless_dispatch cycles
        # through the profiler's entry accounting, so the attribution
        # identity (docs/PROFILING.md) must survive the feature.
        CodeObject._next_id = 1
        reset_shapes()
        profiler = CycleProfiler()
        engine = Engine(config=FULL_SPEC, deoptless=True, cycle_profiler=profiler)
        engine.run_source(bench.source)
        assert profiler.attributed_cycles() == engine.stats.total_cycles

    def test_backends_bit_identical_with_the_table_on(self):
        reference, printed = run_bench(SPEC_CHURN, deoptless=True)
        for backend in ("closure", "whole"):
            engine, out = run_bench(SPEC_CHURN, backend, deoptless=True)
            assert out == printed
            assert engine.stats.as_dict() == reference.stats.as_dict()

    def test_cache_cold_then_warm_with_the_table_on(self, tmp_path):
        def cached_run():
            CodeObject._next_id = 1
            reset_shapes()
            cache = DiskCodeCache(root=str(tmp_path))
            engine = Engine(
                config=FULL_SPEC,
                executor_backend="closure",
                code_cache=cache,
                deoptless=True,
            )
            printed = engine.run_source(POLYMORPHIC_DISPATCH.source)
            return engine, printed, cache

        cold, printed_cold, cache_cold = cached_run()
        warm, printed_warm, cache_warm = cached_run()
        assert printed_warm == printed_cold
        assert warm.stats.total_cycles == cold.stats.total_cycles
        assert cache_cold.misses > 0 and cache_cold.hits == 0
        assert cache_warm.hits > 0 and cache_warm.misses == 0


#: Two regimes through a loop-bearing body: enough guard traffic that
#: a delayed schedule has somewhere to land.
CHAOS_KERNEL = """
function f(k) {
    var acc = 0;
    for (var i = 0; i < 40; i++) acc = (acc + i * k) & 65535;
    return acc;
}
var total = 0;
for (var p = 0; p < 8; p++) total = (total + f(p % 2)) & 65535;
print(total);
"""

#: A function whose only invocation tiers up via OSR: its entry-path
#: guards stay cold until the post-run replay exercises them.
OSR_ONLY = """
function walk() {
    var acc = 0;
    for (var i = 0; i < 200; i++) acc = (acc + i) & 65535;
    return acc;
}
print(walk());
"""


def run_chaos(source, injector, **kwargs):
    CodeObject._next_id = 1
    reset_shapes()
    engine = Engine(
        config=FULL_SPEC,
        fault_injector=injector,
        bailout_limit=10**9,
        **dict(FAST, **kwargs)
    )
    printed = engine.run_source(source)
    return engine, printed


def firing_schedule(injector):
    return [
        (record["fn"], record["code_id"], record["native_index"], record["execution"])
        for record in injector.fired
    ]


class TestChaosUpgrades:
    """Delayed and scheduled guard firing, and the entry-guard replay."""

    def test_on_execution_delays_the_firing(self):
        _, baseline = run_chaos(CHAOS_KERNEL, None)
        injector = GuardFaultInjector(on_execution=2)
        _, printed = run_chaos(CHAOS_KERNEL, injector)
        assert printed == baseline
        assert injector.fired
        # Guards that reached a second execution fired exactly there;
        # single-execution guards were never hijacked.
        assert all(record["execution"] == 2 for record in injector.fired)

    def test_schedule_is_deterministic_and_seed_sensitive(self):
        _, baseline = run_chaos(CHAOS_KERNEL, None)
        first = GuardFaultInjector(schedule_seed=7)
        _, printed_first = run_chaos(CHAOS_KERNEL, first)
        second = GuardFaultInjector(schedule_seed=7)
        _, printed_second = run_chaos(CHAOS_KERNEL, second)
        # Same seed, same schedule, same recovered output — the
        # schedule mixes only (seed, code id, guard index), so a
        # fresh process replays it exactly.
        assert firing_schedule(first) == firing_schedule(second)
        assert printed_first == printed_second == baseline
        assert all(
            1 <= record["execution"] <= first.schedule_window
            for record in first.fired
        )
        other = GuardFaultInjector(schedule_seed=8)
        _, printed_other = run_chaos(CHAOS_KERNEL, other)
        assert firing_schedule(other) != firing_schedule(first)
        assert printed_other == baseline

    def test_entry_guard_replay_reaches_osr_only_functions(self):
        injector = GuardFaultInjector()
        engine, printed = run_chaos(OSR_ONLY, injector)
        _, baseline = run_chaos(OSR_ONLY, None)
        assert printed == baseline
        fired_before = len(injector.fired)
        reentered = exercise_entry_guards(engine)
        # The OSR-only function re-enters through the call path and
        # its cold entry guards finally execute (and get hijacked).
        assert reentered >= 1
        assert len(injector.fired) > fired_before
