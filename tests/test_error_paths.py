"""Failure injection: guest errors must behave identically in every tier."""

import pytest

from repro import BASELINE, FULL_SPEC, Engine
from repro.errors import JSRangeError, JSReferenceError, JSTypeError
from repro.jsvm.interpreter import Interpreter

from tests.conftest import FAST


def error_from(source, runner):
    with pytest.raises((JSTypeError, JSReferenceError, JSRangeError)) as info:
        runner(source)
    return type(info.value)


def interp(source):
    Interpreter().run_source(source)


def engine(config):
    def runner(source):
        Engine(config=config, **FAST).run_source(source)

    return runner


class TestErrorsMatchAcrossTiers:
    def check(self, source):
        expected = error_from(source, interp)
        for config in (BASELINE, FULL_SPEC):
            assert error_from(source, engine(config)) is expected

    def test_property_of_undefined_in_hot_code(self):
        # The function runs natively for a while, then the error path
        # is injected by switching the argument to undefined.
        self.check(
            """
            function f(o) { return o.x; }
            var r = 0;
            for (var i = 0; i < 30; i++) r = f({x: i});
            f(undefined);
            """
        )

    def test_property_of_null_via_element(self):
        self.check(
            """
            function f(a, i) { return a[i]; }
            var arr = [1, 2, 3];
            for (var k = 0; k < 30; k++) f(arr, 1);
            f(null, 0);
            """
        )

    def test_calling_non_function_mid_loop(self):
        self.check(
            """
            function apply(g, x) { return g(x); }
            function id(x) { return x; }
            for (var i = 0; i < 30; i++) apply(id, i);
            apply(42, 1);
            """
        )

    def test_missing_global_in_native_code(self):
        self.check(
            """
            function f(flag) { return flag ? definitelyMissing : 1; }
            for (var i = 0; i < 30; i++) f(false);
            f(true);
            """
        )

    def test_guest_recursion_limit_native(self):
        self.check(
            """
            function f(n) { return n <= 0 ? 0 : f(n - 1) + 1; }
            for (var i = 0; i < 30; i++) f(10);
            f(100000);
            """
        )

    def test_in_operator_on_primitive(self):
        self.check(
            """
            function f(o) { return 'k' in o; }
            for (var i = 0; i < 30; i++) f({k: 1});
            f(5);
            """
        )


class TestEngineSurvivesErrors:
    def test_engine_usable_after_guest_error(self):
        e = Engine(config=FULL_SPEC, **FAST)
        with pytest.raises(JSReferenceError):
            e.run_source("print(missingGlobal);")
        # Note: run_source compiles fresh code; the engine object
        # remains consistent and can run another script.
        assert e.run_source("print(1 + 1);")[-1] == "2"

    def test_stats_consistent_after_error(self):
        e = Engine(config=FULL_SPEC, **FAST)
        with pytest.raises(JSTypeError):
            e.run_source(
                """
                function f(o) { return o.x; }
                for (var i = 0; i < 30; i++) f({x: 1});
                f(null);
                """
            )
        e.finish()
        summary = e.stats.summary()
        assert summary["total_cycles"] > 0
