"""Failure injection: guest errors must behave identically in every tier.

Also pins down the *syntax*-error contract: every lexer/parser
diagnostic carries the precise ``line``/``column`` of the offending
construct (the opening delimiter for unterminated ones), so shrunk
fuzzer reproducers and user scripts alike get actionable positions.
"""

import pytest

from repro import BASELINE, FULL_SPEC, Engine
from repro.errors import JSRangeError, JSReferenceError, JSSyntaxError, JSTypeError
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.parser import parse

from tests.conftest import FAST


def error_from(source, runner):
    with pytest.raises((JSTypeError, JSReferenceError, JSRangeError)) as info:
        runner(source)
    return type(info.value)


def interp(source):
    Interpreter().run_source(source)


def engine(config):
    def runner(source):
        Engine(config=config, **FAST).run_source(source)

    return runner


class TestErrorsMatchAcrossTiers:
    def check(self, source):
        expected = error_from(source, interp)
        for config in (BASELINE, FULL_SPEC):
            assert error_from(source, engine(config)) is expected

    def test_property_of_undefined_in_hot_code(self):
        # The function runs natively for a while, then the error path
        # is injected by switching the argument to undefined.
        self.check(
            """
            function f(o) { return o.x; }
            var r = 0;
            for (var i = 0; i < 30; i++) r = f({x: i});
            f(undefined);
            """
        )

    def test_property_of_null_via_element(self):
        self.check(
            """
            function f(a, i) { return a[i]; }
            var arr = [1, 2, 3];
            for (var k = 0; k < 30; k++) f(arr, 1);
            f(null, 0);
            """
        )

    def test_calling_non_function_mid_loop(self):
        self.check(
            """
            function apply(g, x) { return g(x); }
            function id(x) { return x; }
            for (var i = 0; i < 30; i++) apply(id, i);
            apply(42, 1);
            """
        )

    def test_missing_global_in_native_code(self):
        self.check(
            """
            function f(flag) { return flag ? definitelyMissing : 1; }
            for (var i = 0; i < 30; i++) f(false);
            f(true);
            """
        )

    def test_guest_recursion_limit_native(self):
        self.check(
            """
            function f(n) { return n <= 0 ? 0 : f(n - 1) + 1; }
            for (var i = 0; i < 30; i++) f(10);
            f(100000);
            """
        )

    def test_in_operator_on_primitive(self):
        self.check(
            """
            function f(o) { return 'k' in o; }
            for (var i = 0; i < 30; i++) f({k: 1});
            f(5);
            """
        )


class TestEngineSurvivesErrors:
    def test_engine_usable_after_guest_error(self):
        e = Engine(config=FULL_SPEC, **FAST)
        with pytest.raises(JSReferenceError):
            e.run_source("print(missingGlobal);")
        # Note: run_source compiles fresh code; the engine object
        # remains consistent and can run another script.
        assert e.run_source("print(1 + 1);")[-1] == "2"

    def test_stats_consistent_after_error(self):
        e = Engine(config=FULL_SPEC, **FAST)
        with pytest.raises(JSTypeError):
            e.run_source(
                """
                function f(o) { return o.x; }
                for (var i = 0; i < 30; i++) f({x: 1});
                f(null);
                """
            )
        e.finish()
        summary = e.stats.summary()
        assert summary["total_cycles"] > 0


def syntax_error_at(source):
    """Parse ``source``, returning the raised error's (line, column)."""
    with pytest.raises(JSSyntaxError) as info:
        parse(source)
    error = info.value
    assert error.line is not None and error.column is not None
    assert "(line %d, column %d)" % (error.line, error.column) in str(error)
    return error.line, error.column


class TestSyntaxErrorPositions:
    def test_unterminated_string_blames_opening_quote(self):
        assert syntax_error_at('var a = 1;\nvar s = "oops;\n') == (2, 9)

    def test_unterminated_single_quoted_string(self):
        assert syntax_error_at("print('never closed") == (1, 7)

    def test_newline_in_string_blames_opening_quote(self):
        assert syntax_error_at('var s = "a\nb";') == (1, 9)

    def test_unterminated_comment_blames_opening(self):
        assert syntax_error_at("var a = 1;\n/* runs off the end\nvar b;") == (2, 1)

    def test_bad_character_position(self):
        assert syntax_error_at("var a = 1;\nvar b = 2 # 3;") == (2, 11)

    def test_malformed_hex_literal_position(self):
        assert syntax_error_at("var bad = 0xZZ;") == (1, 13)

    def test_unbalanced_braces_blame_the_opener(self):
        # The unmatched "{" (line 2, column 17) is reported, not EOF.
        source = "var a = 1;\nfunction f(x) { return x;\nvar b = 2;\n"
        assert syntax_error_at(source) == (2, 15)

    def test_nested_unbalanced_braces_blame_unmatched_opener(self):
        # The if-block's brace is matched by the "}" on line 4; the
        # function body's opener is the one left dangling.
        source = "function f() {\n  if (true) {\n  return 1;\n}\n"
        line, column = syntax_error_at(source)
        assert (line, column) == (1, 14)

    def test_stray_closing_brace_position(self):
        assert syntax_error_at("var a = 1;\n}\n") == (2, 1)

    def test_missing_paren_at_eof_has_position(self):
        line, column = syntax_error_at("print(1 + 2")
        assert line == 1 and column == 12

    def test_expected_semicolon_position(self):
        assert syntax_error_at("var a = 1 var b = 2;") == (1, 11)
