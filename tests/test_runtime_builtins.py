"""Tests for the host runtime: globals and builtin methods."""

import math

import pytest

from repro.errors import JSReferenceError, JSTypeError
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.runtime import Runtime


def run1(source):
    out = Interpreter().run_source(source)
    assert len(out) == 1
    return out[0]


class TestGlobals:
    def test_get_set_has(self):
        runtime = Runtime()
        runtime.set_global("x", 42)
        assert runtime.get_global("x") == 42
        assert runtime.has_global("x")
        assert not runtime.has_global("y")

    def test_missing_global_raises(self):
        with pytest.raises(JSReferenceError):
            Runtime().get_global("nope")

    def test_nan_infinity_constants(self):
        assert run1("print(typeof NaN, typeof Infinity, typeof undefined);") == (
            "number number undefined"
        )


class TestMathObject:
    def test_trig(self):
        out = run1("print(Math.sin(0), Math.cos(0), Math.atan2(0, 1));")
        assert out == "0 1 0"

    def test_sqrt_negative_is_nan(self):
        assert run1("print(Math.sqrt(-1));") == "NaN"

    def test_log_domains(self):
        assert run1("print(Math.log(0), Math.log(-1));") == "-Infinity NaN"

    def test_round_half_up(self):
        assert run1("print(Math.round(2.5), Math.round(-2.5), Math.round(2.4));") == "3 -2 2"

    def test_min_max_nan(self):
        assert run1("print(Math.max(1, NaN));") == "NaN"

    def test_min_max_empty(self):
        assert run1("print(Math.max(), Math.min());") == "-Infinity Infinity"

    def test_pow_edge(self):
        assert run1("print(Math.pow(0, 0), Math.pow(2, -1));") == "1 0.5"

    def test_constants(self):
        assert run1("print(Math.E > 2.7 && Math.E < 2.8, Math.SQRT2 > 1.41);") == "true true"

    def test_random_in_unit_interval(self):
        out = run1(
            "var ok = true; for (var i = 0; i < 100; i++) { var r = Math.random(); if (r < 0 || r >= 1) ok = false; } print(ok);"
        )
        assert out == "true"


class TestStringMethods:
    def test_char_code_out_of_range(self):
        assert run1("print('ab'.charCodeAt(9));") == "NaN"

    def test_char_at_out_of_range(self):
        assert run1("print('ab'.charAt(9) === '');") == "true"

    def test_substring_swaps_arguments(self):
        assert run1("print('hello'.substring(4, 1));") == "ell"

    def test_substring_clamps(self):
        assert run1("print('hi'.substring(-5, 99));") == "hi"

    def test_split_empty_separator(self):
        assert run1("print('abc'.split('').length);") == "3"

    def test_split_no_separator(self):
        assert run1("print('a b'.split().length);") == "1"

    def test_index_of_with_start(self):
        assert run1("print('aXaX'.indexOf('X', 2));") == "3"

    def test_last_index_of(self):
        assert run1("print('aXaX'.lastIndexOf('X'));") == "3"

    def test_slice_negative(self):
        assert run1("print('hello'.slice(1, 3));") == "el"

    def test_replace_first_only(self):
        assert run1("print('aaa'.replace('a', 'b'));") == "baa"

    def test_method_on_wrong_receiver_raises(self):
        runtime = Runtime()
        method = runtime.string_methods["charAt"]
        with pytest.raises(JSTypeError):
            method(42, [0])


class TestArrayMethods:
    def test_join_default_comma(self):
        assert run1("print([1, 2].join());") == "1,2"

    def test_join_skips_nullish(self):
        assert run1("print([1, null, undefined, 2].join('-'));") == "1---2"

    def test_index_of_strict(self):
        assert run1("print([1, '1'].indexOf('1'));") == "1"

    def test_slice_range(self):
        assert run1("print([0,1,2,3,4].slice(1, 3).join(''));") == "12"

    def test_concat_flattens_arrays_one_level(self):
        assert run1("print([1].concat([2, 3], 4).length);") == "4"

    def test_sort_is_in_place_and_returns(self):
        assert run1("var a = [3,1,2]; print(a.sort() === a, a.join(''));") == "true 123"

    def test_push_returns_new_length(self):
        assert run1("var a = []; print(a.push(1, 2, 3));") == "3"

    def test_shift_empty(self):
        assert run1("print(typeof [].shift());") == "undefined"


class TestNumberMethods:
    def test_to_string_radix_2(self):
        assert run1("print((10).toString(2));") == "1010"

    def test_to_string_negative(self):
        assert run1("print((-255).toString(16));") == "-ff"

    def test_to_fixed(self):
        assert run1("print((3.14159).toFixed(2));") == "3.14"


class TestParseFunctions:
    def test_parse_int_sign(self):
        assert run1("print(parseInt('-42'), parseInt('+7'));") == "-42 7"

    def test_parse_int_empty_is_nan(self):
        assert run1("print(parseInt(''));") == "NaN"

    def test_parse_float_exponent(self):
        assert run1("print(parseFloat('1.5e2'));") == "150"

    def test_parse_float_trailing_garbage(self):
        assert run1("print(parseFloat('2.5abc'));") == "2.5"


class TestPrintCapture:
    def test_printed_accumulates(self):
        interp = Interpreter()
        interp.run_source("print(1); print(2);")
        assert interp.runtime.printed == ["1", "2"]

    def test_shared_output_list(self):
        shared = []
        runtime = Runtime(output=shared)
        Interpreter(runtime=runtime).run_source("print('x');")
        assert shared == ["x"]
