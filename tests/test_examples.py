"""The example scripts must run end to end (they are documentation)."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "speedup" in result.stdout
    assert "functions specialized" in result.stdout


def test_specialization_tour():
    result = run_example("specialization_tour.py")
    assert result.returncode == 0, result.stderr
    assert "Figure 7a" in result.stdout
    assert "Final native code" in result.stdout
    assert "constant [1, 2, 3, 4, 5]" in result.stdout  # the baked array


def test_deopt_lifecycle():
    result = run_example("deopt_lifecycle.py")
    assert result.returncode == 0, result.stderr
    assert "cache hits" in result.stdout
    assert "never-specialize mark: True" in result.stdout


def test_trace_deopt():
    result = run_example("trace_deopt.py")
    assert result.returncode == 0, result.stderr
    assert "deopt.discard" in result.stdout
    assert "specialize.generic" in result.stdout
    assert "bailout.guard" in result.stdout
    assert "Chrome trace:" in result.stdout


@pytest.mark.slow
def test_web_profile():
    result = run_example("web_profile.py")
    assert result.returncode == 0, result.stderr
    assert "Figure 4" in result.stdout


@pytest.mark.slow
def test_future_work():
    result = run_example("future_work.py")
    assert result.returncode == 0, result.stderr
    assert "Overflow-check elimination" in result.stdout
