"""Shared utilities for JIT-level tests."""

from repro.jsvm.bytecode import Op
from repro.jsvm.bytecompiler import compile_source
from repro.jsvm.feedback import TypeFeedback
from repro.jsvm.interpreter import Interpreter


def all_function_codes(toplevel):
    found = []

    def walk(c):
        for constant in c.constants:
            if hasattr(constant, "instructions"):
                found.append(constant)
                walk(constant)

    walk(toplevel)
    return found


def compile_and_profile(source, name=None):
    """Compile a script, interpret it once recording full type feedback.

    Returns (toplevel_code, target_code).  The target is the first
    nested function, or the one matching ``name``.
    """
    toplevel = compile_source(source)
    functions = all_function_codes(toplevel)
    if name is None:
        target = functions[0]
    else:
        target = [c for c in functions if c.name == name][0]
    for code in functions:
        code.feedback = TypeFeedback(code.num_params)
    interp = Interpreter()
    original_call = interp.call_function

    def recording_call(function, this_value, args):
        if function.code.feedback is not None:
            function.code.feedback.record_args(args, this_value)
        return original_call(function, this_value, args)

    interp.call_function = recording_call
    interp.run_code(toplevel)
    return toplevel, target


def backward_jump_target(code):
    """The bytecode pc of the first loop header (backward JUMP target)."""
    for index, instr in enumerate(code.instructions):
        if instr.op == Op.JUMP and instr.arg < index:
            return instr.arg
        if instr.op == Op.IFTRUE and instr.arg < index:
            return instr.arg
    raise AssertionError("no loop in %s" % code.name)


def count(graph, cls):
    return sum(1 for i in graph.all_instructions() if isinstance(i, cls))


def instrs(graph, cls):
    return [i for i in graph.all_instructions() if isinstance(i, cls)]
