"""The JIT event tracer: zero overhead when off, exact streams when on."""

import json

import pytest

from repro import BASELINE, FULL_SPEC, Engine
from repro.jsvm.bytecompiler import compile_source
from repro.jsvm.values import UNDEFINED
from repro.telemetry.tracing import (
    CHANNELS,
    COMMON_FIELDS,
    EVENT_SCHEMA,
    Tracer,
    format_timeline,
    to_chrome_trace,
    to_jsonl,
)

SOURCE = """
function bitsinbyte(b) {
    var m = 1, c = 0;
    while (m < 0x100) { if (b & m) c++; m <<= 1; }
    return c;
}
function TimeFunc(func) {
    var sum = 0;
    for (var x = 0; x < 8; x++)
        for (var y = 0; y < 64; y++) sum += func(y);
    return sum;
}
print(TimeFunc(bitsinbyte));
"""


def run_workload(config, tracer=None):
    engine = Engine(config=config, tracer=tracer)
    engine.run_source(SOURCE)
    engine.finish()
    return engine


def drive_scale(tracer=None, calls_same=9, then=((10, 10), ("oops", 3))):
    """The deopt life cycle: specialize, hit, discard, generic, bailout."""
    engine = Engine(config=FULL_SPEC, hot_call_threshold=5, tracer=tracer)
    interpreter = engine.interpreter
    code = compile_source("function scale(v, k) { return v * k + 1; }")
    interpreter.run_code(code)
    scale = interpreter.runtime.get_global("scale")
    for _ in range(calls_same):
        interpreter.call_function(scale, UNDEFINED, [7, 3])
    for args in then:
        interpreter.call_function(scale, UNDEFINED, list(args))
    engine.finish()
    return engine


# ---------------------------------------------------------------------------
# Zero overhead / zero drift when disabled.


@pytest.mark.parametrize("config", [BASELINE, FULL_SPEC], ids=["baseline", "full"])
def test_tracing_off_is_bit_identical(config):
    plain = run_workload(config)
    traced = run_workload(config, tracer=Tracer())
    muted = run_workload(config, tracer=Tracer(channels=()))
    assert plain.stats.summary() == traced.stats.summary()
    assert plain.stats.total_cycles == traced.stats.total_cycles
    assert plain.stats.summary() == muted.stats.summary()
    assert plain.stats.total_cycles == muted.stats.total_cycles


def test_untraced_engine_records_nothing():
    engine = run_workload(FULL_SPEC)
    assert engine.tracer is None


def test_muted_tracer_records_nothing():
    tracer = Tracer(channels=())
    run_workload(FULL_SPEC, tracer=tracer)
    assert len(tracer) == 0
    assert tracer.events == []


def test_channel_filter_only_records_selected():
    tracer = Tracer(channels=["compile"])
    run_workload(FULL_SPEC, tracer=tracer)
    assert len(tracer) > 0
    assert {event["ch"] for event in tracer.events} == {"compile"}


# ---------------------------------------------------------------------------
# The exact deopt event sequence (paper Section 4 policy).


def test_deopt_event_sequence():
    tracer = Tracer(channels=["compile", "specialize", "cache", "deopt", "bailout"])
    drive_scale(tracer)
    labels = ["%s.%s" % (e["ch"], e["event"]) for e in tracer.events]
    assert labels == (
        ["compile.start", "compile.finish", "specialize.specialized", "cache.store"]
        + ["cache.hit"] * 4
        + ["cache.miss", "deopt.discard", "compile.start", "compile.finish",
           "specialize.generic", "bailout.guard"]
    )
    specialized = tracer.events[2]
    assert specialized["args"] == [7, 3]
    discard = tracer.events[9]
    assert discard["reason"] == "new-args"
    assert discard["dropped"] == 1
    generic = tracer.events[12]
    assert generic["never_specialize"] is True
    bail = tracer.events[13]
    assert bail["reason"] == "type guard"
    assert bail["resume_mode"] in ("at", "after")
    assert isinstance(bail["resume_point"], int)
    assert isinstance(bail["native_index"], int)
    assert bail["count"] == 1


def test_timestamps_are_monotone_and_seq_dense():
    tracer = Tracer()
    run_workload(FULL_SPEC, tracer=tracer)
    assert len(tracer) > 0
    ts = [event["ts"] for event in tracer.events]
    assert ts == sorted(ts)
    assert [event["seq"] for event in tracer.events] == list(range(len(ts)))


def test_trace_is_deterministic_across_runs():
    first = Tracer(channels=["compile", "specialize", "osr", "pass"])
    second = Tracer(channels=["compile", "specialize", "osr", "pass"])
    run_workload(FULL_SPEC, tracer=first)
    run_workload(FULL_SPEC, tracer=second)
    # `code_id` is a process-global counter, and `key`/`args` can embed
    # code ids or object identities; everything else must be
    # bit-identical run to run.
    strip = lambda events: [
        {k: v for k, v in e.items() if k not in ("key", "code_id", "args")}
        for e in events
    ]
    assert strip(first.events) == strip(second.events)


# ---------------------------------------------------------------------------
# Schema enforcement.


def test_emit_rejects_unknown_channel_event_and_fields():
    tracer = Tracer()
    tracer.bind_clock(lambda: 0)
    with pytest.raises(ValueError):
        tracer.emit("nonsense", "start", fn="f")
    with pytest.raises(ValueError):
        tracer.emit("compile", "nonsense", fn="f")
    with pytest.raises(ValueError):
        tracer.emit("compile", "reject", fn="f", code_id=1, bogus=True)


def test_schema_covers_all_channels():
    assert set(CHANNELS) == set(EVENT_SCHEMA)
    assert "ts" in COMMON_FIELDS and "seq" in COMMON_FIELDS
    for channel, events in EVENT_SCHEMA.items():
        assert events, "channel %s has no events" % channel
        if channel == "profile":
            # profile.summary is engine-global — there is no single
            # function it could carry.
            continue
        if channel == "fuzz":
            # fuzz.run/mismatch/shrink are per-iteration harness events
            # (whole programs, not one function); only fuzz.inject is
            # tied to a guest function.
            assert "fn" in events["inject"]
            continue
        for fields in events.values():
            assert "fn" in fields, "%s events must carry fn" % channel


# ---------------------------------------------------------------------------
# Exporters.


def test_jsonl_round_trips():
    tracer = Tracer()
    run_workload(FULL_SPEC, tracer=tracer)
    lines = to_jsonl(tracer.events).splitlines()
    assert len(lines) == len(tracer)
    for line in lines:
        event = json.loads(line)
        for field in COMMON_FIELDS:
            assert field in event


def test_chrome_trace_is_valid_and_monotone():
    tracer = Tracer()
    drive_scale(tracer)
    chrome = to_chrome_trace(tracer.events)
    blob = json.dumps(chrome)  # must be JSON-serialisable as-is
    parsed = json.loads(blob)
    events = parsed["traceEvents"]
    assert events
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 2  # two compiles, both matched into complete spans
    for span in spans:
        assert span["dur"] > 0
    timeline = [e for e in events if e["ph"] in ("X", "i")]
    ts = [e["ts"] for e in timeline]
    assert ts == sorted(ts)
    metadata = [e for e in events if e["ph"] == "M"]
    assert any(m["args"].get("name") == "scale" for m in metadata)


def test_timeline_formatting():
    tracer = Tracer(channels=["compile", "specialize"])
    drive_scale(tracer)
    text = format_timeline(tracer.events)
    assert "== scale" in text
    assert "compile.start" in text
    assert "specialize.generic" in text
    limited = format_timeline(tracer.events, limit=2)
    assert "more" in limited


# ---------------------------------------------------------------------------
# Harness integration.


def test_harness_trace_flag():
    from repro.bench.harness import run_benchmark
    from repro.workloads import sunspider

    benchmark = sunspider.BITOPS_BITS_IN_BYTE
    plain = run_benchmark(benchmark, FULL_SPEC)
    traced = run_benchmark(benchmark, FULL_SPEC, trace=True)
    assert plain.trace_events is None
    assert traced.trace_events
    assert traced.total_cycles == plain.total_cycles
