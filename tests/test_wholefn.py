"""The whole-binary backend's contract, enforced end to end.

The ``whole`` backend (docs/CODEGEN.md) compiles each specialized
binary to a single generated Python function.  Its contract is the
same bit-identity rule the closure backend lives under — for any
program and configuration, ``EngineStats``, cycle counts, printed
output and trace streams must equal the reference executor's exactly —
plus exact profiler attribution and source/marshalled-module round
trips through the persistent cache under the byte-exact trust rule.

The three-way sweep below runs **every** benchmark of every suite
through all three backends; this is the acceptance check behind
BENCH_wallclock.json's ``whole_speedup`` rows being comparable at all.
"""

import marshal

import pytest

from repro.engine.bailout import GuardFaultInjector
from repro.engine.config import CostModel, FULL_SPEC
from repro.engine.jit import compile_function
from repro.engine.runtime_engine import Engine
from repro.fuzz.oracle import CHAOS_BAILOUT_LIMIT
from repro.jsvm.bytecode import CodeObject
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.objects import reset_shapes
from repro.jsvm.values import UNDEFINED
from repro.lir import wholefn
from repro.lir.native import FAULT_INJECTED
from repro.lir.wholefn import WholeExecutor, compile_whole, whole_artifact
from repro.telemetry.profiler import CycleProfiler
from repro.telemetry.tracing import Tracer
from repro.workloads import ALL_SUITES

from tests.conftest import FAST
from tests.helpers import compile_and_profile
from tests.test_executor_backends import _normalized

ALL_BENCHMARKS = [
    (suite_name, benchmark.name)
    for suite_name, suite in ALL_SUITES.items()
    for benchmark in suite
]

TRACE_SUBSET = [
    ("sunspider", "access-nsieve"),
    ("v8", "splay"),
    ("kraken", "stanford-crypto-ccm"),
    ("objects", "shape-churn"),
]


def _bench_source(suite_name, bench_name):
    for benchmark in ALL_SUITES[suite_name]:
        if benchmark.name == bench_name:
            return benchmark.source
    raise AssertionError("no benchmark %s/%s" % (suite_name, bench_name))


def _observables(source, backend, trace=False, **engine_kwargs):
    """One fresh-engine run; returns (observables, trace events or None).

    Shape ids and code ids are process-global counters, so both reset
    before each run to keep every id-carrying observable comparable.
    """
    reset_shapes()
    CodeObject._next_id = 1
    tracer = Tracer() if trace else None
    engine = Engine(
        config=FULL_SPEC, executor_backend=backend, tracer=tracer, **engine_kwargs
    )
    printed = engine.run_source(source)
    stats = {
        key: value
        for key, value in vars(engine.stats).items()
        if isinstance(value, (int, float, str, bool, tuple, list, dict))
    }
    observables = {
        "printed": list(printed),
        "stats": stats,
        "summary": engine.stats.summary(),
        "cycles": engine.executor.cycles,
        "native_instructions": engine.executor.instructions_executed,
        "interp_ops": engine.interpreter.ops_executed,
    }
    return observables, (list(tracer.events) if tracer is not None else None)


class TestThreeWayBitIdentity:
    """Every suite benchmark: simple vs closure vs whole, all observables."""

    @pytest.mark.parametrize("suite_name,bench_name", ALL_BENCHMARKS)
    def test_benchmark_bit_identical(self, suite_name, bench_name):
        source = _bench_source(suite_name, bench_name)
        reference, _ = _observables(source, "simple")
        closure, _ = _observables(source, "closure")
        whole, _ = _observables(source, "whole")
        assert closure == reference
        assert whole == reference

    @pytest.mark.parametrize("suite_name,bench_name", TRACE_SUBSET)
    def test_trace_streams_identical(self, suite_name, bench_name):
        source = _bench_source(suite_name, bench_name)
        reference, ref_events = _observables(source, "simple", trace=True)
        whole, whl_events = _observables(source, "whole", trace=True)
        assert whole == reference
        assert _normalized(whl_events) == _normalized(ref_events)


def _deep_loop_nest(depth):
    """A guest function with ``depth`` nested single-iteration loops.

    The static loop *structure* is what overflows CPython's 20-block
    compiler limit — trip counts are irrelevant to the generated
    nesting — so each level runs once and the whole call is cheap.
    """
    body = "s = s + 1;"
    for level in range(depth):
        body = "for (var i%d = 0; i%d < 1; i%d++) { %s }" % (
            level,
            level,
            level,
            body,
        )
    return (
        "function f() { var s = 0; %s return s; }"
        " for (var k = 0; k < 8; k++) print(f());" % body
    )


class TestDeepLoopNesting:
    """Loop trees past _MAX_LOOP_DEPTH flatten instead of tripping
    CPython's 20-block compiler limit."""

    def test_deeper_than_host_block_limit(self):
        source = _deep_loop_nest(25)
        reference, _ = _observables(source, "simple", **FAST)
        whole, _ = _observables(source, "whole", **FAST)
        assert whole == reference
        assert reference["printed"] == ["1"] * 8
        assert reference["stats"]["compiles"] > 0


class TestExactAttribution:
    """Every cycle charged by the whole backend lands in the profiler."""

    @pytest.mark.parametrize("suite_name,bench_name", TRACE_SUBSET)
    def test_attributed_equals_total(self, suite_name, bench_name):
        source = _bench_source(suite_name, bench_name)
        reset_shapes()
        CodeObject._next_id = 1
        profiler = CycleProfiler()
        engine = Engine(
            config=FULL_SPEC, executor_backend="whole", cycle_profiler=profiler
        )
        engine.run_source(source)
        assert profiler.attributed_cycles() == engine.stats.total_cycles


CHAOS_SOURCES = [
    # Arithmetic + calls: overflow and entry type guards.
    "function f(a, b) { var s = 0; for (var i = 0; i < 200; i++)"
    " s = s + a * 3 + b; return s; } print(f(2, 5)); print(f(2.5, 5));",
    # Shape-guarded property access: guardshape recovery.
    "function mk(x) { return {a: x, b: x + 1}; }"
    " function get(o) { return o.a + o.b; }"
    " var t = 0; for (var i = 0; i < 120; i++) t += get(mk(i));"
    " var odd = {b: 1, a: 2}; t += get(odd); print(t);",
]


class TestChaosGuardRecovery:
    """Full chaos on the whole backend: every executed guard forced
    once, output unchanged, forensics blaming the injector."""

    @pytest.mark.parametrize("source", CHAOS_SOURCES)
    def test_chaos_recovers(self, source):
        expect, _ = _observables(source, "whole", **FAST)
        reset_shapes()
        CodeObject._next_id = 1
        injector = GuardFaultInjector()
        profiler = CycleProfiler()
        engine = Engine(
            config=FULL_SPEC,
            executor_backend="whole",
            bailout_limit=CHAOS_BAILOUT_LIMIT,
            fault_injector=injector,
            cycle_profiler=profiler,
            **FAST
        )
        got = engine.run_source(source)
        assert got == expect["printed"]
        assert injector.fired, "chaos run forced no guards at all"
        records = {id(record.native): record for record in profiler.binaries}
        for native, fired, _guards in injector.coverage():
            record = records.get(id(native))
            assert record is not None
            for index in fired:
                entry = record.forensics.get(index)
                assert entry is not None, "no forensics for guard %d" % index
                assert entry["reason"] == FAULT_INJECTED


def _compiled_native(source):
    _top, code = compile_and_profile(source)
    result = compile_function(code, FULL_SPEC, feedback=code.feedback)
    return result.native


class TestModuleRoundTrip:
    """whole_artifact → disk_whole → compile_whole honors the
    byte-exact trust rule in both directions."""

    def test_marshalled_module_trusted_when_byte_exact(self, monkeypatch):
        native = _compiled_native("function f(a) { return a + 1; } f(1); f(2);")
        executor = WholeExecutor(Interpreter(), CostModel())
        artifact = whole_artifact(native, executor)
        assert artifact is not None
        assert isinstance(artifact["source"], str) and artifact["source"]
        assert isinstance(artifact["code"], bytes)

        loads_calls = []
        real_loads = marshal.loads

        class _Marshal(object):
            dumps = staticmethod(marshal.dumps)

            @staticmethod
            def loads(blob):
                loads_calls.append(len(blob))
                return real_loads(blob)

        monkeypatch.setattr(wholefn, "marshal", _Marshal)

        native.whole_cache = None
        native.disk_whole = (artifact["source"], artifact["code"])
        fn, _counts, _sums, _prefix = compile_whole(native, executor)
        assert loads_calls, "byte-exact module was not thawed from marshal"
        assert callable(fn)
        assert executor.run(native, None, UNDEFINED, [41]) == 42

    def test_stale_source_falls_back_to_host_compile(self, monkeypatch):
        native = _compiled_native("function f(a) { return a * 2; } f(3); f(4);")
        executor = WholeExecutor(Interpreter(), CostModel())
        artifact = whole_artifact(native, executor)
        assert artifact is not None

        monkeypatch.setattr(
            wholefn,
            "marshal",
            type("NoMarshal", (), {
                "loads": staticmethod(
                    lambda blob: (_ for _ in ()).throw(AssertionError("trusted stale module"))
                ),
                "dumps": staticmethod(marshal.dumps),
            }),
        )
        native.whole_cache = None
        native.disk_whole = ("// not the generated source", artifact["code"])
        executor_fresh = WholeExecutor(Interpreter(), CostModel())
        assert executor_fresh.run(native, None, UNDEFINED, [21]) == 42

    def test_artifact_refused_when_instrumented(self):
        native = _compiled_native("function f(a) { return a - 1; } f(1); f(2);")
        chaotic = WholeExecutor(Interpreter(), CostModel())
        chaotic.fault_injector = GuardFaultInjector()
        assert whole_artifact(native, chaotic) is None
        profiled = WholeExecutor(Interpreter(), CostModel())
        profiled.cycle_profiler = CycleProfiler()
        assert whole_artifact(native, profiled) is None
