"""Tests for baseline type specialization (generic MIR → typed MIR)."""

from repro.jsvm.bytecompiler import compile_source
from repro.mir import instructions as mi
from repro.mir.builder import build_mir
from repro.mir.specializer import specialize_types
from repro.mir.types import MIRType
from repro.mir.verifier import verify_graph

from tests.helpers import compile_and_profile, count, instrs


def typed_graph(source, name=None, param_values=None):
    _top, code = compile_and_profile(source, name)
    graph = build_mir(code, feedback=code.feedback, param_values=param_values)
    specialize_types(graph)
    verify_graph(graph)
    return graph


class TestArithmetic:
    def test_int_add_specializes(self):
        graph = typed_graph("function f(a, b) { return a + b; } f(1, 2);")
        assert count(graph, mi.MBinaryArithI) == 1
        assert count(graph, mi.MBinaryV) == 0

    def test_double_add_specializes(self):
        graph = typed_graph("function f(a, b) { return a + b; } f(1.5, 2.5);")
        assert count(graph, mi.MBinaryArithD) == 1

    def test_mixed_int_double_widens(self):
        graph = typed_graph("function f(a, b) { return a + b; } f(1, 2.5);")
        assert count(graph, mi.MBinaryArithD) == 1
        assert count(graph, mi.MToDouble) >= 1

    def test_string_concat(self):
        graph = typed_graph("function f(a, b) { return a + b; } f('x', 'y');")
        assert count(graph, mi.MConcat) == 1

    def test_division_always_double(self):
        graph = typed_graph("function f(a, b) { return a / b; } f(6, 3);")
        arith = instrs(graph, mi.MBinaryArithD)
        assert len(arith) == 1

    def test_polymorphic_stays_generic(self):
        graph = typed_graph("function f(a) { return a + a; } f(1); f('s');")
        assert count(graph, mi.MBinaryV) == 1

    def test_bitops_specialize(self):
        graph = typed_graph("function f(a) { return (a & 7) | (a << 2) ^ (a >> 1); } f(9);")
        assert count(graph, mi.MBitOpI) == 5
        assert count(graph, mi.MBinaryV) == 0

    def test_ushr_is_guard(self):
        graph = typed_graph("function f(a) { return a >>> 1; } f(9);")
        bitops = instrs(graph, mi.MBitOpI)
        assert bitops[0].is_guard

    def test_bitnot_becomes_xor(self):
        graph = typed_graph("function f(a) { return ~a; } f(9);")
        assert count(graph, mi.MBitOpI) == 1
        assert count(graph, mi.MUnaryV) == 0

    def test_neg_int_guard(self):
        graph = typed_graph("function f(a) { return -a; } f(9);")
        assert count(graph, mi.MNegI) == 1

    def test_tonum_identity_removed(self):
        graph = typed_graph("function f(a) { a++; return a; } f(9);")
        assert count(graph, mi.MUnaryV) == 0


class TestComparisons:
    def test_int_compare(self):
        graph = typed_graph("function f(a, b) { return a < b; } f(1, 2);")
        compares = instrs(graph, mi.MCompare)
        assert len(compares) == 1
        assert compares[0].kind == "i"

    def test_string_compare(self):
        graph = typed_graph("function f(a, b) { return a < b; } f('a', 'b');")
        assert instrs(graph, mi.MCompare)[0].kind == "s"

    def test_double_compare_widens(self):
        graph = typed_graph("function f(a, b) { return a <= b; } f(1.5, 2);")
        assert instrs(graph, mi.MCompare)[0].kind == "d"

    def test_mixed_equality_stays_generic(self):
        graph = typed_graph("function f(a, b) { return a == b; } f(1, 'x');")
        assert count(graph, mi.MBinaryV) == 1


class TestLoopTyping:
    def test_loop_counter_becomes_int32(self):
        graph = typed_graph(
            "function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; } f(10);"
        )
        phis = instrs(graph, mi.MPhi)
        assert phis, "loop should have phis"
        assert all(phi.type == MIRType.INT32 for phi in phis)
        assert count(graph, mi.MBinaryV) == 0

    def test_loop_with_double_accumulator(self):
        graph = typed_graph(
            "function f(n) { var s = 0.5; for (var i = 0; i < n; i++) s += 1; return s; } f(3);"
        )
        types = {phi.slot: phi.type for phi in instrs(graph, mi.MPhi)}
        assert MIRType.DOUBLE in types.values()
        assert MIRType.INT32 in types.values()


class TestElementAccess:
    SOURCE = """
    function f(a, i) { return a[i]; }
    f([1, 2, 3], 1);
    """

    def test_typed_load_gets_bounds_check(self):
        graph = typed_graph(self.SOURCE)
        assert count(graph, mi.MBoundsCheck) == 1
        assert count(graph, mi.MLoadElement) == 1
        assert count(graph, mi.MArrayLength) == 1
        assert count(graph, mi.MGetElemV) == 0

    def test_bounds_check_inherits_resume(self):
        graph = typed_graph(self.SOURCE)
        check = instrs(graph, mi.MBoundsCheck)[0]
        assert check.resume_point is not None
        assert check.resume_point.mode == "at"

    def test_store_specializes(self):
        graph = typed_graph("function f(a, i, v) { a[i] = v; } f([1], 0, 2);")
        assert count(graph, mi.MStoreElement) == 1
        assert count(graph, mi.MSetElemV) == 0

    def test_string_receiver_stays_generic(self):
        graph = typed_graph("function f(s, i) { return s[i]; } f('abc', 1);")
        assert count(graph, mi.MGetElemV) == 1


class TestPropertyAccess:
    def test_array_length(self):
        graph = typed_graph("function f(a) { return a.length; } f([1, 2]);")
        assert count(graph, mi.MArrayLength) == 1
        assert count(graph, mi.MGetPropV) == 0

    def test_string_length(self):
        graph = typed_graph("function f(s) { return s.length; } f('abc');")
        assert count(graph, mi.MStringLength) == 1

    def test_object_property(self):
        graph = typed_graph("function f(o) { return o.x; } f({x: 1});")
        assert count(graph, mi.MLoadProperty) == 1

    def test_object_store(self):
        graph = typed_graph("function f(o, v) { o.x = v; } f({x: 1}, 2);")
        assert count(graph, mi.MStoreProperty) == 1


class TestSpecializedParams:
    def test_constant_params_type_the_body(self):
        # With param spec the constants carry precise types even
        # without useful feedback.
        source = "function f(a, b) { return a * b; } f(3, 4);"
        graph = typed_graph(source, param_values=[3, 4])
        assert count(graph, mi.MBinaryArithI) == 1
        assert count(graph, mi.MUnbox) == 0  # no guards needed on constants
