"""Tests for the command-line interface."""

import io

import pytest

from repro.tools.cli import main


@pytest.fixture
def script(tmp_path):
    path = tmp_path / "prog.js"
    path.write_text(
        """
        function square(x) { return x * x; }
        var total = 0;
        for (var i = 0; i < 50; i++) total += square(7);
        print(total);
        """
    )
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRun:
    def test_runs_and_prints(self, script):
        code, output = run_cli(["run", script])
        assert code == 0
        assert "2450" in output

    def test_stats_flag(self, script):
        _code, output = run_cli(["run", script, "--stats"])
        assert "total_cycles" in output
        assert "specialized" in output

    def test_config_selection(self, script):
        _code, output = run_cli(["run", script, "--config", "baseline", "--stats"])
        assert "specialized       0" in output.replace("  ", " ") or "specialized" in output

    def test_unknown_config_rejected(self, script):
        with pytest.raises(SystemExit):
            run_cli(["run", script, "--config", "warpdrive"])

    def test_cache_capacity_flag(self, script):
        code, output = run_cli(["run", script, "--cache-capacity", "2"])
        assert code == 0


class TestProfile:
    def test_profile_output(self, script):
        _code, output = run_cli(["profile", script])
        assert "functions: " in output
        assert "square" in output
        assert "single argument set" in output

    def test_profile_table_has_fraction_columns(self, script):
        _code, output = run_cli(["profile", script])
        assert "calls%" in output
        assert "mono" in output
        assert "100.00%" in output

    def test_profile_json(self, script):
        import json

        code, output = run_cli(["profile", script, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["functions"] == 1
        assert payload["total_calls"] == 50
        profile = payload["profiles"][0]
        assert profile["name"] == "square"
        assert profile["monomorphic"] is True
        assert profile["call_share"] == 1.0

    def test_profile_cycles_table(self, script):
        code, output = run_cli(["profile", script, "--cycles"])
        assert code == 0
        assert "total cycles:" in output
        assert "attributed:" in output
        assert "square" in output
        assert "self%" in output

    def test_profile_cycles_exact(self, script):
        import json
        import re

        _code, table = run_cli(["profile", script, "--cycles"])
        match = re.search(r"total cycles: (\d+) \(attributed: (\d+)\)", table)
        assert match and match.group(1) == match.group(2)
        _code, output = run_cli(["profile", script, "--cycles", "--json"])
        payload = json.loads(output)
        assert payload["summary"]["attributed_cycles"] == (
            payload["stats"]["total_cycles"]
        )

    def test_profile_cycles_collapsed(self, script, tmp_path):
        from repro.telemetry.reports import parse_collapsed

        folded = tmp_path / "stacks.folded"
        code, _output = run_cli(
            ["profile", script, "--cycles", "--collapsed", str(folded)]
        )
        assert code == 0
        stacks = parse_collapsed(folded.read_text())
        assert stacks and all(count > 0 for _frames, count in stacks)

    def test_profile_suite_benchmark_workload(self):
        code, output = run_cli(
            ["profile", "sunspider/bitops-bits-in-byte", "--cycles"]
        )
        assert code == 0
        assert "bitsinbyte" in output


class TestAnnotate:
    def test_annotate_sections(self, script):
        code, output = run_cli(["annotate", script, "--function", "square"])
        assert code == 0
        assert "; total cycles:" in output
        assert "== square (code" in output
        assert "specialized on: [7]" in output
        assert "checkoverrecursed" in output

    def test_annotate_has_per_instruction_counts(self, script):
        import re

        _code, output = run_cli(["annotate", script, "--function", "square"])
        # Per-instruction rows: idx, count, cycles, share%.
        rows = re.findall(r"^(?:=>|  ) +\d+ +(\d+) +\d+ +[\d.]+%", output, re.MULTILINE)
        assert rows and any(int(count) > 0 for count in rows)

    def test_annotate_unknown_function(self, script):
        with pytest.raises(SystemExit):
            run_cli(["annotate", script, "--function", "nope"])

    def test_annotate_simple_backend_matches(self, script):
        from repro.jsvm.bytecode import CodeObject

        CodeObject._next_id = 1
        _code, closure = run_cli(["annotate", script, "--function", "square"])
        CodeObject._next_id = 1
        _code, simple = run_cli(
            ["annotate", script, "--function", "square", "--executor", "simple"]
        )
        assert simple == closure


class TestDisasm:
    def test_disasm_sections(self, script):
        code, output = run_cli(["disasm", script, "--function", "square"])
        assert code == 0
        assert "== bytecode ==" in output
        assert "== optimized MIR ==" in output
        assert "== native code" in output
        assert "specialized on: [7]" in output

    def test_disasm_baseline_not_specialized(self, script):
        _code, output = run_cli(
            ["disasm", script, "--function", "square", "--config", "baseline"]
        )
        assert "specialized on" not in output
        assert "parameter" in output

    def test_unknown_function(self, script):
        with pytest.raises(SystemExit):
            run_cli(["disasm", script, "--function", "nope"])


class TestTrace:
    def test_trace_timeline(self, script):
        code, output = run_cli(["trace", script])
        assert code == 0
        assert "compile.start" in output
        assert "specialize.specialized" in output
        assert "events under" in output

    def test_channel_filter(self, script):
        _code, output = run_cli(["trace", script, "--channels", "cache"])
        assert "cache.store" in output
        assert "compile.start" not in output

    def test_jsonl_and_chrome_outputs(self, script, tmp_path):
        import json

        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        code, _output = run_cli(
            ["trace", script, "--jsonl", str(jsonl), "--chrome", str(chrome),
             "--no-timeline"]
        )
        assert code == 0
        lines = jsonl.read_text().splitlines()
        assert lines and all("ts" in json.loads(line) for line in lines)
        trace = json.loads(chrome.read_text())
        assert trace["traceEvents"]

    def test_suite_benchmark_workload(self):
        code, output = run_cli(
            ["trace", "sunspider/bitops-bits-in-byte", "--limit", "5"]
        )
        assert code == 0
        assert "bitsinbyte" in output

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            run_cli(["trace", "octane/nonexistent"])

    def test_unknown_channel(self, script):
        with pytest.raises(SystemExit):
            run_cli(["trace", script, "--channels", "warpdrive"])

    def test_profile_channel_emits_summary(self, script):
        code, output = run_cli(["trace", script, "--channels", "profile"])
        assert code == 0
        assert "profile.summary" in output
        assert "1 events under" in output


class TestConfigs:
    def test_lists_all(self):
        _code, output = run_cli(["configs"])
        assert "baseline" in output
        assert "all" in output
        assert "extended" in output
        assert "ParameterSpec" in output


class TestBench:
    def test_bench_quick(self):
        _code, output = run_cli(["bench", "--suite", "kraken", "--configs", "PS"])
        assert "runtime speedup" in output
        assert "kraken" in output

    def test_unknown_suite(self):
        with pytest.raises(SystemExit):
            run_cli(["bench", "--suite", "octane"])


class TestFleet:
    FLAGS = [
        "fleet",
        "--tenants", "3",
        "--requests", "12",
        "--programs", "2",
        "--functions", "3",
        "--seed", "9",
    ]

    def test_fleet_runs_and_reports(self, tmp_path):
        schedule = str(tmp_path / "schedule.jsonl")
        metrics = str(tmp_path / "metrics.jsonl")
        code, output = run_cli(
            self.FLAGS + ["--schedule-out", schedule, "--metrics-jsonl", metrics]
        )
        assert code == 0
        assert "12 requests over 3 tenants" in output
        assert "isolation violations: 0" in output
        with open(schedule) as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 12
        import json

        first = json.loads(lines[0])
        assert first["seq"] == 0 and first["tenant"].startswith("t")
        with open(metrics) as handle:
            merged = json.loads(handle.readline())
        assert merged["counters"]["repro_serving_requests_total"] == 12

    def test_fleet_is_reproducible_across_invocations(self, tmp_path):
        first = str(tmp_path / "a.jsonl")
        second = str(tmp_path / "b.jsonl")
        run_cli(self.FLAGS + ["--metrics-jsonl", first])
        run_cli(self.FLAGS + ["--metrics-jsonl", second])
        with open(first) as handle:
            one = handle.read()
        with open(second) as handle:
            two = handle.read()
        assert one == two


class TestServe:
    def test_serve_cache_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            run_cli(["serve", "--cache", "shared"])
