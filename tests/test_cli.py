"""Tests for the command-line interface."""

import io

import pytest

from repro.tools.cli import main


@pytest.fixture
def script(tmp_path):
    path = tmp_path / "prog.js"
    path.write_text(
        """
        function square(x) { return x * x; }
        var total = 0;
        for (var i = 0; i < 50; i++) total += square(7);
        print(total);
        """
    )
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRun:
    def test_runs_and_prints(self, script):
        code, output = run_cli(["run", script])
        assert code == 0
        assert "2450" in output

    def test_stats_flag(self, script):
        _code, output = run_cli(["run", script, "--stats"])
        assert "total_cycles" in output
        assert "specialized" in output

    def test_config_selection(self, script):
        _code, output = run_cli(["run", script, "--config", "baseline", "--stats"])
        assert "specialized       0" in output.replace("  ", " ") or "specialized" in output

    def test_unknown_config_rejected(self, script):
        with pytest.raises(SystemExit):
            run_cli(["run", script, "--config", "warpdrive"])

    def test_cache_capacity_flag(self, script):
        code, output = run_cli(["run", script, "--cache-capacity", "2"])
        assert code == 0


class TestProfile:
    def test_profile_output(self, script):
        _code, output = run_cli(["profile", script])
        assert "functions: " in output
        assert "square" in output
        assert "single argument set" in output


class TestDisasm:
    def test_disasm_sections(self, script):
        _code, output = run_cli(["disasm", script, "--function", "square"])
        assert "== bytecode ==" in output
        assert "== optimized MIR ==" in output
        assert "== native code" in output
        assert "specialized on: [7]" in output

    def test_disasm_baseline_not_specialized(self, script):
        _code, output = run_cli(
            ["disasm", script, "--function", "square", "--config", "baseline"]
        )
        assert "specialized on" not in output
        assert "parameter" in output

    def test_unknown_function(self, script):
        with pytest.raises(SystemExit):
            run_cli(["disasm", script, "--function", "nope"])


class TestTrace:
    def test_trace_timeline(self, script):
        code, output = run_cli(["trace", script])
        assert code == 0
        assert "compile.start" in output
        assert "specialize.specialized" in output
        assert "events under" in output

    def test_channel_filter(self, script):
        _code, output = run_cli(["trace", script, "--channels", "cache"])
        assert "cache.store" in output
        assert "compile.start" not in output

    def test_jsonl_and_chrome_outputs(self, script, tmp_path):
        import json

        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        code, _output = run_cli(
            ["trace", script, "--jsonl", str(jsonl), "--chrome", str(chrome),
             "--no-timeline"]
        )
        assert code == 0
        lines = jsonl.read_text().splitlines()
        assert lines and all("ts" in json.loads(line) for line in lines)
        trace = json.loads(chrome.read_text())
        assert trace["traceEvents"]

    def test_suite_benchmark_workload(self):
        code, output = run_cli(
            ["trace", "sunspider/bitops-bits-in-byte", "--limit", "5"]
        )
        assert code == 0
        assert "bitsinbyte" in output

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            run_cli(["trace", "octane/nonexistent"])

    def test_unknown_channel(self, script):
        with pytest.raises(SystemExit):
            run_cli(["trace", script, "--channels", "warpdrive"])


class TestConfigs:
    def test_lists_all(self):
        _code, output = run_cli(["configs"])
        assert "baseline" in output
        assert "all" in output
        assert "extended" in output
        assert "ParameterSpec" in output


class TestBench:
    def test_bench_quick(self):
        _code, output = run_cli(["bench", "--suite", "kraken", "--configs", "PS"])
        assert "runtime speedup" in output
        assert "kraken" in output

    def test_unknown_suite(self):
        with pytest.raises(SystemExit):
            run_cli(["bench", "--suite", "octane"])
