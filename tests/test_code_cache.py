"""The persistent cross-run code cache: keys, round trips, refusal.

The cache's contract (docs/COMPILE_PIPELINE.md) has two halves:

* **pure host-time optimization** — a warm run loads artifacts from
  disk instead of running MIR→LIR→codegen, but every simulated
  observable (output, cycles, the full stats ledger) is bit-identical
  to the cold run;
* **refuse rather than guess** — any compile input without a content
  name (an object-reference argument) makes the compile uncacheable,
  and any stored byte the loader does not fully recognize reads as a
  miss followed by a normal compile.
"""

import io

import pytest

from repro.cache import DiskCodeCache
from repro.engine.config import BASELINE, FULL_SPEC
from repro.engine.runtime_engine import Engine
from repro.engine.stats import DISK_TRAFFIC_KEYS
from repro.jsvm.bytecode import CodeObject
from repro.jsvm.bytecompiler import compile_source
from repro.telemetry.tracing import Tracer
from repro.tools.cli import main as cli_main

from tests.conftest import FAST

HOT_LOOP = """
function poly(a) { return a * a + 3 * a + 1; }
var s = 0;
for (var i = 0; i < 80; i++) s += poly(i % 4);
print(s);
"""

OBJECT_ARGS = """
function getx(o) { return o.x; }
var box = {x: 7};
var s = 0;
for (var i = 0; i < 40; i++) s += getx(box);
print(s);
"""


def run_cached(source, root, backend="closure", trace=False):
    """One engine pass against the cache at ``root``.

    Resets the process-global code-id counter first so repeat runs
    produce comparable ids (and therefore comparable stats ledgers).
    """
    CodeObject._next_id = 1
    tracer = Tracer() if trace else None
    cache = DiskCodeCache(root=str(root))
    engine = Engine(
        config=FULL_SPEC,
        executor_backend=backend,
        code_cache=cache,
        tracer=tracer,
        **FAST
    )
    printed = engine.run_source(source)
    events = list(tracer.events) if tracer else None
    return printed, engine, cache, events


class TestRoundTrip:
    @pytest.mark.parametrize("backend", ["simple", "closure", "whole"])
    def test_warm_run_is_bit_identical(self, tmp_path, backend):
        cold_printed, cold_engine, cold_cache, _ = run_cached(
            HOT_LOOP, tmp_path, backend
        )
        assert cold_cache.stores > 0 and cold_cache.hits == 0
        warm_printed, warm_engine, warm_cache, _ = run_cached(
            HOT_LOOP, tmp_path, backend
        )
        assert warm_cache.hits == cold_cache.stores
        assert warm_cache.stores == 0  # nothing recompiled
        assert warm_printed == cold_printed

        def simulated(ledger):
            # The disk-traffic counters are host-side accounting and
            # differ by design (cold stores, warm hits); every simulated
            # observable must still match bit for bit.
            return {
                key: value
                for key, value in ledger.items()
                if key not in DISK_TRAFFIC_KEYS
            }

        assert simulated(warm_engine.stats.as_dict()) == simulated(
            cold_engine.stats.as_dict()
        )
        assert simulated(warm_engine.stats.summary()) == simulated(
            cold_engine.stats.summary()
        )

    def test_disk_hit_replaces_pass_events(self, tmp_path):
        _, _, _, cold_events = run_cached(HOT_LOOP, tmp_path, trace=True)
        _, _, _, warm_events = run_cached(HOT_LOOP, tmp_path, trace=True)
        cold_labels = {(e["ch"], e["event"]) for e in cold_events}
        warm_labels = {(e["ch"], e["event"]) for e in warm_events}
        assert ("pass", "run") in cold_labels
        assert ("cache", "disk_hit") not in cold_labels
        # Warm compiles skip the optimization pipeline entirely: the
        # pass narration disappears and a disk_hit marker takes over.
        assert ("pass", "run") not in warm_labels
        assert ("cache", "disk_hit") in warm_labels
        hits = [e for e in warm_events if e["event"] == "disk_hit"]
        assert all(len(e["key"]) == 64 for e in hits)  # sha256 hex

    def test_closure_backend_reuses_marshalled_module(self, tmp_path):
        run_cached(HOT_LOOP, tmp_path, "closure")
        _, warm_engine, warm_cache, _ = run_cached(HOT_LOOP, tmp_path, "closure")
        assert warm_cache.hits > 0
        # At least one loaded binary carried the generated-source +
        # marshalled-module blob for the closure backend to reuse.
        natives = [
            state.native
            for state in warm_engine.states.values()
            if state.native is not None
        ]
        assert any(native.disk_closure is not None for native in natives)
        source_text, code_bytes = next(
            native.disk_closure
            for native in natives
            if native.disk_closure is not None
        )
        assert isinstance(source_text, str) and isinstance(code_bytes, bytes)

    def test_whole_backend_reuses_marshalled_module(self, tmp_path):
        run_cached(HOT_LOOP, tmp_path, "whole")
        _, warm_engine, warm_cache, _ = run_cached(HOT_LOOP, tmp_path, "whole")
        assert warm_cache.hits > 0
        # The warm load carried the whole-function source + marshalled
        # module, and running it installed the translation under the
        # byte-exact trust rule.
        natives = [
            state.native
            for state in warm_engine.states.values()
            if state.native is not None
        ]
        assert any(native.disk_whole is not None for native in natives)
        source_text, code_bytes = next(
            native.disk_whole for native in natives if native.disk_whole is not None
        )
        assert isinstance(source_text, str) and isinstance(code_bytes, bytes)
        ran = [n for n in natives if n.whole_cache is not None]
        assert ran  # the thawed module was translated and executed

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        _, _, cold_cache, _ = run_cached(HOT_LOOP, tmp_path)
        stored = sorted((tmp_path / "code").rglob("*.bin"))
        assert stored
        for path in stored:
            path.write_bytes(b"not a marshalled artifact")
        warm_printed, warm_engine, warm_cache, _ = run_cached(HOT_LOOP, tmp_path)
        assert warm_cache.hits == 0
        assert warm_cache.misses >= len(stored)
        assert warm_cache.stores == cold_cache.stores  # re-stored fresh
        assert warm_printed == ["%d" % sum(
            (i % 4) ** 2 + 3 * (i % 4) + 1 for i in range(80)
        )]

    @pytest.mark.parametrize("keep", [0, 1, 17, -1])
    def test_truncated_entry_degrades_to_miss(self, tmp_path, keep):
        """A torn write — any strict prefix of an entry — is a miss.

        ``keep`` counts bytes kept from the front (-1 means all but
        the last byte): an empty file, a header-only prefix, and a
        nearly complete entry must all fail the integrity frame and
        fall back to a fresh compile with identical output.
        """
        cold_printed, _, cold_cache, _ = run_cached(HOT_LOOP, tmp_path)
        stored = sorted((tmp_path / "code").rglob("*.bin"))
        assert stored
        for path in stored:
            blob = path.read_bytes()
            path.write_bytes(blob[: keep if keep >= 0 else len(blob) - 1])
        warm_printed, _, warm_cache, _ = run_cached(HOT_LOOP, tmp_path)
        assert warm_cache.hits == 0
        assert warm_cache.misses >= len(stored)
        assert warm_cache.stores == cold_cache.stores
        assert warm_printed == cold_printed
        # The re-store healed the cache: a third run hits everything.
        healed_printed, _, healed_cache, _ = run_cached(HOT_LOOP, tmp_path)
        assert healed_cache.hits == cold_cache.stores
        assert healed_printed == cold_printed

    def test_bitflip_inside_payload_degrades_to_miss(self, tmp_path):
        """Corruption past the header is caught by the SHA-256 digest."""
        cold_printed, _, _, _ = run_cached(HOT_LOOP, tmp_path)
        from repro.cache.disk import _FRAME_HEADER_SIZE

        stored = sorted((tmp_path / "code").rglob("*.bin"))
        assert stored
        for path in stored:
            blob = bytearray(path.read_bytes())
            assert len(blob) > _FRAME_HEADER_SIZE
            blob[_FRAME_HEADER_SIZE + (len(blob) - _FRAME_HEADER_SIZE) // 2] ^= 0xFF
            path.write_bytes(bytes(blob))
        warm_printed, _, warm_cache, _ = run_cached(HOT_LOOP, tmp_path)
        assert warm_cache.hits == 0
        assert warm_printed == cold_printed

    def test_concurrent_writers_last_complete_frame_wins(self, tmp_path):
        """Two caches racing on one root never leave a torn entry.

        Simulates the race by interleaving two full runs against the
        same directory; every published entry must carry an intact
        frame afterwards and a follow-up run hits them all.
        """
        run_cached(HOT_LOOP, tmp_path)
        run_cached(HOT_LOOP, tmp_path)
        from repro.cache.disk import _unframe_entry

        stored = sorted((tmp_path / "code").rglob("*.bin"))
        assert stored
        for path in stored:
            assert _unframe_entry(path.read_bytes()) is not None
        _, _, warm_cache, _ = run_cached(HOT_LOOP, tmp_path)
        assert warm_cache.hits > 0 and warm_cache.misses == 0


class TestUncacheable:
    def test_object_arguments_refuse_caching(self, tmp_path):
        printed, _, cache, _ = run_cached(OBJECT_ARGS, tmp_path)
        assert printed == ["280"]
        # ``getx`` specializes on a heap object: identity, not content.
        assert cache.uncacheable > 0
        warm_printed, _, warm_cache, _ = run_cached(OBJECT_ARGS, tmp_path)
        assert warm_printed == printed
        assert warm_cache.uncacheable > 0

    def test_key_for_returns_none_for_reference_values(self):
        cache = DiskCodeCache.__new__(DiskCodeCache)
        cache.uncacheable = 0
        code = compile_source("function id(x) { return x; }").constants[0]
        assert cache.key_for(code, FULL_SPEC, param_values=[{"a": 1}]) is None
        assert cache.uncacheable == 1


class TestKeySensitivity:
    """Every compile input must move the content key."""

    def _code(self, source="function id(x) { return x; }"):
        return compile_source(source).constants[0]

    def test_identical_inputs_identical_key(self, tmp_path):
        cache = DiskCodeCache(root=str(tmp_path))
        code = self._code()
        assert cache.key_for(code, FULL_SPEC, param_values=[3]) == cache.key_for(
            code, FULL_SPEC, param_values=[3]
        )

    def test_config_values_and_flags_move_the_key(self, tmp_path):
        cache = DiskCodeCache(root=str(tmp_path))
        code = self._code()
        keys = {
            cache.key_for(code, FULL_SPEC, param_values=[3]),
            cache.key_for(code, BASELINE),
            cache.key_for(code, FULL_SPEC, param_values=[4]),
            cache.key_for(code, FULL_SPEC, param_values=[3], generic=True),
            cache.key_for(code, FULL_SPEC, param_values=[3], osr_pc=2,
                          osr_args=[3], osr_locals=[]),
        }
        assert len(keys) == 5 and None not in keys

    def test_code_body_moves_the_key(self, tmp_path):
        cache = DiskCodeCache(root=str(tmp_path))
        first = cache.key_for(self._code(), FULL_SPEC, param_values=[3])
        second = cache.key_for(
            self._code("function id(x) { return x + 0; }"),
            FULL_SPEC,
            param_values=[3],
        )
        assert first != second

    def test_feedback_moves_the_key(self, tmp_path):
        from repro.jsvm.feedback import TypeFeedback

        cache = DiskCodeCache(root=str(tmp_path))
        code = self._code()
        empty = TypeFeedback(1)
        seen_int = TypeFeedback(1)
        from repro.jsvm.values import UNDEFINED

        seen_int.record_args([3], UNDEFINED)
        assert cache.key_for(code, FULL_SPEC, feedback=empty) != cache.key_for(
            code, FULL_SPEC, feedback=seen_int
        )


class TestStoreManagement:
    def test_stats_and_clear(self, tmp_path):
        _, _, cache, _ = run_cached(HOT_LOOP, tmp_path)
        info = cache.stats()
        assert info["entries"] == cache.stores > 0
        assert info["bytes"] > 0
        assert info["root"] == str(tmp_path)
        removed = cache.clear()
        assert removed == info["entries"]
        assert cache.stats()["entries"] == 0

    def test_cli_cache_subcommand(self, tmp_path, monkeypatch):
        script = tmp_path / "prog.js"
        script.write_text(HOT_LOOP)
        root = tmp_path / "store"

        def run_cli(argv):
            out = io.StringIO()
            return cli_main(argv, out=out), out.getvalue()

        code, _ = run_cli(["run", str(script), "--code-cache", str(root)])
        assert code == 0
        code, output = run_cli(["cache", "stats", "--dir", str(root)])
        assert code == 0
        assert "entries" in output and "0" not in output.split("entries:")[1].split("\n")[0].strip()
        code, output = run_cli(["cache", "clear", "--dir", str(root)])
        assert code == 0
        assert "removed" in output
        code, output = run_cli(["cache", "stats", "--dir", str(root)])
        assert "entries:    0" in output

    def test_default_root_honours_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envroot"))
        cache = DiskCodeCache()
        assert cache.root == str(tmp_path / "envroot")


TWO_FUNCS = """
function f(a) { return a * 2 + 1; }
function g(a) { return a * 3 + 2; }
var s = 0;
for (var i = 0; i < 80; i++) { s += f(i % 4); s += g(i % 4); }
print(s);
"""


class TestEviction:
    """LRU-by-mtime pruning under entry- and byte-count pressure."""

    def _aged_store(self, tmp_path):
        """Fill the cache and pin deterministic mtimes (oldest first)."""
        import os

        run_cached(TWO_FUNCS, tmp_path)
        stored = sorted((tmp_path / "code").rglob("*.bin"))
        assert len(stored) >= 2
        for age, path in enumerate(stored):
            os.utime(str(path), (1000 + age, 1000 + age))
        return stored

    def test_evict_by_max_entries_drops_oldest_first(self, tmp_path):
        stored = self._aged_store(tmp_path)
        cache = DiskCodeCache(root=str(tmp_path))
        removed = cache.evict(max_entries=1)
        assert removed == len(stored) - 1
        assert cache.evictions == removed
        survivors = sorted((tmp_path / "code").rglob("*.bin"))
        assert survivors == [stored[-1]]  # the youngest entry survives

    def test_evict_by_max_bytes(self, tmp_path):
        import os

        stored = self._aged_store(tmp_path)
        sizes = [os.path.getsize(str(path)) for path in stored]
        cache = DiskCodeCache(root=str(tmp_path))
        removed = cache.evict(max_bytes=sum(sizes) - 1)  # one over budget
        assert removed == 1
        assert not stored[0].exists()  # the oldest paid for it
        assert cache.stats()["bytes"] <= sum(sizes) - sizes[0]

    def test_evict_without_bounds_is_a_noop(self, tmp_path):
        stored = self._aged_store(tmp_path)
        cache = DiskCodeCache(root=str(tmp_path))
        assert cache.evict() == 0
        assert cache.evictions == 0
        assert sorted((tmp_path / "code").rglob("*.bin")) == stored

    def test_stats_carry_corrupt_and_eviction_counters(self, tmp_path):
        self._aged_store(tmp_path)
        stored = sorted((tmp_path / "code").rglob("*.bin"))
        stored[0].write_bytes(b"garbage")
        _, _, warm_cache, _ = run_cached(TWO_FUNCS, tmp_path)
        info = warm_cache.stats()
        assert info["corrupt"] == warm_cache.corrupt >= 1
        assert info["evictions"] == 0
        warm_cache.evict(max_entries=0)
        assert warm_cache.stats()["evictions"] == warm_cache.evictions > 0

    def test_evicted_entries_read_as_misses_then_heal(self, tmp_path):
        cold_printed, _, cold_cache, _ = run_cached(TWO_FUNCS, tmp_path)
        cold_cache.evict(max_entries=0)
        warm_printed, _, warm_cache, _ = run_cached(TWO_FUNCS, tmp_path)
        assert warm_printed == cold_printed
        assert warm_cache.hits == 0
        assert warm_cache.stores == cold_cache.stores  # fully re-stored
        healed_printed, _, healed_cache, _ = run_cached(TWO_FUNCS, tmp_path)
        assert healed_printed == cold_printed
        assert healed_cache.hits == cold_cache.stores


class TestEvictionConcurrency:
    """``evict`` racing writers and other evictors (docs/CACHE.md).

    The prune renames each victim aside to a ``.evict`` tombstone
    before unlinking, so a concurrent ``store`` republishing the same
    key either becomes the (complete) victim or survives under the
    final name — never a torn read — and an entry another evictor
    already removed is skipped without being counted.
    """

    def test_vanished_victim_is_skipped_uncounted(self, tmp_path, monkeypatch):
        import os

        run_cached(TWO_FUNCS, tmp_path)
        cache = DiskCodeCache(root=str(tmp_path))
        entries = cache.stats()["entries"]
        assert entries >= 2
        real_replace = os.replace
        stolen = []

        def racing_replace(src, dst):
            # A concurrent evictor wins the race for the first victim.
            if not stolen and dst.endswith(".evict"):
                stolen.append(src)
                os.unlink(src)
            return real_replace(src, dst)

        monkeypatch.setattr("repro.cache.disk.os.replace", racing_replace)
        removed = cache.evict(max_entries=0)
        assert len(stolen) == 1
        assert removed == entries - 1  # the stolen entry is not ours
        assert cache.evictions == removed
        assert cache.stats()["entries"] == 0

    def test_concurrent_writer_never_tears_an_entry(self, tmp_path):
        import threading

        printed, _, cache, _ = run_cached(TWO_FUNCS, tmp_path)
        stop = threading.Event()
        failures = []

        def rewriter():
            # Re-run the workload against the same root over and over:
            # every pass republishes the same keys via store's atomic
            # rename while the main thread is pruning them.
            while not stop.is_set():
                try:
                    again, _, _, _ = run_cached(TWO_FUNCS, tmp_path)
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append(repr(exc))
                    return
                if again != printed:  # pragma: no cover - failure path
                    failures.append("output diverged: %r" % (again,))
                    return

        writer = threading.Thread(target=rewriter)
        writer.start()
        try:
            for _ in range(40):
                cache.evict(max_entries=0)
        finally:
            stop.set()
            writer.join(timeout=30)
        assert not failures
        # Whatever survived the crossfire reads back whole: a full
        # warm pass sees only hits or misses, never a torn frame.
        _, _, verify_cache, _ = run_cached(TWO_FUNCS, tmp_path)
        assert verify_cache.corrupt == 0
        import glob
        import os

        leftovers = glob.glob(
            os.path.join(str(tmp_path), "code", "**", "*.evict"), recursive=True
        )
        assert leftovers == []

    def test_interrupted_prune_tombstones_are_swept_and_invisible(self, tmp_path):
        import os

        run_cached(TWO_FUNCS, tmp_path)
        cache = DiskCodeCache(root=str(tmp_path))
        entries = cache.stats()["entries"]
        stored = sorted((tmp_path / "code").rglob("*.bin"))
        # Simulate a prune that died between rename and unlink.
        os.replace(str(stored[0]), str(stored[0]) + ".evict")
        assert cache.stats()["entries"] == entries - 1  # not an entry
        cache.evict(max_entries=10_000)  # bound satisfied: no victims
        assert cache.evictions == 0
        leftovers = list((tmp_path / "code").rglob("*.evict"))
        assert leftovers == []  # ...but the sweep still ran


class TestEngineStatsSurface:
    def test_disk_counters_fold_into_engine_stats(self, tmp_path):
        run_cached(HOT_LOOP, tmp_path)
        _, warm_engine, warm_cache, _ = run_cached(HOT_LOOP, tmp_path)
        ledger = warm_engine.stats.as_dict()
        assert ledger["disk_hits"] == warm_cache.hits > 0
        assert ledger["disk_misses"] == warm_cache.misses
        assert ledger["disk_stores"] == warm_cache.stores
        assert ledger["disk_corrupt"] == warm_cache.corrupt
        assert ledger["disk_evictions"] == warm_cache.evictions
        summary = warm_engine.stats.summary()
        assert summary["disk_hits"] == warm_cache.hits
        assert summary["disk_misses"] == warm_cache.misses

    def test_uncached_engine_reports_zero_disk_traffic(self):
        from repro.engine.runtime_engine import Engine

        engine = Engine(config=FULL_SPEC, **FAST)
        engine.run_source(HOT_LOOP)
        summary = engine.stats.summary()
        assert summary["disk_hits"] == 0 and summary["disk_misses"] == 0


class TestEvictionCLI:
    def run_cli(self, argv):
        out = io.StringIO()
        return cli_main(argv, out=out), out.getvalue()

    def test_cache_evict_subcommand(self, tmp_path):
        script = tmp_path / "prog.js"
        script.write_text(TWO_FUNCS)
        root = tmp_path / "store"
        code, _ = self.run_cli(["run", str(script), "--code-cache", str(root)])
        assert code == 0
        code, output = self.run_cli(
            ["cache", "evict", "--dir", str(root), "--max-entries", "1"]
        )
        assert code == 0
        assert "evicted" in output and "1 entries" in output
        code, output = self.run_cli(["cache", "stats", "--dir", str(root)])
        assert "entries:    1" in output

    def test_cache_evict_requires_a_bound(self, tmp_path):
        with pytest.raises(SystemExit, match="need --max-bytes"):
            self.run_cli(["cache", "evict", "--dir", str(tmp_path)])
