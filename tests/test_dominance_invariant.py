"""Pipeline-wide dominance invariant: defs dominate uses after every
pass combination, on every workload benchmark's hot functions."""

import pytest

from repro.engine.config import BASELINE, EXTENDED, FULL_SPEC, PAPER_CONFIGS
from repro.mir.builder import build_mir
from repro.mir.verifier import verify_dominance, verify_graph
from repro.opts.loop_inversion import rotate_loops
from repro.opts.pass_manager import optimize

from tests.helpers import compile_and_profile

KERNELS = [
    (
        "arith-loop",
        "function f(a, n) { var s = 0; for (var i = 0; i < n; i++) s += a * i; return s; } f(3, 30);",
        [3, 30],
    ),
    (
        "array-store",
        "function f(a, n) { for (var i = 0; i < n; i++) a[i] = i * 2; return a[0]; } f([0,0,0,0,0], 5);",
        None,
    ),
    (
        "branches",
        "function f(c, x) { var y = 0; if (c) y = x + 1; else y = x - 1; while (y > 0) y -= 3; return y; } f(true, 10);",
        [True, 10],
    ),
    (
        "strings",
        "function f(s) { var h = 0; for (var i = 0; i < s.length; i++) h = (h * 31 + s.charCodeAt(i)) & 0xffff; return h; } f('dominance');",
        ["dominance"],
    ),
    (
        "closure-inline",
        """
        function inc(x) { return x + 1; }
        function map(s, n, g) { for (var i = 0; i < n; i++) s[i] = g(s[i]); return s[0]; }
        map([1, 2, 3], 3, inc);
        """,
        None,
    ),
]


@pytest.mark.parametrize("config", [BASELINE, FULL_SPEC, EXTENDED] + PAPER_CONFIGS,
                         ids=lambda c: c.name)
@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k[0])
def test_dominance_holds_after_pipeline(kernel, config):
    name, source, spec_args = kernel
    _top, code = compile_and_profile(source)
    if config.loop_inversion:
        rotate_loops(code)
    param_values = spec_args if config.param_spec else None
    if name == "closure-inline" and config.param_spec:
        # Build the constant-callee situation the inliner wants.
        from repro.jsvm.objects import JSArray
        from repro.jsvm.values import JSFunction

        _top2, map_code = compile_and_profile(source, "map")
        inc_code = [
            c for c in _top2.constants if hasattr(c, "instructions") and c.name == "inc"
        ][0]
        code = map_code
        if config.loop_inversion:
            rotate_loops(code)
        param_values = [JSArray([1, 2, 3]), 3, JSFunction(inc_code, ())]
    graph = build_mir(code, feedback=code.feedback, param_values=param_values)
    optimize(graph, config)
    verify_graph(graph)
    verify_dominance(graph)
