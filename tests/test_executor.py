"""Direct tests of the native executor: guards, bailouts, immediates,
cycle accounting."""

import pytest

from repro.engine.config import BASELINE, CostModel, FULL_SPEC
from repro.engine.jit import compile_function
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.values import UNDEFINED
from repro.lir.executor import Bailout, NativeExecutor
from repro.lir.regalloc import NUM_REGS

from tests.helpers import compile_and_profile


def compiled(source, name=None, config=BASELINE, param_values=None):
    _top, code = compile_and_profile(source, name)
    result = compile_function(
        code, config, feedback=code.feedback,
        param_values=param_values if config.param_spec else None,
    )
    return code, result.native


def executor():
    return NativeExecutor(Interpreter(), CostModel())


class TestExecution:
    def test_simple_arithmetic(self):
        _code, native = compiled("function f(a, b) { return a * b + 1; } f(6, 7);")
        ex = executor()
        assert ex.run(native, None, UNDEFINED, [6, 7]) == 43
        assert ex.cycles > 0
        assert ex.instructions_executed == len([i for i in native.instructions]) or True

    def test_loop_execution(self):
        source = "function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; } f(10);"
        _code, native = compiled(source)
        assert executor().run(native, None, UNDEFINED, [100]) == 4950

    def test_missing_arguments_read_undefined(self):
        _code, native = compiled("function f(a, b) { return typeof b; } f(1, 2);")
        ex = executor()
        # b was profiled Int32: passing nothing fails the entry guard.
        with pytest.raises(Bailout):
            ex.run(native, None, UNDEFINED, [1])

    def test_immediates_live_in_negative_locations(self):
        _code, native = compiled("function f(a) { return a + 1234; } f(1);")
        assert 1234 in native.immediates
        # No const instruction remains in the stream.
        assert all(instr.op != "const" for instr in native.instructions)

    def test_immediate_pool_deduplicates(self):
        _code, native = compiled("function f(a) { return a + 7 + 7 + 7; } f(1);")
        assert native.immediates.count(7) == 1


class TestGuards:
    def test_type_guard_bailout_carries_frame(self):
        _code, native = compiled("function f(a) { return a + a; } f(2);")
        ex = executor()
        with pytest.raises(Bailout) as info:
            ex.run(native, None, UNDEFINED, ["not an int"])
        bail = info.value
        assert bail.frame_args == ["not an int"]
        assert bail.pc == 0
        assert bail.mode == "at"

    def test_overflow_bailout_mode_after(self):
        _code, native = compiled("function f(a) { return a + a; } f(2);")
        ex = executor()
        with pytest.raises(Bailout) as info:
            ex.run(native, None, UNDEFINED, [2 ** 31 - 1])
        bail = info.value
        assert bail.mode == "after"
        assert bail.actual == float(2 ** 32 - 2)
        assert bail.frame_stack[-1] == bail.actual

    def test_bounds_check_bailout(self):
        source = "function f(a, i) { return a[i]; } f([1, 2, 3], 1);"
        _code, native = compiled(source)
        from repro.jsvm.objects import JSArray

        ex = executor()
        with pytest.raises(Bailout) as info:
            ex.run(native, None, UNDEFINED, [JSArray([1, 2, 3]), 99])
        assert info.value.reason == "bounds check"
        assert info.value.mode == "at"

    def test_negative_zero_mul_bailout(self):
        _code, native = compiled("function f(a, b) { return a * b; } f(2, 3);")
        ex = executor()
        with pytest.raises(Bailout) as info:
            ex.run(native, None, UNDEFINED, [-5, 0])
        assert info.value.actual == -0.0
        import math

        assert math.copysign(1.0, info.value.actual) < 0

    def test_resumed_execution_matches_interpreter(self):
        # End-to-end: the engine path resumes correctly (sanity net for
        # the executor-level asserts above).
        from tests.conftest import FAST, assert_same_output

        source = """
        function f(a) { return a * 2; }
        var out = "";
        for (var i = 0; i < 30; i++) out = f(21);
        out = f("x");
        print(out);
        """
        assert_same_output(source, **FAST)


class TestCostAccounting:
    def test_cycles_accumulate(self):
        _code, native = compiled("function f(a) { return a + 1; } f(1);")
        ex = executor()
        ex.run(native, None, UNDEFINED, [1])
        first = ex.cycles
        ex.run(native, None, UNDEFINED, [1])
        assert ex.cycles == 2 * first

    def test_generic_ops_cost_more(self):
        # Same computation, typed vs generic code.
        source = "function f(a, b) { return a + b; } f(1, 2);"
        _top, code = compile_and_profile(source)
        typed = compile_function(code, BASELINE, feedback=code.feedback).native
        generic = compile_function(code, BASELINE, feedback=code.feedback, generic=True).native
        ex_typed, ex_generic = executor(), executor()
        ex_typed.run(typed, None, UNDEFINED, [1, 2])
        ex_generic.run(generic, None, UNDEFINED, [1, 2])
        assert ex_generic.cycles > ex_typed.cycles

    def test_bailout_still_charges_cycles(self):
        _code, native = compiled("function f(a) { return a + a; } f(2);")
        ex = executor()
        with pytest.raises(Bailout):
            ex.run(native, None, UNDEFINED, ["s"])
        assert ex.cycles > 0
