"""Tests for the §6 future-work extensions: overflow-check elimination
and loop unrolling under value specialization."""

import pytest

from repro import BASELINE, Engine
from repro.engine.config import EXTENDED, FULL_SPEC, OptConfig
from repro.jsvm.interpreter import Interpreter
from repro.mir import instructions as mi
from repro.mir.builder import build_mir
from repro.mir.specializer import specialize_types
from repro.mir.verifier import verify_graph
from repro.opts.constprop import run_constant_propagation
from repro.opts.dce import run_dce
from repro.opts.loop_inversion import rotate_loops
from repro.opts.overflow_check import run_overflow_check_elimination
from repro.opts.unrolling import run_unrolling

from tests.conftest import FAST, run_engine
from tests.helpers import compile_and_profile, count, instrs

OVERFLOW_CFG = OptConfig(
    "ovf", param_spec=True, constprop=True, loop_inversion=True, dce=True,
    bounds_check=True, overflow_elim=True,
)
UNROLL_CFG = OptConfig(
    "unr", param_spec=True, constprop=True, loop_inversion=True, dce=True,
    bounds_check=True, unroll=True,
)


def spec_graph(source, name, param_values, rotate=True):
    _top, code = compile_and_profile(source, name)
    if rotate:
        rotate_loops(code)
    graph = build_mir(code, feedback=code.feedback, param_values=param_values)
    specialize_types(graph)
    run_constant_propagation(graph)
    run_dce(graph)
    verify_graph(graph)
    return graph


LOOP_SOURCE = """
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) s = s + i;
  return s;
}
f(50);
"""


class TestOverflowCheckElimination:
    def test_clears_guard_on_bounded_induction(self):
        graph = spec_graph(LOOP_SOURCE, "f", [50])
        guarded_before = sum(
            1 for a in instrs(graph, mi.MBinaryArithI) if a.is_guard
        )
        cleared = run_overflow_check_elimination(graph)
        verify_graph(graph)
        assert cleared >= 1
        guarded_after = sum(1 for a in instrs(graph, mi.MBinaryArithI) if a.is_guard)
        assert guarded_after < guarded_before

    def test_keeps_guard_when_bound_unknown(self):
        graph = spec_graph(LOOP_SOURCE.replace("f(50);", ""), "f", None, rotate=False)
        # Without specialization the bound n is unknown.
        cleared = run_overflow_check_elimination(graph)
        assert cleared == 0

    def test_keeps_guard_near_int32_limit(self):
        source = """
        function f(n) {
          var s = 0;
          for (var i = 2147483000; i < n; i++) s = s + i;
          return s;
        }
        f(2147483646);
        """
        graph = spec_graph(source, "f", [2147483646])
        # s + i can overflow (sum of many near-max values): s's range
        # is unknown, so its guard must stay.
        adds = [a for a in instrs(graph, mi.MBinaryArithI) if a.op.lower() == "add"]
        assert any(a.is_guard for a in adds)

    def test_end_to_end_results_unchanged(self):
        source = """
        function kernel(n) {
          var s = 0;
          for (var i = 0; i < n; i++) s += i & 1023;
          return s;
        }
        var t = 0;
        for (var r = 0; r < 30; r++) t += kernel(100);
        print(t);
        """
        expected = Interpreter().run_source(source)
        printed, engine = run_engine(source, OVERFLOW_CFG, **FAST)
        assert printed == expected

    def test_extension_reduces_cycles(self):
        source = """
        function kernel(n) {
          var s = 0;
          for (var i = 0; i < n; i++) s = (s & 4095) + i;
          return s;
        }
        var t = 0;
        for (var r = 0; r < 40; r++) t += kernel(200);
        print(t);
        """
        _out1, plain = run_engine(source, FULL_SPEC, **FAST)
        _out2, extended = run_engine(source, OVERFLOW_CFG, **FAST)
        assert _out1 == _out2
        # i's guard clears (i in [0,199]); guards cost cycles.
        assert extended.stats.total_cycles <= plain.stats.total_cycles


class TestLoopUnrolling:
    SHORT_LOOP = """
    function f(a) {
      var s = 0;
      for (var i = 0; i < 5; i++) s = s + a;
      return s;
    }
    f(7);
    """

    def test_unrolls_constant_trip_count(self):
        graph = spec_graph(self.SHORT_LOOP, "f", [7])
        unrolled = run_unrolling(graph)
        verify_graph(graph)
        assert unrolled == 1
        assert not instrs(graph, mi.MPhi)  # the loop is gone

    def test_constprop_evaluates_unrolled_loop(self):
        graph = spec_graph(self.SHORT_LOOP, "f", [7])
        run_unrolling(graph)
        run_constant_propagation(graph)
        run_dce(graph)
        verify_graph(graph)
        returns = instrs(graph, mi.MReturn)
        assert isinstance(returns[0].operands[0], mi.MConstant)
        assert returns[0].operands[0].value == 35

    def test_large_trip_count_not_unrolled(self):
        graph = spec_graph(LOOP_SOURCE, "f", [50])
        assert run_unrolling(graph) == 0

    def test_unknown_bound_not_unrolled(self):
        source = self.SHORT_LOOP.replace("i < 5", "i < a")
        graph = spec_graph(source, "f", None, rotate=True)
        assert run_unrolling(graph) == 0

    def test_calls_in_body_not_unrolled(self):
        source = """
        function f(g) {
          var s = 0;
          for (var i = 0; i < 4; i++) s += g(i);
          return s;
        }
        """
        _top, code = compile_and_profile(source + "f(function(x){ someGlobal = x; return x; });", "f")
        rotate_loops(code)
        graph = build_mir(code, feedback=code.feedback)
        specialize_types(graph)
        run_constant_propagation(graph)
        run_dce(graph)
        assert run_unrolling(graph) == 0

    def test_unrolled_stores_and_guards_work(self):
        source = """
        function fill(a) {
          for (var i = 0; i < 4; i++) a[i] = i * 10;
          return a[3];
        }
        var arr = [0, 0, 0, 0];
        var r = 0;
        for (var k = 0; k < 30; k++) r = fill(arr);
        print(r, arr.join(","));
        """
        expected = Interpreter().run_source(source)
        printed, _engine = run_engine(source, UNROLL_CFG, **FAST)
        assert printed == expected

    def test_end_to_end_all_suites_still_correct(self):
        # The extensions must preserve every benchmark's output.
        from repro.workloads import ALL_SUITES

        benchmark = ALL_SUITES["sunspider"][0]
        expected = Interpreter().run_source(benchmark.source)
        printed, _engine = run_engine(benchmark.source, EXTENDED)
        assert printed == expected


class TestExtendedConfig:
    def test_extended_describe(self):
        assert "OverflowElim" in EXTENDED.describe()
        assert "LoopUnroll" in EXTENDED.describe()

    def test_paper_configs_exclude_extensions(self):
        from repro.engine.config import PAPER_CONFIGS

        for config in PAPER_CONFIGS:
            assert not config.overflow_elim
            assert not config.unroll
