"""The multi-tenant serving tier: isolation, admission, shards, fleet.

The tier's contract (docs/SERVING.md) in test form:

* **isolation** — a tenant served from a multi-tenant host is
  bit-identical (outputs, latencies, metrics payload, shape
  numbering) to the same request stream served by a dedicated
  single-tenant engine, and a foreign shape tree observed mid-request
  is counted as an isolation violation;
* **admission** — per-tenant lanes are deterministic virtual
  timelines: batching amortizes the dispatch delay, capacity bounds
  in-flight depth, rejections execute nothing;
* **sharding** — the shared artifact store routes by content key,
  keeps per-tenant counters exact, and prunes per shard;
* **fleet determinism** — same seed, same schedule bytes; merged
  metrics identical across ``--jobs`` counts and across repeat runs;
* **serving front end** — the asyncio server round-trips JSON lines,
  reports live stats, and drains gracefully into a metrics JSONL.
"""

import asyncio
import json
import os

import pytest

from repro.jsvm import objects
from repro.jsvm.objects import ShapeTree, install_shape_tree
from repro.serving.admission import DISPATCH_DELAY, AdmissionLane
from repro.serving.fleet import (
    FleetProfile,
    build_catalog,
    generate_schedule,
    percentile,
    run_fleet,
    schedule_jsonl,
)
from repro.serving.isolate import TenantHost, TenantIsolate
from repro.serving.pool import WorkerPool, tenant_worker
from repro.serving.server import ServingServer
from repro.serving.shards import ShardedDiskCache, TenantCacheView

from tests.conftest import FAST

# Two programs with *conflicting* shape histories: same property
# names, opposite insertion orders, so a shared shape tree would hand
# the second tenant different shape ids than a private one.
PROGRAM_XY = """
function get(o) { return o.x + o.y; }
var s = 0;
for (var i = 0; i < 20; i = i + 1) { s = (s + get({x: i, y: 2 * i})) & 65535; }
print(s);
"""

PROGRAM_YX = """
function get(o) { return o.x - o.y; }
var s = 0;
for (var i = 0; i < 20; i = i + 1) { s = (s + get({y: i, x: 3 * i})) & 65535; }
print(s);
"""

#: Small but JIT-exercising fleet profile (seconds, not minutes).
SMALL_FLEET = {
    "tenants": 3,
    "requests": 18,
    "programs": 2,
    "seed": 11,
    "functions_per_program": 3,
}


def _strip_responses(responses):
    """Responses without the partition-dependent ``seq`` echo."""
    cleaned = []
    for response in responses:
        response = dict(response)
        response.pop("seq", None)
        cleaned.append(response)
    return cleaned


class TestAdmissionLane:
    def test_first_request_pays_dispatch_delay(self):
        lane = AdmissionLane()
        start = lane.admit(100, batch=0)
        assert start == 100 + DISPATCH_DELAY
        assert lane.complete(start, 500) == start + 500
        assert lane.lane_cycle == start + 500

    def test_batch_followers_skip_the_delay_but_queue_behind_the_lane(self):
        lane = AdmissionLane(dispatch_delay=30)
        first = lane.admit(0, batch=7)
        lane.complete(first, 1000)
        # Same batch, arrives while the lane is busy: no delay, but
        # dispatch waits for the lane clock.
        follower = lane.admit(10, batch=7)
        assert follower == 1030
        lane.complete(follower, 50)
        # New batch id: the delay is charged again.
        fresh = lane.admit(2000, batch=8)
        assert fresh == 2030

    def test_capacity_rejections_and_high_water(self):
        lane = AdmissionLane(dispatch_delay=0, capacity=2)
        for _ in range(2):
            start = lane.admit(0, batch=0)
            lane.complete(start, 10_000)  # both still in flight at t=1
        assert lane.admit(1, batch=0) is None
        assert lane.rejected == 1
        assert lane.depth_high_water == 2
        # Once the in-flight work completes, admission resumes.
        assert lane.admit(50_000, batch=1) is not None

    def test_lane_timeline_is_deterministic(self):
        def drive():
            lane = AdmissionLane()
            marks = []
            for arrival, batch in ((0, 0), (5, 0), (5, 1), (900, 1)):
                start = lane.admit(arrival, batch=batch)
                marks.append(lane.complete(start, 100))
            return marks

        assert drive() == drive()


class TestTenantIsolation:
    def _serve_stream(self, target, program, source, count):
        return [target.serve(program, source) for _ in range(count)]

    def test_hosted_tenant_is_bit_identical_to_a_dedicated_engine(self):
        host = TenantHost(engine_kwargs=FAST)
        hosted = []
        # Interleave two tenants with conflicting shape histories.
        for _ in range(4):
            hosted.append(
                host.execute_request(
                    {"tenant": "a", "program": "xy", "source": PROGRAM_XY}
                )
            )
            host.execute_request(
                {"tenant": "b", "program": "yx", "source": PROGRAM_YX}
            )
        solo = TenantIsolate("a", engine_kwargs=FAST)
        expected = self._serve_stream(solo, "xy", PROGRAM_XY, 4)
        assert _strip_responses(hosted) == _strip_responses(expected)
        # The full speculation state lines up, not just the outputs:
        # identical shape numbering and identical metrics payloads.
        assert host.isolates["a"].shape_tree.next_id == solo.shape_tree.next_id
        assert host.isolates["a"].metrics_payload() == solo.metrics_payload()
        assert host.isolation_violations == 0

    def test_conflicting_shape_orders_number_independently(self):
        host = TenantHost(engine_kwargs=FAST)
        host.execute_request({"tenant": "a", "source": PROGRAM_XY})
        host.execute_request({"tenant": "b", "source": PROGRAM_YX})
        # Each tenant's tree numbered its own shapes from a fresh
        # root; with a shared tree tenant b's ids would start after
        # tenant a's.
        assert host.isolates["a"].shape_tree.next_id == 3  # x, xy
        assert host.isolates["b"].shape_tree.next_id == 3  # y, yx

    def test_request_restores_the_previously_installed_tree(self):
        outer = ShapeTree()
        previous = install_shape_tree(outer)
        try:
            isolate = TenantIsolate("a", engine_kwargs=FAST)
            isolate.serve("xy", PROGRAM_XY)
            assert objects.SHAPE_TREE is outer
            assert isolate.isolation_violations == 0
        finally:
            install_shape_tree(previous)

    def test_foreign_tree_mid_request_counts_a_violation(self):
        isolate = TenantIsolate("a", engine_kwargs=FAST)
        intruder = ShapeTree()

        def hijack(code):
            install_shape_tree(intruder)

        isolate.engine.run_code = hijack
        isolate.execute("evil", "print(1);")
        assert isolate.isolation_violations == 1
        payload = isolate.metrics_payload()
        assert payload["counters"]["repro_serving_isolation_violations_total"] == 1

    def test_rejected_requests_execute_nothing(self):
        isolate = TenantIsolate("a", engine_kwargs=FAST, queue_capacity=1)
        # Pin an in-flight completion far in the future, then arrive
        # before it: capacity 1 means rejection.
        start = isolate.lane.admit(0, batch=0)
        isolate.lane.complete(start, 10_000_000)
        response = isolate.serve("xy", PROGRAM_XY, arrival=5)
        assert response["status"] == "rejected"
        assert response["output"] == []
        assert isolate.requests == 0
        payload = isolate.metrics_payload()
        assert payload["counters"]["repro_serving_rejected_total"] == 1
        assert payload["counters"]["repro_serving_requests_total"] == 0

    def test_unknown_catalog_program_is_an_error_response(self):
        host = TenantHost()
        response = host.execute_request({"tenant": "a", "program": "nope"})
        assert response["status"] == "error"
        assert "unknown program" in response["error"]


class TestShardedCache:
    def test_routing_is_pure_key_arithmetic(self, tmp_path):
        store = ShardedDiskCache(root=str(tmp_path), shards=4)
        import hashlib

        keys = [
            hashlib.sha256(b"key-%d" % value).hexdigest() for value in range(30)
        ]
        for key in keys:
            index = int(key[:8], 16) % 4
            assert store.shard_index(key) == index
            assert store.shard_for(key) is store.shards[index]
        assert len({store.shard_index(key) for key in keys}) > 1

    def test_rejects_zero_shards(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedDiskCache(root=str(tmp_path), shards=0)

    def _warm_store(self, root, tenant="a"):
        host = TenantHost(
            cache_mode="tenant", cache_root=root, engine_kwargs=FAST
        )
        for _ in range(3):
            host.execute_request(
                {"tenant": tenant, "program": "xy", "source": PROGRAM_XY}
            )
        return host

    def test_artifacts_roundtrip_through_the_shards(self, tmp_path):
        cold = self._warm_store(str(tmp_path))
        stats = cold.store_stats()
        assert stats["stores"] > 0 and stats["entries"] > 0
        warm = self._warm_store(str(tmp_path))
        cache = warm.isolates["a"].cache
        assert cache.hits > 0
        assert cache.stores == 0

    def test_per_shard_eviction_and_stats(self, tmp_path):
        self._warm_store(str(tmp_path))
        store = ShardedDiskCache(
            root=os.path.join(str(tmp_path), "tenant-a"), shards=4
        )
        before = store.stats()
        assert before["entries"] > 0
        removed = store.evict(max_entries=0)
        assert removed == before["entries"]
        assert store.evictions == removed
        after = store.stats()
        assert after["entries"] == 0
        assert len(after["per_shard"]) == 4

    def test_shared_mode_tenant_counters_sum_to_store_counters(self, tmp_path):
        host = TenantHost(
            cache_mode="shared", cache_root=str(tmp_path), engine_kwargs=FAST
        )
        for _ in range(3):
            host.execute_request({"tenant": "a", "source": PROGRAM_XY})
            host.execute_request({"tenant": "b", "source": PROGRAM_XY})
        views = [host.isolates[t].cache for t in ("a", "b")]
        assert all(isinstance(view, TenantCacheView) for view in views)
        store = host.store
        assert sum(v.hits for v in views) == store.hits
        assert sum(v.misses for v in views) == store.misses
        assert sum(v.stores for v in views) == store.stores
        # Tenant b arrived second: the shared store serves it tenant
        # a's artifacts, so its very first compile probes can hit.
        assert store.hits > 0


class TestFleetDeterminism:
    def test_same_seed_means_byte_identical_schedules(self):
        profile = FleetProfile(**SMALL_FLEET)
        again = FleetProfile(**SMALL_FLEET)
        first = schedule_jsonl(generate_schedule(profile))
        assert first == schedule_jsonl(generate_schedule(again))
        assert first.count("\n") == SMALL_FLEET["requests"]

    def test_different_seeds_diverge(self):
        base = generate_schedule(FleetProfile(**SMALL_FLEET))
        moved = dict(SMALL_FLEET, seed=SMALL_FLEET["seed"] + 1)
        assert schedule_jsonl(base) != schedule_jsonl(
            generate_schedule(FleetProfile(**moved))
        )

    def test_batches_cap_at_the_limit_and_follow_tenant_runs(self):
        profile = FleetProfile(**dict(SMALL_FLEET, requests=60, batch_limit=3))
        schedule = generate_schedule(profile)
        by_batch = {}
        for record in schedule:
            by_batch.setdefault(record["batch"], []).append(record["tenant"])
        for tenants in by_batch.values():
            assert len(set(tenants)) == 1  # a batch never mixes tenants
            assert len(tenants) <= 3

    def test_repeat_runs_merge_to_identical_metrics(self):
        profile = FleetProfile(**SMALL_FLEET)
        first = run_fleet(profile, cache_mode="off", engine_kwargs=FAST)
        second = run_fleet(profile, cache_mode="off", engine_kwargs=FAST)
        assert first["metrics"] == second["metrics"]
        assert first["responses"] == second["responses"]
        assert first["requests"] == len(first["responses"]) > 0

    def test_jobs_partitioning_does_not_move_the_merged_metrics(self):
        profile = FleetProfile(**SMALL_FLEET)
        serial = run_fleet(profile, jobs=1, cache_mode="tenant", engine_kwargs=FAST)
        fanned = run_fleet(profile, jobs=3, cache_mode="tenant", engine_kwargs=FAST)
        assert serial["metrics"] == fanned["metrics"]
        assert serial["responses"] == fanned["responses"]
        assert serial["p99_latency_cycles"] == fanned["p99_latency_cycles"]
        assert serial["isolation_violations"] == 0
        assert fanned["isolation_violations"] == 0

    def test_warm_shared_root_hits_and_keeps_cycles_identical(self, tmp_path):
        profile = FleetProfile(**SMALL_FLEET)
        kwargs = dict(
            cache_mode="shared", cache_root=str(tmp_path), engine_kwargs=FAST
        )
        cold = run_fleet(profile, **kwargs)
        warm = run_fleet(profile, **kwargs)
        assert warm["warm_hit_rate"] == 1.0
        assert warm["disk_misses"] == 0
        # The cache is a host-time optimization: the simulated
        # timeline must not move between cold and warm runs.
        assert warm["total_latency_cycles"] == cold["total_latency_cycles"]
        assert [r["output"] for r in warm["responses"]] == [
            r["output"] for r in cold["responses"]
        ]

    def test_percentile_is_nearest_rank(self):
        assert percentile([], 0.5) == 0
        assert percentile([7], 0.99) == 7
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 51
        assert percentile(values, 0.99) == 100

    def test_catalog_is_a_pure_function_of_the_profile(self):
        profile = FleetProfile(**SMALL_FLEET)
        assert build_catalog(profile) == build_catalog(profile)
        assert len(build_catalog(profile)) == SMALL_FLEET["programs"]


class TestWorkerPool:
    def test_tenant_routing_is_stable_and_in_range(self):
        for workers in (1, 2, 5):
            for tenant in ("t00", "t01", "alpha", "beta"):
                index = tenant_worker(tenant, workers)
                assert 0 <= index < max(workers, 1)
                assert index == tenant_worker(tenant, workers)

    def test_inline_pool_round_trip_and_summary(self):
        pool = WorkerPool(workers=0, host_kwargs={"engine_kwargs": FAST})
        pool.start()
        pool.submit({"tenant": "a", "source": PROGRAM_XY, "seq": 0})
        kind, _index, response = pool.next_response(timeout=5)
        assert kind == "response"
        assert response["status"] == "ok"
        assert response["seq"] == 0
        summary = pool.shutdown()
        assert summary["tenants"] == ["a"]
        assert summary["isolation_violations"] == 0
        counters = summary["metrics"]["counters"]
        assert counters["repro_serving_requests_total"] == 1

    def test_process_pool_isolates_tenants_and_merges_metrics(self):
        pool = WorkerPool(workers=2, host_kwargs={"engine_kwargs": FAST})
        pool.start()
        expect = {}
        for seq, tenant in enumerate(["a", "b", "a", "b", "c", "a"]):
            pool.submit({"tenant": tenant, "source": PROGRAM_XY, "seq": seq})
            expect[seq] = tenant
        seen = {}
        for _ in range(len(expect)):
            kind, _index, response = pool.next_response(timeout=30)
            assert kind == "response"
            assert response["status"] == "ok"
            seen[response["seq"]] = response["tenant"]
        assert seen == expect
        summary = pool.shutdown()
        assert summary["tenants"] == ["a", "b", "c"]
        assert summary["isolation_violations"] == 0
        counters = summary["metrics"]["counters"]
        assert counters["repro_serving_requests_total"] == len(expect)
        assert summary["metrics"]["gauges"]["repro_serving_tenants"] == 3

    def test_bad_request_keeps_the_worker_alive(self):
        pool = WorkerPool(workers=0)
        pool.start()
        pool.submit({"tenant": "a", "seq": 0})  # no source, no catalog
        _kind, _index, response = pool.next_response(timeout=5)
        assert response["status"] == "error"
        pool.submit({"tenant": "a", "source": "print(2);", "seq": 1})
        _kind, _index, response = pool.next_response(timeout=5)
        assert response["status"] == "ok"
        assert response["output"] == ["2"]
        pool.shutdown()


class TestServingServer:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    async def _call(self, reader, writer, request):
        writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=30)
        return json.loads(line.decode())

    async def _drive(self, tmp_path):
        socket_path = os.path.join(str(tmp_path), "serve.sock")
        metrics_out = os.path.join(str(tmp_path), "metrics.jsonl")
        server = ServingServer(
            socket_path=socket_path,
            workers=0,
            engine_kwargs=FAST,
            catalog={"xy": PROGRAM_XY},
            metrics_out=metrics_out,
        )
        await server.start()
        reader, writer = await asyncio.open_unix_connection(socket_path)
        assert (await self._call(reader, writer, {"op": "ping"}))["status"] == "ok"
        ran = await self._call(
            reader, writer, {"tenant": "a", "program": "xy", "id": "req-1"}
        )
        assert ran["status"] == "ok"
        assert ran["id"] == "req-1"
        assert len(ran["output"]) == 1
        assert ran["latency_cycles"] > 0
        inline = await self._call(
            reader, writer, {"tenant": "b", "source": "print(41 + 1);"}
        )
        assert inline["output"] == ["42"]
        stats = await self._call(reader, writer, {"op": "stats"})
        assert stats["requests"] == 2
        assert stats["tenants"] == 2
        assert stats["isolation_violations"] == 0
        bye = await self._call(reader, writer, {"op": "shutdown"})
        assert bye["status"] == "ok"
        writer.close()
        await asyncio.wait_for(server.wait_closed(), timeout=30)
        return server, metrics_out

    def test_end_to_end_over_a_unix_socket(self, tmp_path):
        server, metrics_out = self._run(self._drive(tmp_path))
        assert server.summary["isolation_violations"] == 0
        counters = server.summary["metrics"]["counters"]
        assert counters["repro_serving_requests_total"] == 2
        with open(metrics_out) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert lines, "graceful shutdown must flush a metrics JSONL"
        assert lines[0]["counters"]["repro_serving_requests_total"] == 2

    async def _reject_after_drain(self, tmp_path):
        socket_path = os.path.join(str(tmp_path), "serve.sock")
        server = ServingServer(socket_path=socket_path, workers=0)
        await server.start()
        reader, writer = await asyncio.open_unix_connection(socket_path)
        await self._call(reader, writer, {"op": "shutdown"})
        writer.close()
        await asyncio.wait_for(server.wait_closed(), timeout=30)
        assert server.summary is not None

    def test_shutdown_without_traffic_still_reports_a_summary(self, tmp_path):
        self._run(self._reject_after_drain(tmp_path))
