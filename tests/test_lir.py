"""Tests for lowering, register allocation and native code generation."""

from repro.engine.config import BASELINE, FULL_SPEC
from repro.jsvm.bytecode import Op
from repro.lir.lowering import lower_graph
from repro.lir.native import generate_native
from repro.lir.regalloc import NUM_REGS, allocate_registers, build_intervals
from repro.mir.builder import build_mir
from repro.mir.specializer import specialize_types
from repro.opts.pass_manager import optimize

from tests.helpers import compile_and_profile


def lowered(source, name=None, config=BASELINE, param_values=None):
    _top, code = compile_and_profile(source, name)
    if not config.param_spec:
        param_values = None
    graph = build_mir(code, feedback=code.feedback, param_values=param_values)
    optimize(graph, config)
    return graph


class TestLowering:
    def test_phis_become_moves(self):
        graph = lowered(
            "function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; } f(5);"
        )
        lir = lower_graph(graph)
        ops = [i.op for i in lir.instructions]
        assert "move" in ops
        assert not any(op == "phi" for op in ops)

    def test_entry_is_index_zero(self):
        graph = lowered("function f(a) { return a; } f(1);")
        lir = lower_graph(graph)
        assert lir.block_starts[graph.entry.id] == 0

    def test_guards_have_snapshots(self):
        graph = lowered("function f(a, b) { return a + b; } f(1, 2);")
        lir = lower_graph(graph)
        guards = [i for i in lir.instructions if i.snapshot is not None]
        assert guards
        for guard in guards:
            assert guard.snapshot.pc >= 0

    def test_conditional_edges_get_trampolines(self):
        # `if` without `else`: the test's false edge reaches the join
        # block (which has phis) directly, so the phi moves need an
        # edge trampoline.
        source = """
        function f(c, n) {
          var x = 0;
          for (var i = 0; i < n; i++) { if (c) x += 1; }
          return x;
        }
        f(true, 3);
        """
        graph = lowered(source)
        lir = lower_graph(graph)
        edge_blocks = [k for k in lir.block_starts if isinstance(k, str)]
        assert edge_blocks, "branch edge into a phi block needs a trampoline"

    def test_jump_targets_resolve(self):
        graph = lowered("function f(n) { while (n > 0) n--; return n; } f(3);")
        native, _stats = generate_native(graph)
        for instruction in native.instructions:
            if instruction.targets is not None:
                for target in instruction.targets:
                    assert 0 <= target < len(native.instructions)


class TestRegisterAllocation:
    def test_locations_total(self):
        graph = lowered("function f(a, b, c) { return a * b + c; } f(1, 2, 3);")
        lir = lower_graph(graph)
        allocation = allocate_registers(lir)
        for vreg in range(lir.num_vregs):
            assert allocation.location_of(vreg) >= 0

    def test_no_spills_for_tiny_function(self):
        graph = lowered("function f(a) { return a + 1; } f(1);")
        lir = lower_graph(graph)
        allocation = allocate_registers(lir)
        assert allocation.num_spills == 0

    def test_high_pressure_spills(self):
        # 12 simultaneously-live values cannot fit 8 registers.
        body = "; ".join("var v%d = a + %d" % (i, i) for i in range(12))
        total = " + ".join("v%d" % i for i in range(12))
        source = "function f(a) { %s; return %s; } f(1);" % (body, total)
        graph = lowered(source)
        lir = lower_graph(graph)
        allocation = allocate_registers(lir)
        assert allocation.num_spills > 0
        assert allocation.num_slots > 0

    def test_interval_covers_loop(self):
        # A value live across a back edge must span the whole loop.
        source = """
        function f(n, k) {
          var s = 0;
          for (var i = 0; i < n; i++) s += k;
          return s;
        }
        f(5, 7);
        """
        graph = lowered(source)
        lir = lower_graph(graph)
        intervals = build_intervals(lir)
        by_vreg = {interval.vreg: interval for interval in intervals}
        # Every instruction's sources must lie inside their interval.
        for position, instruction in enumerate(lir.instructions):
            for vreg in instruction.srcs:
                interval = by_vreg[vreg]
                assert interval.start <= position <= interval.end

    def test_disjoint_intervals_share_registers(self):
        graph = lowered("function f(a) { var x = a + 1; var y = x + 1; return y; } f(1);")
        lir = lower_graph(graph)
        allocation = allocate_registers(lir)
        used = set(
            loc for loc in allocation.locations.values() if loc < NUM_REGS
        )
        # A straight dependency chain fits the register file with room
        # to spare and never spills.
        assert allocation.num_spills == 0
        assert len(used) < lir.num_vregs


class TestNativeCode:
    def test_size_metric(self):
        graph = lowered("function f(a, b) { return a + b; } f(1, 2);")
        native, stats = generate_native(graph)
        assert native.size == len(native.instructions) > 0
        assert stats["lir_instructions"] >= native.size

    def test_specialized_code_smaller(self):
        source = """
        function kernel(a, b, n) {
          var s = 0;
          for (var i = 0; i < n; i++) s += (a * i + b) & 255;
          return s;
        }
        kernel(3, 5, 50);
        """
        base_graph = lowered(source, "kernel", BASELINE)
        spec_graph = lowered(source, "kernel", FULL_SPEC, param_values=[3, 5, 50])
        base_native, _ = generate_native(base_graph)
        spec_native, _ = generate_native(spec_graph)
        assert spec_native.size < base_native.size

    def test_disassemble_smoke(self):
        graph = lowered("function f(a) { return a; } f(1);")
        native, _ = generate_native(graph)
        assert "return" in native.disassemble()

    def test_snapshot_locations_resolved(self):
        graph = lowered("function f(a, b) { return a + b; } f(1, 2);")
        native, _ = generate_native(graph)
        for instruction in native.instructions:
            if instruction.snapshot is not None:
                assert instruction.snapshot.locations is not None
                assert len(instruction.snapshot.locations) == len(
                    instruction.snapshot.vregs
                )
