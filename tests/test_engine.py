"""Engine-level tests: JIT entry, OSR, bailouts, policy, differential."""

import pytest

from repro import BASELINE, FULL_SPEC, PAPER_CONFIGS, Engine
from repro.engine.config import OptConfig

from tests.conftest import FAST, assert_same_output, run_engine, run_interp


class TestCompilationTriggers:
    def test_hot_function_compiles(self):
        source = "function f(x) { return x + 1; } var s = 0; for (var i = 0; i < 50; i++) s += f(1); print(s);"
        printed, engine = run_engine(source, BASELINE, **FAST)
        assert printed == ["100"]
        assert engine.stats.compiles >= 1

    def test_cold_function_stays_interpreted(self):
        source = "function f(x) { return x + 1; } print(f(1));"
        printed, engine = run_engine(source, BASELINE)
        assert printed == ["2"]
        assert engine.stats.compiles == 0

    def test_hot_loop_triggers_osr(self):
        source = """
        function main() { var s = 0; for (var i = 0; i < 5000; i++) s += i; return s; }
        print(main());
        """
        printed, engine = run_engine(source, BASELINE, **FAST)
        assert printed == ["12497500"]
        assert engine.stats.osr_compiles >= 1

    def test_toplevel_loop_triggers_osr(self):
        source = "var s = 0; for (var i = 0; i < 5000; i++) s += i; print(s);"
        printed, engine = run_engine(source, BASELINE, **FAST)
        assert printed == ["12497500"]
        assert engine.stats.osr_compiles >= 1

    def test_closure_functions_stay_interpreted(self):
        source = """
        function mk() { var c = 0; return function() { c++; return c; }; }
        var f = mk();
        var last = 0;
        for (var i = 0; i < 100; i++) last = f();
        print(last);
        """
        printed, engine = run_engine(source, BASELINE, **FAST)
        assert printed == ["100"]
        assert engine.stats.not_compilable


class TestSpecializationPolicy:
    HOT = """
    function f(a, b) { return a * 1000 + b; }
    var s = 0;
    for (var i = 0; i < 100; i++) s += f(3, 4);
    print(s);
    """

    def test_same_args_specialize_successfully(self):
        printed, engine = run_engine(self.HOT, FULL_SPEC, **FAST)
        assert printed == ["300400"]
        assert len(engine.stats.specialized_functions) >= 1
        assert engine.stats.successfully_specialized
        assert not engine.stats.deoptimized_functions

    def test_changing_args_deoptimizes_once(self):
        source = """
        function f(a, b) { return a + b; }
        var s = 0;
        for (var i = 0; i < 50; i++) s += f(1, 2);
        for (var i = 0; i < 50; i++) s += f(i, 2);
        print(s);
        """
        printed, engine = run_engine(source, FULL_SPEC, **FAST)
        assert printed == [str(50 * 3 + sum(i + 2 for i in range(50)))]
        assert engine.stats.deoptimized_functions
        # Marked never-specialize: exactly one deopt despite many arg sets.
        assert engine.stats.invalidations == 1

    def test_cache_hit_on_alternating_same_args(self):
        source = """
        function f(a) { return a * 2; }
        var s = 0;
        for (var i = 0; i < 100; i++) s += f(21);
        print(s);
        """
        printed, engine = run_engine(source, FULL_SPEC, **FAST)
        assert printed == ["4200"]
        assert engine.stats.compiles_per_function  # compiled once
        counts = list(engine.stats.compiles_per_function.values())
        assert max(counts) <= 2  # no recompile storm

    def test_object_identity_matters(self):
        source = """
        function f(o) { return o.x; }
        var a = {x: 1};
        var s = 0;
        for (var i = 0; i < 60; i++) s += f(a);
        var b = {x: 1};
        s += f(b);
        print(s);
        """
        printed, engine = run_engine(source, FULL_SPEC, **FAST)
        assert printed == ["61"]
        assert engine.stats.deoptimized_functions

    def test_baseline_never_specializes(self):
        _printed, engine = run_engine(self.HOT, BASELINE, **FAST)
        assert not engine.stats.specialized_functions


class TestBailouts:
    def test_type_guard_bailout_recovers(self):
        source = """
        function f(a) { return a + a; }
        var s = "";
        for (var i = 0; i < 50; i++) s = f(1);
        s = f("x");
        print(s);
        """
        printed, engine = run_engine(source, BASELINE, **FAST)
        assert printed == ["xx"]
        assert engine.stats.bailouts >= 1

    def test_overflow_bailout_produces_double(self):
        source = """
        function f(a) { return a + a; }
        var r = 0;
        for (var i = 0; i < 50; i++) r = f(3);
        r = f(2000000000);
        print(r);
        """
        printed, engine = run_engine(source, BASELINE, **FAST)
        assert printed == ["4000000000"]

    def test_oob_store_bailout_grows_array(self):
        source = """
        function f(a, i, v) { a[i] = v; return a.length; }
        var arr = [0];
        var r = 0;
        for (var k = 0; k < 50; k++) r = f(arr, 0, k);
        r = f(arr, 5, 9);
        print(r, arr[5], arr.length);
        """
        printed, engine = run_engine(source, BASELINE, **FAST)
        assert printed == ["6 9 6"]

    def test_repeated_bailouts_force_generic(self):
        # Alternating types at a site defeat speculation; the engine
        # must converge to generic code instead of bailout-looping.
        source = """
        function f(a) { return a + a; }
        var r = 0;
        for (var i = 0; i < 40; i++) r = f(1);
        for (var i = 0; i < 40; i++) r = f(i % 2 ? 1 : "x");
        print(r);
        """
        printed, engine = run_engine(source, BASELINE, **FAST)
        assert printed == ["2"]
        assert engine.stats.bailouts <= 20  # bounded, no storm

    def test_osr_bailout_resumes_loop(self):
        source = """
        function main(n) {
          var s = 0;
          for (var i = 0; i < n; i++) {
            if (i == 500) s += "!"; else s += 1;
          }
          return s;
        }
        print(main(600));
        """
        # s becomes a string mid-loop: OSR'd code bails, loop finishes.
        expected = run_interp(source)
        printed, engine = run_engine(source, BASELINE, **FAST)
        assert printed == expected
        assert engine.stats.osr_compiles >= 1


class TestRecursionAndDepth:
    def test_native_recursion(self):
        source = "function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); } print(fib(16));"
        printed, engine = run_engine(source, BASELINE, **FAST)
        assert printed == ["987"]
        assert engine.stats.compiles >= 1

    def test_too_much_recursion_from_native(self):
        from repro.errors import JSRangeError

        source = """
        function f(n) { return f(n + 1); }
        var caught = 0;
        f(0);
        """
        engine = Engine(config=BASELINE, **FAST)
        with pytest.raises(JSRangeError):
            engine.run_source(source)


class TestDifferentialAllConfigs:
    """The differential oracle over every paper configuration."""

    def test_numeric_kernel(self):
        source = """
        function kernel(a, b, n) {
          var s = 0;
          for (var i = 0; i < n; i++) s += (a * i + b) & 255;
          return s;
        }
        var total = 0;
        for (var r = 0; r < 30; r++) total += kernel(3, 5, 40);
        print(total);
        """
        assert_same_output(source, configs=PAPER_CONFIGS, **FAST)

    def test_array_kernel(self):
        source = """
        function sum(a) {
          var s = 0;
          for (var i = 0; i < a.length; i++) s += a[i];
          return s;
        }
        var arr = [];
        for (var i = 0; i < 64; i++) arr[i] = i * 3;
        var total = 0;
        for (var r = 0; r < 30; r++) total += sum(arr);
        print(total);
        """
        assert_same_output(source, configs=PAPER_CONFIGS, **FAST)

    def test_closure_map_kernel(self):
        source = """
        function inc(x) { return x + 1; }
        function map(s, b, n, f) {
          var i = b;
          while (i < n) { s[i] = f(s[i]); i++; }
          return s;
        }
        var arr = [];
        for (var i = 0; i < 30; i++) arr[i] = i;
        for (var r = 0; r < 30; r++) map(arr, 2, 30, inc);
        print(arr.join(","));
        """
        assert_same_output(source, configs=PAPER_CONFIGS, **FAST)

    def test_string_kernel(self):
        source = """
        function hash(s) {
          var h = 0;
          for (var i = 0; i < s.length; i++) h = (h * 31 + s.charCodeAt(i)) & 0xffffff;
          return h;
        }
        var total = 0;
        for (var r = 0; r < 40; r++) total += hash("specialize me please");
        print(total);
        """
        assert_same_output(source, configs=PAPER_CONFIGS, **FAST)

    def test_object_kernel(self):
        source = """
        function norm(p) { return p.x * p.x + p.y * p.y; }
        var pt = {x: 3, y: 4};
        var total = 0;
        for (var r = 0; r < 60; r++) total += norm(pt);
        print(total);
        """
        assert_same_output(source, configs=PAPER_CONFIGS, **FAST)

    def test_polymorphic_call_sites(self):
        source = """
        function apply(f, x) { return f(x); }
        function a(x) { return x + 1; }
        function b(x) { return x * 2; }
        var total = 0;
        for (var i = 0; i < 60; i++) total += apply(i % 2 ? a : b, i);
        print(total);
        """
        assert_same_output(source, configs=PAPER_CONFIGS, **FAST)

    def test_deep_expression_pressure(self):
        source = """
        function f(a, b, c, d) {
          return (a+b)*(c+d) + (a+c)*(b+d) + (a+d)*(b+c) + (a*b - c*d) + (a - b + c - d);
        }
        var total = 0;
        for (var i = 0; i < 40; i++) total += f(1, 2, 3, 4);
        print(total);
        """
        assert_same_output(source, configs=PAPER_CONFIGS, **FAST)

    def test_negative_zero_and_nan_corners(self):
        source = """
        function f(a, b) { return a * b; }
        var r = 0;
        for (var i = 0; i < 40; i++) r = f(-3, 0);
        print(1 / r);
        """
        assert_same_output(source, **FAST)
