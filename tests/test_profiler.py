"""Tests for the cycle-exact profiling subsystem (docs/PROFILING.md).

The profiler's contract has two halves:

* **Exactness** — every cycle in ``EngineStats.total_cycles`` is
  attributed to a (function, tier, block) row; ``attributed_cycles()``
  and the ``attribution()`` row sum both equal ``total_cycles`` on
  every benchmark of every suite, on both executor backends.
* **Zero observer effect** — a profiled run is bit-identical to an
  unprofiled one: same printed output, same ``EngineStats``, same JIT
  trace stream (modulo the one trailing ``profile.summary`` event).

Plus the reporting layer: collapsed stacks round-trip through the
parser and sum to ``total_cycles``, the guard-forensics table matches
the ``bailout.guard`` event stream, and the annotated disassembly
carries per-instruction counts for specialized binaries.
"""

import json
import re

import pytest

from repro.engine.config import FULL_SPEC
from repro.engine.runtime_engine import Engine
from repro.jsvm.bytecode import CodeObject
from repro.telemetry.profiler import ENTRY_BLOCK, TIERS, CycleProfiler, block_bodies
from repro.telemetry.reports import (
    annotate_function,
    format_function_table,
    function_table_rows,
    parse_collapsed,
    profile_as_dict,
    to_collapsed,
    write_collapsed,
)
from repro.telemetry.tracing import Tracer
from repro.bench.harness import run_benchmark
from repro.workloads import ALL_SUITES

#: Thresholds that compile quickly but under which every suite
#: benchmark still completes (the tier-1 FAST thresholds trip a
#: pre-existing engine issue on access-binary-trees).
FAST5 = {"hot_call_threshold": 5, "osr_backedge_threshold": 20}

#: Every benchmark of every suite, for the exactness sweep.
ALL_BENCHMARKS = [
    (suite_name, benchmark.name)
    for suite_name, suite in sorted(ALL_SUITES.items())
    for benchmark in suite
]

#: Two benchmarks per suite for the slower reference backend.
BENCH_SUBSET = [
    ("sunspider", "access-nsieve"),
    ("sunspider", "string-unpack-code"),
    ("v8", "richards"),
    ("v8", "regexp"),
    ("kraken", "stanford-crypto-ccm"),
    ("kraken", "audio-beat-detection"),
]

HOT_SRC = """
function square(x) { return x * x; }
var total = 0;
for (var i = 0; i < 50; i++) total += square(7);
print(total);
"""

#: Specializes on (2, 3), deopts on new args, then a type-guard
#: bailout on the generic binary — exercises every transition tier.
DEOPT_SRC = """
function scale(v, k) { return v * k + 1; }
var t = 0;
for (var i = 0; i < 9; i++) t += scale(2, 3);
t += scale(10, 10);
t += scale("oops", 3);
print(t);
"""

OSR_SRC = """
function f(n) { var s = 0; for (var i = 0; i < n; i++) { s = s + i; } return s; }
print(f(500));
print(f(501));
"""


def _bench(suite_name, bench_name):
    for benchmark in ALL_SUITES[suite_name]:
        if benchmark.name == bench_name:
            return benchmark
    raise AssertionError("no benchmark %s/%s" % (suite_name, bench_name))


def _run(source, backend="closure", trace=False, profile=False, **engine_kwargs):
    """One engine run; returns (observables, events or None, engine)."""
    CodeObject._next_id = 1
    tracer = Tracer() if trace else None
    profiler = CycleProfiler() if profile else None
    engine = Engine(
        config=FULL_SPEC,
        executor_backend=backend,
        tracer=tracer,
        cycle_profiler=profiler,
        **dict(FAST5, **engine_kwargs)
    )
    printed = engine.run_source(source)
    observables = {
        "printed": list(printed),
        "summary": engine.stats.summary(),
        "stats": engine.stats.as_dict(),
        "cycles": engine.executor.cycles,
        "native_instructions": engine.executor.instructions_executed,
        "interp_ops": engine.interpreter.ops_executed,
    }
    return observables, (list(tracer.events) if tracer is not None else None), engine


_REF_ADDR = re.compile(r"\('ref', \d+\)")


def _normalized(events):
    out = []
    for event in events:
        event = dict(event)
        for field, value in event.items():
            if isinstance(value, str):
                event[field] = _REF_ADDR.sub("('ref', _)", value)
        out.append(event)
    return out


def _assert_exact(profiler, stats):
    """The exactness invariant, all three ways of summing."""
    total = stats.total_cycles
    assert profiler.attributed_cycles() == total
    assert sum(row["cycles"] for row in profiler.attribution()) == total
    totals = profiler.function_totals()
    assert sum(entry["self_cycles"] for entry in totals.values()) == total


class TestExactness:
    """Attributed cycles sum to total_cycles on every suite benchmark."""

    @pytest.mark.parametrize(
        "suite_name,bench_name", ALL_BENCHMARKS,
        ids=["%s/%s" % pair for pair in ALL_BENCHMARKS],
    )
    def test_closure_backend_exact(self, suite_name, bench_name):
        run = run_benchmark(
            _bench(suite_name, bench_name), FULL_SPEC,
            engine_kwargs=dict(FAST5), profile=True,
        )
        total = run.summary["total_cycles"]
        assert run.profile.attributed_cycles() == total
        assert sum(row["cycles"] for row in run.profile.attribution()) == total

    @pytest.mark.parametrize(
        "suite_name,bench_name", BENCH_SUBSET,
        ids=["%s/%s" % pair for pair in BENCH_SUBSET],
    )
    def test_reference_backend_exact(self, suite_name, bench_name):
        run = run_benchmark(
            _bench(suite_name, bench_name), FULL_SPEC,
            engine_kwargs=dict(FAST5, executor_backend="simple"), profile=True,
        )
        total = run.summary["total_cycles"]
        assert run.profile.attributed_cycles() == total
        assert sum(row["cycles"] for row in run.profile.attribution()) == total

    @pytest.mark.parametrize("backend", ["simple", "closure", "whole"])
    @pytest.mark.parametrize("source", [HOT_SRC, DEOPT_SRC, OSR_SRC])
    def test_scripted_transitions_exact(self, backend, source):
        _obs, _events, engine = _run(source, backend, profile=True)
        _assert_exact(engine.cycle_profiler, engine.stats)


class TestBitIdentity:
    """Profiling never perturbs any deterministic observable."""

    @pytest.mark.parametrize("backend", ["simple", "closure", "whole"])
    @pytest.mark.parametrize("source", [HOT_SRC, DEOPT_SRC, OSR_SRC])
    def test_scripts_identical_with_profiling(self, backend, source):
        plain, plain_events, _ = _run(source, backend, trace=True)
        profiled, prof_events, engine = _run(source, backend, trace=True, profile=True)
        assert profiled == plain
        assert _normalized(
            [e for e in prof_events if e["ch"] != "profile"]
        ) == _normalized(plain_events)
        # The only difference is one trailing summary event.
        extra = [e for e in prof_events if e["ch"] == "profile"]
        assert len(extra) == 1 and extra[0] is prof_events[-1]
        assert extra[0]["event"] == "summary"
        assert extra[0]["attributed_cycles"] == extra[0]["total_cycles"]
        assert extra[0]["total_cycles"] == engine.stats.total_cycles

    @pytest.mark.parametrize(
        "suite_name,bench_name",
        [("sunspider", "access-nsieve"), ("v8", "regexp"),
         ("kraken", "audio-beat-detection")],
        ids=["sunspider", "v8", "kraken"],
    )
    @pytest.mark.parametrize("backend", ["simple", "closure", "whole"])
    def test_benchmarks_identical_with_profiling(self, backend, suite_name, bench_name):
        source = _bench(suite_name, bench_name).source
        plain, plain_events, _ = _run(source, backend, trace=True)
        profiled, prof_events, _ = _run(source, backend, trace=True, profile=True)
        assert profiled == plain
        assert _normalized(
            [e for e in prof_events if e["ch"] != "profile"]
        ) == _normalized(plain_events)

    def test_summary_event_needs_both_tracer_and_profiler(self):
        _obs, events, _ = _run(HOT_SRC, trace=True)
        assert not [e for e in events if e["ch"] == "profile"]
        _obs, _events, engine = _run(HOT_SRC, profile=True)
        assert engine.tracer is None  # no tracer: summary has nowhere to go

    def test_disabled_profiler_leaves_no_hooks(self):
        _obs, _events, engine = _run(HOT_SRC)
        assert engine.cycle_profiler is None
        assert engine.interpreter.cycle_profiler is None
        assert engine.executor.cycle_profiler is None


class TestAttribution:
    """The (function, tier, block) rows carry the right structure."""

    def test_tiers_and_blocks(self):
        _obs, _events, engine = _run(HOT_SRC, profile=True)
        rows = engine.cycle_profiler.attribution()
        tiers = {row["tier"] for row in rows}
        assert tiers <= set(TIERS)
        assert {"interp", "native", "compile"} <= tiers
        native_rows = [row for row in rows if row["tier"] == "native"]
        assert any(row["block"] == ENTRY_BLOCK for row in native_rows)
        assert any(isinstance(row["block"], int) for row in native_rows)
        square_rows = [row for row in native_rows if row["fn"] == "square"]
        assert square_rows
        for row in square_rows:
            assert row["generation"] == 1
        # Interpreter rows attribute per function, not per block.
        for row in rows:
            if row["tier"] != "native":
                assert row["block"] is None

    def test_per_instruction_counts_match_across_backends(self):
        profiles = {}
        for backend in ("simple", "closure"):
            _obs, _events, engine = _run(DEOPT_SRC, backend, profile=True)
            profiles[backend] = {
                (record.code_id, record.generation): record
                for record in engine.cycle_profiler.binaries
            }
        assert set(profiles["simple"]) == set(profiles["closure"])
        for key, reference in profiles["simple"].items():
            closure = profiles["closure"][key]
            assert closure.resolved_counts() == reference.resolved_counts(), key
            assert closure.forensics == reference.forensics, key
            assert closure.entry_count == reference.entry_count, key
            assert closure.entry_cycles == reference.entry_cycles, key

    def test_function_totals_self_and_inclusive(self):
        _obs, _events, engine = _run(HOT_SRC, profile=True)
        profiler = engine.cycle_profiler
        totals = profiler.function_totals()
        attributed = profiler.attributed_cycles()
        for entry in totals.values():
            assert entry["inclusive_cycles"] >= entry["self_cycles"] >= 0
            assert entry["self_cycles"] == sum(entry["tiers"].values())
        # The toplevel script's inclusive time covers everything below it.
        toplevel = max(
            (e for e in totals.values() if e["code_id"] is not None),
            key=lambda e: e["inclusive_cycles"],
        )
        assert toplevel["inclusive_cycles"] == attributed - totals[None]["self_cycles"]

    def test_recursion_counts_once_per_stack(self):
        source = """
        function fib(n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
        print(fib(12));
        """
        _obs, _events, engine = _run(source, profile=True)
        profiler = engine.cycle_profiler
        _assert_exact(profiler, engine.stats)
        totals = profiler.function_totals()
        fib = next(e for e in totals.values() if e["name"] == "fib")
        # Nested fib frames must not double-count: inclusive stays
        # bounded by everything the engine attributed at all.
        assert fib["self_cycles"] <= fib["inclusive_cycles"]
        assert fib["inclusive_cycles"] <= profiler.attributed_cycles()

    def test_block_bodies_partition_the_binary(self):
        _obs, _events, engine = _run(HOT_SRC, profile=True)
        record = engine.cycle_profiler.binaries[0]
        bodies = block_bodies(record.native)
        covered = sorted(index for body in bodies.values() for index in body)
        assert covered == list(range(record.native.size))
        for leader, body in bodies.items():
            assert body[0] == leader


class TestGuardForensics:
    """The forensics table matches the bailout.guard event stream."""

    @pytest.mark.parametrize("backend", ["simple", "closure", "whole"])
    def test_forensics_match_trace_events(self, backend):
        _obs, events, engine = _run(DEOPT_SRC, backend, trace=True, profile=True)
        profiler = engine.cycle_profiler
        guard_events = [e for e in events if e["ch"] == "bailout"]
        assert guard_events, "DEOPT_SRC must produce at least one bailout"
        assert profiler.guard_failures() == len(guard_events)
        assert profiler.guard_failures() == engine.stats.bailouts
        by_index = {}
        for event in guard_events:
            index = event["native_index"] if event["native_index"] is not None else -1
            by_index[index] = by_index.get(index, 0) + 1
        recorded = {}
        for record in profiler.binaries:
            for index, entry in record.forensics.items():
                recorded[index] = recorded.get(index, 0) + entry["count"]
                assert entry["guard_op"] == next(
                    e["guard_op"] for e in guard_events
                    if (e["native_index"] if e["native_index"] is not None else -1)
                    == index
                )
        assert recorded == by_index

    def test_forensics_entry_fields(self):
        _obs, _events, engine = _run(DEOPT_SRC, profile=True)
        failures = [
            entry
            for record in engine.cycle_profiler.binaries
            for entry in record.forensics.values()
        ]
        assert failures
        for entry in failures:
            assert set(entry) == {
                "native_index", "guard_op", "reason",
                "resume_pc", "resume_mode", "resume_point", "count",
            }
            assert entry["resume_mode"] in ("at", "after")
            assert entry["count"] >= 1


class TestCollapsedStacks:
    """Flamegraph export round-trips and sums exactly."""

    @pytest.mark.parametrize("source", [HOT_SRC, DEOPT_SRC])
    def test_round_trip_sums_to_total(self, source):
        _obs, _events, engine = _run(source, profile=True)
        text = to_collapsed(engine.cycle_profiler)
        stacks = parse_collapsed(text)
        assert stacks
        assert sum(count for _frames, count in stacks) == engine.stats.total_cycles
        for frames, count in stacks:
            assert count > 0
            leaf = frames[-1]
            assert leaf.startswith("[") and leaf.strip("[]") in TIERS

    def test_write_collapsed(self, tmp_path):
        _obs, _events, engine = _run(HOT_SRC, profile=True)
        path = tmp_path / "stacks.folded"
        write_collapsed(engine.cycle_profiler, str(path))
        stacks = parse_collapsed(path.read_text())
        assert sum(count for _frames, count in stacks) == engine.stats.total_cycles

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_collapsed("justoneword\n")
        with pytest.raises(ValueError):
            parse_collapsed("a;b notanumber\n")


class TestReports:
    """Hot-function table, annotated disassembly, JSON bundle."""

    def test_function_table(self):
        _obs, _events, engine = _run(HOT_SRC, profile=True)
        text = format_function_table(engine.cycle_profiler, engine.stats.total_cycles)
        assert "function" in text and "self%" in text and "inclusive" in text
        assert "square" in text
        rows = function_table_rows(engine.cycle_profiler)
        assert rows == sorted(rows, key=lambda e: -e["self_cycles"])

    def test_function_table_top_truncates(self):
        _obs, _events, engine = _run(DEOPT_SRC, profile=True)
        text = format_function_table(engine.cycle_profiler, top=1)
        assert "... " in text and " more" in text

    def test_annotate_specialized_function(self):
        _obs, _events, engine = _run(DEOPT_SRC, profile=True)
        text = annotate_function(engine.cycle_profiler, "scale")
        assert "binary 1/2" in text and "binary 2/2" in text
        assert "specialized" in text and "generic" in text
        assert ";; specialized on: [2, 3]" in text
        assert "-- guard forensics --" in text
        # Per-instruction rows carry real execution counts in both
        # binaries: split on the section headers and require each
        # binary to show at least one instruction with count > 0.
        for section in text.split("== scale")[1:]:
            counts = [
                int(match.group(3))
                for match in re.finditer(
                    r"^(=>|  ) +(\d+) +(\d+) +(\d+)", section, re.MULTILINE
                )
            ]
            assert counts and any(count > 0 for count in counts)

    def test_annotate_marks_osr_entry(self):
        _obs, _events, engine = _run(OSR_SRC, profile=True)
        text = annotate_function(engine.cycle_profiler, "f")
        assert re.search(r"^=> +\d+", text, re.MULTILINE)

    def test_annotate_unknown_function(self):
        _obs, _events, engine = _run(HOT_SRC, profile=True)
        with pytest.raises(ValueError) as info:
            annotate_function(engine.cycle_profiler, "nope")
        assert "square" in str(info.value)

    def test_profile_as_dict_is_json_safe(self):
        _obs, _events, engine = _run(DEOPT_SRC, profile=True)
        bundle = profile_as_dict(engine.cycle_profiler, engine.stats)
        encoded = json.loads(json.dumps(bundle))
        assert encoded["summary"]["attributed_cycles"] == engine.stats.total_cycles
        assert encoded["stats"]["total_cycles"] == engine.stats.total_cycles
        assert encoded["guard_forensics"]
        assert sum(row["cycles"] for row in encoded["attribution"]) == (
            engine.stats.total_cycles
        )


class TestHarness:
    """run_benchmark(profile=True) plumbs the profiler through."""

    def test_run_benchmark_profile(self):
        run = run_benchmark(
            _bench("sunspider", "bitops-bits-in-byte"), FULL_SPEC,
            engine_kwargs=dict(FAST5), profile=True,
        )
        assert run.profile is not None
        assert run.profile.attributed_cycles() == run.summary["total_cycles"]

    def test_run_benchmark_default_has_no_profile(self):
        run = run_benchmark(
            _bench("sunspider", "bitops-bits-in-byte"), FULL_SPEC,
            engine_kwargs=dict(FAST5),
        )
        assert run.profile is None
