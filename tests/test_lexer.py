"""Unit tests for the lexer."""

import pytest

from repro.errors import JSSyntaxError
from repro.jsvm.lexer import tokenize
from repro.jsvm.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestNumbers:
    def test_integer(self):
        assert values("42") == [42]

    def test_zero(self):
        assert values("0") == [0]

    def test_float(self):
        assert values("3.25") == [3.25]

    def test_float_exponent(self):
        assert values("1e3") == [1000]

    def test_float_negative_exponent(self):
        assert values("1e-2") == [0.01]

    def test_float_exponent_plus(self):
        assert values("2.5e+2") == [250]

    def test_hex(self):
        assert values("0xff") == [255]

    def test_hex_upper(self):
        assert values("0XFF") == [255]

    def test_leading_dot(self):
        assert values(".5") == [0.5]

    def test_trailing_dot(self):
        assert values("1.") == [1]

    def test_integral_float_normalizes_to_int(self):
        assert values("4.0") == [4]
        assert type(values("4.0")[0]) is int

    def test_huge_integer_becomes_double(self):
        result = values("4294967296")[0]
        assert type(result) is float

    def test_malformed_hex(self):
        with pytest.raises(JSSyntaxError):
            tokenize("0x")

    def test_number_then_dot_method(self):
        # "1 .toString" style member access after a number
        tokens = tokenize("x.e")  # e after dot must not parse as exponent
        assert tokens[2].value == "e"


class TestStrings:
    def test_double_quoted(self):
        assert values('"hi"') == ["hi"]

    def test_single_quoted(self):
        assert values("'hi'") == ["hi"]

    def test_escapes(self):
        assert values(r'"\n\t\\"') == ["\n\t\\"]

    def test_quote_escape(self):
        assert values(r'"a\"b"') == ['a"b']

    def test_hex_escape(self):
        assert values(r'"\x41"') == ["A"]

    def test_unicode_escape(self):
        assert values(r'"A"') == ["A"]

    def test_unknown_escape_passes_through(self):
        assert values(r'"\q"') == ["q"]

    def test_unterminated(self):
        with pytest.raises(JSSyntaxError):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(JSSyntaxError):
            tokenize('"a\nb"')

    def test_empty_string(self):
        assert values('""') == [""]


class TestComments:
    def test_line_comment(self):
        assert values("1 // two\n2") == [1, 2]

    def test_block_comment(self):
        assert values("1 /* x */ 2") == [1, 2]

    def test_multiline_block_comment(self):
        assert values("1 /* a\nb\nc */ 2") == [1, 2]

    def test_unterminated_block_comment(self):
        with pytest.raises(JSSyntaxError):
            tokenize("1 /* oops")


class TestPunctuators:
    def test_longest_match(self):
        assert values("a >>>= b") == ["a", ">>>=", "b"]

    def test_shift_vs_relational(self):
        assert values("a >> b >>> c") == ["a", ">>", "b", ">>>", "c"]

    def test_strict_equality(self):
        assert values("a === b !== c") == ["a", "===", "b", "!==", "c"]

    def test_increments(self):
        assert values("++x--") == ["++", "x", "--"]

    def test_compound_assign(self):
        assert values("x <<= 1") == ["x", "<<=", 1]

    def test_unexpected_character(self):
        with pytest.raises(JSSyntaxError):
            tokenize("a # b")


class TestIdentifiersAndKeywords:
    def test_keyword(self):
        token = tokenize("while")[0]
        assert token.type == TokenType.KEYWORD

    def test_identifier(self):
        token = tokenize("whileLoop")[0]
        assert token.type == TokenType.IDENT

    def test_dollar_and_underscore(self):
        assert values("$x _y") == ["$x", "_y"]

    def test_digits_in_identifier(self):
        assert values("v42") == ["v42"]


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nbb\n  c")
        assert [(t.line, t.column) for t in tokens[:-1]] == [(1, 1), (2, 1), (3, 3)]

    def test_eof_token(self):
        assert kinds("")[-1] == TokenType.EOF
