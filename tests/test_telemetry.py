"""Tests for the telemetry layer (profiler, histograms, code size)."""

from repro.jsvm.interpreter import Interpreter
from repro.telemetry.histograms import (
    CallProfiler,
    FIGURE4_CATEGORIES,
    histogram,
    percent_histogram,
    type_distribution,
)


def profile_source(source):
    profiler = CallProfiler()
    Interpreter(profiler=profiler).run_source(source)
    return profiler


class TestCallProfiler:
    def test_counts_calls(self):
        profiler = profile_source(
            "function f() { return 1; } f(); f(); f();"
        )
        profile = list(profiler.profiles.values())[0]
        assert profile.call_count == 3

    def test_distinct_argument_sets(self):
        profiler = profile_source(
            "function f(x) { return x; } f(1); f(1); f(2); f('a');"
        )
        profile = list(profiler.profiles.values())[0]
        assert profile.call_count == 4
        assert profile.distinct_argument_sets == 3
        assert not profile.monomorphic

    def test_monomorphic_detection(self):
        profiler = profile_source("function f(x) { return x; } f(5); f(5); f(5);")
        profile = list(profiler.profiles.values())[0]
        assert profile.monomorphic

    def test_object_identity_in_argument_sets(self):
        profiler = profile_source(
            """
            function f(o) { return o; }
            var a = {};
            f(a); f(a); f({});
            """
        )
        profile = list(profiler.profiles.values())[0]
        assert profile.distinct_argument_sets == 2

    def test_per_closure_profiles(self):
        # Two closures of the same code profile separately (the paper
        # counts functions, not scripts).
        profiler = profile_source(
            """
            function mk() { return function(x) { return x; }; }
            var f = mk(), g = mk();
            f(1); g(2); g(3);
            """
        )
        counts = sorted(
            p.call_count for p in profiler.profiles.values() if p.name == "<anonymous>"
        )
        assert counts == [1, 2]

    def test_fractions(self):
        profiler = profile_source(
            """
            function once() { return 1; }
            function twice() { return 2; }
            once(); twice(); twice();
            """
        )
        assert abs(profiler.fraction_called_once() - 0.5) < 1e-9
        assert profiler.fraction_single_argument_set() == 1.0

    def test_first_arg_tags(self):
        profiler = profile_source("function f(a, b) { return a; } f(1, 'x');")
        profile = list(profiler.profiles.values())[0]
        assert profile.first_arg_tags == ("int", "string")

    def test_histograms(self):
        profiler = profile_source(
            "function a() {} function b() {} a(); b(); b();"
        )
        calls = profiler.call_count_histogram()
        assert calls[1] == 1 and calls[2] == 1

    def test_synthetic_recording(self):
        profiler = CallProfiler()
        profiler.record_synthetic_call("fn0", ("set", 0), ("object",), name="site.fn0")
        profiler.record_synthetic_call("fn0", ("set", 0), ("object",))
        profiler.record_synthetic_call("fn0", ("set", 1), ("object",))
        profile = profiler.profiles["fn0"]
        assert profile.call_count == 3
        assert profile.distinct_argument_sets == 2


class TestHistogramHelpers:
    def test_histogram(self):
        assert histogram([1, 1, 2]) == {1: 2, 2: 1}

    def test_percent_histogram(self):
        result = percent_histogram([1, 1, 2, 2])
        assert result[1] == 0.5 and result[2] == 0.5

    def test_type_distribution_has_all_categories(self):
        dist = type_distribution(["int", "int", "string"])
        assert set(dist) == set(FIGURE4_CATEGORIES)
        assert abs(dist["int"] - 2 / 3.0) < 1e-9
        assert dist["object"] == 0.0

    def test_empty_distribution(self):
        dist = type_distribution([])
        assert all(v == 0.0 for v in dist.values())


class TestCodeSizeReport:
    def test_average_reduction(self):
        from repro import BASELINE, FULL_SPEC, Engine
        from repro.telemetry.codesize import CodeSizeReport

        source = """
        function kernel(a, b) {
          var s = 0;
          for (var i = 0; i < 200; i++) s += (a * i + b) & 255;
          return s;
        }
        var t = 0;
        for (var r = 0; r < 40; r++) t += kernel(3, 5);
        print(t);
        """
        base = Engine(config=BASELINE, hot_call_threshold=3)
        base.run_source(source)
        spec = Engine(config=FULL_SPEC, hot_call_threshold=3)
        spec.run_source(source)
        # code ids differ between runs (fresh compiles): align by name.
        report = CodeSizeReport(base, spec)
        # Whole-engine report matches code ids; the bench-level study
        # matches by name.  Here both engines compiled the same script
        # object? No - separate compile_source calls.  Just check the
        # raw data is present and positive.
        assert base.stats.code_sizes
        assert spec.stats.code_sizes
        base_kernel = [
            s for cid, s in base.stats.code_sizes.items()
            if base.stats.function_names[cid] == "kernel"
        ][0]
        spec_kernel = [
            s for cid, s in spec.stats.code_sizes.items()
            if spec.stats.function_names[cid] == "kernel"
        ][0]
        assert spec_kernel < base_kernel
