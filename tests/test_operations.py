"""Unit tests for shared operator semantics (interpreter == folder == native)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.jsvm import operations
from repro.jsvm.bytecode import Op
from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.values import INT32_MAX, INT32_MIN, NULL, UNDEFINED
from repro.errors import JSTypeError


def binop(op, a, b):
    return operations.binary_op(op, a, b)


class TestToInt32:
    def test_plain(self):
        assert operations.to_int32(5) == 5

    def test_truncates(self):
        assert operations.to_int32(5.9) == 5
        assert operations.to_int32(-5.9) == -5

    def test_wraps(self):
        assert operations.to_int32(2 ** 31) == -(2 ** 31)
        assert operations.to_int32(2 ** 32 + 3) == 3

    def test_nan_and_inf(self):
        assert operations.to_int32(float("nan")) == 0
        assert operations.to_int32(float("inf")) == 0

    def test_string(self):
        assert operations.to_int32("10") == 10

    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    def test_range_invariant(self, n):
        assert INT32_MIN <= operations.to_int32(n) <= INT32_MAX

    def test_to_uint32(self):
        assert operations.to_uint32(-1) == 2 ** 32 - 1


class TestAdd:
    def test_int_add(self):
        assert binop(Op.ADD, 2, 3) == 5

    def test_string_concat(self):
        assert binop(Op.ADD, "a", "b") == "ab"

    def test_mixed_concat(self):
        assert binop(Op.ADD, "a", 1) == "a1"
        assert binop(Op.ADD, 1, "a") == "1a"

    def test_array_concat(self):
        assert binop(Op.ADD, JSArray([1, 2]), "!") == "1,2!"

    def test_object_concat(self):
        assert binop(Op.ADD, JSObject(), "") == "[object Object]"

    def test_undefined_add(self):
        assert math.isnan(binop(Op.ADD, UNDEFINED, 1))

    def test_null_add(self):
        assert binop(Op.ADD, NULL, 1) == 1

    def test_bool_add(self):
        assert binop(Op.ADD, True, True) == 2

    def test_overflow_to_double(self):
        result = binop(Op.ADD, INT32_MAX, 1)
        assert result == 2 ** 31
        assert type(result) is float

    @given(
        st.integers(min_value=-(10 ** 6), max_value=10 ** 6),
        st.integers(min_value=-(10 ** 6), max_value=10 ** 6),
    )
    def test_commutative_numeric(self, a, b):
        assert binop(Op.ADD, a, b) == binop(Op.ADD, b, a)


class TestArithmetic:
    def test_div_is_exact(self):
        assert binop(Op.DIV, 7, 2) == 3.5

    def test_div_integral_normalizes(self):
        result = binop(Op.DIV, 6, 2)
        assert result == 3 and type(result) is int

    def test_div_by_zero(self):
        assert binop(Op.DIV, 1, 0) == float("inf")
        assert binop(Op.DIV, -1, 0) == float("-inf")
        assert math.isnan(binop(Op.DIV, 0, 0))

    def test_mod_sign_follows_dividend(self):
        assert binop(Op.MOD, 7, 3) == 1
        assert binop(Op.MOD, -7, 3) == -1
        assert binop(Op.MOD, 7, -3) == 1

    def test_mod_zero_is_nan(self):
        assert math.isnan(binop(Op.MOD, 1, 0))

    def test_mul(self):
        assert binop(Op.MUL, 4, 5) == 20

    def test_sub_string_coercion(self):
        assert binop(Op.SUB, "10", 3) == 7

    def test_neg_zero(self):
        result = operations.js_neg(0)
        assert type(result) is float
        assert math.copysign(1.0, result) < 0

    @given(st.integers(min_value=1, max_value=10 ** 6), st.integers(min_value=1, max_value=10 ** 6))
    def test_mod_range(self, a, b):
        result = binop(Op.MOD, a, b)
        assert 0 <= result < b


class TestBitwise:
    def test_and_or_xor(self):
        assert binop(Op.BITAND, 0b1100, 0b1010) == 0b1000
        assert binop(Op.BITOR, 0b1100, 0b1010) == 0b1110
        assert binop(Op.BITXOR, 0b1100, 0b1010) == 0b0110

    def test_shift_left(self):
        assert binop(Op.SHL, 1, 4) == 16

    def test_shift_left_wraps(self):
        assert binop(Op.SHL, 1, 31) == INT32_MIN

    def test_shift_count_masked(self):
        assert binop(Op.SHL, 1, 33) == 2

    def test_arithmetic_shift_right(self):
        assert binop(Op.SHR, -8, 1) == -4

    def test_logical_shift_right(self):
        assert binop(Op.USHR, -8, 28) == 15
        assert binop(Op.USHR, -1, 0) == 2 ** 32 - 1

    def test_double_operands_truncate(self):
        assert binop(Op.BITAND, 5.7, 3.2) == 1

    @given(st.integers(min_value=INT32_MIN, max_value=INT32_MAX))
    def test_double_bitnot_is_identity(self, n):
        assert operations.unary_op(Op.BITNOT, operations.unary_op(Op.BITNOT, n)) == n


class TestComparisons:
    def test_numeric(self):
        assert binop(Op.LT, 1, 2)
        assert binop(Op.LE, 2, 2)
        assert not binop(Op.GT, 1, 2)
        assert binop(Op.GE, 2, 2)

    def test_string_lexicographic(self):
        assert binop(Op.LT, "abc", "abd")
        assert binop(Op.GT, "b", "a")

    def test_mixed_coerces_to_number(self):
        assert binop(Op.LT, "9", 10)
        assert binop(Op.LT, "2", "10") is False  # both strings: lexicographic

    def test_nan_comparisons_false(self):
        nan = float("nan")
        for op in (Op.LT, Op.LE, Op.GT, Op.GE):
            assert binop(op, nan, 1) is False
            assert binop(op, 1, nan) is False

    def test_equality_dispatch(self):
        assert binop(Op.EQ, "1", 1)
        assert not binop(Op.STRICTEQ, "1", 1)
        assert binop(Op.STRICTNE, "1", 1)
        assert not binop(Op.NE, "1", 1)


class TestInOperator:
    def test_array_index(self):
        assert binop(Op.IN, 0, JSArray([1]))
        assert not binop(Op.IN, 1, JSArray([1]))

    def test_object_property(self):
        obj = JSObject({"k": 1})
        assert binop(Op.IN, "k", obj)
        assert not binop(Op.IN, "z", obj)

    def test_in_on_primitive_raises(self):
        with pytest.raises(JSTypeError):
            binop(Op.IN, "k", 1)


class TestUnary:
    def test_not(self):
        assert operations.unary_op(Op.NOT, 0) is True
        assert operations.unary_op(Op.NOT, "x") is False

    def test_tonum(self):
        assert operations.unary_op(Op.TONUM, "5") == 5

    def test_typeof(self):
        assert operations.unary_op(Op.TYPEOF, 1) == "number"

    def test_bitnot(self):
        assert operations.unary_op(Op.BITNOT, 5) == -6

    def test_neg_double(self):
        assert operations.unary_op(Op.NEG, 2.5) == -2.5


class TestPropertyAccess:
    def test_string_length(self):
        assert operations.get_property("hello", "length") == 5

    def test_array_length(self):
        assert operations.get_property(JSArray([1, 2]), "length") == 2

    def test_object_missing_is_undefined(self):
        assert operations.get_property(JSObject(), "nope") is UNDEFINED

    def test_read_of_undefined_raises(self):
        with pytest.raises(JSTypeError):
            operations.get_property(UNDEFINED, "x")

    def test_write_to_null_raises(self):
        with pytest.raises(JSTypeError):
            operations.set_property(NULL, "x", 1)

    def test_primitive_write_ignored(self):
        operations.set_property("s", "x", 1)  # silently dropped

    def test_string_index(self):
        assert operations.get_element("abc", 1) == "b"

    def test_string_index_out_of_range(self):
        assert operations.get_element("abc", 9) is UNDEFINED

    def test_array_element(self):
        assert operations.get_element(JSArray([7]), 0) == 7

    def test_array_hole_is_undefined(self):
        assert operations.get_element(JSArray([7]), 3) is UNDEFINED

    def test_set_element_grows(self):
        array = JSArray()
        operations.set_element(array, 3, "x")
        assert array.length == 4
        assert array.get_element(0) is UNDEFINED
