"""Property-based differential testing: interpreter vs JIT tiers.

Hypothesis generates random (terminating) guest programs; every
optimization configuration must print exactly what the plain
interpreter prints.  This is the strongest correctness oracle in the
suite: it exercises type speculation, parameter specialization,
folding, bailouts and deoptimization on inputs nobody hand-picked.
"""

from hypothesis import given, settings, strategies as st

from repro import BASELINE, FULL_SPEC, Engine
from repro.engine.config import OptConfig
from repro.jsvm.interpreter import Interpreter

from tests.conftest import FAST

# -- expression generator -----------------------------------------------------

_VARS = ("a", "b", "c")

_literals = st.one_of(
    st.integers(min_value=-100, max_value=100).map(str),
    st.sampled_from(["0", "1", "2", "255", "1000000000", "2.5", "0.5", "-0.25"]),
    st.sampled_from(['"s"', '"x7"', '""', "true", "false", "null", "undefined"]),
)

_binary_ops = st.sampled_from(
    ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", ">>>",
     "<", "<=", ">", ">=", "==", "===", "!=", "!=="]
)
_unary_ops = st.sampled_from(["-", "!", "~", "typeof "])


def _expressions(depth):
    if depth <= 0:
        return st.one_of(_literals, st.sampled_from(_VARS))
    sub = _expressions(depth - 1)
    return st.one_of(
        _literals,
        st.sampled_from(_VARS),
        st.tuples(sub, _binary_ops, sub).map(lambda t: "(%s %s %s)" % (t[0], t[1], t[2])),
        st.tuples(_unary_ops, sub).map(lambda t: "(%s %s)" % (t[0], t[1])),
        st.tuples(sub, sub, sub).map(lambda t: "(%s ? %s : %s)" % t),
    )


_statements = st.lists(
    st.tuples(st.sampled_from(_VARS), _expressions(2)).map(
        lambda t: "%s = %s;" % (t[0], t[1])
    ),
    min_size=1,
    max_size=4,
)

_arguments = st.tuples(
    st.sampled_from(["1", "7", "2.5", '"k"', "true", "0"]),
    st.sampled_from(["2", "-3", "0.5", '"z"', "false", "255"]),
)


def _program(body_statements, loop_count, args):
    body = "\n      ".join(body_statements)
    return """
    function f(a, b) {
      var c = 0;
      for (var i = 0; i < %d; i++) {
      %s
      }
      return "" + a + "|" + b + "|" + c;
    }
    var out = "";
    for (var r = 0; r < 20; r++) out = f(%s, %s);
    print(out);
    """ % (loop_count, body, args[0], args[1])


def _run_all_tiers(source):
    expected = Interpreter().run_source(source)
    for config in (BASELINE, FULL_SPEC):
        engine = Engine(config=config, **FAST)
        printed = engine.run_source(source)
        assert printed == expected, (
            "mismatch under %s for:\n%s\nexpected %r got %r"
            % (config.name, source, expected, printed)
        )


@settings(max_examples=40, deadline=None)
@given(_statements, st.integers(min_value=1, max_value=8), _arguments)
def test_random_programs_agree(body, loop_count, args):
    _run_all_tiers(_program(body, loop_count, args))


@settings(max_examples=20, deadline=None)
@given(_statements, _arguments, _arguments)
def test_deopt_on_argument_change_agrees(body, args1, args2):
    """Call with one argument set long enough to specialize, then switch."""
    body_text = "\n      ".join(body)
    source = """
    function f(a, b) {
      var c = 0;
      %s
      return "" + a + "~" + b + "~" + c;
    }
    var out = "";
    for (var r = 0; r < 20; r++) out += f(%s, %s);
    for (var r = 0; r < 5; r++) out += f(%s, %s);
    print(out.length, out.charCodeAt(7));
    """ % (body_text, args1[0], args1[1], args2[0], args2[1])
    _run_all_tiers(source)


@settings(max_examples=18, deadline=None)
@given(
    st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=12),
    st.integers(min_value=0, max_value=15),
)
def test_array_indexing_agrees(elements, index):
    source = """
    function get(a, i) { return "" + a[i]; }
    var arr = [%s];
    var out = "";
    for (var r = 0; r < 25; r++) out = get(arr, %d);
    print(out);
    """ % (", ".join(str(e) for e in elements), index)
    _run_all_tiers(source)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=200))
def test_loop_trip_counts_agree(n):
    # Exercises OSR entry at arbitrary iteration counts relative to the
    # back-edge threshold, plus loop inversion's zero/one-trip edges.
    source = """
    function run(n) {
      var s = 0;
      for (var i = 0; i < n; i++) s = (s + i * 3) & 1023;
      return s;
    }
    print(run(%d), run(0), run(1));
    """ % n
    _run_all_tiers(source)


@settings(max_examples=20, deadline=None)
@given(st.text(alphabet="abcXYZ019 ", min_size=0, max_size=20))
def test_string_processing_agrees(text):
    source = """
    function process(s) {
      var h = 0;
      for (var i = 0; i < s.length; i++) h = (h * 31 + s.charCodeAt(i)) & 0xffff;
      return h + ":" + s.toUpperCase();
    }
    var out = "";
    for (var r = 0; r < 20; r++) out = process(%r);
    print(out);
    """ % (text,)
    _run_all_tiers(source)
