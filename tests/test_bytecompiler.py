"""Unit tests for scope analysis and bytecode generation."""

import pytest

from repro.errors import CompilerError
from repro.jsvm.bytecode import Op
from repro.jsvm.bytecompiler import compile_source
from repro.jsvm.interpreter import Interpreter


def nested(code, name=None):
    """Fetch a nested CodeObject from a compiled program."""
    found = []

    def walk(c):
        for constant in c.constants:
            if hasattr(constant, "instructions"):
                found.append(constant)
                walk(constant)

    walk(code)
    if name is None:
        return found[0]
    for c in found:
        if c.name == name:
            return c
    raise AssertionError("no nested code named %r" % name)


def ops_of(code):
    return [i.op for i in code.instructions]


class TestStructure:
    def test_toplevel_uses_globals(self):
        code = compile_source("var x = 1; print(x);")
        assert Op.SETGLOBAL in ops_of(code)
        assert Op.GETLOCAL not in ops_of(code) or code.local_names

    def test_function_uses_locals(self):
        code = nested(compile_source("function f() { var x = 1; return x; }"))
        assert Op.SETLOCAL in ops_of(code)
        assert Op.SETGLOBAL not in ops_of(code)

    def test_params_resolve_to_args(self):
        code = nested(compile_source("function f(a) { return a; }"))
        assert Op.GETARG in ops_of(code)

    def test_undeclared_resolves_to_global(self):
        code = nested(compile_source("function f() { return g; }"))
        assert Op.GETGLOBAL in ops_of(code)

    def test_terminator_always_present(self):
        code = compile_source("")
        assert code.instructions[-1].op == Op.RETURN_UNDEF

    def test_validate_passes(self):
        code = compile_source("function f(n) { while (n) n--; return n; } f(3);")
        code.validate()
        nested(code).validate()

    def test_function_hoisting(self):
        source = "print(f()); function f() { return 42; }"
        assert Interpreter().run_source(source) == ["42"]

    def test_const_pool_interning(self):
        code = nested(compile_source("function f() { return 7 + 7 + 7; }"))
        sevens = [c for c in code.constants if c == 7]
        assert len(sevens) == 1

    def test_disassemble_smoke(self):
        code = compile_source("var x = 1;")
        text = code.disassemble()
        assert "setglobal" in text


class TestClosureAnalysis:
    def test_no_capture_no_cells(self):
        code = nested(compile_source("function f() { var x = 1; return x; }"))
        assert not code.has_cells
        assert not code.has_frees

    def test_capture_creates_cell(self):
        source = "function o() { var c = 0; return function() { return c; }; }"
        outer = nested(compile_source(source), "o")
        assert "c" in outer.cell_names

    def test_inner_has_free(self):
        source = "function o() { var c = 0; return function i() { return c; }; }"
        inner = nested(compile_source(source), "i")
        assert "c" in inner.free_names

    def test_captured_param_becomes_cell(self):
        source = "function o(p) { return function i() { return p; }; }"
        outer = nested(compile_source(source), "o")
        assert "p" in outer.cell_names

    def test_transitive_capture(self):
        source = """
        function a() {
          var v = 1;
          return function b() { return function c() { return v; }; };
        }
        """
        b = nested(compile_source(source), "b")
        c = nested(compile_source(source), "c")
        assert "v" in b.free_names  # carried through
        assert "v" in c.free_names

    def test_global_reference_is_not_free(self):
        source = "var g = 1; function o() { return function i() { return g; }; }"
        inner = nested(compile_source(source), "i")
        assert inner.free_names == []

    def test_sibling_functions_no_capture(self):
        source = "function a() { var x = 1; return x; } function b() { var x = 2; return x; }"
        code = compile_source(source)
        assert not nested(code, "a").has_cells
        assert not nested(code, "b").has_cells


class TestControlFlowShapes:
    def test_while_shape(self):
        code = nested(compile_source("function f(n) { while (n) n--; }"))
        ops = ops_of(code)
        assert Op.IFFALSE in ops
        assert Op.JUMP in ops
        jumps = [i for i in code.instructions if i.op == Op.JUMP]
        assert any(j.arg < code.instructions.index(j) for j in jumps)

    def test_do_while_uses_iftrue(self):
        code = nested(compile_source("function f(n) { do n--; while (n); }"))
        assert Op.IFTRUE in ops_of(code)

    def test_logical_and_short_circuits(self):
        assert Interpreter().run_source("print(false && crash());") == ["false"]

    def test_logical_or_short_circuits(self):
        assert Interpreter().run_source("print(1 || crash());") == ["1"]

    def test_break_outside_loop(self):
        with pytest.raises(CompilerError):
            compile_source("break;")

    def test_continue_outside_loop(self):
        with pytest.raises(CompilerError):
            compile_source("continue;")


class TestCallShapes:
    def test_plain_call_pushes_undef_this(self):
        code = compile_source("f();")
        ops = ops_of(code)
        call_at = ops.index(Op.CALL)
        assert Op.UNDEF in ops[:call_at]

    def test_method_call_arity(self):
        code = compile_source("obj.m(1, 2, 3);")
        call = [i for i in code.instructions if i.op == Op.CALL][0]
        assert call.arg == 3

    def test_new(self):
        code = compile_source("new F(1);")
        assert Op.NEW in ops_of(code)


class TestSelfReference:
    def test_named_function_expression_binds_self(self):
        source = "var f = function fact(n) { return n < 2 ? 1 : n * fact(n - 1); }; print(f(5));"
        assert Interpreter().run_source(source) == ["120"]

    def test_self_op_emitted(self):
        code = nested(compile_source("var f = function g() { return g; };"), "g")
        assert Op.SELF in ops_of(code)
