"""Property-based tests on core compiler data structures.

These check *invariants* rather than examples:

* the register allocator never assigns one register to two
  simultaneously-live values;
* the parallel-move resolver implements exactly the semantics of a
  parallel assignment, for any move set including swap cycles;
* bytecode loop rotation preserves program behaviour on arbitrary
  generated loops;
* the constant-propagation meet operator satisfies the lattice laws
  the paper's §3.3 definition implies.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.config import BASELINE, FULL_SPEC
from repro.jsvm.interpreter import Interpreter
from repro.lir.lowering import lower_graph
from repro.lir.regalloc import NUM_REGS, allocate_registers, build_intervals
from repro.mir.builder import build_mir
from repro.opts.loop_inversion import rotate_loops
from repro.opts.pass_manager import optimize

from tests.helpers import compile_and_profile

# ---------------------------------------------------------------------------
# Register allocation: no interference
# ---------------------------------------------------------------------------

_SOURCES = [
    "function f(a, b, c) { return a * b + c * a - b; } f(1, 2, 3);",
    """
    function f(n) {
      var a = 1, b = 2, c = 3, d = 4, e = 5, g = 6, h = 7, i2 = 8, j = 9, k = 10;
      for (var i = 0; i < n; i++) { a += b; b += c; c += d; d += e; e += g; g += h; h += i2; i2 += j; j += k; k += a; }
      return a + b + c + d + e + g + h + i2 + j + k;
    }
    f(10);
    """,
    """
    function f(s, t) {
      var out = 0;
      for (var i = 0; i < s.length; i++) out = (out * 31 + s.charCodeAt(i) + t) & 0xffff;
      return out;
    }
    f("property testing", 5);
    """,
    """
    function f(a, i) {
      var x = a[i] + a[i + 1];
      var y = a[i] * a[i + 1];
      return x + y + a.length;
    }
    f([1, 2, 3, 4], 1);
    """,
]


def _allocations():
    for source in _SOURCES:
        for config in (BASELINE, FULL_SPEC):
            _top, code = compile_and_profile(source, None)
            if config.loop_inversion:
                rotate_loops(code)
            graph = build_mir(code, feedback=code.feedback)
            optimize(graph, config)
            lir = lower_graph(graph)
            intervals = build_intervals(lir)
            allocation = allocate_registers(lir)
            yield source, lir, intervals, allocation


def test_no_two_live_values_share_a_register():
    checked = 0
    for _source, _lir, intervals, allocation in _allocations():
        in_registers = [
            interval
            for interval in intervals
            if allocation.location_of(interval.vreg) < NUM_REGS
        ]
        in_registers.sort(key=lambda i: i.start)
        for index, a in enumerate(in_registers):
            for b in in_registers[index + 1 :]:
                if b.start >= a.end:
                    # Read-before-write at the boundary position makes
                    # sharing at a.end == b.start legal.
                    continue
                if allocation.location_of(a.vreg) == allocation.location_of(b.vreg):
                    raise AssertionError(
                        "v%d and v%d overlap in r%d"
                        % (a.vreg, b.vreg, allocation.location_of(a.vreg))
                    )
                checked += 1
    assert checked > 0


def test_every_vreg_has_exactly_one_location():
    for _source, lir, _intervals, allocation in _allocations():
        seen = set()
        for vreg in range(lir.num_vregs):
            location = allocation.location_of(vreg)
            assert location >= 0
            seen.add(location)


# ---------------------------------------------------------------------------
# Parallel moves
# ---------------------------------------------------------------------------


@st.composite
def _move_sets(draw):
    """Random parallel move sets over a small register space, with at
    most one move per destination (SSA phi semantics)."""
    size = draw(st.integers(min_value=1, max_value=6))
    dests = draw(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    srcs = draw(
        st.lists(st.integers(min_value=0, max_value=9), min_size=size, max_size=size)
    )
    return list(zip(srcs, dests))


@settings(max_examples=200, deadline=None)
@given(_move_sets())
def test_parallel_move_resolution(moves):
    from repro.lir.lir_nodes import LIRFunction
    from repro.lir.lowering import _Lowerer

    class FakeGraph(object):
        code = None

    lowerer = _Lowerer.__new__(_Lowerer)
    lowerer.lir = LIRFunction(None)
    lowerer.next_vreg = 100  # temps allocated above the move space
    lowerer.vregs = {}

    lowerer.emit_moves(list(moves))

    # Simulate sequentially.
    state = {vreg: "init%d" % vreg for vreg in range(100)}
    for instruction in lowerer.lir.instructions:
        assert instruction.op == "move"
        source = instruction.srcs[0]
        state[instruction.dest] = state.get(source, "init%d" % source)

    # Expected: all destinations receive their sources' ORIGINAL values.
    for src, dest in moves:
        assert state[dest] == "init%d" % src, (moves, lowerer.lir.instructions)


# ---------------------------------------------------------------------------
# Loop rotation equivalence
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=12),   # trip count
    st.integers(min_value=1, max_value=5),    # step
    st.sampled_from(["s += i", "s = (s * 3 + i) & 255", "s += i * i", "if (i % 2) s += 1; else s += 2"]),
    st.booleans(),                            # include continue
)
def test_rotation_preserves_behaviour(bound, step, body, with_continue):
    extra = ("if (s %% 7 == 3) { i += %d; continue; }" % step) if with_continue else ""
    source = """
    function f() {
      var s = 0;
      var i = 0;
      while (i < %d) {
        %s
        %s
        i += %d;
      }
      return s + ":" + i;
    }
    print(f());
    """ % (bound, extra, body, step)
    from repro.jsvm.bytecompiler import compile_source

    plain = Interpreter()
    plain.run_code(compile_source(source))
    rotated_code = compile_source(source)
    rotated = Interpreter()
    rotate_loops(rotated_code)
    rotated.run_code(rotated_code)
    assert plain.runtime.printed == rotated.runtime.printed


# ---------------------------------------------------------------------------
# Constant-propagation lattice laws
# ---------------------------------------------------------------------------

_LATTICE_ELEMENTS = st.sampled_from(
    ["bottom", "top", (1,), (2,), ("x",), (True,), (1.5,)]
)


@settings(max_examples=200, deadline=None)
@given(_LATTICE_ELEMENTS, _LATTICE_ELEMENTS)
def test_meet_commutative(a, b):
    from repro.opts.constprop import _meet

    assert _meet(a, b) == _meet(b, a)


@settings(max_examples=200, deadline=None)
@given(_LATTICE_ELEMENTS, _LATTICE_ELEMENTS, _LATTICE_ELEMENTS)
def test_meet_associative(a, b, c):
    from repro.opts.constprop import _meet

    assert _meet(_meet(a, b), c) == _meet(a, _meet(b, c))


@settings(max_examples=100, deadline=None)
@given(_LATTICE_ELEMENTS)
def test_meet_idempotent(a):
    from repro.opts.constprop import _meet

    assert _meet(a, a) == a


@settings(max_examples=100, deadline=None)
@given(_LATTICE_ELEMENTS)
def test_meet_identity_and_absorbing(a):
    from repro.opts.constprop import _meet

    assert _meet("bottom", a) == a  # bottom is the identity
    assert _meet("top", a) == "top"  # top absorbs
