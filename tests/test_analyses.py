"""Tests for the CFG analyses: dominators, natural loops, ranges."""

from repro.jsvm.bytecode import Op
from repro.mir.builder import build_mir
from repro.mir.specializer import specialize_types
from repro.opts.dominators import DominatorTree
from repro.opts.loop_inversion import rotate_loops
from repro.opts.loops import find_loops
from repro.opts.range_analysis import compute_ranges
from repro.mir import instructions as mi

from tests.helpers import backward_jump_target, compile_and_profile, instrs


def graph_of(source, name=None, rotate=False, param_values=None, osr=False):
    _top, code = compile_and_profile(source, name)
    if rotate:
        rotate_loops(code)
    kwargs = {}
    if osr:
        from repro.jsvm.values import UNDEFINED

        kwargs = dict(
            osr_pc=backward_jump_target(code),
            osr_args=[0] * code.num_params,
            osr_locals=[UNDEFINED] * code.num_locals,
        )
    graph = build_mir(code, feedback=code.feedback, param_values=param_values, **kwargs)
    specialize_types(graph)
    return graph


LOOP = "function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; } f(9);"
NESTED = """
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++)
    for (var j = 0; j < n; j++)
      s += i * j;
  return s;
}
f(4);
"""


class TestDominators:
    def test_entry_dominates_everything(self):
        graph = graph_of(LOOP)
        tree = DominatorTree(graph)
        for block in graph.blocks:
            assert tree.dominates(graph.entry, block)

    def test_self_domination(self):
        graph = graph_of(LOOP)
        tree = DominatorTree(graph)
        for block in graph.blocks:
            assert tree.dominates(block, block)

    def test_idom_is_a_strict_dominator(self):
        graph = graph_of(NESTED)
        tree = DominatorTree(graph)
        for block in graph.blocks:
            idom = tree.immediate_dominator(block)
            if idom is not None:
                assert idom is not block
                assert tree.dominates(idom, block)

    def test_branch_blocks_do_not_dominate_join(self):
        source = "function f(c) { var x; if (c) x = 1; else x = 2; return x; } f(true);"
        graph = graph_of(source)
        tree = DominatorTree(graph)
        returns = [b for b in graph.blocks if isinstance(b.terminator, mi.MReturn)]
        join = returns[0]
        for pred in join.predecessors:
            if len(join.predecessors) > 1:
                assert not tree.dominates(pred, join) or pred is join

    def test_osr_breaks_entry_domination(self):
        graph = graph_of(LOOP, osr=True)
        tree = DominatorTree(graph)
        # The loop header is reachable from both entries, so neither
        # entry block dominates it.
        header = [b for b in graph.blocks if b.phis][0]
        assert not tree.dominates(graph.entry, header)
        assert not tree.dominates(graph.osr_entry, header)

    def test_children_partition(self):
        graph = graph_of(NESTED)
        tree = DominatorTree(graph)
        seen = set()
        for block in graph.blocks:
            for child in tree.dominator_tree_children(block):
                assert id(child) not in seen
                seen.add(id(child))


class TestLoops:
    def test_finds_single_loop(self):
        graph = graph_of(LOOP)
        loops = find_loops(graph)
        assert len(loops) == 1
        assert loops[0].latches

    def test_nested_loops(self):
        graph = graph_of(NESTED)
        loops = find_loops(graph)
        assert len(loops) == 2
        outer, inner = loops[0], loops[1]
        assert len(outer.body) > len(inner.body)
        assert all(id(b) in outer.body for b in inner.blocks)

    def test_preheader(self):
        graph = graph_of(LOOP)
        loop = find_loops(graph)[0]
        preheader = loop.preheader()
        assert preheader is not None
        assert not loop.contains(preheader)

    def test_osr_loop_has_no_preheader(self):
        graph = graph_of(LOOP, osr=True)
        loop = find_loops(graph)[0]
        assert loop.preheader() is None

    def test_rotated_loop_is_do_while_shaped(self):
        graph = graph_of(LOOP, rotate=True)
        loops = find_loops(graph)
        assert any(loop.is_do_while_shaped() for loop in loops)

    def test_unrotated_loop_is_not(self):
        graph = graph_of(LOOP, rotate=False)
        loops = find_loops(graph)
        assert not any(loop.is_do_while_shaped() for loop in loops)

    def test_exits(self):
        graph = graph_of(LOOP)
        loop = find_loops(graph)[0]
        exits = loop.exits()
        assert exits
        for block, successor in exits:
            assert loop.contains(block)
            assert not loop.contains(successor)


class TestRangeAnalysis:
    def test_induction_range_from_constant_bound(self):
        source = "function f() { var s = 0; for (var i = 2; i < 100; i++) s += i; return s; } f();"
        graph = graph_of(source, param_values=[])
        loops = find_loops(graph)
        ranges = compute_ranges(graph, loops)
        assert ranges, "induction variable should be recognized"
        spans = sorted((r.low, r.high) for r in ranges.values())
        assert (2, 99) in spans  # the phi
        assert (3, 100) in spans  # the increment

    def test_unknown_bound_gives_no_range(self):
        graph = graph_of(LOOP)  # bound is the parameter n, not constant
        loops = find_loops(graph)
        assert compute_ranges(graph, loops) == {}

    def test_specialized_bound_gives_range(self):
        graph = graph_of(LOOP, param_values=[9])
        loops = find_loops(graph)
        ranges = compute_ranges(graph, loops)
        assert any(r.low == 0 and r.high == 8 for r in ranges.values())

    def test_le_bound_inclusive(self):
        source = "function f() { var s = 0; for (var i = 0; i <= 10; i++) s += i; return s; } f();"
        graph = graph_of(source, param_values=[])
        ranges = compute_ranges(graph, find_loops(graph))
        assert any(r.high == 10 for r in ranges.values())

    def test_decreasing_loop_not_recognized(self):
        source = "function f() { var s = 0; for (var i = 10; i > 0; i--) s += i; return s; } f();"
        graph = graph_of(source, param_values=[])
        ranges = compute_ranges(graph, find_loops(graph))
        assert ranges == {}  # the paper's pattern is increasing-only
