"""Shared test helpers.

``run_interp`` executes a script on the bare interpreter;
``run_engine`` under a JIT engine with a given config;
``assert_same_output`` runs a script under the interpreter and every
paper configuration and checks all outputs agree (the differential
oracle used throughout the suite).
"""

import pytest

from repro import BASELINE, FULL_SPEC, PAPER_CONFIGS, Engine
from repro.jsvm.interpreter import Interpreter


def run_interp(source):
    """Run on the interpreter only; returns printed lines."""
    return Interpreter().run_source(source)


def run_engine(source, config=FULL_SPEC, **engine_kwargs):
    """Run under a JIT engine; returns (printed lines, engine)."""
    engine = Engine(config=config, **engine_kwargs)
    printed = engine.run_source(source)
    return printed, engine


def assert_same_output(source, configs=None, **engine_kwargs):
    """Differential oracle: interpreter vs every JIT configuration."""
    expected = run_interp(source)
    tried = configs if configs is not None else [BASELINE, FULL_SPEC]
    for config in tried:
        printed, _engine = run_engine(source, config, **engine_kwargs)
        assert printed == expected, (
            "output mismatch under %s:\n interp: %r\n engine: %r"
            % (config.name, expected, printed)
        )
    return expected


#: Engine thresholds that make tiny test scripts compile quickly.
FAST = {"hot_call_threshold": 3, "osr_backedge_threshold": 10}


@pytest.fixture
def fast_engine_kwargs():
    return dict(FAST)
