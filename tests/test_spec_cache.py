"""Tests for the specialization cache, including the §6 capacity extension."""

from repro import FULL_SPEC, Engine
from repro.telemetry.tracing import Tracer

from tests.conftest import FAST

ALTERNATING = """
function f(a) { return a * 3 + 1; }
var s = 0;
for (var i = 0; i < 60; i++) s += f(i % 2 ? 10 : 20);
print(s);
"""

THREE_WAY = """
function f(a) { return a * 3 + 1; }
var s = 0;
for (var i = 0; i < 60; i++) s += f(i % 3);
print(s);
"""


def run(source, capacity):
    engine = Engine(config=FULL_SPEC, spec_cache_capacity=capacity, **FAST)
    printed = engine.run_source(source)
    return printed, engine


class TestCapacityOne:
    """The paper's policy: one binary, deopt on the second set."""

    def test_alternating_args_deoptimize(self):
        printed, engine = run(ALTERNATING, 1)
        assert printed == [str(sum((i % 2 and 10 or 20) * 3 + 1 for i in range(60)))]
        assert engine.stats.deoptimized_functions
        assert engine.stats.invalidations == 1


class TestLargerCapacity:
    def test_capacity_two_keeps_both_specializations(self):
        printed1, engine1 = run(ALTERNATING, 1)
        printed2, engine2 = run(ALTERNATING, 2)
        assert printed1 == printed2
        # With room for both argument sets, nothing deoptimizes...
        assert not engine2.stats.deoptimized_functions
        # ...and the hot loop runs specialized code throughout, which
        # the cycle ledger reflects.
        assert engine2.stats.total_cycles <= engine1.stats.total_cycles

    def test_capacity_two_still_deopts_on_third_set(self):
        printed, engine = run(THREE_WAY, 2)
        assert engine.stats.deoptimized_functions
        assert printed == [str(sum((i % 3) * 3 + 1 for i in range(60)))]

    def test_capacity_four_holds_three_sets(self):
        printed, engine = run(THREE_WAY, 4)
        assert not engine.stats.deoptimized_functions
        summary = engine.stats.summary()
        assert summary["specialized"] >= 1

    def test_outputs_identical_across_capacities(self):
        outputs = [run(THREE_WAY, capacity)[0] for capacity in (1, 2, 4, 8)]
        assert all(output == outputs[0] for output in outputs)


def run_traced(source, capacity):
    tracer = Tracer(channels=["cache", "deopt", "specialize"])
    engine = Engine(
        config=FULL_SPEC, spec_cache_capacity=capacity, tracer=tracer, **FAST
    )
    printed = engine.run_source(source)
    return printed, engine, tracer.events


def events_for(events, function_name):
    return [event for event in events if event.get("fn") == function_name]


class TestCacheTraceEvents:
    """The trace stream narrates fills, switches and the overflow discard."""

    def test_stores_report_growing_occupancy(self):
        # Capacity 2, two argument sets: the cache fills in compile
        # order and each ``cache.store`` reports the occupancy after it.
        _, _, events = run_traced(ALTERNATING, 2)
        stores = [e for e in events_for(events, "f") if e["event"] == "store"]
        assert [e["entries"] for e in stores] == [1, 2]
        assert stores[0]["key"] != stores[1]["key"]

    def test_rehit_switches_between_cached_binaries(self):
        # Once both sets are cached, every alternation is a secondary
        # hit (``primary: False``): the active binary swaps with the
        # cached sibling instead of compiling or discarding.
        _, engine, events = run_traced(ALTERNATING, 2)
        hits = [e for e in events_for(events, "f") if e["event"] == "hit"]
        assert len(hits) > 10
        assert all(e["primary"] is False for e in hits)  # args alternate
        keys = {e["key"] for e in hits}
        assert len(keys) == 2
        assert not engine.stats.deoptimized_functions

    def test_miss_reports_occupancy_at_miss_time(self):
        _, _, events = run_traced(THREE_WAY, 4)
        misses = [e for e in events_for(events, "f") if e["event"] == "miss"]
        # Second set misses against one cached entry, third against two.
        assert [e["entries"] for e in misses] == [1, 2]

    def test_overflow_discards_all_entries_at_once(self):
        # §4 policy, capacity-generalized: the set that does not fit
        # evicts *everything* — one ``deopt.discard`` whose ``dropped``
        # count equals the full occupancy, not an LRU trickle.
        _, engine, events = run_traced(THREE_WAY, 2)
        discards = [e for e in events_for(events, "f") if e["event"] == "discard"]
        assert len(discards) == 1
        assert discards[0]["reason"] == "new-args"
        assert discards[0]["dropped"] == 2
        assert engine.stats.invalidations == 1

    def test_store_never_exceeds_capacity(self):
        for capacity in (1, 2, 4):
            _, _, events = run_traced(THREE_WAY, capacity)
            stores = [e for e in events_for(events, "f") if e["event"] == "store"]
            assert all(e["entries"] <= capacity for e in stores)


class TestNeverSpecializeInteraction:
    """After overflow the function is marked and stays generic forever."""

    def test_recompile_after_overflow_is_generic(self):
        printed, engine, events = run_traced(THREE_WAY, 2)
        f_events = events_for(events, "f")
        generic = [e for e in f_events if e["event"] == "generic"]
        assert generic and generic[0]["never_specialize"] is True
        # The discard precedes the generic recompile, and nothing is
        # ever stored for ``f`` again afterwards.
        labels = [e["event"] for e in f_events]
        assert labels.index("discard") < labels.index("generic")
        assert "store" not in labels[labels.index("discard") :]
        assert printed == [str(sum((i % 3) * 3 + 1 for i in range(60)))]

    def test_no_cache_traffic_after_marking(self):
        # Generic code takes the plain native path: no hits, no misses,
        # no further specialization attempts for the marked function.
        _, engine, events = run_traced(THREE_WAY, 2)
        f_events = events_for(events, "f")
        discard_at = [e["event"] for e in f_events].index("discard")
        tail = [e["event"] for e in f_events[discard_at + 1 :]]
        assert set(tail) <= {"generic"}
        assert engine.stats.deoptimized_functions
        # The marked function still ran to completion natively.
        assert "f" in {
            engine.stats.function_names.get(code_id)
            for code_id in engine.stats.specialized_functions
        }
