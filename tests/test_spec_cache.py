"""Tests for the specialization cache, including the §6 capacity extension."""

from repro import FULL_SPEC, Engine

from tests.conftest import FAST

ALTERNATING = """
function f(a) { return a * 3 + 1; }
var s = 0;
for (var i = 0; i < 60; i++) s += f(i % 2 ? 10 : 20);
print(s);
"""

THREE_WAY = """
function f(a) { return a * 3 + 1; }
var s = 0;
for (var i = 0; i < 60; i++) s += f(i % 3);
print(s);
"""


def run(source, capacity):
    engine = Engine(config=FULL_SPEC, spec_cache_capacity=capacity, **FAST)
    printed = engine.run_source(source)
    return printed, engine


class TestCapacityOne:
    """The paper's policy: one binary, deopt on the second set."""

    def test_alternating_args_deoptimize(self):
        printed, engine = run(ALTERNATING, 1)
        assert printed == [str(sum((i % 2 and 10 or 20) * 3 + 1 for i in range(60)))]
        assert engine.stats.deoptimized_functions
        assert engine.stats.invalidations == 1


class TestLargerCapacity:
    def test_capacity_two_keeps_both_specializations(self):
        printed1, engine1 = run(ALTERNATING, 1)
        printed2, engine2 = run(ALTERNATING, 2)
        assert printed1 == printed2
        # With room for both argument sets, nothing deoptimizes...
        assert not engine2.stats.deoptimized_functions
        # ...and the hot loop runs specialized code throughout, which
        # the cycle ledger reflects.
        assert engine2.stats.total_cycles <= engine1.stats.total_cycles

    def test_capacity_two_still_deopts_on_third_set(self):
        printed, engine = run(THREE_WAY, 2)
        assert engine.stats.deoptimized_functions
        assert printed == [str(sum((i % 3) * 3 + 1 for i in range(60)))]

    def test_capacity_four_holds_three_sets(self):
        printed, engine = run(THREE_WAY, 4)
        assert not engine.stats.deoptimized_functions
        summary = engine.stats.summary()
        assert summary["specialized"] >= 1

    def test_outputs_identical_across_capacities(self):
        outputs = [run(THREE_WAY, capacity)[0] for capacity in (1, 2, 4, 8)]
        assert all(output == outputs[0] for output in outputs)
