"""Documentation hygiene: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

SKIP_MODULES = set()


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = []
    for module in _walk_modules():
        if not (module.__doc__ or "").strip():
            missing.append(module.__name__)
    assert not missing, "modules without docstrings: %s" % missing


def test_every_public_class_has_a_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if obj.__module__ != module.__name__:
                continue  # re-export
            if not (obj.__doc__ or "").strip():
                missing.append("%s.%s" % (module.__name__, name))
    assert not missing, "classes without docstrings: %s" % missing


def test_every_public_function_has_a_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isfunction(obj):
                continue
            if obj.__module__ != module.__name__:
                continue
            if not (obj.__doc__ or "").strip():
                missing.append("%s.%s" % (module.__name__, name))
    assert not missing, "functions without docstrings: %s" % missing


def test_design_and_experiments_exist():
    import os

    root = os.path.join(os.path.dirname(repro.__file__), "..", "..")
    for filename in (
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        os.path.join("docs", "TRACING.md"),
        os.path.join("docs", "STATS.md"),
        os.path.join("docs", "FUZZING.md"),
        os.path.join("docs", "SHAPES.md"),
        os.path.join("docs", "METRICS.md"),
        os.path.join("docs", "DEOPTLESS.md"),
        os.path.join("docs", "SERVING.md"),
    ):
        path = os.path.join(root, filename)
        assert os.path.exists(path), "%s missing" % filename
        with open(path) as handle:
            assert len(handle.read()) > 500, "%s suspiciously short" % filename


def _parse_tracing_doc():
    """Extract the documented event schema from docs/TRACING.md.

    The document describes each event as a ``#### `channel.event```
    heading followed by a ``Fields: `a`, `b`, ...`` line; this parser
    is deliberately strict about that shape so the doc cannot drift
    into an unparseable format either.
    """
    import os
    import re

    path = os.path.join(
        os.path.dirname(repro.__file__), "..", "..", "docs", "TRACING.md"
    )
    with open(path) as handle:
        text = handle.read()
    documented = {}
    pattern = re.compile(
        r"^#### `(\w+)\.(\w+)`\n+Fields: (.+)$", re.MULTILINE
    )
    for channel, event, fields_line in pattern.findall(text):
        fields = tuple(re.findall(r"`(\w+)`", fields_line))
        documented.setdefault(channel, {})[event] = fields
    return documented, text


def test_tracing_doc_matches_event_schema():
    """docs/TRACING.md and the code's EVENT_SCHEMA agree exactly."""
    from repro.telemetry.tracing import CHANNELS, EVENT_SCHEMA

    documented, text = _parse_tracing_doc()

    assert set(documented) == set(EVENT_SCHEMA), (
        "channels documented but not in code: %s; in code but undocumented: %s"
        % (
            sorted(set(documented) - set(EVENT_SCHEMA)),
            sorted(set(EVENT_SCHEMA) - set(documented)),
        )
    )
    for channel, events in EVENT_SCHEMA.items():
        assert set(documented[channel]) == set(events), (
            "channel %r: documented events %s != code events %s"
            % (channel, sorted(documented[channel]), sorted(events))
        )
        for event, fields in events.items():
            assert documented[channel][event] == tuple(fields), (
                "%s.%s: documented fields %s != code fields %s"
                % (channel, event, documented[channel][event], tuple(fields))
            )
    # The channel list in the prose must name every channel too.
    for channel in CHANNELS:
        assert "`%s`" % channel in text, "channel %r missing from prose" % channel


def test_stats_doc_matches_as_dict_keys():
    """docs/STATS.md's documented `as_dict()` key set matches the code."""
    import os
    import re

    from repro.engine.config import CostModel
    from repro.engine.stats import EngineStats

    path = os.path.join(
        os.path.dirname(repro.__file__), "..", "..", "docs", "STATS.md"
    )
    with open(path) as handle:
        text = handle.read()
    match = re.search(r"^Keys: (.+?)(?:\n\n|\Z)", text, re.MULTILINE | re.DOTALL)
    assert match, "docs/STATS.md must carry a parseable 'Keys: ...' paragraph"
    documented = set(re.findall(r"`(\w+)`", match.group(1)))
    actual = set(EngineStats(CostModel()).as_dict())
    assert documented == actual, (
        "keys documented but not returned: %s; returned but undocumented: %s"
        % (sorted(documented - actual), sorted(actual - documented))
    )


def test_stats_doc_matches_summary_keys():
    """docs/STATS.md's documented `summary()` key set matches the code."""
    import os
    import re

    from repro.engine.config import CostModel
    from repro.engine.stats import EngineStats

    path = os.path.join(
        os.path.dirname(repro.__file__), "..", "..", "docs", "STATS.md"
    )
    with open(path) as handle:
        text = handle.read()
    match = re.search(
        r"^Summary keys: (.+?)(?:\n\n|\Z)", text, re.MULTILINE | re.DOTALL
    )
    assert match, "docs/STATS.md must carry a parseable 'Summary keys: ...' paragraph"
    documented = set(re.findall(r"`(\w+)`", match.group(1)))
    actual = set(EngineStats(CostModel()).summary())
    assert documented == actual, (
        "keys documented but not returned: %s; returned but undocumented: %s"
        % (sorted(documented - actual), sorted(actual - documented))
    )


def test_fuzzing_doc_covers_the_variant_matrix():
    """docs/FUZZING.md documents every oracle variant and the chaos
    contract's vocabulary."""
    import os

    from repro.fuzz.oracle import VARIANT_NAMES
    from repro.lir.native import FAULT_INJECTED

    path = os.path.join(
        os.path.dirname(repro.__file__), "..", "..", "docs", "FUZZING.md"
    )
    with open(path) as handle:
        text = handle.read()
    for name in VARIANT_NAMES:
        assert "`%s`" % name in text, "variant %r undocumented" % name
    assert FAULT_INJECTED in text
    assert "ddmin" in text
    assert "tests/corpus/" in text


def _shapes_doc():
    import os

    path = os.path.join(
        os.path.dirname(repro.__file__), "..", "..", "docs", "SHAPES.md"
    )
    with open(path) as handle:
        return handle.read()


def test_shapes_doc_ic_state_table_matches_code():
    """docs/SHAPES.md's IC state-machine table names exactly the states
    the code can report, and its capacity figure matches the code."""
    import re

    from repro.jsvm.feedback import MAX_IC_SHAPES, TypeFeedback

    text = _shapes_doc()
    section = text.split("## The IC state machine", 1)[1].split("\n## ", 1)[0]
    rows = re.findall(r"^\| `(\w+)` \|", section, re.MULTILINE)
    # Drive a feedback site through its whole life to enumerate the
    # states the code actually produces (None before any recording).
    feedback = TypeFeedback(num_params=0)
    states = {"unvisited" if feedback.ic_state(0) is None else feedback.ic_state(0)}
    for shape_id in range(MAX_IC_SHAPES + 1):
        feedback.record_shape(0, shape_id)
        states.add(feedback.ic_state(0))
    assert set(rows) == states, (
        "documented IC states %s != code states %s"
        % (sorted(rows), sorted(states))
    )
    assert len(rows) == len(set(rows)), "duplicate rows in the IC table"
    assert "capacity (%d)" % MAX_IC_SHAPES in section, (
        "IC capacity in the doc must match MAX_IC_SHAPES=%d" % MAX_IC_SHAPES
    )


def test_shapes_doc_trace_event_table_matches_schema():
    """docs/SHAPES.md's trace-event table covers exactly the `ic` and
    `shape` channel events from the code's EVENT_SCHEMA."""
    import re

    from repro.telemetry.tracing import EVENT_SCHEMA

    text = _shapes_doc()
    section = text.split("## Trace events", 1)[1].split("\n## ", 1)[0]
    documented = set(re.findall(r"`(ic|shape)\.(\w+)`", section))
    actual = {
        (channel, event)
        for channel in ("ic", "shape")
        for event in EVENT_SCHEMA[channel]
    }
    assert documented == actual, (
        "events documented but not in schema: %s; in schema but undocumented: %s"
        % (sorted(documented - actual), sorted(actual - documented))
    )


def test_shapes_doc_names_the_contract_vocabulary():
    """The guard op, the megamorphic sentinel, and the retrain reason
    are spelled exactly as the code spells them."""
    from repro.jsvm.feedback import MEGAMORPHIC
    from repro.lir.native import GUARD_OPS

    text = _shapes_doc()
    assert "guardshape" in GUARD_OPS
    assert "`guardshape`" in text
    assert "`%s`" % MEGAMORPHIC in text
    assert "shape-retrain" in text  # the deopt.discard reason
    assert "reset_shapes" in text


def _metrics_doc():
    import os

    path = os.path.join(
        os.path.dirname(repro.__file__), "..", "..", "docs", "METRICS.md"
    )
    with open(path) as handle:
        return handle.read()


def test_metrics_doc_matches_metric_schema():
    """docs/METRICS.md's registry table matches METRIC_SCHEMA exactly —
    names, types and merge policies, in both directions."""
    import re

    from repro.telemetry.metrics import METRIC_SCHEMA

    text = _metrics_doc()
    rows = re.findall(
        r"^\| `(\w+)` \| (counter|gauge|histogram) \| (sum|max) \|",
        text,
        re.MULTILINE,
    )
    documented = {name: (kind, merge) for name, kind, merge in rows}
    assert len(rows) == len(documented), "duplicate rows in the metric table"
    assert set(documented) == set(METRIC_SCHEMA), (
        "metrics documented but not in code: %s; in code but undocumented: %s"
        % (
            sorted(set(documented) - set(METRIC_SCHEMA)),
            sorted(set(METRIC_SCHEMA) - set(documented)),
        )
    )
    for name, spec in METRIC_SCHEMA.items():
        kind, merge = documented[name]
        assert kind == spec["type"], (
            "%s: documented type %r != code type %r" % (name, kind, spec["type"])
        )
        assert merge == spec.get("merge", "sum"), (
            "%s: documented merge %r != code merge %r"
            % (name, merge, spec.get("merge", "sum"))
        )


def test_metrics_doc_names_the_contract_vocabulary():
    """The buckets, exporters and sentinel kinds are spelled exactly as
    the code spells them."""
    from repro.bench.compare import THRESHOLDS

    text = _metrics_doc()
    assert "INSTALL_LATENCY_BUCKETS" in text
    assert "COMPILE_COST_BUCKETS" in text
    assert "merge_payloads" in text
    assert "to_prometheus" in text
    assert "write_metrics_jsonl" in text
    assert "format_dashboard" in text
    for kind in THRESHOLDS:
        assert "`%s`" % kind in text, "sentinel kind %r undocumented" % kind
    assert "--from-compare" in text
    assert "bench-delta.json" in text


def _deoptless_doc():
    import os

    path = os.path.join(
        os.path.dirname(repro.__file__), "..", "..", "docs", "DEOPTLESS.md"
    )
    with open(path) as handle:
        return handle.read()


def test_deoptless_doc_trace_event_table_matches_schema():
    """docs/DEOPTLESS.md's event table covers exactly the `deoptless`
    channel events, with the code's field tuples."""
    import re

    from repro.telemetry.tracing import EVENT_SCHEMA

    text = _deoptless_doc()
    section = text.split("## Telemetry", 1)[1].split("\n## ", 1)[0]
    rows = re.findall(
        r"^\| ``deoptless\.(\w+)`` \| (.+?) \|", section, re.MULTILINE
    )
    documented = {
        event: tuple(re.findall(r"``(\w+)``", fields)) for event, fields in rows
    }
    actual = {
        event: tuple(fields)
        for event, fields in EVENT_SCHEMA["deoptless"].items()
    }
    assert documented == actual, (
        "documented deoptless events %s != code events %s"
        % (documented, actual)
    )


def test_deoptless_doc_matches_engine_defaults():
    """The documented knob defaults match the code's signatures."""
    import inspect

    from repro.engine.config import CostModel
    from repro.engine.runtime_engine import Engine

    text = _deoptless_doc()
    signature = inspect.signature(Engine.__init__)
    assert signature.parameters["deoptless"].default is False
    assert "``Engine(deoptless=True)``" in text
    for knob in ("deoptless_miss_threshold", "deoptless_table_capacity"):
        default = signature.parameters[knob].default
        assert "``%s``" % knob in text, "knob %r undocumented" % knob
        assert "| %d |" % default in text, (
            "documented default for %r must match the code's %d" % (knob, default)
        )
    assert "| %d |" % CostModel().deoptless_dispatch in text


def test_deoptless_doc_names_the_contract_vocabulary():
    """Counters, floors, kernels and the fuzz/chaos hooks are spelled
    exactly as the code spells them."""
    from repro.bench.wallclock import (
        DEOPTLESS_CYCLE_CEILING,
        DEOPTLESS_DISCARD_CEILING,
    )
    from repro.engine.config import CostModel
    from repro.engine.stats import EngineStats
    from repro.workloads import ALL_SUITES

    text = _deoptless_doc()
    for benchmark in ALL_SUITES["churn"]:
        assert "``%s``" % benchmark.name in text, (
            "churn kernel %r undocumented" % benchmark.name
        )
    ledger = EngineStats(CostModel()).as_dict()
    for counter in (
        "deoptless_reentries",
        "deoptless_misses",
        "deoptless_generalized_compiles",
        "retrain_noops",
    ):
        assert counter in ledger
        assert "``%s``" % counter in text, "counter %r undocumented" % counter
    assert "%.1f" % DEOPTLESS_CYCLE_CEILING in text
    assert "%.1f" % DEOPTLESS_DISCARD_CEILING in text
    assert "measure_deoptless_cycles" in text
    assert "shape-retrain" in text  # the discard reason the no-op skips
    assert "exercise_entry_guards" in text
    assert "schedule_seed" in text


def test_profiling_doc_exists_and_mentions_the_invariant():
    """docs/PROFILING.md exists and states the exactness invariant."""
    import os

    path = os.path.join(
        os.path.dirname(repro.__file__), "..", "..", "docs", "PROFILING.md"
    )
    assert os.path.exists(path), "docs/PROFILING.md missing"
    with open(path) as handle:
        text = handle.read()
    assert len(text) > 500, "docs/PROFILING.md suspiciously short"
    assert "total_cycles" in text
    assert "attributed_cycles" in text


def _serving_doc():
    import os

    path = os.path.join(
        os.path.dirname(repro.__file__), "..", "..", "docs", "SERVING.md"
    )
    with open(path) as handle:
        return handle.read()


def test_serving_doc_metric_table_matches_schema():
    """docs/SERVING.md's metric table lists exactly the serving rows of
    METRIC_SCHEMA, with the code's types and merge policies."""
    import re

    from repro.telemetry.metrics import METRIC_SCHEMA

    text = _serving_doc()
    rows = re.findall(
        r"^\| `(\w+)` \| (counter|gauge|histogram) \| (sum|max) \|",
        text,
        re.MULTILINE,
    )
    documented = {name: (kind, merge) for name, kind, merge in rows}
    assert len(rows) == len(documented), "duplicate rows in the metric table"
    serving = {
        name: spec
        for name, spec in METRIC_SCHEMA.items()
        if name.startswith("repro_serving_")
    }
    assert set(documented) == set(serving), (
        "metrics documented but not in code: %s; in code but undocumented: %s"
        % (
            sorted(set(documented) - set(serving)),
            sorted(set(serving) - set(documented)),
        )
    )
    for name, spec in serving.items():
        kind, merge = documented[name]
        assert kind == spec["type"]
        assert merge == spec.get("merge", "sum")


def test_serving_doc_matches_admission_defaults():
    """The documented admission constants match the code."""
    from repro.serving.admission import DISPATCH_DELAY, QUEUE_CAPACITY
    from repro.bench.wallclock import SERVING_QUEUE_CAPACITY, SERVING_WARM_HIT_FLOOR

    text = _serving_doc()
    assert "`DISPATCH_DELAY` (%d cycles)" % DISPATCH_DELAY in text
    assert "`QUEUE_CAPACITY`, default %d" % QUEUE_CAPACITY in text
    assert "SLO profile runs at %d" % SERVING_QUEUE_CAPACITY in text
    assert "`SERVING_WARM_HIT_FLOOR` (%.1f)" % SERVING_WARM_HIT_FLOOR in text


def test_serving_doc_names_the_contract_vocabulary():
    """Classes, modes, gate fields and the smoke tool are spelled
    exactly as the code spells them."""
    text = _serving_doc()
    for name in (
        "TenantIsolate",
        "TenantHost",
        "AdmissionLane",
        "ShardedDiskCache",
        "TenantCacheView",
        "WorkerPool",
        "ServingServer",
        "install_shape_tree",
        "merge_payloads",
        "measure_serving",
        "tools/serving_smoke.py",
        "tools/bench_compare.py",
    ):
        assert name in text, "%r undocumented" % name
    for mode in ("`off`", "`tenant`", "`shared`"):
        assert mode in text, "cache mode %s undocumented" % mode
    for field in (
        "p50_latency_cycles",
        "p99_latency_cycles",
        "warm_hit_rate",
        "isolation_violations",
        "cycles_identical",
    ):
        assert "`%s`" % field in text, "gate field %r undocumented" % field
