"""Documentation hygiene: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

SKIP_MODULES = set()


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = []
    for module in _walk_modules():
        if not (module.__doc__ or "").strip():
            missing.append(module.__name__)
    assert not missing, "modules without docstrings: %s" % missing


def test_every_public_class_has_a_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if obj.__module__ != module.__name__:
                continue  # re-export
            if not (obj.__doc__ or "").strip():
                missing.append("%s.%s" % (module.__name__, name))
    assert not missing, "classes without docstrings: %s" % missing


def test_every_public_function_has_a_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isfunction(obj):
                continue
            if obj.__module__ != module.__name__:
                continue
            if not (obj.__doc__ or "").strip():
                missing.append("%s.%s" % (module.__name__, name))
    assert not missing, "functions without docstrings: %s" % missing


def test_design_and_experiments_exist():
    import os

    root = os.path.join(os.path.dirname(repro.__file__), "..", "..")
    for filename in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = os.path.join(root, filename)
        assert os.path.exists(path), "%s missing" % filename
        with open(path) as handle:
            assert len(handle.read()) > 500, "%s suspiciously short" % filename
