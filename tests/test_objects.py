"""Unit tests for heap objects (JSObject / JSArray)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import JSRangeError
from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.values import UNDEFINED


class TestJSObject:
    def test_get_set(self):
        obj = JSObject()
        obj.set("a", 1)
        assert obj.get("a") == 1

    def test_missing_is_undefined(self):
        assert JSObject().get("a") is UNDEFINED

    def test_has(self):
        obj = JSObject({"a": 1})
        assert obj.has("a")
        assert not obj.has("b")

    def test_delete(self):
        obj = JSObject({"a": 1})
        obj.delete("a")
        assert not obj.has("a")
        obj.delete("a")  # idempotent

    def test_constructor_copies(self):
        source = {"a": 1}
        obj = JSObject(source)
        source["a"] = 2
        assert obj.get("a") == 1


class TestJSArray:
    def test_length(self):
        assert JSArray([1, 2, 3]).length == 3

    def test_get_element(self):
        assert JSArray([5]).get_element(0) == 5

    def test_out_of_bounds_undefined(self):
        array = JSArray([5])
        assert array.get_element(1) is UNDEFINED
        assert array.get_element(-1) is UNDEFINED

    def test_float_index(self):
        array = JSArray([5, 6])
        assert array.get_element(1.0) == 6
        assert array.get_element(0.5) is UNDEFINED

    def test_set_element_grows_with_holes(self):
        array = JSArray()
        array.set_element(2, "x")
        assert array.length == 3
        assert array.get_element(0) is UNDEFINED
        assert array.get_element(2) == "x"

    def test_negative_store_raises(self):
        with pytest.raises(JSRangeError):
            JSArray().set_element(-1, 1)

    def test_length_property(self):
        assert JSArray([1, 2]).get("length") == 2

    def test_set_length_truncates(self):
        array = JSArray([1, 2, 3])
        array.set("length", 1)
        assert array.elements == [1]

    def test_set_length_extends(self):
        array = JSArray([1])
        array.set("length", 3)
        assert array.length == 3
        assert array.get_element(2) is UNDEFINED

    def test_set_length_invalid(self):
        with pytest.raises(JSRangeError):
            JSArray().set_length(-1)
        with pytest.raises(JSRangeError):
            JSArray().set_length("x")

    def test_push_pop(self):
        array = JSArray()
        assert array.push(1) == 1
        assert array.push(2) == 2
        assert array.pop() == 2
        assert array.pop() == 1
        assert array.pop() is UNDEFINED

    def test_named_properties_coexist(self):
        array = JSArray([1])
        array.set("tag", "x")
        assert array.get("tag") == "x"
        assert array.length == 1

    @given(st.lists(st.integers(), max_size=30), st.integers(min_value=0, max_value=50))
    def test_growth_invariant(self, items, index):
        array = JSArray(items)
        array.set_element(index, 99)
        assert array.length == max(len(items), index + 1)
        assert array.get_element(index) == 99
