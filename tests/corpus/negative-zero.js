// Negative zero: (-n) * 0 and -0 are doubles in JS even when every
// operand is an int32, so mul_i/neg_i carry dedicated guards.  The
// division makes -0 observable (1/-0 === -Infinity).
function prod(a, b) { var s = 1; for (var i = 0; i < 15; i = i + 1) { s = a * b; } return 1 / s; }
function flip(a) { var s = 0; for (var i = 0; i < 15; i = i + 1) { s = -a; } return 1 / s; }
print(prod(3, 2));
print(prod(3, 2));
print(prod(-3, 0));
print(prod(0, -3));
print(flip(5));
print(flip(5));
print(flip(0));
