// Array element traffic under mid-run growth: a hot a[i % a.length]
// walker compiled against a length-4 array, then the array grows via
// arr[arr.length] = v and the same binary runs again -- any cached
// length or bounds guard must notice, and in-bounds SETELEM stores
// must be visible to the immediately following reads.
function walk(a, n) { var s = 0; for (var i = 0; i < 60; i = i + 1) { s = (s + a[i % a.length] + n) & 65535; a[i % a.length] = s; } return s; }
var arr = [3, 65535, (-1), 256];
print(walk(arr, 5));
print(walk(arr, 5));
arr[arr.length] = 1023;
print(walk(arr, 5));
arr[arr.length] = (-2147483648);
print(walk(arr, 7));
var small = [2];
print(walk(small, 1));
var mixed = [1, 2.5, 7];
print(walk(mixed, 0));
var t = 0; for (var d = 0; d < 12; d = d + 1) { t = walk(arr, d); } print(t);
