// Array access with indices walking to (and one past) the length:
// bounds-check elimination must keep the in-range fast path and the
// final out-of-range read must bail, returning undefined like the
// interpreter.
function walk(arr, limit) { var s = ""; for (var i = 0; i < limit; i = i + 1) { s = s + arr[i] + ","; } return s; }
var data = [10, 20, 30, 40, 50];
print(walk(data, 5));
print(walk(data, 5));
print(walk(data, 5));
print(walk(data, 6));
print(walk(data, 0));
var total = 0; for (var r = 0; r < 14; r = r + 1) { total = total + data[r % 5]; } print(total);
