// Reassigned parameters: the baked-in specialization constant must
// not survive `a = a + 1` in the body (the paper's central hazard).
function climb(a, b) { var s = 0; for (var i = 0; i < 40; i = i + 1) { s = s + a; a = a + 1; } return s + b; }
print(climb(1, 2));
print(climb(1, 2));
print(climb(1, 2));
print(climb(10, 0));
var t = 0; for (var r = 0; r < 15; r = r + 1) { t = climb(r, t); } print(t);
