// The accumulator changes type *inside* the hot loop (int arithmetic
// until the threshold, then string concatenation): the type guard
// fails mid-OSR-execution, not at a call boundary.
function drift(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { if (i == 25) { s = "" + s; } s = s + 1; } return s; }
print(drift(10));
print(drift(10));
print(drift(40));
print(drift(40));
print(drift(24));
print(drift(26));
