// Trip counts straddling the OSR back-edge threshold (10 under the
// fuzzer's FAST settings, 100 default): some loops tier up
// mid-execution, some finish interpreted, zero/one-trip edges hit
// loop inversion's guards.
function spin(n, seed) { var s = seed; for (var i = 0; i < n; i = i + 1) { s = (s * 31 + i) & 65535; } return s; }
print(spin(0, 7));
print(spin(1, 7));
print(spin(9, 7));
print(spin(10, 7));
print(spin(11, 7));
print(spin(99, 7));
print(spin(100, 7));
print(spin(101, 7));
