// One hot function called with a new argument-type pair almost every
// time: the specialization cache churns through int/double/string/bool
// entries and eviction order must not change observable results.
function mix(a, b) { var s = a; for (var i = 0; i < 12; i = i + 1) { s = s + b; } return s; }
print(mix(1, 2));
print(mix(1, 2));
print(mix(1, 2));
print(mix(1.5, 2));
print(mix(1, 2.5));
print(mix("x", 2));
print(mix(1, "y"));
print(mix(true, 1));
print(mix(1, true));
print(mix(1.5, "z"));
print(mix(1, 2));
