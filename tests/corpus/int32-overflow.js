// Additions and multiplications that cross INT32_MAX/INT32_MIN
// mid-loop: the add_i/mul_i overflow guards must bail out to the
// double path with the exact overflowed value.
function creep(a, step) { var s = a; for (var i = 0; i < 30; i = i + 1) { s = s + step; } return s; }
function blow(a) { var s = 1; for (var i = 0; i < 12; i = i + 1) { s = s * a; } return s; }
print(creep(2147483600, 7));
print(creep(2147483600, 7));
print(creep(-2147483600, -7));
print(creep(0, 1));
print(blow(3));
print(blow(3));
print(blow(-7));
