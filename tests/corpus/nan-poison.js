// NaN never equals itself, so a NaN argument's cache key never
// matches: every call respecializes (worst-case spec-cache churn),
// and NaN comparisons must stay false in every compare kind.
function judge(a, b) { var s = 0; for (var i = 0; i < 18; i = i + 1) { s = (a < b ? 1 : 0) + (a == a ? 2 : 4) + s; } return s; }
var nan = 0 / 0;
print(judge(1, 2));
print(judge(1, 2));
print(judge(nan, 2));
print(judge(nan, 2));
print(judge(2, nan));
print(judge(nan, nan));
print(judge(1, 2));
