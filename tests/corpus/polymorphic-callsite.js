// One function, three argument types: int warm-up compiles an
// int-specialized binary, then doubles and strings force type-guard
// bailouts, discard, and respecialization.
function mix(a, b) { var s = a; for (var i = 0; i < 20; i = i + 1) { s = s + b; } return "" + s; }
print(mix(1, 2));
print(mix(1, 2));
print(mix(1, 2));
print(mix(1, 2));
print(mix(0.5, 0.25));
print(mix("x", "y"));
print(mix(1, 2));
print(mix(2.5, -0.25));
