// Closure cells: two instances of the same maker share compiled code
// but not cells.  Driving them interleaved means a binary specialized
// on one instance's captured values immediately executes against the
// sibling's cells -- state must flow through the environment, never a
// baked constant, and must not leak across instances.
function mk(n) { var t = n; var u = 3; return function (d) { t = (t + d + u) & 65535; u = (u ^ d) & 255; return t; }; }
var one = mk(100);
var two = mk(65000);
print(one(1));
print(two(1));
print(one(2));
print(two(2));
var y = 0; for (var x = 0; x < 80; x = x + 1) { y = (y + one(x) + two(x)) & 65535; } print(y);
print(one(0));
print(two(0));
var three = mk(100);
print(three(1));
print(one(1));
