// The unsigned shift is the one bit operation whose result can
// exceed int32 range: bitop_i's uint32-overflow guard must bail with
// the exact double the interpreter produces.
function shift(a, n) { var s = 0; for (var i = 0; i < 20; i = i + 1) { s = a >>> n; } return s; }
print(shift(1, 0));
print(shift(1, 0));
print(shift(-1, 0));
print(shift(-1, 1));
print(shift(-2147483648, 0));
print(shift(255, 4));
