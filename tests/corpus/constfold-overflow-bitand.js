// Constant folding of a guarded int32 subtraction: with parameter
// specialization baking a = -2147483647, b = 65535, the fold of
// (a - b) lands outside int32 and must NOT replace the sub_i -- the
// overflow bailout has to fire at runtime instead.  Pre-fix, the
// whole-function backend baked the overflowed double straight into
// an int32-typed bitand and crashed the host.
function f0(a, b) { var s = 256; for (var i = 0; i < 75; i = i + 1) { s = ((a - b) & i); } return "" + s; }
print(f0((-2147483647), 65535));
print(f0(2147483646, 255));
print(f0(1023, (-2147483648)));
var t0 = 0; for (var r0 = 0; r0 < 75; r0 = r0 + 1) { t0 = f0(1, r0); } print(t0);
