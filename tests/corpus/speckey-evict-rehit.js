// Spec-cache key-space churn: six distinct (v, w) literal pairs --
// more than any configured spec-cache capacity -- each driven hot,
// then the whole key set revisited twice more, so keys evicted by the
// collision policy are re-hit interleaved with fresh insertions.  The
// re-specialized binaries must print the same values every round.
function k0(v, w) { var s = 7; for (var i = 0; i < 40; i = i + 1) { s = ((s + v * i - w) ^ (v >> 2)) & 65535; } return s; }
var z0 = 0; for (var e0 = 0; e0 < 5; e0 = e0 + 1) { z0 = (z0 + k0(0, 0)) & 65535; } print(z0);
var z1 = 0; for (var e1 = 0; e1 < 5; e1 = e1 + 1) { z1 = (z1 + k0(255, 1)) & 65535; } print(z1);
var z2 = 0; for (var e2 = 0; e2 < 5; e2 = e2 + 1) { z2 = (z2 + k0(65535, 2)) & 65535; } print(z2);
var z3 = 0; for (var e3 = 0; e3 < 5; e3 = e3 + 1) { z3 = (z3 + k0((-1), 3)) & 65535; } print(z3);
var z4 = 0; for (var e4 = 0; e4 < 5; e4 = e4 + 1) { z4 = (z4 + k0(2147483646, 4)) & 65535; } print(z4);
var z5 = 0; for (var e5 = 0; e5 < 5; e5 = e5 + 1) { z5 = (z5 + k0((-2147483648), 5)) & 65535; } print(z5);
var y0 = 0; for (var x0 = 0; x0 < 5; x0 = x0 + 1) { y0 = (y0 + k0(0, 0)) & 65535; } print(y0);
var y1 = 0; for (var x1 = 0; x1 < 5; x1 = x1 + 1) { y1 = (y1 + k0(255, 1)) & 65535; } print(y1);
var y2 = 0; for (var x2 = 0; x2 < 5; x2 = x2 + 1) { y2 = (y2 + k0(65535, 2)) & 65535; } print(y2);
var y3 = 0; for (var x3 = 0; x3 < 5; x3 = x3 + 1) { y3 = (y3 + k0((-1), 3)) & 65535; } print(y3);
var y4 = 0; for (var x4 = 0; x4 < 5; x4 = x4 + 1) { y4 = (y4 + k0(2147483646, 4)) & 65535; } print(y4);
var y5 = 0; for (var x5 = 0; x5 < 5; x5 = x5 + 1) { y5 = (y5 + k0((-2147483648), 5)) & 65535; } print(y5);
var w0 = 0; for (var v0 = 0; v0 < 5; v0 = v0 + 1) { w0 = (w0 + k0(0, 0) + k0(255, 1) + k0(65535, 2)) & 65535; } print(w0);
