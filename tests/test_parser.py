"""Unit tests for the parser."""

import pytest

from repro.errors import JSSyntaxError
from repro.jsvm import ast_nodes as ast
from repro.jsvm.parser import parse


def parse_expr(text):
    program = parse(text + ";")
    assert len(program.body) == 1
    return program.body[0].expression


def parse_stmt(text):
    program = parse(text)
    assert len(program.body) == 1
    return program.body[0]


class TestExpressions:
    def test_precedence_mul_over_add(self):
        node = parse_expr("1 + 2 * 3")
        assert node.operator == "+"
        assert node.right.operator == "*"

    def test_left_associativity(self):
        node = parse_expr("1 - 2 - 3")
        assert node.operator == "-"
        assert node.left.operator == "-"

    def test_parentheses(self):
        node = parse_expr("(1 + 2) * 3")
        assert node.operator == "*"
        assert node.left.operator == "+"

    def test_bitwise_precedence(self):
        # | binds loosest, then ^, then &
        node = parse_expr("a | b ^ c & d")
        assert node.operator == "|"
        assert node.right.operator == "^"
        assert node.right.right.operator == "&"

    def test_equality_vs_relational(self):
        node = parse_expr("a == b < c")
        assert node.operator == "=="
        assert node.right.operator == "<"

    def test_shift(self):
        node = parse_expr("a << b + 1")
        assert node.operator == "<<"
        assert node.right.operator == "+"

    def test_logical_short_circuit_shape(self):
        node = parse_expr("a && b || c")
        assert isinstance(node, ast.Logical)
        assert node.operator == "||"
        assert node.left.operator == "&&"

    def test_conditional(self):
        node = parse_expr("a ? b : c")
        assert isinstance(node, ast.Conditional)

    def test_nested_conditional(self):
        node = parse_expr("a ? b : c ? d : e")
        assert isinstance(node.alternate, ast.Conditional)

    def test_assignment_right_associative(self):
        node = parse_expr("a = b = 1")
        assert isinstance(node.value, ast.Assignment)

    def test_compound_assignment(self):
        node = parse_expr("a += 2")
        assert node.operator == "+"

    def test_assignment_to_member(self):
        node = parse_expr("a.b = 1")
        assert isinstance(node.target, ast.Member)

    def test_invalid_assignment_target(self):
        with pytest.raises(JSSyntaxError):
            parse("1 = 2;")

    def test_unary_chain(self):
        node = parse_expr("!!x")
        assert node.operator == "!"
        assert node.operand.operator == "!"

    def test_typeof(self):
        node = parse_expr("typeof x")
        assert node.operator == "typeof"

    def test_prefix_update(self):
        node = parse_expr("++x")
        assert isinstance(node, ast.Update)
        assert node.prefix

    def test_postfix_update(self):
        node = parse_expr("x--")
        assert isinstance(node, ast.Update)
        assert not node.prefix

    def test_update_requires_target(self):
        with pytest.raises(JSSyntaxError):
            parse("++1;")

    def test_call_chain(self):
        node = parse_expr("f(1)(2)")
        assert isinstance(node, ast.Call)
        assert isinstance(node.callee, ast.Call)

    def test_member_dot(self):
        node = parse_expr("a.b.c")
        assert node.property == "c"
        assert node.object.property == "b"

    def test_member_computed(self):
        node = parse_expr("a[i + 1]")
        assert node.computed

    def test_member_keyword_property(self):
        node = parse_expr("a.in")
        assert node.property == "in"

    def test_method_call(self):
        node = parse_expr("a.push(1, 2)")
        assert isinstance(node.callee, ast.Member)
        assert len(node.arguments) == 2

    def test_new_with_args(self):
        node = parse_expr("new Point(1, 2)")
        assert isinstance(node, ast.New)
        assert len(node.arguments) == 2

    def test_new_without_args(self):
        node = parse_expr("new Thing")
        assert isinstance(node, ast.New)
        assert node.arguments == []

    def test_array_literal(self):
        node = parse_expr("[1, 2, 3]")
        assert len(node.elements) == 3

    def test_empty_array(self):
        assert parse_expr("[]").elements == []

    def test_object_literal(self):
        node = parse_expr("({a: 1, 'b': 2, 3: 4})")
        keys = [k for k, _v in node.properties]
        assert keys == ["a", "b", "3"]

    def test_function_expression(self):
        node = parse_expr("(function f(x) { return x; })")
        assert isinstance(node, ast.FunctionExpression)
        assert node.name == "f"

    def test_anonymous_function_expression(self):
        node = parse_expr("(function (x) { return x; })")
        assert node.name is None

    def test_sequence(self):
        node = parse_expr("(a, b, c)")
        assert isinstance(node, ast.Sequence)
        assert len(node.expressions) == 3

    def test_this(self):
        node = parse_expr("this.x")
        assert isinstance(node.object, ast.ThisExpression)

    def test_in_operator(self):
        node = parse_expr('"k" in obj')
        assert node.operator == "in"

    def test_void(self):
        node = parse_expr("void 0")
        assert node.operator == "void"


class TestStatements:
    def test_var_multiple(self):
        node = parse_stmt("var a = 1, b, c = 3;")
        assert [name for name, _ in node.declarations] == ["a", "b", "c"]
        assert node.declarations[1][1] is None

    def test_let_parses_as_var(self):
        node = parse_stmt("let a = 1;")
        assert isinstance(node, ast.VarDecl)

    def test_if_else(self):
        node = parse_stmt("if (a) b; else c;")
        assert node.alternate is not None

    def test_dangling_else(self):
        node = parse_stmt("if (a) if (b) c; else d;")
        assert node.alternate is None
        assert node.consequent.alternate is not None

    def test_while(self):
        node = parse_stmt("while (x) x--;")
        assert isinstance(node, ast.While)

    def test_do_while(self):
        node = parse_stmt("do x--; while (x);")
        assert isinstance(node, ast.DoWhile)

    def test_for_full(self):
        node = parse_stmt("for (var i = 0; i < 10; i++) f(i);")
        assert node.init is not None
        assert node.test is not None
        assert node.update is not None

    def test_for_empty_clauses(self):
        node = parse_stmt("for (;;) break;")
        assert node.init is None
        assert node.test is None
        assert node.update is None

    def test_function_decl(self):
        node = parse_stmt("function f(a, b) { return a + b; }")
        assert isinstance(node, ast.FunctionDecl)
        assert node.params == ["a", "b"]

    def test_return_without_value(self):
        node = parse(("function f() { return; }")).body[0]
        assert node.body[0].argument is None

    def test_return_value_on_next_line_asi(self):
        # ASI: `return` followed by a newline returns undefined.
        node = parse("function f() { return\n1; }").body[0]
        assert node.body[0].argument is None

    def test_break_continue(self):
        program = parse("while (1) { break; continue; }")
        body = program.body[0].body.body
        assert isinstance(body[0], ast.Break)
        assert isinstance(body[1], ast.Continue)

    def test_empty_statement(self):
        assert isinstance(parse_stmt(";"), ast.Empty)

    def test_block(self):
        node = parse_stmt("{ 1; 2; }")
        assert isinstance(node, ast.Block)
        assert len(node.body) == 2

    def test_asi_newline(self):
        program = parse("var a = 1\nvar b = 2")
        assert len(program.body) == 2

    def test_missing_semicolon_same_line(self):
        with pytest.raises(JSSyntaxError):
            parse("var a = 1 var b = 2")

    def test_unterminated_block(self):
        with pytest.raises(JSSyntaxError):
            parse("{ 1;")

    def test_nested_functions(self):
        program = parse("function o() { function i() { return 1; } return i; }")
        inner = program.body[0].body[0]
        assert isinstance(inner, ast.FunctionDecl)
