"""Unit tests for the JS value model and coercions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.values import (
    INT32_MAX,
    INT32_MIN,
    NULL,
    UNDEFINED,
    JSFunction,
    arguments_key,
    format_number,
    is_int32,
    js_equals,
    js_strict_equals,
    normalize_number,
    to_boolean,
    to_js_string,
    to_number,
    type_of,
    type_tag,
    value_key,
)
from repro.jsvm.bytecompiler import compile_source


def make_function():
    code = compile_source("function f(x) { return x; }")
    inner = [c for c in code.constants if hasattr(c, "instructions")][0]
    return JSFunction(inner, ())


class TestSingletons:
    def test_undefined_is_singleton(self):
        from repro.jsvm.values import JSUndefined

        assert JSUndefined() is UNDEFINED

    def test_null_is_singleton(self):
        from repro.jsvm.values import JSNull

        assert JSNull() is NULL

    def test_falsiness(self):
        assert not UNDEFINED
        assert not NULL


class TestNormalizeNumber:
    def test_int_stays_int(self):
        assert normalize_number(5) == 5
        assert type(normalize_number(5)) is int

    def test_integral_float_to_int(self):
        assert type(normalize_number(5.0)) is int

    def test_fractional_float_stays(self):
        assert normalize_number(5.5) == 5.5

    def test_big_int_to_float(self):
        assert type(normalize_number(2 ** 32)) is float

    def test_negative_zero_preserved(self):
        result = normalize_number(-0.0)
        assert type(result) is float
        assert math.copysign(1.0, result) < 0

    def test_int32_bounds(self):
        assert type(normalize_number(INT32_MAX)) is int
        assert type(normalize_number(INT32_MIN)) is int
        assert type(normalize_number(INT32_MAX + 1)) is float

    @given(st.integers(min_value=INT32_MIN, max_value=INT32_MAX))
    def test_int32_roundtrip(self, n):
        assert normalize_number(n) == n
        assert is_int32(normalize_number(n))

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_normalize_preserves_value(self, x):
        assert float(normalize_number(x)) == x


class TestTypeOf:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (UNDEFINED, "undefined"),
            (NULL, "object"),
            (True, "boolean"),
            (1, "number"),
            (1.5, "number"),
            ("s", "string"),
        ],
    )
    def test_primitives(self, value, expected):
        assert type_of(value) == expected

    def test_object(self):
        assert type_of(JSObject()) == "object"

    def test_array_is_object(self):
        assert type_of(JSArray()) == "object"

    def test_function(self):
        assert type_of(make_function()) == "function"


class TestTypeTag:
    def test_distinguishes_int_double(self):
        assert type_tag(1) == "int"
        assert type_tag(1.5) == "double"

    def test_distinguishes_array_object(self):
        assert type_tag(JSArray()) == "array"
        assert type_tag(JSObject()) == "object"

    def test_null_vs_undefined(self):
        assert type_tag(NULL) == "null"
        assert type_tag(UNDEFINED) == "undefined"

    def test_bool_is_not_int(self):
        assert type_tag(True) == "bool"


class TestToBoolean:
    @pytest.mark.parametrize(
        "value", [0, 0.0, "", UNDEFINED, NULL, float("nan"), False]
    )
    def test_falsy(self, value):
        assert to_boolean(value) is False

    @pytest.mark.parametrize("value", [1, -1, 0.5, "0", "false", True])
    def test_truthy(self, value):
        assert to_boolean(value) is True

    def test_objects_truthy(self):
        assert to_boolean(JSObject()) is True
        assert to_boolean(JSArray()) is True


class TestToNumber:
    def test_string_int(self):
        assert to_number("42") == 42

    def test_string_float(self):
        assert to_number("2.5") == 2.5

    def test_string_hex(self):
        assert to_number("0x10") == 16

    def test_empty_string(self):
        assert to_number("") == 0

    def test_whitespace_string(self):
        assert to_number("  7 ") == 7

    def test_garbage_is_nan(self):
        assert math.isnan(to_number("abc"))

    def test_bool(self):
        assert to_number(True) == 1
        assert to_number(False) == 0

    def test_undefined_is_nan(self):
        assert math.isnan(to_number(UNDEFINED))

    def test_null_is_zero(self):
        assert to_number(NULL) == 0

    def test_object_is_nan(self):
        assert math.isnan(to_number(JSObject()))

    def test_single_element_array(self):
        assert to_number(JSArray([7])) == 7


class TestToString:
    def test_int(self):
        assert to_js_string(42) == "42"

    def test_integral_double(self):
        assert to_js_string(42.0) == "42"

    def test_nan(self):
        assert to_js_string(float("nan")) == "NaN"

    def test_infinity(self):
        assert to_js_string(float("inf")) == "Infinity"
        assert to_js_string(float("-inf")) == "-Infinity"

    def test_booleans(self):
        assert to_js_string(True) == "true"
        assert to_js_string(False) == "false"

    def test_nullish(self):
        assert to_js_string(UNDEFINED) == "undefined"
        assert to_js_string(NULL) == "null"

    def test_array_join(self):
        assert to_js_string(JSArray([1, 2, 3])) == "1,2,3"

    def test_array_holes(self):
        assert to_js_string(JSArray([1, UNDEFINED, NULL, 2])) == "1,,,2"

    def test_object(self):
        assert to_js_string(JSObject()) == "[object Object]"

    def test_format_number_fraction(self):
        assert format_number(0.5) == "0.5"


class TestEquality:
    def test_strict_same_type(self):
        assert js_strict_equals(1, 1)
        assert not js_strict_equals(1, 2)

    def test_strict_int_double(self):
        assert js_strict_equals(1, 1.0)

    def test_strict_different_types(self):
        assert not js_strict_equals(1, "1")
        assert not js_strict_equals(0, False)

    def test_strict_nan(self):
        assert not js_strict_equals(float("nan"), float("nan"))

    def test_strict_objects_by_identity(self):
        a = JSObject()
        assert js_strict_equals(a, a)
        assert not js_strict_equals(a, JSObject())

    def test_loose_null_undefined(self):
        assert js_equals(NULL, UNDEFINED)
        assert not js_equals(NULL, 0)
        assert not js_equals(UNDEFINED, 0)

    def test_loose_number_string(self):
        assert js_equals(1, "1")
        assert js_equals("2.5", 2.5)

    def test_loose_boolean(self):
        assert js_equals(True, 1)
        assert js_equals(False, "0")

    def test_loose_array_to_primitive(self):
        assert js_equals(JSArray([1]), 1)
        assert js_equals(JSArray(["a"]), "a")

    @given(st.integers(min_value=-1000, max_value=1000))
    def test_loose_reflexive_numbers(self, n):
        assert js_equals(n, n)
        assert js_equals(n, float(n))


class TestValueKey:
    def test_primitives_by_value(self):
        assert value_key(1) == value_key(1)
        assert value_key("a") == value_key("a")

    def test_int_float_distinct(self):
        # The cache distinguishes representations: specialized code
        # baked an int32, a double must recompile typed paths.
        assert value_key(1) != value_key(1.0)

    def test_bool_not_int(self):
        assert value_key(True) != value_key(1)

    def test_objects_by_identity(self):
        a, b = JSObject(), JSObject()
        assert value_key(a) == value_key(a)
        assert value_key(a) != value_key(b)

    def test_arguments_key(self):
        a = JSArray()
        assert arguments_key([1, "x", a]) == arguments_key([1, "x", a])
        assert arguments_key([1]) != arguments_key([2])

    def test_undefined_null_distinct(self):
        assert value_key(UNDEFINED) != value_key(NULL)
