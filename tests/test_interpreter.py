"""Interpreter semantics tests: the executable spec of the JS subset."""

import pytest

from repro.errors import JSRangeError, JSReferenceError, JSTypeError
from repro.jsvm.interpreter import Interpreter


def run(source):
    return Interpreter().run_source(source)


def run1(source):
    out = run(source)
    assert len(out) == 1
    return out[0]


class TestBasics:
    def test_arithmetic(self):
        assert run1("print(1 + 2 * 3 - 4 / 2);") == "5"

    def test_string_ops(self):
        assert run1("print('a' + 'b' + 1);") == "ab1"

    def test_variables(self):
        assert run1("var x = 2; x = x * 10; print(x);") == "20"

    def test_compound_assignment(self):
        assert run1("var x = 8; x -= 3; x *= 2; x %= 7; print(x);") == "3"

    def test_shift_compound(self):
        assert run1("var x = 1; x <<= 4; x >>= 1; print(x);") == "8"

    def test_conditional_expression(self):
        assert run1("print(1 < 2 ? 'y' : 'n');") == "y"

    def test_sequence_expression(self):
        assert run1("var x = (1, 2, 3); print(x);") == "3"

    def test_print_multiple(self):
        assert run1("print(1, 'a', true);") == "1 a true"


class TestControlFlow:
    def test_if_else_chain(self):
        source = """
        function grade(n) {
          if (n >= 90) return "A";
          else if (n >= 80) return "B";
          else return "C";
        }
        print(grade(95), grade(85), grade(10));
        """
        assert run(source) == ["A B C"]

    def test_while(self):
        assert run1("var i = 0, s = 0; while (i < 5) { s += i; i++; } print(s);") == "10"

    def test_do_while_runs_once(self):
        assert run1("var i = 10; do i++; while (i < 5); print(i);") == "11"

    def test_for(self):
        assert run1("var s = 0; for (var i = 1; i <= 4; i++) s += i; print(s);") == "10"

    def test_for_without_clauses(self):
        assert run1("var i = 0; for (;;) { i++; if (i > 3) break; } print(i);") == "4"

    def test_break(self):
        assert run1("var i = 0; while (true) { if (i == 3) break; i++; } print(i);") == "3"

    def test_continue(self):
        source = "var s = 0; for (var i = 0; i < 10; i++) { if (i % 2) continue; s += i; } print(s);"
        assert run1(source) == "20"

    def test_nested_loops_break_inner(self):
        source = """
        var count = 0;
        for (var i = 0; i < 3; i++)
          for (var j = 0; j < 10; j++) { if (j == 2) break; count++; }
        print(count);
        """
        assert run1(source) == "6"

    def test_while_continue(self):
        source = "var i = 0, s = 0; while (i < 6) { i++; if (i % 2) continue; s += i; } print(s);"
        assert run1(source) == "12"


class TestFunctions:
    def test_recursion(self):
        assert run1("function f(n) { return n < 2 ? n : f(n-1) + f(n-2); } print(f(10));") == "55"

    def test_mutual_recursion(self):
        source = """
        function isEven(n) { return n == 0 ? true : isOdd(n - 1); }
        function isOdd(n) { return n == 0 ? false : isEven(n - 1); }
        print(isEven(10), isOdd(7));
        """
        assert run1(source) == "true true"

    def test_missing_args_are_undefined(self):
        assert run1("function f(a, b) { return typeof b; } print(f(1));") == "undefined"

    def test_extra_args_dropped(self):
        assert run1("function f(a) { return a; } print(f(1, 2, 3));") == "1"

    def test_first_class_functions(self):
        source = "function ap(f, x) { return f(x); } function sq(x) { return x*x; } print(ap(sq, 7));"
        assert run1(source) == "49"

    def test_closure_counter(self):
        source = """
        function mk() { var c = 0; return function() { c++; return c; }; }
        var a = mk(), b = mk();
        a(); a();
        print(a(), b());
        """
        assert run1(source) == "3 1"

    def test_closure_shares_cell(self):
        source = """
        function mk() {
          var v = 0;
          return [function() { v += 10; }, function() { return v; }];
        }
        var pair = mk();
        pair[0](); pair[0]();
        print(pair[1]());
        """
        assert run1(source) == "20"

    def test_too_much_recursion(self):
        with pytest.raises(JSRangeError):
            run("function f() { return f(); } f();")

    def test_call_non_function(self):
        with pytest.raises(JSTypeError):
            run("var x = 3; x();")

    def test_function_returns_undefined_by_default(self):
        assert run1("function f() {} print(f());") == "undefined"


class TestObjectsAndArrays:
    def test_object_literal_and_access(self):
        assert run1("var o = {a: 1, b: {c: 2}}; print(o.a + o.b.c);") == "3"

    def test_property_write(self):
        assert run1("var o = {}; o.x = 5; o['y'] = 6; print(o.x * o.y);") == "30"

    def test_array_literal(self):
        assert run1("var a = [1, 2, 3]; print(a[0] + a[2], a.length);") == "4 3"

    def test_array_growth(self):
        assert run1("var a = []; a[4] = 1; print(a.length, typeof a[0]);") == "5 undefined"

    def test_array_methods(self):
        source = """
        var a = [3, 1, 2];
        a.push(4);
        print(a.join("-"), a.pop(), a.length, a.indexOf(1), a.slice(1).join(""));
        """
        assert run1(source) == "3-1-2-4 4 3 1 12"

    def test_array_reverse_concat(self):
        assert run1("print([1,2].concat([3], 4).reverse().join(''));") == "4321"

    def test_array_shift_unshift(self):
        assert run1("var a = [2,3]; a.unshift(1); print(a.shift(), a.join(''));") == "1 23"

    def test_array_sort_default(self):
        assert run1("print([10, 9, 1].sort().join(','));") == "1,10,9"

    def test_array_sort_comparator(self):
        assert run1("print([10, 9, 1].sort(function(a,b){return a-b;}).join(','));") == "1,9,10"

    def test_delete_via_undefined_read(self):
        assert run1("var o = {}; print(o.missing);") == "undefined"

    def test_this_in_method(self):
        source = "var o = {v: 7, get: function() { return this.v; }}; print(o.get());"
        assert run1(source) == "7"

    def test_new_constructor(self):
        source = """
        function Point(x, y) { this.x = x; this.y = y; }
        var p = new Point(3, 4);
        print(p.x + p.y, typeof p);
        """
        assert run1(source) == "7 object"

    def test_new_returning_object(self):
        source = "function F() { return {v: 1}; } print(new F().v);"
        assert run1(source) == "1"

    def test_in_operator(self):
        assert run1("var o = {k: 1}; print('k' in o, 'z' in o, 0 in [5]);") == "true false true"


class TestStrings:
    def test_methods(self):
        source = """
        var s = "Hello World";
        print(s.length, s.charAt(0), s.charCodeAt(1), s.indexOf("World"),
              s.substring(0, 5), s.toLowerCase(), s.split(" ").length);
        """
        assert run1(source) == "11 H 101 6 Hello hello world 2"

    def test_index_access(self):
        assert run1("print('abc'[1], typeof 'abc'[9]);") == "b undefined"

    def test_concat_builds(self):
        assert run1("var s = ''; for (var i = 0; i < 3; i++) s += i; print(s);") == "012"

    def test_replace_and_substr(self):
        assert run1("print('aXbXc'.replace('X', '-'), 'abcdef'.substr(2, 3));") == "a-bXc cde"

    def test_number_to_string_radix(self):
        assert run1("print((255).toString(16), (8).toString(2));") == "ff 1000"

    def test_from_char_code(self):
        assert run1("print(String.fromCharCode(72, 105));") == "Hi"


class TestBuiltins:
    def test_math(self):
        assert run1("print(Math.floor(2.7), Math.max(1, 5, 3), Math.abs(-2), Math.pow(2, 8));") == "2 5 2 256"

    def test_math_sqrt_and_constants(self):
        out = run1("print(Math.sqrt(16), Math.PI > 3.14 && Math.PI < 3.15);")
        assert out == "4 true"

    def test_math_random_deterministic(self):
        first = run("print(Math.random());")
        second = run("print(Math.random());")
        assert first == second  # seeded LCG

    def test_parse_int_float(self):
        assert run1("print(parseInt('42px'), parseInt('ff', 16), parseFloat('2.5x'));") == "42 255 2.5"

    def test_is_nan(self):
        assert run1("print(isNaN(NaN), isNaN(1), isFinite(Infinity));") == "true false false"

    def test_array_constructor(self):
        assert run1("print(new Array(3).length, Array(1, 2).join(''));") == "3 12"

    def test_string_conversion(self):
        assert run1("print(String(42) + '!', (1.5).toFixed(1));") == "42! 1.5"

    def test_reference_error(self):
        with pytest.raises(JSReferenceError):
            run("print(definitelyMissing);")


class TestTypeSystemCorners:
    def test_typeof_all(self):
        source = "print(typeof 1, typeof 'a', typeof true, typeof undefined, typeof null, typeof {}, typeof [], typeof print);"
        assert run1(source) == "number string boolean undefined object object object function"

    def test_nan_propagation(self):
        assert run1("var x = 0 / 0; print(x == x, x != x);") == "false true"

    def test_negative_zero_division(self):
        assert run1("print(1 / -0.0);") == "-Infinity"

    def test_int_double_boundary(self):
        assert run1("print(2147483647 + 1);") == "2147483648"

    def test_string_number_weirdness(self):
        assert run1("print('5' + 3, '5' - 3);") == "53 2"

    def test_equality_table_sample(self):
        assert run1("print(null == undefined, null === undefined, 0 == '', 0 == '0');") == "true false true true"

    def test_postfix_vs_prefix(self):
        assert run1("var i = 5; var a = i++; var b = ++i; print(a, b, i);") == "5 7 7"

    def test_update_on_member(self):
        assert run1("var o = {n: 1}; o.n++; ++o.n; print(o.n);") == "3"

    def test_update_on_element(self):
        assert run1("var a = [1]; a[0]++; print(a[0]++, a[0]);") == "2 3"

    def test_compound_on_element_evaluates_once(self):
        source = """
        var calls = 0;
        function idx() { calls++; return 0; }
        var a = [10];
        a[idx()] += 5;
        print(a[0], calls);
        """
        assert run1(source) == "15 1"


class TestDelete:
    def test_delete_property(self):
        assert run1("var o = {a: 1, b: 2}; print(delete o.a, 'a' in o, o.b);") == "true false 2"

    def test_delete_missing_property(self):
        assert run1("var o = {}; print(delete o.nothing);") == "true"

    def test_delete_yields_true_for_non_members(self):
        assert run1("var x = 1; print(delete x, x);") == "true 1"

    def test_deleting_function_stays_interpreted(self):
        # DELPROP is NotCompilable: the engine must fall back cleanly.
        from repro import Engine, FULL_SPEC

        source = """
        function wipe(o) { delete o.k; return 'k' in o; }
        var r = true;
        for (var i = 0; i < 40; i++) r = wipe({k: 1});
        print(r);
        """
        engine = Engine(config=FULL_SPEC, hot_call_threshold=3)
        assert engine.run_source(source) == ["false"]
        assert engine.stats.not_compilable
