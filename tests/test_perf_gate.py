"""The wall-clock perf gate: unit tests plus the opt-in timed gate.

``check_gate`` and the ``run_wallclock`` plumbing are deterministic
and run in tier-1.  The actual timed gate (real seconds on this host
vs the checked-in ``BENCH_wallclock.json``) is marked ``perf`` and
excluded from tier-1 by ``addopts`` — host timing is noisy; run it
explicitly with ``pytest -m perf`` or ``tools/perf_gate.py``.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.bench.wallclock import (
    check_gate,
    format_wallclock,
    load_wallclock_json,
    run_wallclock,
    write_wallclock_json,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _results(speedups, geomean):
    return {
        "protocol": {"config": "all", "repeats": 3, "backends": ["simple", "closure"]},
        "suites": {
            name: {
                "simple_seconds": speedup,
                "closure_seconds": 1.0,
                "speedup": speedup,
                "sim_instructions": 1000,
                "simple_sips": 1000,
                "closure_sips": 1000,
            }
            for name, speedup in speedups.items()
        },
        "geomean_speedup": geomean,
    }


class TestCheckGate:
    def test_identical_runs_pass(self):
        baseline = _results({"sunspider": 2.0, "v8": 2.4}, 2.19)
        assert check_gate(baseline, baseline) == []

    def test_small_drop_within_tolerance_passes(self):
        baseline = _results({"sunspider": 2.0}, 2.0)
        current = _results({"sunspider": 1.8}, 1.8)  # -10%, tolerance 15%
        assert check_gate(current, baseline, tolerance=0.15) == []

    def test_regression_below_tolerance_fails(self):
        baseline = _results({"sunspider": 2.0, "v8": 2.4}, 2.19)
        current = _results({"sunspider": 1.5, "v8": 2.4}, 2.19)  # -25%
        failures = check_gate(current, baseline, tolerance=0.15)
        assert len(failures) == 1
        assert "sunspider" in failures[0]

    def test_missing_suite_fails_loudly(self):
        baseline = _results({"sunspider": 2.0, "v8": 2.4}, 2.19)
        current = _results({"sunspider": 2.0}, 2.0)
        failures = check_gate(current, baseline)
        assert any("v8" in failure for failure in failures)

    def test_new_suite_passes_trivially(self):
        baseline = _results({"sunspider": 2.0}, 2.0)
        current = _results({"sunspider": 2.0, "kraken": 0.5}, 1.0)
        # kraken is new: no baseline ratio to regress from.  But the
        # geomean dragged down by it still trips the gate.
        failures = check_gate(current, baseline)
        assert failures == [
            failure for failure in failures if failure.startswith("geomean")
        ]
        assert failures  # the geomean drop is caught

    def test_geomean_regression_fails(self):
        baseline = _results({"sunspider": 2.0}, 2.0)
        current = _results({"sunspider": 1.8}, 1.5)
        failures = check_gate(current, baseline, tolerance=0.15)
        assert any(failure.startswith("geomean") for failure in failures)

    def test_tolerance_is_adjustable(self):
        baseline = _results({"sunspider": 2.0}, 2.0)
        current = _results({"sunspider": 1.8}, 1.8)
        assert check_gate(current, baseline, tolerance=0.15) == []
        assert check_gate(current, baseline, tolerance=0.05) != []


class _FakeBenchmark(object):
    def __init__(self, name, source):
        self.name = name
        self.source = source


class TestRunWallclock:
    def test_smoke_tiny_suite(self):
        suite = [
            _FakeBenchmark(
                "tiny",
                "function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i;"
                " return s; } print(f(200));",
            )
        ]
        results = run_wallclock(suites={"tiny": suite}, repeats=1)
        row = results["suites"]["tiny"]
        assert row["simple_seconds"] >= 0
        assert row["closure_seconds"] >= 0
        assert row["speedup"] > 0
        assert row["sim_instructions"] > 0
        assert results["geomean_speedup"] == row["speedup"]
        assert "tiny" in format_wallclock(results)

    def test_json_round_trip(self, tmp_path):
        results = _results({"sunspider": 2.0}, 2.0)
        path = str(tmp_path / "bench.json")
        write_wallclock_json(results, path)
        assert load_wallclock_json(path) == results
        with open(path) as handle:
            assert json.load(handle) == results


@pytest.mark.perf
def test_perf_gate_end_to_end():
    """The real gate: timed suites vs the checked-in baseline.

    Runs ``tools/perf_gate.py`` as a subprocess, exactly as CI would.
    Marked ``perf`` so tier-1 (which must be timing-independent) skips
    it; ``pytest -m perf`` opts in.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    completed = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "perf_gate.py")],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "perf gate passed" in completed.stdout
