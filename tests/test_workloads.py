"""Tests for the workload suites and the synthetic web corpus."""

import pytest

from repro.jsvm.interpreter import Interpreter
from repro.telemetry.histograms import CallProfiler
from repro.workloads import ALL_SUITES, Benchmark, suite
from repro.workloads.web import (
    WEBSITES,
    WebCorpusConfig,
    generate_web_trace,
    generate_website_program,
)

ALL_BENCHMARKS = [
    (suite_name, benchmark)
    for suite_name, benchmarks in sorted(ALL_SUITES.items())
    for benchmark in benchmarks
]


class TestSuiteStructure:
    def test_suite_lookup(self):
        assert suite("sunspider") is ALL_SUITES["sunspider"]
        with pytest.raises(KeyError):
            suite("octane")

    def test_suites_nonempty(self):
        # The three paper suites are substantial; the object/shape
        # suite (docs/SHAPES.md) and the precondition-churn suite
        # (docs/DEOPTLESS.md) are focused three-kernel sets.
        for name, benchmarks in ALL_SUITES.items():
            assert len(benchmarks) >= (3 if name in ("objects", "churn") else 6)

    def test_unique_names(self):
        for benchmarks in ALL_SUITES.values():
            names = [b.name for b in benchmarks]
            assert len(names) == len(set(names))

    def test_benchmark_repr(self):
        assert "bitops" in repr(ALL_SUITES["sunspider"][0])


@pytest.mark.parametrize(
    "suite_name,bench",
    ALL_BENCHMARKS,
    ids=["%s/%s" % (s, b.name) for s, b in ALL_BENCHMARKS],
)
class TestBenchmarkPrograms:
    def test_parses_and_prints_one_line(self, suite_name, bench):
        # Each program runs on the bare interpreter and prints exactly
        # one line (determinism across tiers is covered by the bench
        # harness's output verification).
        output = Interpreter().run_source(bench.source)
        assert len(output) == 1
        assert output[0] != ""


class TestWebCorpus:
    def test_seeded_reproducibility(self):
        a, b = CallProfiler(), CallProfiler()
        generate_web_trace(a, WebCorpusConfig(num_functions=300))
        generate_web_trace(b, WebCorpusConfig(num_functions=300))
        assert a.call_count_histogram() == b.call_count_histogram()
        assert a.argument_set_histogram() == b.argument_set_histogram()

    def test_different_seed_differs(self):
        a, b = CallProfiler(), CallProfiler()
        generate_web_trace(a, WebCorpusConfig(num_functions=300, seed=1))
        generate_web_trace(b, WebCorpusConfig(num_functions=300, seed=2))
        assert a.call_count_histogram() != b.call_count_histogram()

    def test_population_size(self):
        profiler = CallProfiler()
        generate_web_trace(profiler, WebCorpusConfig(num_functions=500))
        assert profiler.num_functions == 500

    def test_paper_fractions(self):
        profiler = CallProfiler()
        generate_web_trace(profiler, WebCorpusConfig(num_functions=2300))
        assert abs(profiler.fraction_called_once() - 0.4888) < 0.05
        assert abs(profiler.fraction_single_argument_set() - 0.5991) < 0.05

    def test_argument_sets_bounded_by_calls(self):
        profiler = CallProfiler()
        generate_web_trace(profiler, WebCorpusConfig(num_functions=400))
        for profile in profiler.profiles.values():
            assert 1 <= profile.distinct_argument_sets <= profile.call_count

    def test_type_mix_is_web_like(self):
        profiler = CallProfiler()
        generate_web_trace(profiler, WebCorpusConfig(num_functions=2300))
        dist = profiler.parameter_type_distribution()
        assert dist["object"] > dist["int"]
        assert dist["string"] > dist["int"]


class TestWebsitePrograms:
    def test_generates_runnable_source(self):
        for site, functions, poly in WEBSITES:
            source = generate_website_program(site, functions, poly)
            output = Interpreter().run_source(source)
            assert len(output) == 1

    def test_deterministic_per_site(self):
        source_a = generate_website_program("www.example.com", 20, 0.1)
        source_b = generate_website_program("www.example.com", 20, 0.1)
        assert source_a == source_b

    def test_output_stable_across_engines(self):
        from repro import BASELINE, FULL_SPEC, Engine

        source = generate_website_program("www.example.com", 25, 0.2)
        expected = Interpreter().run_source(source)
        for config in (BASELINE, FULL_SPEC):
            engine = Engine(config=config, hot_call_threshold=5)
            assert engine.run_source(source) == expected
