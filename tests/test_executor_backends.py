"""Differential tests: the closure-compiled backend vs the reference.

The closure backend's contract (docs/PERF.md) is *bit-identical
observables*: for any program and configuration, ``EngineStats``,
cycle counts, printed output and the JIT trace stream must equal the
reference executor's exactly.  These tests enforce the contract on
real suite benchmarks across configurations, on hand-compiled natives
(guards, bailout payloads, cycle accounting under partial execution),
and on the backend selection machinery itself.

``CodeObject.code_id`` is a process-global counter, so each run
re-compiling the same source gets different ids; every differential
run resets the counter first to make ids (and the trace events that
embed them) comparable.
"""

import re

import pytest

from repro.engine.config import BASELINE, CostModel, FULL_SPEC
from repro.engine.jit import compile_function
from repro.engine.runtime_engine import (
    DEFAULT_EXECUTOR_BACKEND,
    EXECUTOR_BACKENDS,
    EXECUTOR_ENV_VAR,
    Engine,
    resolve_executor_backend,
)
from repro.errors import CompilerError
from repro.jsvm.bytecode import CodeObject
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.values import UNDEFINED
from repro.lir.closures import ClosureExecutor
from repro.lir.wholefn import WholeExecutor
from repro.lir.executor import Bailout, NativeExecutor
from repro.lir.lir_nodes import LInstruction
from repro.lir.native import NativeCode
from repro.telemetry.tracing import Tracer
from repro.workloads import ALL_SUITES

from tests.conftest import FAST
from tests.helpers import compile_and_profile

#: Two cheap benchmarks per suite keep this differential sweep inside
#: the tier-1 time budget while still covering all three suites.
BENCH_SUBSET = [
    ("sunspider", "access-nsieve"),
    ("sunspider", "string-unpack-code"),
    ("v8", "richards"),
    ("v8", "regexp"),
    ("kraken", "stanford-crypto-ccm"),
    ("kraken", "audio-beat-detection"),
]

#: The configurations the contract is checked under: the IonMonkey
#: baseline (no parameter specialization), the full paper config, and
#: the full config with a deeper specialization cache.
CONFIG_MATRIX = [
    ("baseline", BASELINE, {}),
    ("all", FULL_SPEC, {}),
    ("all+cache4", FULL_SPEC, {"spec_cache_capacity": 4}),
]


def _bench_source(suite_name, bench_name):
    for benchmark in ALL_SUITES[suite_name]:
        if benchmark.name == bench_name:
            return benchmark.source
    raise AssertionError("no benchmark %s/%s" % (suite_name, bench_name))


def _run_full(source, backend, config, trace=False, **engine_kwargs):
    """One engine run; returns (observables dict, trace events or None)."""
    CodeObject._next_id = 1
    tracer = Tracer() if trace else None
    engine = Engine(
        config=config, executor_backend=backend, tracer=tracer, **engine_kwargs
    )
    printed = engine.run_source(source)
    observables = {
        "printed": list(printed),
        "summary": engine.stats.summary(),
        "cycles": engine.executor.cycles,
        "native_instructions": engine.executor.instructions_executed,
        "interp_ops": engine.interpreter.ops_executed,
        "code_sizes": dict(engine.stats.code_sizes),
        "compiles_per_function": dict(engine.stats.compiles_per_function),
        "specialized": set(engine.stats.specialized_functions),
        "deoptimized": set(engine.stats.deoptimized_functions),
    }
    return observables, (list(tracer.events) if tracer is not None else None)


#: Specialization-cache keys interpolate ``('ref', id(obj))`` for
#: non-primitive arguments; the address differs between *any* two
#: runs, backend or not, so trace comparison masks the number.
_REF_ADDR = re.compile(r"\('ref', \d+\)")


def _normalized(events):
    out = []
    for event in events:
        event = dict(event)
        for field, value in event.items():
            if isinstance(value, str):
                event[field] = _REF_ADDR.sub("('ref', _)", value)
        out.append(event)
    return out


class TestSuiteDifferential:
    """Benchmarks x configurations: all observables must match."""

    @pytest.mark.parametrize("suite_name,bench_name", BENCH_SUBSET)
    @pytest.mark.parametrize(
        "label,config,kwargs", CONFIG_MATRIX, ids=[row[0] for row in CONFIG_MATRIX]
    )
    def test_backends_bit_identical(self, suite_name, bench_name, label, config, kwargs):
        source = _bench_source(suite_name, bench_name)
        reference, _ = _run_full(source, "simple", config, **kwargs)
        closure, _ = _run_full(source, "closure", config, **kwargs)
        whole, _ = _run_full(source, "whole", config, **kwargs)
        assert closure == reference
        assert whole == reference

    @pytest.mark.parametrize(
        "suite_name,bench_name",
        [("sunspider", "access-nsieve"), ("v8", "richards"), ("kraken", "stanford-crypto-ccm")],
    )
    def test_trace_streams_identical(self, suite_name, bench_name):
        source = _bench_source(suite_name, bench_name)
        reference, ref_events = _run_full(source, "simple", FULL_SPEC, trace=True)
        closure, clo_events = _run_full(source, "closure", FULL_SPEC, trace=True)
        whole, whl_events = _run_full(source, "whole", FULL_SPEC, trace=True)
        assert closure == reference
        assert whole == reference
        assert _normalized(clo_events) == _normalized(ref_events)
        assert _normalized(whl_events) == _normalized(ref_events)

    def test_osr_differential(self):
        # A loop hot enough for on-stack replacement under the fast
        # test thresholds; OSR entry goes through the closure driver's
        # osr_index path.
        source = (
            "function f(n) { var s = 0; for (var i = 0; i < n; i++) { s = s + i; } return s; }"
            " print(f(500)); print(f(501));"
        )
        reference, _ = _run_full(source, "simple", FULL_SPEC, **FAST)
        closure, _ = _run_full(source, "closure", FULL_SPEC, **FAST)
        whole, _ = _run_full(source, "whole", FULL_SPEC, **FAST)
        assert closure == reference
        assert whole == reference
        assert reference["printed"] == ["124750", "125250"]


def _compiled(source, name=None, config=BASELINE, param_values=None):
    _top, code = compile_and_profile(source, name)
    result = compile_function(
        code, config, feedback=code.feedback,
        param_values=param_values if config.param_spec else None,
    )
    return code, result.native


def _executor_pair():
    return (
        NativeExecutor(Interpreter(), CostModel()),
        ClosureExecutor(Interpreter(), CostModel()),
    )


class TestClosureExecutorDirect:
    """Hand-compiled natives run directly on both executors."""

    def test_result_and_counters_match(self):
        _code, native = _compiled("function f(a, b) { return a * b + 1; } f(6, 7);")
        reference, closure = _executor_pair()
        assert reference.run(native, None, UNDEFINED, [6, 7]) == 43
        assert closure.run(native, None, UNDEFINED, [6, 7]) == 43
        assert closure.cycles == reference.cycles
        assert closure.instructions_executed == reference.instructions_executed

    def test_loop_counters_match(self):
        source = (
            "function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }"
            " f(10);"
        )
        _code, native = _compiled(source)
        reference, closure = _executor_pair()
        assert reference.run(native, None, UNDEFINED, [100]) == 4950
        assert closure.run(native, None, UNDEFINED, [100]) == 4950
        assert closure.cycles == reference.cycles
        assert closure.instructions_executed == reference.instructions_executed

    def test_bailout_payload_and_accounting_match(self):
        # b was profiled Int32; passing nothing fails the entry type
        # guard.  The whole Bailout payload — snapshot identity, frame
        # reconstruction, resume pc/mode, faulting instruction index —
        # and the cycles charged up to the fault must match.
        _code, native = _compiled("function f(a, b) { return a + b; } f(1, 2);")
        reference, closure = _executor_pair()
        with pytest.raises(Bailout) as ref_info:
            reference.run(native, None, UNDEFINED, [1])
        with pytest.raises(Bailout) as clo_info:
            closure.run(native, None, UNDEFINED, [1])
        ref_bail, clo_bail = ref_info.value, clo_info.value
        assert clo_bail.native_index == ref_bail.native_index
        assert clo_bail.pc == ref_bail.pc
        assert clo_bail.mode == ref_bail.mode
        assert clo_bail.reason == ref_bail.reason
        assert clo_bail.guard_op == ref_bail.guard_op
        assert clo_bail.frame_args == ref_bail.frame_args
        assert clo_bail.frame_locals == ref_bail.frame_locals
        assert clo_bail.frame_stack == ref_bail.frame_stack
        assert clo_bail.snapshot is ref_bail.snapshot
        assert closure.cycles == reference.cycles
        assert closure.instructions_executed == reference.instructions_executed

    def test_overflow_bailout_mid_function_matches(self):
        # Overflow fires mid-stream (not at an entry guard), exercising
        # the partial-block accounting path.
        source = (
            "function f(a) { return a + a; } f(1); f(2);"
        )
        _code, native = _compiled(source)
        reference, closure = _executor_pair()
        big = 2000000000
        with pytest.raises(Bailout) as ref_info:
            reference.run(native, None, UNDEFINED, [big])
        with pytest.raises(Bailout) as clo_info:
            closure.run(native, None, UNDEFINED, [big])
        assert clo_info.value.native_index == ref_info.value.native_index
        assert clo_info.value.reason == ref_info.value.reason
        assert clo_info.value.actual == ref_info.value.actual
        assert closure.cycles == reference.cycles
        assert closure.instructions_executed == reference.instructions_executed

    def test_compiled_blocks_cached_per_binary(self):
        _code, native = _compiled("function f(a) { return a + 1; } f(1);")
        closure = ClosureExecutor(Interpreter(), CostModel())
        assert native.closure_cache is None
        closure.run(native, None, UNDEFINED, [1])
        cache = native.closure_cache
        assert cache is not None and cache[0] is closure
        closure.run(native, None, UNDEFINED, [2])
        assert native.closure_cache is cache  # reused, not rebuilt
        # A different executor instance owns different bound hooks and
        # must recompile.
        other = ClosureExecutor(Interpreter(), CostModel())
        other.run(native, None, UNDEFINED, [3])
        assert native.closure_cache is not cache
        assert native.closure_cache[0] is other

    def test_unknown_op_raises_compiler_error(self):
        code = CodeObject("broken", [])
        native = NativeCode(
            code,
            [LInstruction("definitely_not_an_op")],
            entry_index=0,
            osr_index=None,
            num_slots=0,
        )
        closure = ClosureExecutor(Interpreter(), CostModel())
        with pytest.raises(CompilerError):
            closure.run(native, None, UNDEFINED, [])

    def test_missing_osr_entry_raises(self):
        _code, native = _compiled("function f(a) { return a + 1; } f(1);")
        assert native.osr_index is None
        closure = ClosureExecutor(Interpreter(), CostModel())
        with pytest.raises(CompilerError):
            closure.run(native, None, UNDEFINED, [1], entry="osr")


class TestBackendSelection:
    """Engine backend registry, constructor arg and env var."""

    def test_default_is_closure(self):
        engine = Engine(config=FULL_SPEC)
        assert engine.executor_backend == DEFAULT_EXECUTOR_BACKEND == "closure"
        assert isinstance(engine.executor, ClosureExecutor)

    def test_explicit_simple(self):
        engine = Engine(config=FULL_SPEC, executor_backend="simple")
        assert engine.executor_backend == "simple"
        assert type(engine.executor) is NativeExecutor

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "simple")
        engine = Engine(config=FULL_SPEC)
        assert engine.executor_backend == "simple"

    def test_explicit_arg_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "simple")
        engine = Engine(config=FULL_SPEC, executor_backend="closure")
        assert engine.executor_backend == "closure"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor_backend("turbofan")
        with pytest.raises(ValueError):
            Engine(config=FULL_SPEC, executor_backend="turbofan")

    def test_registry_names(self):
        assert set(EXECUTOR_BACKENDS) == {"simple", "closure", "whole"}

    def test_explicit_whole(self):
        engine = Engine(config=FULL_SPEC, executor_backend="whole")
        assert engine.executor_backend == "whole"
        assert isinstance(engine.executor, WholeExecutor)
