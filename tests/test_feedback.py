"""Tests for type feedback recording and speculation queries."""

from repro.jsvm.feedback import TypeFeedback
from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.values import UNDEFINED


class TestRecording:
    def test_record_args(self):
        feedback = TypeFeedback(2)
        feedback.record_args([1, "x"], UNDEFINED)
        assert feedback.arg_speculation(0) == "int"
        assert feedback.arg_speculation(1) == "string"

    def test_missing_args_recorded_undefined(self):
        feedback = TypeFeedback(2)
        feedback.record_args([1], UNDEFINED)
        assert feedback.arg_speculation(1) is None  # undefined: nothing to unbox

    def test_polymorphic_args(self):
        feedback = TypeFeedback(1)
        feedback.record_args([1], UNDEFINED)
        feedback.record_args(["x"], UNDEFINED)
        assert feedback.arg_speculation(0) is None

    def test_numbers_widen_to_double(self):
        feedback = TypeFeedback(1)
        feedback.record_args([1], UNDEFINED)
        feedback.record_args([1.5], UNDEFINED)
        assert feedback.arg_speculation(0) == "double"

    def test_sites(self):
        feedback = TypeFeedback(0)
        feedback.record_site(7, 42)
        feedback.record_site(7, 43)
        assert feedback.site_speculation(7) == "int"
        assert feedback.site_speculation(8) is None

    def test_site_pollution(self):
        feedback = TypeFeedback(0)
        feedback.record_site(7, 42)
        feedback.record_site(7, JSObject())
        assert feedback.site_speculation(7) is None

    def test_receivers(self):
        feedback = TypeFeedback(0)
        feedback.record_recv(3, JSArray([1]))
        assert feedback.recv_speculation(3) == "array"

    def test_this_speculation(self):
        feedback = TypeFeedback(0)
        obj = JSObject()
        feedback.record_args([], obj)
        assert feedback.this_speculation() == "object"

    def test_max_tags_cap(self):
        from repro.jsvm.feedback import MAX_TAGS_PER_SITE

        feedback = TypeFeedback(0)
        for value in (1, "x", True, JSObject(), JSArray(), 1.5):
            feedback.record_site(0, value)
        assert len(feedback.site_tags[0]) <= MAX_TAGS_PER_SITE


class TestSpeculationRules:
    def test_null_undefined_not_speculated(self):
        from repro.jsvm.values import NULL

        feedback = TypeFeedback(2)
        feedback.record_args([NULL, UNDEFINED], UNDEFINED)
        assert feedback.arg_speculation(0) is None
        assert feedback.arg_speculation(1) is None

    def test_out_of_range_slot(self):
        feedback = TypeFeedback(1)
        feedback.record_args([1], UNDEFINED)
        assert feedback.arg_speculation(5) is None
