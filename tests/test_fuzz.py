"""Tests for the differential fuzzing & chaos-deopt subsystem.

Four layers, mirroring ``src/repro/fuzz/``: the seeded generator, the
guard fault injector ("chaos deopt"), the differential oracle plus the
ddmin shrinker, and the fuzz session / CLI / corpus plumbing.  The
planted-miscompile test is the subsystem's end-to-end proof: a
deliberately corrupted binary must be caught by the oracle and reduced
to a ≤10-line reproducer.

The chaos coverage tests assert the injector's central invariant via
profiler guard forensics: in a full-chaos run every *executed* guard
of every binary is force-failed exactly once (fired set == guards with
a positive resolved execution count), the recorded failure reason is
``fault-injected``, and output stays bit-identical to an uninjected
run.  A guard that never executes (an entry-path guard of a
function whose only call OSR-entered the loop) has no execution to
hijack, so "all guards of every binary" is not attainable in general —
but small, repeatedly-called functions do reach it, and the
representative per-suite benchmarks below each produce at least one
*fully* fired binary.  The whole-suite sweep runs nightly
(``pytest -m nightly``), not in tier-1.
"""

import io
import os

import pytest

from repro.engine import jit
from repro.engine.bailout import GuardFaultInjector
from repro.engine.config import FULL_SPEC
from repro.engine.runtime_engine import Engine
from repro.errors import JSSyntaxError
from repro.fuzz import (
    DEFAULT_MATRIX,
    VARIANT_NAMES,
    FuzzSession,
    check_program,
    generate_program,
    shrink_program,
)
from repro.fuzz.corpus import corpus_files, replay_corpus
from repro.fuzz.oracle import CHAOS_BAILOUT_LIMIT, resolve_matrix
from repro.fuzz.shrink import ddmin
from repro.jsvm.parser import parse
from repro.lir.native import FAULT_INJECTED
from repro.telemetry.profiler import CycleProfiler
from repro.telemetry.tracing import Tracer
from repro.tools.cli import main as cli_main
from repro.workloads import ALL_SUITES

from tests.conftest import FAST

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

#: A small hot function: compiles, OSR-compiles, and respecializes,
#: giving the injector several binaries' worth of guards to force.
HOT_SOURCE = """\
function hot(a, b) { var s = 0; for (var i = 0; i < 30; i = i + 1) { s = s + a * b; } return s; }
print(hot(3, 4));
print(hot(3, 4));
print(hot(3, 4));
print(hot(5, 6));
"""

#: Deliberately bloated program for the planted-miscompile test: the
#: filler lines are what the shrinker must strip away.
MISCOMPILE_SOURCE = """\
function hot(a, b) { var s = 0; for (var i = 0; i < 40; i = i + 1) { s = s + a + b; } return s; }
var x = 1;
var y = 2;
print(hot(3, 4));
print(hot(x, y));
var unused = "filler";
print(hot(5, 6));
var z = x + y;
print(z);
print(hot(7, 8));
"""


def plant_miscompile(native):
    """Test-only miscompile: turn the binary's first addition into a
    subtraction (the accumulator add — stream order puts it before the
    loop-counter increment, so the loop still terminates)."""
    for instruction in native.instructions:
        if instruction.op == "add_i":
            instruction.op = "sub_i"
            return


# ---------------------------------------------------------------------------
# Generator


class TestGenerator:
    def test_deterministic_per_seed_and_iteration(self):
        for seed, iteration in [(0, 0), (0, 7), (3, 0), (12345, 99)]:
            assert generate_program(seed, iteration) == generate_program(
                seed, iteration
            )

    def test_distinct_iterations_vary(self):
        programs = {generate_program(0, iteration) for iteration in range(10)}
        assert len(programs) >= 8

    def test_distinct_seeds_vary(self):
        programs = {generate_program(seed, 0) for seed in range(10)}
        assert len(programs) >= 8

    def test_every_program_parses(self):
        for iteration in range(30):
            source = generate_program(0, iteration)
            parse(source)

    def test_single_line_constructs_for_ddmin(self):
        # The shrinker removes whole lines, so every top-level
        # construct must be one line: each non-blank line is either a
        # complete function definition or a statement ending in ';'.
        for iteration in range(10):
            for line in generate_program(0, iteration).splitlines():
                if not line.strip():
                    continue
                assert line.startswith("function ") or line.rstrip().endswith(
                    ";"
                ), line

    def _sweep(self, pattern, seeds=6, iterations=40):
        """Programs from a seed sweep whose text contains ``pattern``."""
        return [
            generate_program(seed, iteration)
            for seed in range(seeds)
            for iteration in range(iterations)
            if pattern in generate_program(seed, iteration)
        ]

    def test_speckey_arm_overflows_and_revisits_the_key_space(self):
        # The spec-key arm exists in the sweep, drives more distinct
        # literal pairs than the spec-cache capacity, and re-hits each
        # pair in later rounds (the z.../y-prefix round labels).
        hits = self._sweep("function k0(v, w)")
        assert hits
        for program in hits[:5]:
            calls = [line for line in program.splitlines() if "k0(" in line and "var z" in line]
            pairs = set()
            for line in calls:
                inner = line[line.index("k0(") + 3 :]
                pairs.add(inner[: inner.index(")")])
            # More distinct keys than the paper's spec-cache capacity
            # (1) and the deoptless table (4) in at least one program.
            assert len(pairs) >= 3
            # Rounds revisit the same pairs: total call lines exceed
            # the distinct pair count.
            assert len(calls) >= 2 * len(pairs)

    def test_array_arm_reads_modulo_length_and_may_grow(self):
        hits = self._sweep("function b0(a, n)")
        assert hits
        assert any(".length] =" in program for program in hits)
        for program in hits[:5]:
            assert "a[i % a.length]" in program
            assert "var ar0_0 = [" in program

    def test_closure_arm_builds_sibling_instances(self):
        hits = self._sweep("function m0(n)")
        assert hits
        for program in hits[:5]:
            assert "return function (d)" in program
            assert "var cl0_0 = m0(" in program
            assert "var cl0_1 = m0(" in program
            # The hot driver interleaves both instances.
            assert "cl0_0(x0) + cl0_1(x0)" in program


# ---------------------------------------------------------------------------
# Guard fault injector ("chaos deopt")


def run_chaos(source, **engine_kwargs):
    """Run ``source`` normally and under full chaos; returns
    (expected, got, injector, profiler)."""
    expect = Engine(config=FULL_SPEC, **dict(FAST, **engine_kwargs)).run_source(
        source
    )
    injector = GuardFaultInjector()
    profiler = CycleProfiler()
    engine = Engine(
        config=FULL_SPEC,
        bailout_limit=CHAOS_BAILOUT_LIMIT,
        fault_injector=injector,
        cycle_profiler=profiler,
        **dict(FAST, **engine_kwargs)
    )
    got = engine.run_source(source)
    return expect, got, injector, profiler


def assert_chaos_invariants(expect, got, injector, profiler):
    """The chaos contract: identical output, every executed guard
    forced exactly once, forensics blaming ``fault-injected``."""
    assert got == expect
    assert injector.fired, "chaos run forced no guards at all"

    records = {id(record.native): record for record in profiler.binaries}
    for native, fired, guards in injector.coverage():
        record = records.get(id(native))
        assert record is not None, "injector saw a binary the profiler missed"
        counts = record.resolved_counts()
        executed = frozenset(index for index in guards if counts[index] > 0)
        assert fired == executed, (
            "binary %s: fired %s != executed guards %s"
            % (record.name, sorted(fired), sorted(executed))
        )
        for index in fired:
            entry = record.forensics.get(index)
            assert entry is not None, "no forensics for forced guard %d" % index
            assert entry["reason"] == FAULT_INJECTED


class TestGuardFaultInjector:
    @pytest.mark.parametrize("backend", ["simple", "closure"])
    def test_full_chaos_output_identical(self, backend):
        expect, got, injector, profiler = run_chaos(
            HOT_SOURCE, executor_backend=backend
        )
        assert_chaos_invariants(expect, got, injector, profiler)

    def test_hot_function_binary_fully_fired(self):
        _expect, _got, injector, _profiler = run_chaos(HOT_SOURCE)
        full = injector.fully_fired_binaries()
        assert any(native.code.name == "hot" for native in full)

    def test_function_selector_limits_targets(self):
        injector = GuardFaultInjector(function="hot")
        engine = Engine(
            config=FULL_SPEC,
            bailout_limit=CHAOS_BAILOUT_LIMIT,
            fault_injector=injector,
            **FAST
        )
        engine.run_source(HOT_SOURCE)
        assert injector.fired
        assert {record["fn"] for record in injector.fired} == {"hot"}

    def test_unknown_function_selector_fires_nothing(self):
        injector = GuardFaultInjector(function="nonexistent")
        engine = Engine(
            config=FULL_SPEC,
            bailout_limit=CHAOS_BAILOUT_LIMIT,
            fault_injector=injector,
            **FAST
        )
        printed = engine.run_source(HOT_SOURCE)
        assert injector.fired == []
        assert printed == Engine(config=FULL_SPEC, **FAST).run_source(HOT_SOURCE)

    def test_nth_selector_fires_only_that_guard(self):
        injector = GuardFaultInjector(nth=0)
        engine = Engine(
            config=FULL_SPEC,
            bailout_limit=CHAOS_BAILOUT_LIMIT,
            fault_injector=injector,
            **FAST
        )
        engine.run_source(HOT_SOURCE)
        assert injector.fired
        for _native, fired, guards in injector.coverage():
            assert fired <= {guards[0]}

    def test_forced_bailouts_emit_inject_events(self):
        tracer = Tracer(channels=("fuzz",))
        injector = GuardFaultInjector()
        engine = Engine(
            config=FULL_SPEC,
            tracer=tracer,
            bailout_limit=CHAOS_BAILOUT_LIMIT,
            fault_injector=injector,
            **FAST
        )
        engine.run_source(HOT_SOURCE)
        injects = [event for event in tracer.events if event["event"] == "inject"]
        assert len(injects) == len(injector.fired)
        for event, record in zip(injects, injector.fired):
            assert event["fn"] == record["fn"]
            assert event["native_index"] == record["native_index"]
            assert event["guard_op"] == record["guard_op"]


#: One representative benchmark per suite, chosen fast *and* known to
#: drive at least one binary to full guard coverage under chaos.
CHAOS_BENCHMARKS = [
    ("sunspider", "bitops-bits-in-byte"),
    ("v8", "crypto"),
    ("kraken", "imaging-desaturate"),
]


def suite_bench(suite_name, bench_name):
    for bench in ALL_SUITES[suite_name]:
        if bench.name == bench_name:
            return bench
    raise KeyError(bench_name)


class TestChaosBenchmarkCoverage:
    @pytest.mark.parametrize("suite_name,bench_name", CHAOS_BENCHMARKS)
    def test_chaos_fires_every_executed_guard(self, suite_name, bench_name):
        bench = suite_bench(suite_name, bench_name)
        expect, got, injector, profiler = run_chaos(bench.source)
        assert_chaos_invariants(expect, got, injector, profiler)
        assert len(injector.fully_fired_binaries()) >= 1, (
            "%s/%s: no binary had every guard forced" % (suite_name, bench_name)
        )


ALL_BENCHMARKS = [
    (suite_name, bench.name)
    for suite_name, suite in ALL_SUITES.items()
    for bench in suite
]


def _nightly_shard(benchmarks):
    """Filter the sweep to this CI shard (``REPRO_NIGHTLY_SHARD=k/n``).

    The nightly chaos sweep covers every benchmark — tens of minutes
    in one process — so CI shards it across a job matrix: shard ``k``
    of ``n`` takes the benchmarks whose index is congruent to ``k``
    modulo ``n``, a deterministic partition that stays balanced as
    suites grow and covers every benchmark exactly once across the
    matrix.  Unset (local runs), the whole list is kept.
    """
    spec = os.environ.get("REPRO_NIGHTLY_SHARD")
    if not spec:
        return benchmarks
    shard, _, count = spec.partition("/")
    shard, count = int(shard), int(count)
    return [
        item for index, item in enumerate(benchmarks) if index % count == shard
    ]


@pytest.mark.nightly
class TestChaosFullSweep:
    """Exhaustive chaos sweep over every benchmark (nightly CI only,
    shardable via ``REPRO_NIGHTLY_SHARD``)."""

    @pytest.mark.parametrize("suite_name,bench_name", _nightly_shard(ALL_BENCHMARKS))
    def test_chaos_run_matches_plain_run(self, suite_name, bench_name):
        bench = suite_bench(suite_name, bench_name)
        expect, got, injector, profiler = run_chaos(bench.source)
        assert_chaos_invariants(expect, got, injector, profiler)


# ---------------------------------------------------------------------------
# Differential oracle


class TestResolveMatrix:
    def test_none_is_full_matrix(self):
        assert resolve_matrix(None) == DEFAULT_MATRIX
        assert set(DEFAULT_MATRIX) == set(VARIANT_NAMES)

    def test_interp_always_included(self):
        assert resolve_matrix(["jit"]) == ("interp", "jit")

    def test_canonical_execution_order(self):
        assert resolve_matrix(["chaos", "jit", "interp"]) == (
            "interp",
            "jit",
            "chaos",
        )

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz variants"):
            resolve_matrix(["warpdrive"])

    def test_cache_warm_requires_cache_cold(self):
        with pytest.raises(ValueError, match="cache-warm requires cache-cold"):
            resolve_matrix(["cache-warm"])
        assert resolve_matrix(["cache-cold", "cache-warm"]) == (
            "interp",
            "cache-cold",
            "cache-warm",
        )


class TestOracle:
    def test_agreeing_program_has_no_mismatches(self):
        assert check_program(HOT_SOURCE) == []

    def test_guest_error_must_match_everywhere(self):
        source = 'function f(a) { return a.missing(); }\nprint("pre");\nprint(f(1));\n'
        assert check_program(source, ["jit"]) == []

    def test_generated_programs_agree_across_full_matrix(self):
        for iteration in range(12):
            source = generate_program(1, iteration)
            mismatches = check_program(source)
            assert mismatches == [], (
                "seed 1 iteration %d: %r\n%s" % (iteration, mismatches, source)
            )


# ---------------------------------------------------------------------------
# Shrinker


class TestShrinker:
    def test_ddmin_finds_minimal_subset(self):
        lines = list("abcdefgh")

        def predicate(candidate):
            return "c" in candidate and "f" in candidate

        minimal, steps = ddmin(lines, predicate)
        assert sorted(minimal) == ["c", "f"]
        assert steps > 0

    def test_shrink_program_reports_sizes(self):
        source = "\n".join("line%d;" % index for index in range(8)) + "\n"

        def predicate(candidate):
            return "line3;" in candidate

        result = shrink_program(source, predicate)
        assert result.source == "line3;\n"
        assert result.from_lines == 8
        assert result.to_lines == 1
        assert result.steps > 0


class TestPlantedMiscompile:
    """End-to-end acceptance: a deliberate miscompile is caught by the
    oracle and shrunk to a ≤10-line reproducer."""

    def test_oracle_catches_and_shrinker_reduces(self):
        jit._MISCOMPILE_HOOK = plant_miscompile
        try:
            mismatches = check_program(MISCOMPILE_SOURCE, ["jit"])
            assert any(
                mismatch.kind == "output" and mismatch.variant == "jit"
                for mismatch in mismatches
            ), mismatches

            def predicate(candidate):
                try:
                    found = check_program(candidate, ["jit"])
                except JSSyntaxError:
                    return False
                return any(mismatch.kind == "output" for mismatch in found)

            result = shrink_program(MISCOMPILE_SOURCE, predicate)
            assert result.to_lines <= 10
            assert result.to_lines < result.from_lines
            # The reduced program still witnesses the miscompile ...
            assert predicate(result.source)
        finally:
            jit._MISCOMPILE_HOOK = None
        # ... and is clean once the corruption is gone.
        assert check_program(MISCOMPILE_SOURCE, ["jit"]) == []


# ---------------------------------------------------------------------------
# Session, corpus, CLI


class TestFuzzSession:
    def test_clean_campaign_emits_run_events(self):
        tracer = Tracer(channels=("fuzz",))
        session = FuzzSession(
            seed=0, iterations=2, matrix=["jit"], tracer=tracer
        )
        summary = session.run()
        assert summary["failures"] == 0
        assert summary["reproducers"] == []
        assert summary["variants"] == ["interp", "jit"]
        runs = [event for event in tracer.events if event["event"] == "run"]
        assert len(runs) == 2
        assert runs[0]["seed"] == 0 and runs[0]["iteration"] == 0

    def test_mismatch_is_shrunk_and_banked(self, tmp_path, monkeypatch):
        from repro.fuzz import harness

        monkeypatch.setattr(
            harness,
            "generate_program",
            lambda seed, iteration: MISCOMPILE_SOURCE,
        )
        monkeypatch.setattr(jit, "_MISCOMPILE_HOOK", plant_miscompile)
        tracer = Tracer(channels=("fuzz",))
        log_lines = []
        session = FuzzSession(
            seed=9,
            iterations=1,
            matrix=["jit"],
            corpus_dir=str(tmp_path),
            tracer=tracer,
            log=log_lines.append,
        )
        summary = session.run()
        assert summary["failures"] == 1
        (path,) = summary["reproducers"]
        text = open(path).read()
        assert text.startswith("// fuzz reproducer: seed=9 iteration=0")
        body = [
            line
            for line in text.splitlines()
            if line.strip() and not line.startswith("//")
        ]
        assert len(body) <= 10

        events = {event["event"] for event in tracer.events}
        assert {"mismatch", "shrink"} <= events
        assert any("shrunk" in line for line in log_lines)

    def test_shrink_can_be_disabled(self, tmp_path, monkeypatch):
        from repro.fuzz import harness

        monkeypatch.setattr(
            harness,
            "generate_program",
            lambda seed, iteration: MISCOMPILE_SOURCE,
        )
        monkeypatch.setattr(jit, "_MISCOMPILE_HOOK", plant_miscompile)
        session = FuzzSession(
            seed=9, iterations=1, matrix=["jit"], shrink=False,
            corpus_dir=str(tmp_path),
        )
        summary = session.run()
        assert summary["failures"] == 1
        (record,) = session.failures
        assert record["source"] == MISCOMPILE_SOURCE


class TestCorpusReplay:
    def test_corpus_is_seeded(self):
        assert len(corpus_files(CORPUS_DIR)) >= 10

    def test_corpus_replays_cleanly_through_full_matrix(self):
        results = replay_corpus(CORPUS_DIR)
        assert len(results) >= 10
        failing = {
            name: mismatches
            for name, mismatches in results.items()
            if mismatches
        }
        assert failing == {}


def run_cli(argv):
    out = io.StringIO()
    code = cli_main(argv, out=out)
    return code, out.getvalue()


class TestFuzzCLI:
    def test_clean_run_exits_zero(self):
        code, output = run_cli(
            ["fuzz", "--seed", "0", "--iterations", "2", "--matrix", "interp,jit"]
        )
        assert code == 0
        assert "OK: all variants agree" in output

    def test_mismatch_exits_nonzero_and_banks(self, tmp_path, monkeypatch):
        from repro.fuzz import harness

        monkeypatch.setattr(
            harness,
            "generate_program",
            lambda seed, iteration: MISCOMPILE_SOURCE,
        )
        monkeypatch.setattr(jit, "_MISCOMPILE_HOOK", plant_miscompile)
        code, output = run_cli(
            [
                "fuzz",
                "--iterations",
                "1",
                "--matrix",
                "jit",
                "--corpus-dir",
                str(tmp_path),
            ]
        )
        assert code == 1
        assert "FAIL: 1 mismatching program(s)" in output
        assert list(tmp_path.glob("repro-*.js"))

    def test_jsonl_trace_output(self, tmp_path):
        trace_path = tmp_path / "fuzz.jsonl"
        code, _output = run_cli(
            [
                "fuzz",
                "--iterations",
                "1",
                "--matrix",
                "interp,jit",
                "--jsonl",
                str(trace_path),
            ]
        )
        assert code == 0
        assert '"ch": "fuzz"' in trace_path.read_text() or '"fuzz"' in trace_path.read_text()
