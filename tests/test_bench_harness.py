"""Tests for the figure/table harness itself."""

import pytest

from repro.bench.harness import (
    arithmetic_mean,
    format_figure9,
    geometric_mean_percent,
    run_benchmark,
    run_suite_sweep,
    speedup_rows,
)
from repro.engine.config import BASELINE, FULL_SPEC, OptConfig
from repro.workloads import Benchmark

TINY = [
    Benchmark(
        "tiny-kernel",
        """
        function kernel(a, n) {
          var s = 0;
          for (var i = 0; i < n; i++) s += (a * i) & 255;
          return s;
        }
        var t = 0;
        for (var r = 0; r < 30; r++) t += kernel(7, 40);
        print(t);
        """,
    ),
    Benchmark(
        "tiny-strings",
        """
        function shout(s) { return s.toUpperCase() + "!"; }
        var out = "";
        for (var r = 0; r < 30; r++) out = shout("hello");
        print(out);
        """,
    ),
]

CONFIGS = [OptConfig("PS", param_spec=True), FULL_SPEC]


@pytest.fixture(scope="module")
def sweep():
    return run_suite_sweep("tiny", TINY, configs=CONFIGS, engine_kwargs={"hot_call_threshold": 3})


class TestRunBenchmark:
    def test_returns_measurements(self):
        run = run_benchmark(TINY[0], BASELINE, {"hot_call_threshold": 3})
        assert run.total_cycles > 0
        assert run.output and run.output[0].isdigit()
        assert run.config == "baseline"

    def test_compile_cycles_subset_of_total(self):
        run = run_benchmark(TINY[0], BASELINE, {"hot_call_threshold": 3})
        assert 0 < run.compile_cycles < run.total_cycles


class TestSweep:
    def test_all_cells_present(self, sweep):
        assert set(sweep.runs) == {"baseline", "PS", "all"}
        for runs in sweep.runs.values():
            assert set(runs) == {"tiny-kernel", "tiny-strings"}

    def test_outputs_verified(self, sweep):
        base = sweep.run_for("baseline", "tiny-kernel").output
        assert sweep.run_for("all", "tiny-kernel").output == base

    def test_verification_catches_mismatch(self):
        # A config whose output differed would raise.
        bad = [
            Benchmark("ok", "print(1);"),
        ]
        sweep = run_suite_sweep("x", bad, configs=CONFIGS)
        assert sweep.run_for("baseline", "ok").output == ["1"]

    def test_speedup_rows(self, sweep):
        rows = speedup_rows(sweep, CONFIGS)
        assert set(rows) == {"PS", "all"}
        for arith, geo, detail in rows.values():
            assert len(detail) == 2
            assert isinstance(arith, float)

    def test_format_figure9(self, sweep):
        table = format_figure9([sweep], CONFIGS)
        assert "arithmetic mean" in table
        assert "geometric mean" in table
        assert "tiny" in table


class TestParallelSweep:
    """``--jobs N``: worker processes change wall-clock time only."""

    def test_parallel_matches_serial(self, sweep):
        parallel = run_suite_sweep(
            "tiny",
            TINY,
            configs=CONFIGS,
            engine_kwargs={"hot_call_threshold": 3},
            jobs=2,
        )
        assert parallel.benchmarks() == sweep.benchmarks()
        assert set(parallel.runs) == set(sweep.runs)
        for config_name in sweep.runs:
            for bench_name in sweep.runs[config_name]:
                serial_run = sweep.run_for(config_name, bench_name)
                parallel_run = parallel.run_for(config_name, bench_name)
                assert parallel_run.output == serial_run.output
                assert parallel_run.total_cycles == serial_run.total_cycles
                assert parallel_run.compile_cycles == serial_run.compile_cycles

class TestMeans:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric_mean_identity(self):
        assert abs(geometric_mean_percent([10.0, 10.0]) - 10.0) < 1e-9

    def test_geometric_between_extremes(self):
        values = [5.0, 40.0]
        result = geometric_mean_percent(values)
        assert min(values) < result < max(values)

    def test_geometric_handles_negative(self):
        result = geometric_mean_percent([-10.0, 10.0])
        assert -10.0 < result < 10.0

    def test_empty(self):
        assert geometric_mean_percent([]) == 0.0
