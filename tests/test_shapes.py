"""The heap model of docs/SHAPES.md, end to end.

Four layers of enforcement:

* the transition tree in isolation — shared root, insertion-order
  sensitivity, delete transitions, deterministic numbering;
* the IC state machine in isolation — mono → poly → megamorphic with
  the exact hit/miss/transition outcomes the tracer narrates;
* shape-guarded compilation — object workloads compile with live
  ``guardshape`` instructions and print/account bit-identically on the
  interpreter and both executor backends, in this process and (byte
  for byte, trace included) across separate processes;
* the failure paths — chaos-forced shape guards recover exactly, and
  shape-keyed binaries round-trip the persistent code cache.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import FULL_SPEC, Engine
from repro.cache import DiskCodeCache
from repro.cache.disk import _shape_ic_fingerprint
from repro.engine.bailout import GuardFaultInjector
from repro.fuzz.oracle import CHAOS_BAILOUT_LIMIT
from repro.jsvm.bytecode import CodeObject
from repro.jsvm.feedback import MAX_IC_SHAPES, MEGAMORPHIC, TypeFeedback
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.objects import JSArray, JSObject, reset_shapes
from repro.lir.native import FAULT_INJECTED
from repro.telemetry.profiler import CycleProfiler
from repro.telemetry.tracing import Tracer
from repro.workloads import ALL_SUITES

from tests.conftest import FAST

#: One hot accessor hit by two insertion orders of the same properties
#: (mono → guard failure → retrain → poly) plus a shape-churn callee
#: that adds and deletes past the IC capacity.
POLY_SOURCE = """\
function total(r) { return r.price * r.count; }
function churn(o) { o.tag = 1; delete o.tag; return o.price; }
var a = {price: 3, count: 5};
var b = {count: 5, price: 3};
var s = 0;
for (var i = 0; i < 20; i++) s += total(a);
for (var j = 0; j < 20; j++) s += total(b) + churn(a) + churn(b);
print(s);
"""


@pytest.fixture(autouse=True)
def _fresh_shape_tree():
    """Number shapes from a blank tree so ids are comparable."""
    reset_shapes()
    yield
    reset_shapes()


# ---------------------------------------------------------------------------
# The transition tree


class TestTransitionTree:
    def test_same_insertion_order_shares_a_shape(self):
        first, second = JSObject(), JSObject()
        for obj in (first, second):
            obj.set("x", 1)
            obj.set("y", 2)
        assert first.shape is second.shape
        assert first.shape.names == ("x", "y")

    def test_insertion_order_distinguishes_shapes(self):
        xy, yx = JSObject(), JSObject()
        xy.set("x", 1)
        xy.set("y", 2)
        yx.set("y", 2)
        yx.set("x", 1)
        assert xy.shape is not yx.shape
        assert xy.shape.shape_id != yx.shape.shape_id

    def test_ids_count_up_from_the_shared_root(self):
        empty = JSObject()
        assert empty.shape.shape_id == 0
        empty.set("a", 1)
        assert empty.shape.shape_id == 1
        empty.set("b", 2)
        assert empty.shape.shape_id == 2

    def test_overwriting_an_existing_property_keeps_the_shape(self):
        obj = JSObject()
        obj.set("x", 1)
        before = obj.shape
        obj.set("x", 99)
        assert obj.shape is before

    def test_delete_is_a_first_class_transition(self):
        obj = JSObject()
        obj.set("x", 1)
        obj.set("y", 2)
        obj.delete("x")
        assert obj.shape.names == ("y",)
        # A sibling that walks the same add/delete path lands on the
        # very same node — deleted layouts are cacheable too.
        twin = JSObject()
        twin.set("x", 1)
        twin.set("y", 2)
        twin.delete("x")
        assert twin.shape is obj.shape
        # ... and is distinct from the object built as {y} directly.
        direct = JSObject()
        direct.set("y", 2)
        assert direct.shape is not obj.shape

    def test_deleting_a_missing_property_is_a_no_op(self):
        obj = JSObject()
        obj.set("x", 1)
        before = obj.shape
        obj.delete("nope")
        assert obj.shape is before

    def test_array_length_never_transitions(self):
        arr = JSArray([1, 2, 3])
        before = arr.shape
        assert arr.get("length") == 3
        arr.set("length", 10)
        arr.push(4)
        assert arr.shape is before

    def test_reset_rewinds_the_numbering(self):
        obj = JSObject()
        obj.set("x", 1)
        first_id = obj.shape.shape_id
        reset_shapes()
        again = JSObject()
        again.set("x", 1)
        assert again.shape.shape_id == first_id


# ---------------------------------------------------------------------------
# The IC state machine


def _site():
    return TypeFeedback(num_params=0)


class TestInlineCacheStateMachine:
    def test_unvisited_site_reports_nothing(self):
        feedback = _site()
        assert feedback.ic_state(0) is None
        assert feedback.shape_ids(0) == ()

    def test_first_shape_transitions_to_mono(self):
        feedback = _site()
        assert feedback.record_shape(0, 7) == "transition"
        assert feedback.ic_state(0) == "mono"
        assert feedback.shape_ids(0) == (7,)

    def test_cached_shape_is_a_hit_in_any_state(self):
        feedback = _site()
        feedback.record_shape(0, 7)
        assert feedback.record_shape(0, 7) == "hit"
        feedback.record_shape(0, 8)
        assert feedback.ic_state(0) == "poly"
        assert feedback.record_shape(0, 7) == "hit"
        assert feedback.record_shape(0, 8) == "hit"

    def test_poly_preserves_observation_order(self):
        feedback = _site()
        for shape_id in (9, 3, 5):
            feedback.record_shape(0, shape_id)
        assert feedback.shape_ids(0) == (9, 3, 5)

    def test_capacity_overflow_tips_to_mega_as_a_transition(self):
        feedback = _site()
        for shape_id in range(MAX_IC_SHAPES):
            assert feedback.record_shape(0, shape_id) == "transition"
        assert feedback.ic_state(0) == "poly"
        # The straw that breaks it is still a *transition* (the IC
        # learned something); only steady-state mega accesses miss.
        assert feedback.record_shape(0, MAX_IC_SHAPES) == "transition"
        assert feedback.ic_state(0) == "mega"
        assert feedback.shape_ics[0] is MEGAMORPHIC
        assert feedback.record_shape(0, 0) == "miss"
        assert feedback.shape_ids(0) == ()

    def test_sites_are_independent(self):
        feedback = _site()
        feedback.record_shape(1, 7)
        assert feedback.ic_state(2) is None
        assert feedback.ic_state(1) == "mono"


# ---------------------------------------------------------------------------
# Shape-guarded compilation, determinism across backends and processes


def _run_traced(source, backend="closure"):
    reset_shapes()
    CodeObject._next_id = 1
    tracer = Tracer()
    profiler = CycleProfiler()
    engine = Engine(
        config=FULL_SPEC,
        executor_backend=backend,
        tracer=tracer,
        cycle_profiler=profiler,
        **FAST
    )
    printed = engine.run_source(source)
    return printed, engine, list(tracer.events), profiler


def _guard_ops(profiler):
    return {
        instruction.op
        for record in profiler.binaries
        for instruction in record.native.instructions
    }


class TestShapeGuardedCompilation:
    def test_binaries_carry_shape_guards(self):
        printed, engine, _, profiler = _run_traced(POLY_SOURCE)
        assert printed == Interpreter().run_source(POLY_SOURCE)
        assert "guardshape" in _guard_ops(profiler)
        assert engine.stats.ic_transitions > 0

    def test_organic_failure_retrains_instead_of_relooping(self):
        _, engine, events, _ = _run_traced(POLY_SOURCE)
        retrains = [
            e
            for e in events
            if e["ch"] == "deopt"
            and e["event"] == "discard"
            and e["reason"] == "shape-retrain"
        ]
        shape_bails = [e for e in events if e["ch"] == "shape"]
        assert retrains, "no shape-retrain discard despite a poly receiver"
        assert engine.stats.shape_guard_bailouts == len(shape_bails)
        # Retraining keeps the failure count far below the bailout
        # limit: each stale binary bails once, not bailout_limit times.
        assert engine.stats.shape_guard_bailouts <= 2 * len(retrains)

    @pytest.mark.parametrize("backend", ["simple", "closure"])
    def test_backends_agree_bit_for_bit(self, backend):
        def stable(events):
            # The specialize key embeds a host object address ('ref',
            # id(...)); everything else in the stream is deterministic.
            return [
                {k: v for k, v in event.items() if k != "key"}
                for event in events
            ]

        reference = _run_traced(POLY_SOURCE, "closure")
        other = _run_traced(POLY_SOURCE, backend)
        assert other[0] == reference[0]
        assert other[1].stats.as_dict() == reference[1].stats.as_dict()
        assert stable(other[2]) == stable(reference[2])

    @pytest.mark.parametrize(
        "bench",
        ALL_SUITES["objects"],
        ids=[b.name for b in ALL_SUITES["objects"]],
    )
    def test_object_suite_is_shape_specialized_on_both_backends(self, bench):
        expected = Interpreter().run_source(bench.source)
        ledgers = []
        for backend in ("simple", "closure"):
            printed, engine, _, profiler = _run_traced(bench.source, backend)
            assert printed == expected
            assert "guardshape" in _guard_ops(profiler)
            ledgers.append(engine.stats.as_dict())
        assert ledgers[0] == ledgers[1]

    def test_shape_numbering_is_identical_across_processes(self):
        script = (
            "from repro import Engine, FULL_SPEC\n"
            "from repro.jsvm.bytecode import CodeObject\n"
            "from repro.telemetry.tracing import Tracer\n"
            "CodeObject._next_id = 1\n"
            "tracer = Tracer()\n"
            "engine = Engine(config=FULL_SPEC, tracer=tracer,\n"
            "                hot_call_threshold=3, osr_backedge_threshold=10)\n"
            "engine.run_source(%r)\n"
            "for e in tracer.events:\n"
            "    if e['ch'] in ('ic', 'shape'):\n"
            "        print([e[k] for k in sorted(e) if k != 'ts'])\n"
            "import json\n"
            "print(json.dumps(engine.stats.summary(), sort_keys=True))\n"
            % POLY_SOURCE
        )
        env = dict(os.environ)
        root = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(root)
        runs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert "'transition'" in runs[0]
        # The fresh processes agree with this (reset) process too.
        _, engine, events, _ = _run_traced(POLY_SOURCE)
        local = [
            str([e[k] for k in sorted(e) if k != "ts"])
            for e in events
            if e["ch"] in ("ic", "shape")
        ]
        local.append(json.dumps(engine.stats.summary(), sort_keys=True))
        assert "\n".join(local) + "\n" == runs[0]


# ---------------------------------------------------------------------------
# Chaos: every compiled shape guard has a live, exact recovery path


class TestShapeGuardChaos:
    @pytest.mark.parametrize("backend", ["simple", "closure"])
    def test_forced_shape_guards_recover_exactly(self, backend):
        reset_shapes()
        expect = Engine(
            config=FULL_SPEC, executor_backend=backend, **FAST
        ).run_source(POLY_SOURCE)
        reset_shapes()
        injector = GuardFaultInjector()
        profiler = CycleProfiler()
        engine = Engine(
            config=FULL_SPEC,
            executor_backend=backend,
            bailout_limit=CHAOS_BAILOUT_LIMIT,
            fault_injector=injector,
            cycle_profiler=profiler,
            **FAST
        )
        got = engine.run_source(POLY_SOURCE)
        assert got == expect
        fired_ops = {record["guard_op"] for record in injector.fired}
        assert "guardshape" in fired_ops, "no shape guard was ever forced"
        # Every executed shape guard fired exactly once, with forensics
        # blaming the injector — the PR 5 chaos contract extended to
        # the new guard op.
        records = {id(record.native): record for record in profiler.binaries}
        checked = 0
        for native, fired, guards in injector.coverage():
            record = records[id(native)]
            counts = record.resolved_counts()
            for index in guards:
                if native.instructions[index].op != "guardshape":
                    continue
                if counts[index] > 0:
                    assert index in fired
                    entry = record.forensics.get(index)
                    assert entry is not None
                    assert entry["reason"] == FAULT_INJECTED
                    checked += 1
        assert checked > 0


# ---------------------------------------------------------------------------
# The persistent code cache speaks shapes


def _run_cached(source, root, backend="closure"):
    reset_shapes()
    CodeObject._next_id = 1
    cache = DiskCodeCache(root=str(root))
    engine = Engine(
        config=FULL_SPEC, executor_backend=backend, code_cache=cache, **FAST
    )
    printed = engine.run_source(source)
    return printed, engine, cache


class TestShapeKeyedCache:
    @pytest.mark.parametrize("backend", ["simple", "closure"])
    def test_shape_guarded_binaries_round_trip(self, tmp_path, backend):
        cold = _run_cached(POLY_SOURCE, tmp_path, backend)
        assert cold[2].stores > 0 and cold[2].hits == 0
        warm = _run_cached(POLY_SOURCE, tmp_path, backend)
        assert warm[2].hits == cold[2].stores
        assert warm[2].stores == 0
        assert warm[0] == cold[0]
        from repro.engine.stats import DISK_TRAFFIC_KEYS

        # Ledgers match modulo the host-side disk-traffic counters,
        # which differ by design (cold stores, warm hits).
        warm_ledger = warm[1].stats.as_dict()
        cold_ledger = cold[1].stats.as_dict()
        for key in DISK_TRAFFIC_KEYS:
            del warm_ledger[key], cold_ledger[key]
        assert warm_ledger == cold_ledger
        assert warm[1].stats.shape_guard_bailouts == (
            cold[1].stats.shape_guard_bailouts
        )

    def test_fingerprint_orders_and_sentinels(self):
        # The IC snapshot in the cache key preserves per-site shape
        # order (the guard tests shapes in that order) and keeps the
        # megamorphic sentinel distinct from any id list.
        assert _shape_ic_fingerprint({3: [1, 2]}) != _shape_ic_fingerprint(
            {3: [2, 1]}
        )
        assert _shape_ic_fingerprint({3: MEGAMORPHIC}) != _shape_ic_fingerprint(
            {3: [1]}
        )
        assert _shape_ic_fingerprint({}) == ()
        # Site order does not matter — sites are sorted by pc.
        left = {1: [4], 2: [5]}
        right = {2: [5], 1: [4]}
        assert _shape_ic_fingerprint(left) == _shape_ic_fingerprint(right)
