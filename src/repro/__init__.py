"""repro: a reproduction of "Just-in-Time Value Specialization" (CGO'13).

A JavaScript-subset virtual machine with an IonMonkey-style JIT that
specializes native code on the runtime values of function parameters.

Quickstart::

    from repro import Engine, FULL_SPEC

    engine = Engine(config=FULL_SPEC)
    engine.run_source('''
        function bitsInByte(b) {
            var m = 1, c = 0;
            while (m < 0x100) { if (b & m) c++; m <<= 1; }
            return c;
        }
        var total = 0;
        for (var i = 0; i < 3000; i++) total += bitsInByte(173);
        print(total);
    ''')
    print(engine.stats.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from repro.engine.config import (
    BASELINE,
    FULL_SPEC,
    PAPER_CONFIGS,
    CostModel,
    OptConfig,
)
from repro.engine.runtime_engine import Engine, run_program
from repro.engine.stats import EngineStats
from repro.telemetry.profiler import CycleProfiler
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.runtime import Runtime
from repro.errors import (
    CompilerError,
    JSRangeError,
    JSReferenceError,
    JSSyntaxError,
    JSTypeError,
    NotCompilable,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "run_program",
    "EngineStats",
    "CycleProfiler",
    "Interpreter",
    "Runtime",
    "OptConfig",
    "CostModel",
    "BASELINE",
    "FULL_SPEC",
    "PAPER_CONFIGS",
    "ReproError",
    "JSSyntaxError",
    "JSTypeError",
    "JSReferenceError",
    "JSRangeError",
    "CompilerError",
    "NotCompilable",
    "__version__",
]
