"""Kraken-1.1-style benchmark suite.

Kraken is dominated by long-running numeric kernels over typed-ish
arrays: audio DSP (beat detection, FFT), imaging filters (gaussian
blur, desaturation), crypto (AES/CCM bit mixing) and JSON-ish string
parsing.  Matching the paper's Figure 3 for Kraken, a large fraction
of functions are called exactly once (big drivers) or always with the
same arguments (kernels re-invoked on the same buffers) — Kraken had
the highest single-argument-set rate (55.91%) of the three suites.
"""

from repro.workloads.benchmark import Benchmark

# stanford-crypto-ccm flavour: byte mixing over a constant buffer; the
# hot anonymous kernel is always called with the same array.
CRYPTO_CCM = Benchmark(
    "stanford-crypto-ccm",
    """
    var xorRound = function(words, key) {
        var acc = 0;
        for (var i = 0; i < words.length; i++) {
            words[i] = ((words[i] ^ key) + ((words[i] << 5) & 0xffff)) & 0xffff;
            acc = (acc + words[i]) & 0xffff;
        }
        return acc;
    };
    function driver() {
        var words = [];
        for (var i = 0; i < 64; i++) words[i] = (i * 2654435761) & 0xffff;
        var mac = 0;
        for (var round = 0; round < 220; round++)
            mac = (mac + xorRound(words, 0x5a5a)) & 0xffff;
        return mac;
    }
    print(driver());
    """,
)

AUDIO_BEAT_DETECTION = Benchmark(
    "audio-beat-detection",
    """
    function energy(samples, from, to) {
        var e = 0.0;
        for (var i = from; i < to; i++) e += samples[i] * samples[i];
        return e;
    }
    function detectBeats(samples, window) {
        var beats = 0;
        var history = 0.0;
        var count = 0;
        for (var at = 0; at + window <= samples.length; at += window) {
            var e = energy(samples, at, at + window);
            count++;
            var average = history / count;
            if (count > 8 && e > 1.4 * average) beats++;
            history += e;
        }
        return beats;
    }
    function driver() {
        var samples = [];
        for (var i = 0; i < 2200; i++) {
            var base = Math.sin(i * 0.13) * 0.3;
            if ((i / 100 | 0) % 4 == 0) base += Math.sin(i * 1.7) * 0.9;
            samples[i] = base;
        }
        var total = 0;
        for (var round = 0; round < 10; round++)
            total += detectBeats(samples, 100);
        return total;
    }
    print(driver());
    """,
)

AUDIO_FFT = Benchmark(
    "audio-fft",
    """
    function butterfly(re, im, n) {
        var checksum = 0.0;
        for (var span = 1; span < n; span <<= 1) {
            for (var i = 0; i + span < n; i += span << 1) {
                for (var j = 0; j < span; j++) {
                    var a = i + j, b = i + j + span;
                    var tr = re[b] * 0.7071 - im[b] * 0.7071;
                    var ti = re[b] * 0.7071 + im[b] * 0.7071;
                    re[b] = re[a] - tr;
                    im[b] = im[a] - ti;
                    re[a] += tr;
                    im[a] += ti;
                }
            }
        }
        for (var i = 0; i < n; i++) checksum += re[i] * re[i] + im[i] * im[i];
        return checksum;
    }
    function driver() {
        var n = 256;
        var total = 0.0;
        for (var round = 0; round < 6; round++) {
            var re = [], im = [];
            for (var i = 0; i < n; i++) { re[i] = Math.sin(i); im[i] = 0.0; }
            total += butterfly(re, im, n);
        }
        return total;
    }
    print(driver().toFixed(2));
    """,
)

IMAGING_GAUSSIAN_BLUR = Benchmark(
    "imaging-gaussian-blur",
    """
    function blurRow(src, dst, width, y, kernel, ksum) {
        var base = y * width;
        for (var x = 2; x < width - 2; x++) {
            var acc = 0;
            acc += src[base + x - 2] * kernel[0];
            acc += src[base + x - 1] * kernel[1];
            acc += src[base + x] * kernel[2];
            acc += src[base + x + 1] * kernel[3];
            acc += src[base + x + 2] * kernel[4];
            dst[base + x] = (acc / ksum) | 0;
        }
        return dst[base + 2];
    }
    function blur(src, dst, width, height, kernel, ksum) {
        var check = 0;
        for (var y = 0; y < height; y++)
            check = (check + blurRow(src, dst, width, y, kernel, ksum)) & 0xffff;
        return check;
    }
    function driver() {
        var width = 64, height = 24;
        var src = [], dst = [];
        for (var i = 0; i < width * height; i++) { src[i] = (i * 31) & 255; dst[i] = 0; }
        var kernel = [1, 4, 6, 4, 1];
        var total = 0;
        for (var round = 0; round < 25; round++)
            total = (total + blur(src, dst, width, height, kernel, 16)) & 0xffff;
        return total;
    }
    print(driver());
    """,
)

IMAGING_DESATURATE = Benchmark(
    "imaging-desaturate",
    """
    function desaturate(pixels) {
        var sum = 0;
        for (var i = 0; i + 2 < pixels.length; i += 3) {
            var grey = ((pixels[i] * 77 + pixels[i + 1] * 151 + pixels[i + 2] * 28) >> 8) & 255;
            pixels[i] = grey;
            pixels[i + 1] = grey;
            pixels[i + 2] = grey;
            sum = (sum + grey) & 0xffffff;
        }
        return sum;
    }
    function driver() {
        var pixels = [];
        for (var i = 0; i < 1800; i++) pixels[i] = (i * 97) & 255;
        var total = 0;
        for (var round = 0; round < 28; round++)
            total = (total + desaturate(pixels)) & 0xffffff;
        return total;
    }
    print(driver());
    """,
)

JSON_PARSE = Benchmark(
    "json-parse-financial",
    """
    function skipSpace(text, at) {
        while (at < text.length && text.charAt(at) == " ") at++;
        return at;
    }
    function parseNumber(text, at) {
        var value = 0;
        while (at < text.length) {
            var c = text.charCodeAt(at);
            if (c < 48 || c > 57) break;
            value = value * 10 + (c - 48);
            at++;
        }
        return value;
    }
    function parseArray(text) {
        var at = 1;
        var total = 0, count = 0;
        while (at < text.length && text.charAt(at) != "]") {
            at = skipSpace(text, at);
            total += parseNumber(text, at);
            while (at < text.length && text.charAt(at) != "," && text.charAt(at) != "]") at++;
            if (text.charAt(at) == ",") at++;
            count++;
        }
        return total + count;
    }
    function driver() {
        var doc = "[";
        for (var i = 0; i < 70; i++) doc += (i * 37 % 1000) + ", ";
        doc += "0]";
        var total = 0;
        for (var round = 0; round < 60; round++)
            total += parseArray(doc);
        return total;
    }
    print(driver());
    """,
)

KRAKEN = [
    CRYPTO_CCM,
    AUDIO_BEAT_DETECTION,
    AUDIO_FFT,
    IMAGING_GAUSSIAN_BLUR,
    IMAGING_DESATURATE,
    JSON_PARSE,
]


AI_ASTAR = Benchmark(
    "ai-astar",
    """
    function Node2(x, y) {
        this.x = x;
        this.y = y;
        this.g = 0;
        this.h = 0;
        this.parent = null;
    }
    function heuristic(x0, y0, x1, y1) {
        var dx = x0 > x1 ? x0 - x1 : x1 - x0;
        var dy = y0 > y1 ? y0 - y1 : y1 - y0;
        return dx + dy;
    }
    function search(grid, width, height) {
        var open = [new Node2(0, 0)];
        var visited = [];
        for (var i = 0; i < width * height; i++) visited[i] = false;
        var expansions = 0;
        while (open.length > 0) {
            var bestIndex = 0;
            for (var i = 1; i < open.length; i++)
                if (open[i].g + open[i].h < open[bestIndex].g + open[bestIndex].h)
                    bestIndex = i;
            var node = open[bestIndex];
            open[bestIndex] = open[open.length - 1];
            open.pop();
            if (node.x == width - 1 && node.y == height - 1) return expansions;
            var index = node.y * width + node.x;
            if (visited[index]) continue;
            visited[index] = true;
            expansions++;
            var dx = [1, -1, 0, 0];
            var dy = [0, 0, 1, -1];
            for (var d = 0; d < 4; d++) {
                var nx = node.x + dx[d], ny = node.y + dy[d];
                if (nx < 0 || ny < 0 || nx >= width || ny >= height) continue;
                if (grid[ny * width + nx]) continue;
                if (visited[ny * width + nx]) continue;
                var next = new Node2(nx, ny);
                next.g = node.g + 1;
                next.h = heuristic(nx, ny, width - 1, height - 1);
                next.parent = node;
                open.push(next);
            }
        }
        return -1;
    }
    function driver() {
        var width = 12, height = 12;
        var grid = [];
        for (var i = 0; i < width * height; i++)
            grid[i] = (i * 2654435761 & 7) == 0 && i != 0 && i != width * height - 1;
        var total = 0;
        for (var round = 0; round < 4; round++) total += search(grid, width, height);
        return total;
    }
    print(driver());
    """,
)

CRYPTO_SHA256 = Benchmark(
    "stanford-crypto-sha256-iterative",
    """
    function ch(x, y, z) { return (x & y) ^ ((~x) & z); }
    function maj(x, y, z) { return (x & y) ^ (x & z) ^ (y & z); }
    function sigma0(x) { return ((x >>> 2) | (x << 30)) ^ ((x >>> 13) | (x << 19)) ^ ((x >>> 22) | (x << 10)); }
    function sigma1(x) { return ((x >>> 6) | (x << 26)) ^ ((x >>> 11) | (x << 21)) ^ ((x >>> 25) | (x << 7)); }
    function round256(w, a, b, c, d, e, f, g, h) {
        for (var t = 0; t < 64; t++) {
            var t1 = (h + sigma1(e) + ch(e, f, g) + w[t & 15]) | 0;
            var t2 = (sigma0(a) + maj(a, b, c)) | 0;
            h = g; g = f; f = e; e = (d + t1) | 0;
            d = c; c = b; b = a; a = (t1 + t2) | 0;
        }
        return (a ^ e) | 0;
    }
    function driver() {
        var w = [];
        for (var i = 0; i < 16; i++) w[i] = (i * 0x428a2f98) | 0;
        var h = 0x6a09e667;
        for (var block = 0; block < 30; block++)
            h = (h + round256(w, h, h ^ 1, h ^ 2, h ^ 3, h ^ 4, h ^ 5, h ^ 6, h ^ 7)) | 0;
        return h;
    }
    print(driver());
    """,
)

IMAGING_DARKROOM = Benchmark(
    "imaging-darkroom",
    """
    function histogram(pixels, bins) {
        for (var i = 0; i < bins.length; i++) bins[i] = 0;
        for (var i = 0; i < pixels.length; i++) bins[pixels[i] >> 4]++;
        var peak = 0;
        for (var i = 0; i < bins.length; i++) if (bins[i] > bins[peak]) peak = i;
        return peak;
    }
    function levels(pixels, low, high) {
        var scale = 255 / (high - low);
        var sum = 0;
        for (var i = 0; i < pixels.length; i++) {
            var v = ((pixels[i] - low) * scale) | 0;
            if (v < 0) v = 0;
            if (v > 255) v = 255;
            pixels[i] = v;
            sum = (sum + v) & 0xffffff;
        }
        return sum;
    }
    function driver() {
        var pixels = [];
        for (var i = 0; i < 1200; i++) pixels[i] = (i * 89) & 255;
        var bins = [];
        for (var i = 0; i < 16; i++) bins[i] = 0;
        var total = 0;
        for (var round = 0; round < 12; round++) {
            total = (total + histogram(pixels, bins)) & 0xffffff;
            total = (total + levels(pixels, 10, 245)) & 0xffffff;
        }
        return total;
    }
    print(driver());
    """,
)

KRAKEN.extend([AI_ASTAR, CRYPTO_SHA256, IMAGING_DARKROOM])
