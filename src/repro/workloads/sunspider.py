"""SunSpider-1.0-style benchmark suite.

Re-implementations of representative SunSpider programs in the guest
subset, scaled to run in seconds on the simulated VM.  The mix follows
the original suite's flavour: bit manipulation, small crypto kernels,
string processing, math loops, array access and recursion.  Invocation
behaviour matches the paper's Figure 3 observations for SunSpider —
a sizeable fraction of functions run once (top-level drivers), hot
kernels are either argument-monomorphic (specialization wins) or
argument-varying like ``md5_ii`` (specialization deopts), so both
policy paths get exercised.
"""

from repro.workloads.benchmark import Benchmark

# The benchmark the paper highlights with a 49% speedup: the inner
# kernel is called with the same byte inside the driver's hot loop.
BITOPS_BITS_IN_BYTE = Benchmark(
    "bitops-bits-in-byte",
    """
    function bitsinbyte(b) {
        var m = 1, c = 0;
        while (m < 0x100) {
            if (b & m) c++;
            m <<= 1;
        }
        return c;
    }
    function TimeFunc(func) {
        var x = 0, y = 0;
        for (var x = 0; x < 35; x++)
            for (var y = 0; y < 256; y++)
                func(y);
        return func(173) * x * y;
    }
    print(TimeFunc(bitsinbyte));
    """,
)

BITOPS_3BIT_BITS = Benchmark(
    "bitops-3bit-bits-in-byte",
    """
    function fast3bitlookup(b) {
        var c, bi3b = 0xE994;
        c  = 3 & (bi3b >> ((b << 1) & 14));
        c += 3 & (bi3b >> ((b >> 2) & 14));
        c += 3 & (bi3b >> ((b >> 5) & 6));
        return c;
    }
    function TimeFunc(func) {
        var sum = 0;
        for (var x = 0; x < 60; x++)
            for (var y = 0; y < 256; y++)
                sum += func(y);
        return sum;
    }
    print(TimeFunc(fast3bitlookup));
    """,
)

BITOPS_NSIEVE_BITS = Benchmark(
    "bitops-nsieve-bits",
    """
    function primes(isPrime, n) {
        var count = 0, m = 10000 << n, size = m + 31 >> 5;
        for (var i = 0; i < size; i++) isPrime[i] = 0xffffffff | 0;
        for (var i = 2; i < m; i++)
            if (isPrime[i >> 5] & (1 << (i & 31))) {
                for (var j = i + i; j < m; j += i)
                    isPrime[j >> 5] &= ~(1 << (j & 31));
                count++;
            }
        return count;
    }
    function sieve() {
        var sum = 0;
        for (var i = 0; i <= 0; i++) {
            var isPrime = new Array((10000 << i) + 31 >> 5);
            sum += primes(isPrime, i);
        }
        return sum;
    }
    print(sieve());
    """,
)

# crypto-md5 flavour: round helpers called thousands of times with
# *different* values (the paper: "each of the 2,300 calls of the md5_ii
# function receives different values") — specialization must deopt
# gracefully here.
CRYPTO_MD5 = Benchmark(
    "crypto-md5",
    """
    function safe_add(x, y) {
        var lsw = (x & 0xFFFF) + (y & 0xFFFF);
        var msw = (x >> 16) + (y >> 16) + (lsw >> 16);
        return (msw << 16) | (lsw & 0xFFFF);
    }
    function bit_rol(num, cnt) {
        return (num << cnt) | (num >>> (32 - cnt));
    }
    function md5_cmn(q, a, b, x, s, t) {
        return safe_add(bit_rol(safe_add(safe_add(a, q), safe_add(x, t)), s), b);
    }
    function md5_ff(a, b, c, d, x, s, t) {
        return md5_cmn((b & c) | ((~b) & d), a, b, x, s, t);
    }
    function md5_gg(a, b, c, d, x, s, t) {
        return md5_cmn((b & d) | (c & (~d)), a, b, x, s, t);
    }
    function md5_hh(a, b, c, d, x, s, t) {
        return md5_cmn(b ^ c ^ d, a, b, x, s, t);
    }
    function md5_ii(a, b, c, d, x, s, t) {
        return md5_cmn(c ^ (b | (~d)), a, b, x, s, t);
    }
    function core_round(x, a, b, c, d) {
        a = md5_ff(a, b, c, d, x[0], 7, -680876936);
        d = md5_ff(d, a, b, c, x[1], 12, -389564586);
        c = md5_ff(c, d, a, b, x[2], 17, 606105819);
        b = md5_ff(b, c, d, a, x[3], 22, -1044525330);
        a = md5_gg(a, b, c, d, x[1], 5, -165796510);
        d = md5_gg(d, a, b, c, x[6], 9, -1069501632);
        c = md5_gg(c, d, a, b, x[11], 14, 643717713);
        b = md5_gg(b, c, d, a, x[0], 20, -373897302);
        a = md5_hh(a, b, c, d, x[5], 4, -378558);
        d = md5_hh(d, a, b, c, x[8], 11, -2022574463);
        c = md5_hh(c, d, a, b, x[11], 16, 1839030562);
        b = md5_hh(b, c, d, a, x[14], 23, -35309556);
        a = md5_ii(a, b, c, d, x[0], 6, -198630844);
        d = md5_ii(d, a, b, c, x[7], 10, 1126891415);
        c = md5_ii(c, d, a, b, x[14], 15, -1416354905);
        b = md5_ii(b, c, d, a, x[5], 21, -57434055);
        return safe_add(a, safe_add(b, safe_add(c, d)));
    }
    function run() {
        var x = [];
        for (var i = 0; i < 16; i++) x[i] = (i * 0x01234567) | 0;
        var h = 0x67452301;
        for (var round = 0; round < 120; round++) {
            h = core_round(x, h, h ^ 0xefcdab89, h ^ 0x98badcfe, h ^ 0x10325476);
            x[round & 15] = h;
        }
        return h;
    }
    print(run());
    """,
)

# string-unpack-code flavour: the paper credits loop inversion +
# IonMonkey's invariant code motion with a 28% speedup here.  The
# decoder's dictionary and radix stay loop-invariant.
STRING_UNPACK_CODE = Benchmark(
    "string-unpack-code",
    """
    function unpack(packed, dict, radix) {
        var out = "";
        for (var i = 0; i < packed.length; i++) {
            var code = packed.charCodeAt(i) - 97;
            var word = dict[code % radix];
            out += word;
            if (i % 7 == 6) out += " ";
        }
        return out.length;
    }
    function driver() {
        var dict = ["var", "func", "ret", "if", "else", "for", "idx", "obj"];
        var packed = "";
        var seed = 11;
        for (var i = 0; i < 60; i++) {
            seed = (seed * 131 + 7) % 26;
            packed += String.fromCharCode(97 + seed);
        }
        var total = 0;
        for (var round = 0; round < 120; round++)
            total += unpack(packed, dict, 8);
        return total;
    }
    print(driver());
    """,
)

STRING_BASE64 = Benchmark(
    "string-base64",
    """
    function toBase64(data, chars) {
        var out = "";
        var i = 0;
        while (i + 2 < data.length) {
            var n = (data.charCodeAt(i) << 16) | (data.charCodeAt(i + 1) << 8) | data.charCodeAt(i + 2);
            out += chars.charAt((n >> 18) & 63);
            out += chars.charAt((n >> 12) & 63);
            out += chars.charAt((n >> 6) & 63);
            out += chars.charAt(n & 63);
            i += 3;
        }
        return out;
    }
    function driver() {
        var chars = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
        var data = "";
        for (var i = 0; i < 99; i++) data += String.fromCharCode(32 + (i * 7) % 90);
        var length = 0;
        for (var round = 0; round < 110; round++)
            length += toBase64(data, chars).length;
        return length;
    }
    print(driver());
    """,
)

MATH_PARTIAL_SUMS = Benchmark(
    "math-partial-sums",
    """
    function partial(n) {
        var a1 = 0.0, a2 = 0.0, a3 = 0.0, a4 = 0.0, a5 = 0.0;
        var twothirds = 2.0 / 3.0;
        var alt = -1.0;
        for (var k = 1; k <= n; k++) {
            var k2 = k * k;
            var k3 = k2 * k;
            var sk = Math.sin(k);
            var ck = Math.cos(k);
            alt = -alt;
            a1 += Math.pow(twothirds, k - 1);
            a2 += 1.0 / (k * Math.sqrt(k));
            a3 += 1.0 / (k3 * sk * sk);
            a4 += 1.0 / (k3 * ck * ck);
            a5 += alt / k;
        }
        return a1 + a2 + a3 + a4 + a5;
    }
    var total = 0.0;
    for (var i = 0; i < 3; i++) total += partial(1024);
    print(total.toFixed(6));
    """,
)

ACCESS_NSIEVE = Benchmark(
    "access-nsieve",
    """
    function nsieve(m, isPrime) {
        var count = 0;
        for (var i = 2; i <= m; i++) isPrime[i] = true;
        for (var i = 2; i <= m; i++) {
            if (isPrime[i]) {
                for (var k = i + i; k <= m; k += i) isPrime[k] = false;
                count++;
            }
        }
        return count;
    }
    function sieve() {
        var sum = 0;
        for (var i = 1; i <= 2; i++) {
            var m = (1 << i) * 2500;
            var flags = new Array(m + 1);
            sum += nsieve(m, flags);
        }
        return sum;
    }
    print(sieve());
    """,
)

ACCESS_FANNKUCH = Benchmark(
    "access-fannkuch",
    """
    function fannkuch(n) {
        var check = 0;
        var perm = new Array(n);
        var perm1 = new Array(n);
        var count = new Array(n);
        var maxFlipsCount = 0;
        var m = n - 1;
        for (var i = 0; i < n; i++) perm1[i] = i;
        var r = n;
        while (true) {
            while (r != 1) { count[r - 1] = r; r--; }
            if (!(perm1[0] == 0 || perm1[m] == m)) {
                for (var i = 0; i < n; i++) perm[i] = perm1[i];
                var flipsCount = 0;
                var k;
                while (!((k = perm[0]) == 0)) {
                    var k2 = (k + 1) >> 1;
                    for (var i = 0; i < k2; i++) {
                        var temp = perm[i];
                        perm[i] = perm[k - i];
                        perm[k - i] = temp;
                    }
                    flipsCount++;
                }
                if (flipsCount > maxFlipsCount) maxFlipsCount = flipsCount;
            }
            while (true) {
                if (r == n) return maxFlipsCount;
                var perm0 = perm1[0];
                var i = 0;
                while (i < r) {
                    var j = i + 1;
                    perm1[i] = perm1[j];
                    i = j;
                }
                perm1[r] = perm0;
                count[r] = count[r] - 1;
                if (count[r] > 0) break;
                r++;
            }
        }
    }
    print(fannkuch(7));
    """,
)

CONTROLFLOW_RECURSIVE = Benchmark(
    "controlflow-recursive",
    """
    function ack(m, n) {
        if (m == 0) return n + 1;
        if (n == 0) return ack(m - 1, 1);
        return ack(m - 1, ack(m, n - 1));
    }
    function fib(n) {
        if (n < 2) return 1;
        return fib(n - 2) + fib(n - 1);
    }
    function tak(x, y, z) {
        if (y >= x) return z;
        return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
    }
    var result = 0;
    for (var round = 0; round < 5; round++)
        for (var i = 3; i <= 4; i++)
            result += ack(2, i + 4) + fib(10 + i) + tak(3 * i, 2 * i, i);
    print(result);
    """,
)

MATH_CORDIC = Benchmark(
    "math-cordic",
    """
    function cordicsincos(Target, AG_CONST, Angles) {
        var X = 0.6072529350 * AG_CONST;
        var Y = 0.0;
        var TargetAngle = Target * 65536.0;
        var CurrAngle = 0.0;
        for (var Step = 0; Step < 12; Step++) {
            var NewX;
            if (TargetAngle > CurrAngle) {
                NewX = X - (Y / (1 << Step));
                Y = (X / (1 << Step)) + Y;
                X = NewX;
                CurrAngle += Angles[Step];
            } else {
                NewX = X + (Y / (1 << Step));
                Y = Y - (X / (1 << Step));
                X = NewX;
                CurrAngle -= Angles[Step];
            }
        }
        return X * Y;
    }
    function cordic(runs) {
        var AG_CONST = 1.0;
        var Angles = [2949120.0, 1740992.0, 919872.0, 466944.0, 234368.0, 117312.0,
                      58688.0, 29312.0, 14656.0, 7360.0, 3648.0, 1856.0];
        var total = 0.0;
        for (var i = 0; i < runs; i++)
            total += cordicsincos(28.027, AG_CONST, Angles);
        return total;
    }
    print(cordic(800).toFixed(4));
    """,
)

SUNSPIDER = [
    BITOPS_BITS_IN_BYTE,
    BITOPS_3BIT_BITS,
    BITOPS_NSIEVE_BITS,
    CRYPTO_MD5,
    STRING_UNPACK_CODE,
    STRING_BASE64,
    MATH_PARTIAL_SUMS,
    ACCESS_NSIEVE,
    ACCESS_FANNKUCH,
    CONTROLFLOW_RECURSIVE,
    MATH_CORDIC,
]


ACCESS_BINARY_TREES = Benchmark(
    "access-binary-trees",
    """
    function TreeNode(left, right, item) {
        this.left = left;
        this.right = right;
        this.item = item;
    }
    function itemCheck(node) {
        if (node.left === null) return node.item;
        return node.item + itemCheck(node.left) - itemCheck(node.right);
    }
    function bottomUpTree(item, depth) {
        if (depth > 0)
            return new TreeNode(bottomUpTree(2 * item - 1, depth - 1),
                                bottomUpTree(2 * item, depth - 1), item);
        return new TreeNode(null, null, item);
    }
    function driver() {
        var check = 0;
        for (var depth = 2; depth <= 5; depth++) {
            var iterations = 1 << (7 - depth);
            for (var i = 1; i <= iterations; i++) {
                check += itemCheck(bottomUpTree(i, depth));
                check += itemCheck(bottomUpTree(-i, depth));
            }
        }
        return check;
    }
    print(driver());
    """,
)

MATH_SPECTRAL_NORM = Benchmark(
    "math-spectral-norm",
    """
    function A(i, j) {
        return 1 / ((i + j) * (i + j + 1) / 2 + i + 1);
    }
    function Au(u, v) {
        for (var i = 0; i < u.length; ++i) {
            var t = 0;
            for (var j = 0; j < u.length; ++j) t += A(i, j) * u[j];
            v[i] = t;
        }
    }
    function Atu(u, v) {
        for (var i = 0; i < u.length; ++i) {
            var t = 0;
            for (var j = 0; j < u.length; ++j) t += A(j, i) * u[j];
            v[i] = t;
        }
    }
    function AtAu(u, v, w) {
        Au(u, w);
        Atu(w, v);
    }
    function spectralnorm(n) {
        var u = [], v = [], w = [], vv = 0, vBv = 0;
        for (var i = 0; i < n; ++i) { u[i] = 1; v[i] = 0; w[i] = 0; }
        for (var i = 0; i < 8; ++i) { AtAu(u, v, w); AtAu(v, u, w); }
        for (var i = 0; i < n; ++i) { vBv += u[i] * v[i]; vv += v[i] * v[i]; }
        return Math.sqrt(vBv / vv);
    }
    print(spectralnorm(24).toFixed(7));
    """,
)

STRING_FASTA = Benchmark(
    "string-fasta",
    """
    function rand(seed, max) {
        return ((seed * 3877 + 29573) % 139968) / 139968 * max;
    }
    function makeCumulative(chars, probs) {
        var acc = 0;
        var out = [];
        for (var i = 0; i < probs.length; i++) { acc += probs[i]; out[i] = acc; }
        return out;
    }
    function fastaRandom(count, chars, cumulative) {
        var seed = 42;
        var hash = 0;
        while (count-- > 0) {
            seed = (seed * 3877 + 29573) % 139968;
            var r = seed / 139968;
            var c = 0;
            while (cumulative[c] < r) c++;
            hash = (hash * 31 + chars.charCodeAt(c)) & 0xffffff;
        }
        return hash;
    }
    function driver() {
        var chars = "acgtBDHKMNRSVWY";
        var probs = [0.27, 0.12, 0.12, 0.27, 0.02, 0.02, 0.02, 0.02,
                     0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02];
        var cumulative = makeCumulative(chars, probs);
        var total = 0;
        for (var round = 0; round < 5; round++)
            total = (total + fastaRandom(2500, chars, cumulative)) & 0xffffff;
        return total;
    }
    print(driver());
    """,
)

CRYPTO_SHA1 = Benchmark(
    "crypto-sha1",
    """
    function rol(num, cnt) {
        return (num << cnt) | (num >>> (32 - cnt));
    }
    function sha1_ft(t, b, c, d) {
        if (t < 20) return (b & c) | ((~b) & d);
        if (t < 40) return b ^ c ^ d;
        if (t < 60) return (b & c) | (b & d) | (c & d);
        return b ^ c ^ d;
    }
    function sha1_kt(t) {
        return t < 20 ? 1518500249 : t < 40 ? 1859775393 :
               t < 60 ? -1894007588 : -899497514;
    }
    function core(w, a, b, c, d, e) {
        for (var t = 0; t < 80; t++) {
            if (t >= 16) w[t & 15] = rol(w[(t + 13) & 15] ^ w[(t + 8) & 15] ^ w[(t + 2) & 15] ^ w[t & 15], 1);
            var tmp = (rol(a, 5) + sha1_ft(t, b, c, d) + e + w[t & 15] + sha1_kt(t)) | 0;
            e = d; d = c; c = rol(b, 30); b = a; a = tmp;
        }
        return (a ^ b ^ c ^ d ^ e) | 0;
    }
    function driver() {
        var w = [];
        for (var i = 0; i < 16; i++) w[i] = (i * 0x9e3779b9) | 0;
        var h = 0x67452301;
        for (var block = 0; block < 40; block++)
            h = (h + core(w, h, h ^ 0xefcdab89, h ^ 0x98badcfe, h ^ 0x10325476, block)) | 0;
        return h;
    }
    print(driver());
    """,
)

THREED_MORPH = Benchmark(
    "3d-morph",
    """
    function morph(a, f) {
        var PI2nQ = Math.PI * 2 / 120;
        for (var i = 0; i < a.length; i++)
            a[i] = Math.sin((i % 120) * PI2nQ + f) * 0.5;
        var sum = 0;
        for (var i = 0; i < a.length; i++) sum += a[i];
        return sum;
    }
    function driver() {
        var a = [];
        for (var i = 0; i < 600; i++) a[i] = 0;
        var total = 0;
        for (var f = 0; f < 12; f++) total += morph(a, f / 12);
        return total;
    }
    print(driver().toFixed(6));
    """,
)

SUNSPIDER.extend([
    ACCESS_BINARY_TREES,
    MATH_SPECTRAL_NORM,
    STRING_FASTA,
    CRYPTO_SHA1,
    THREED_MORPH,
])
