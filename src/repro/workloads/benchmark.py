"""The Benchmark record shared by all suite modules."""


class Benchmark(object):
    """One benchmark program: a name and guest source code."""

    __slots__ = ("name", "source")

    def __init__(self, name, source):
        self.name = name
        self.source = source

    def __repr__(self):
        return "<Benchmark %s>" % self.name
