"""Benchmark workloads: the evaluation substrate.

Three suites of guest programs stand in for SunSpider 1.0, V8 v6 and
Kraken 1.1 (see DESIGN.md's substitution ledger), plus the synthetic
web corpus that stands in for the Alexa top-100 study, an
object-heavy suite exercising the shape/IC machinery (docs/SHAPES.md)
and a precondition-churn suite exercising deoptless recovery
(docs/DEOPTLESS.md).
"""

from repro.workloads.benchmark import Benchmark
from repro.workloads.sunspider import SUNSPIDER
from repro.workloads.v8 import V8
from repro.workloads.kraken import KRAKEN
from repro.workloads.objects import OBJECTS
from repro.workloads.churn import CHURN
from repro.workloads.web import (
    WebCorpusConfig,
    generate_web_trace,
    generate_website_program,
    WEBSITES,
)

ALL_SUITES = {
    "sunspider": SUNSPIDER,
    "v8": V8,
    "kraken": KRAKEN,
    "objects": OBJECTS,
    "churn": CHURN,
}


def suite(name):
    """Look up a suite by name: 'sunspider', 'v8', 'kraken', 'objects' or 'churn'."""
    return ALL_SUITES[name]


__all__ = [
    "Benchmark",
    "suite",
    "ALL_SUITES",
    "SUNSPIDER",
    "V8",
    "KRAKEN",
    "OBJECTS",
    "CHURN",
    "WebCorpusConfig",
    "generate_web_trace",
    "generate_website_program",
    "WEBSITES",
]
