"""Churn benchmark suite: the deoptless-recovery evaluation substrate.

The paper's §4 policy answers every failed speculation the same way:
discard the binary, mark the function, recompile from scratch.  That
is the right call when preconditions fail *once* — but real programs
flip between a small set of precondition regimes (argument values
alternating between phases, receiver shapes rotating past the IC
capacity), and under the §4 policy every flip pays a full
bail-discard-recompile round trip.  This suite concentrates exactly
that behaviour so the deoptless dispatch table (docs/DEOPTLESS.md) has
something to win on — each kernel is transition-heavy by design: many
small hot functions, short steady-state phases, and a deliberate
precondition flip at every phase boundary:

* ``spec-churn`` — **value churn**: parameter-specialized workers
  whose baked argument values rotate between a small set of phase
  regimes, so the §4 policy discards on the first flip and runs
  unspecialized forever after, while the dispatch table re-enters the
  matching specialized sibling whenever a regime returns;
* ``polymorphic-dispatch`` — **receiver-mix churn**: accessors fed a
  rotating mix of record layouts, two layouts live per phase and new
  layouts introduced each phase until the sites blow past the
  four-entry IC;
* ``shape-flip`` — **shape churn**: accessor kernels over an object
  population whose hidden class is rebuilt each phase (six distinct
  shapes against a four-entry IC), the pure shape-guard retrain storm.
"""

from repro.workloads.benchmark import Benchmark

SPEC_CHURN = Benchmark(
    "spec-churn",
    """
    function quant(op) {
        var acc = 0;
        for (var x = 0; x < 96; x++) {
            if (op == 0) acc = (acc + x * 3) & 0xffff;
            else if (op == 1) acc = (acc + ((x << 1) - x)) & 0xffff;
            else acc = (acc + (x >> 1) + 9) & 0xffff;
            if (op == 0) acc = (acc ^ 21) & 0xffff;
            else if (op == 1) acc = (acc + 13) & 0xffff;
            else acc = (acc - 7) & 0xffff;
        }
        return acc;
    }
    function wave(op) {
        var acc = 1;
        for (var x = 0; x < 96; x++) {
            if (op == 0) acc = (acc * 2 + 1) & 0xffff;
            else if (op == 1) acc = (acc + (x << 2)) & 0xffff;
            else acc = (acc ^ (x + 5)) & 0xffff;
            if (op == 0) acc = (acc + x) & 0xffff;
            else if (op == 1) acc = (acc ^ 9) & 0xffff;
            else acc = (acc + (x >> 2)) & 0xffff;
        }
        return acc;
    }
    function fold(k) {
        var acc = 0;
        for (var i = 0; i < 96; i++) {
            if (k == 5) acc = (acc + i * 5) & 0xffff;
            else if (k == 6) acc = (acc + (i << 2) + i) & 0xffff;
            else acc = (acc + i * k + (k << 1)) & 0xffff;
            if (k == 5) acc = (acc ^ 17) & 0xffff;
            else if (k == 6) acc = (acc - 11) & 0xffff;
            else acc = (acc + k) & 0xffff;
        }
        return acc;
    }
    function warp(k) {
        var acc = 7;
        for (var i = 0; i < 96; i++) {
            if (k == 5) acc = (acc + ((i + 5) << 1) - 5) & 0xffff;
            else if (k == 6) acc = (acc + ((i + 6) << 1) - 6) & 0xffff;
            else acc = (acc + ((i + k) << 1) - k) & 0xffff;
            if (k == 5) acc = (acc ^ i) & 0xffff;
            else if (k == 6) acc = (acc + 3) & 0xffff;
            else acc = (acc - k) & 0xffff;
        }
        return acc;
    }
    function driver() {
        var total = 0;
        for (var phase = 0; phase < 12; phase++) {
            var op = phase % 3;
            for (var call = 0; call < 12; call++) {
                total = (total + quant(op) + wave(op)) & 0xffff;
                total = (total + fold(op + 5) + warp(op + 5)) & 0xffff;
            }
        }
        return total;
    }
    print(driver());
    """,
)

POLYMORPHIC_DISPATCH = Benchmark(
    "polymorphic-dispatch",
    """
    function area(s) {
        return s.w * s.h;
    }
    function perimeter(s) {
        return (s.w + s.h) * 2;
    }
    function aspect(s) {
        return (s.w << 4) - s.h;
    }
    function skew(s) {
        return s.h * 3 - s.w;
    }
    function makeShape(kind, i) {
        if (kind == 0) return {w: i + 1, h: 2};
        if (kind == 1) return {h: 3, w: i + 2};
        if (kind == 2) return {w: i + 1, h: 2, tag: 1};
        if (kind == 3) return {tag: 2, w: i + 3, h: 4};
        if (kind == 4) return {h: 5, tag: 3, w: i + 1};
        return {tag: 4, h: i + 1, w: 6};
    }
    function driver() {
        var total = 0;
        for (var phase = 0; phase < 6; phase++) {
            var shapes = [];
            for (var i = 0; i < 10; i++)
                shapes[i] = makeShape((phase + (i % 2)) % 6, i);
            for (var round = 0; round < 1; round++) {
                for (var i = 0; i < 10; i++) {
                    var s = shapes[i];
                    total = (total + area(s) + perimeter(s)) & 0xffff;
                    total = (total + aspect(s) + skew(s)) & 0xffff;
                }
            }
        }
        return total;
    }
    print(driver());
    """,
)

SHAPE_FLIP = Benchmark(
    "shape-flip",
    """
    function weigh(list, i) {
        var o = list[i];
        return o.a + o.b;
    }
    function scan(list, i) {
        var o = list[i];
        return o.a * 2 - o.b;
    }
    function gauge(list, i) {
        var o = list[i];
        return (o.a << 1) + o.b;
    }
    function tally(list, i) {
        var o = list[i];
        return o.b - o.a;
    }
    function probe(list, i) {
        var o = list[i];
        return o.a ^ o.b;
    }
    function blend(list, i) {
        var o = list[i];
        return (o.a + o.b) >> 1;
    }
    function rebuild(phase) {
        var list = [];
        for (var i = 0; i < 8; i++) {
            if (phase == 0) list[i] = {a: i, b: i * 2};
            else if (phase == 1) list[i] = {b: i, a: i * 3};
            else if (phase == 2) list[i] = {a: i, b: i, c: 1};
            else if (phase == 3) list[i] = {c: 2, a: i, b: i * 5};
            else if (phase == 4) list[i] = {a: i, c: 3, b: i * 7};
            else list[i] = {b: i * 9, c: 4, a: i};
        }
        return list;
    }
    function driver() {
        var total = 0;
        for (var phase = 0; phase < 6; phase++) {
            var list = rebuild(phase);
            for (var round = 0; round < 1; round++) {
                for (var i = 0; i < 8; i++) {
                    total = (total + weigh(list, i) + scan(list, i)) & 0xffff;
                    total = (total + gauge(list, i) + tally(list, i)) & 0xffff;
                    total = (total + probe(list, i) + blend(list, i)) & 0xffff;
                }
            }
        }
        return total;
    }
    print(driver());
    """,
)

#: The suite, in canonical order.
CHURN = [SPEC_CHURN, POLYMORPHIC_DISPATCH, SHAPE_FLIP]
