"""V8-v6-style benchmark suite.

The original V8 suite is object- and allocation-heavy (Richards'
task scheduler, Earley–Boyer's cons cells, DeltaBlue's constraint
objects, Splay's tree nodes, Crypto's bignum arrays).  These guest
re-implementations keep that flavour: lots of objects, constructors,
method-style calls, and — matching the paper's Figure 3 for V8 — a
low fraction of call-once functions with substantial argument
diversity (``sc_Pair``-style constructors get called thousands of
times with different values).
"""

from repro.workloads.benchmark import Benchmark

# Richards flavour: a tiny round-robin task scheduler over objects.
RICHARDS = Benchmark(
    "richards",
    """
    function Task(id, priority) {
        this.id = id;
        this.priority = priority;
        this.state = 0;
        this.counter = 0;
    }
    function runTask(task, work) {
        task.counter = task.counter + work;
        task.state = (task.state + 1) & 3;
        return task.counter & 0xffff;
    }
    function schedule(tasks, rounds) {
        var total = 0;
        for (var r = 0; r < rounds; r++) {
            for (var i = 0; i < tasks.length; i++) {
                var task = tasks[i];
                if (task.state != 3)
                    total += runTask(task, task.priority + (r & 7));
                else
                    task.state = 0;
            }
        }
        return total;
    }
    function driver() {
        var tasks = [];
        for (var i = 0; i < 6; i++) tasks[i] = new Task(i, (i * 37) % 11 + 1);
        return schedule(tasks, 900);
    }
    print(driver());
    """,
)

# Earley–Boyer flavour: cons pairs built by a constructor invoked with
# many different argument pairs (the paper's most-called V8 function).
EARLEY_BOYER = Benchmark(
    "earley-boyer",
    """
    function sc_Pair(car, cdr) {
        this.car = car;
        this.cdr = cdr;
    }
    function cons(a, b) { return new sc_Pair(a, b); }
    function listLength(l) {
        var n = 0;
        while (l !== null) { n++; l = l.cdr; }
        return n;
    }
    function sumList(l) {
        var s = 0;
        while (l !== null) { s += l.car; l = l.cdr; }
        return s;
    }
    function reverseList(l) {
        var out = null;
        while (l !== null) { out = cons(l.car, out); l = l.cdr; }
        return out;
    }
    function driver() {
        var total = 0;
        for (var round = 0; round < 60; round++) {
            var l = null;
            for (var i = 0; i < 40; i++) l = cons(i * round, l);
            l = reverseList(l);
            total += sumList(l) + listLength(l);
        }
        return total;
    }
    print(driver());
    """,
)

# DeltaBlue flavour: objects with small polymorphic-ish methods.
DELTABLUE = Benchmark(
    "deltablue",
    """
    function Variable(value) {
        this.value = value;
        this.stay = true;
    }
    function Constraint(a, b, scale, offset) {
        this.a = a;
        this.b = b;
        this.scale = scale;
        this.offset = offset;
    }
    function execute(c) {
        c.b.value = c.a.value * c.scale + c.offset;
        return c.b.value;
    }
    function propagate(chain, rounds) {
        var total = 0;
        for (var r = 0; r < rounds; r++) {
            chain[0].a.value = r & 255;
            for (var i = 0; i < chain.length; i++)
                total += execute(chain[i]) & 0xffff;
        }
        return total;
    }
    function driver() {
        var vars = [];
        for (var i = 0; i < 9; i++) vars[i] = new Variable(i);
        var chain = [];
        for (var i = 0; i < 8; i++)
            chain[i] = new Constraint(vars[i], vars[i + 1], 2, 1);
        return propagate(chain, 700);
    }
    print(driver());
    """,
)

# Splay flavour: binary search tree of objects, insert + lookup.
SPLAY = Benchmark(
    "splay",
    """
    function Node(key) {
        this.key = key;
        this.left = null;
        this.right = null;
    }
    function insert(root, key) {
        if (root === null) return new Node(key);
        var node = root;
        while (true) {
            if (key < node.key) {
                if (node.left === null) { node.left = new Node(key); break; }
                node = node.left;
            } else if (key > node.key) {
                if (node.right === null) { node.right = new Node(key); break; }
                node = node.right;
            } else break;
        }
        return root;
    }
    function contains(root, key) {
        var node = root;
        while (node !== null) {
            if (key == node.key) return true;
            node = key < node.key ? node.left : node.right;
        }
        return false;
    }
    function driver() {
        var root = null;
        var seed = 49734321;
        for (var i = 0; i < 600; i++) {
            seed = (seed * 1103515245 + 12345) & 0x3fffffff;
            root = insert(root, seed % 4096);
        }
        var hits = 0;
        seed = 49734321;
        for (var i = 0; i < 1200; i++) {
            seed = (seed * 1103515245 + 12345) & 0x3fffffff;
            if (contains(root, seed % 4096)) hits++;
        }
        return hits;
    }
    print(driver());
    """,
)

# Crypto flavour: bignum-ish limb arithmetic over arrays.
V8_CRYPTO = Benchmark(
    "crypto",
    """
    function am3(a, b, c, n) {
        var carry = 0;
        for (var i = 0; i < n; i++) {
            var v = a[i] * b + c[i] + carry;
            carry = (v / 16384) | 0;
            c[i] = v & 16383;
        }
        return carry;
    }
    function mulmod(a, c, n, rounds) {
        var total = 0;
        for (var r = 0; r < rounds; r++) {
            total = (total + am3(a, (r & 127) + 1, c, n)) & 0xffff;
        }
        return total;
    }
    function driver() {
        var n = 24;
        var a = [], c = [];
        for (var i = 0; i < n; i++) { a[i] = (i * 7919) & 16383; c[i] = 0; }
        return mulmod(a, c, n, 500);
    }
    print(driver());
    """,
)

# RegExp stands in as string scanning (the subset has no regexes).
V8_REGEXP = Benchmark(
    "regexp",
    """
    function countMatches(text, needle) {
        var count = 0;
        var at = text.indexOf(needle, 0);
        while (at >= 0) {
            count++;
            at = text.indexOf(needle, at + 1);
        }
        return count;
    }
    function driver() {
        var text = "";
        for (var i = 0; i < 70; i++)
            text += i % 3 == 0 ? "foobar " : (i % 3 == 1 ? "bazfoo " : "quux ");
        var total = 0;
        for (var round = 0; round < 120; round++) {
            total += countMatches(text, "foo");
            total += countMatches(text, "ba");
        }
        return total;
    }
    print(driver());
    """,
)

# RayTrace flavour: vector math over a constant scene; the tracing
# kernels are always called with the same scene/camera objects.
RAYTRACE = Benchmark(
    "raytrace",
    """
    function Vector(x, y, z) {
        this.x = x;
        this.y = y;
        this.z = z;
    }
    function dot(a, b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
    function traceRow(spheres, count, y, width) {
        var hits = 0;
        for (var x = 0; x < width; x++) {
            var dx = (x - width / 2) / width;
            var dy = (y - 12) / 24;
            for (var s = 0; s < count; s++) {
                var sphere = spheres[s];
                var ox = sphere.cx - dx * 10;
                var oy = sphere.cy - dy * 10;
                var b = ox * dx + oy * dy;
                var c = ox * ox + oy * oy - sphere.r * sphere.r;
                if (b * b - c > 0) hits++;
            }
        }
        return hits;
    }
    function render(spheres, count, width, height) {
        var total = 0;
        for (var y = 0; y < height; y++)
            total += traceRow(spheres, count, y, width);
        return total;
    }
    function driver() {
        var spheres = [];
        for (var i = 0; i < 5; i++) {
            spheres[i] = {cx: i * 2 - 4, cy: (i % 3) - 1, r: 1.5 + (i % 2)};
        }
        var total = 0;
        for (var frame = 0; frame < 6; frame++)
            total += render(spheres, 5, 40, 18);
        return total;
    }
    print(driver());
    """,
)

V8 = [
    RICHARDS,
    EARLEY_BOYER,
    DELTABLUE,
    RAYTRACE,
    SPLAY,
    V8_CRYPTO,
    V8_REGEXP,
]
