"""The synthetic web corpus (Alexa top-100 stand-in).

The paper instruments Firefox over the 100 most-visited websites and
measures how often each JavaScript function is called (Figure 1), with
how many distinct argument sets (Figure 2), and with which parameter
types (Figure 4).  We cannot crawl 2012's web, so this module generates
a *seeded synthetic trace* whose distributional parameters are taken
directly from the paper's reported numbers:

* 48.88% of functions called exactly once, 11.12% twice, a Zipf-like
  tail reaching ~2,000 calls for the hottest CDN helpers;
* 59.91% of functions always called with one argument set, 8.71% with
  two, 4.60% with three, and a heavier tail for the most varied;
* web parameter types dominated by objects (35.57%) and strings
  (32.95%), with only 6.36% integers — the inverse of the benchmarks.

It also synthesizes three runnable "website" guest programs (google/
facebook/twitter stand-ins for the Richards-et-al. replay benchmarks):
many small functions, most argument-monomorphic, a controlled fraction
polymorphic so the §4 web code-size/recompilation numbers have teeth.
"""

import random

#: Figure 4 (WEB column): probability of each parameter type.
WEB_PARAM_TYPE_WEIGHTS = [
    ("object", 0.3557),
    ("string", 0.3295),
    ("function", 0.0950),
    ("int", 0.0636),
    ("undefined", 0.0500),
    ("bool", 0.0400),
    ("array", 0.0362),
    ("double", 0.0200),
    ("null", 0.0100),
]

#: Distribution of call counts: (count, probability); the tail is
#: sampled from a Zipf-ish law.  Head probabilities from Figure 1.
CALL_COUNT_HEAD = [
    (1, 0.4888),
    (2, 0.1112),
    (3, 0.0650),
    (4, 0.0450),
    (5, 0.0330),
    (6, 0.0260),
    (7, 0.0210),
    (8, 0.0170),
    (9, 0.0140),
    (10, 0.0120),
]

#: Distribution of distinct-argument-set counts *conditioned on the
#: function being called more than once*.  Derivation: Figure 2 says
#: 59.91% of all functions see a single argument set, and Figure 1
#: says 48.88% are called once (hence trivially single-set); the
#: remaining 11.03% out of the 51.12% multi-call population gives
#: P(single | calls >= 2) = 0.2157, and the Figure 2 head (8.71%,
#: 4.60%, 3.30%, 2.50%) rescales by 1/0.5112.
ARGSET_HEAD_MULTICALL = [
    (1, 0.2157),
    (2, 0.1704),
    (3, 0.0900),
    (4, 0.0646),
    (5, 0.0489),
]


class WebCorpusConfig(object):
    """Parameters for one synthetic corpus."""

    def __init__(self, num_functions=2300, seed=20130223, max_calls=2000):
        self.num_functions = num_functions
        self.seed = seed
        self.max_calls = max_calls


def _sample_head_tail(rng, head, tail_max, tail_exponent=1.8):
    """Sample from an explicit head plus a Zipf-ish tail."""
    roll = rng.random()
    acc = 0.0
    for value, probability in head:
        acc += probability
        if roll < acc:
            return value
    # Tail: inverse-power sample between the head's end and tail_max.
    low = head[-1][0] + 1
    u = rng.random()
    span = (tail_max / float(low)) ** (1.0 - tail_exponent) - 1.0
    value = low * (1.0 + u * span) ** (1.0 / (1.0 - tail_exponent))
    return max(low, min(tail_max, int(value)))


def _sample_type(rng):
    roll = rng.random()
    acc = 0.0
    for tag, weight in WEB_PARAM_TYPE_WEIGHTS:
        acc += weight
        if roll < acc:
            return tag
    return "object"


def generate_web_trace(profiler, config=None):
    """Feed a synthetic browsing session into a CallProfiler.

    Returns the number of simulated calls.  The profiler afterwards
    regenerates Figures 1, 2 and 4.
    """
    config = config if config is not None else WebCorpusConfig()
    rng = random.Random(config.seed)
    total_calls = 0
    for function_index in range(config.num_functions):
        call_count = _sample_head_tail(rng, CALL_COUNT_HEAD, config.max_calls)
        if call_count == 1:
            argset_count = 1
        else:
            argset_count = _sample_head_tail(
                rng, ARGSET_HEAD_MULTICALL, max(2, min(call_count, config.max_calls // 2))
            )
            argset_count = min(argset_count, call_count)
        arity = rng.choice([0, 1, 1, 2, 2, 2, 3, 3, 4])
        arg_tags = tuple(_sample_type(rng) for _ in range(arity))
        function_key = "webfn_%d" % function_index
        for call_index in range(call_count):
            # Spread distinct argument sets over the calls; set 0 is
            # the most common (temporal locality of repeated calls).
            if argset_count == 1:
                set_id = 0
            else:
                set_id = call_index % argset_count
            profiler.record_synthetic_call(
                function_key,
                ("set", function_index, set_id),
                arg_tags,
                name="site%02d.fn%d" % (function_index % 100, function_index),
            )
            total_calls += 1
    return total_calls


# ---------------------------------------------------------------------------
# Synthetic "website" programs (google/facebook/twitter stand-ins)
# ---------------------------------------------------------------------------

#: (name, #functions, fraction of hot functions that are argument-
#: polymorphic).  The polymorphic fraction is tuned so specialization's
#: recompilation overhead lands near the paper's +5.0%/+4.9%/+23.1%.
WEBSITES = [
    ("www.google.com", 40, 0.10),
    ("www.facebook.com", 48, 0.10),
    ("www.twitter.com", 36, 0.30),
]


def generate_website_program(name, num_functions=40, polymorphic_fraction=0.1, seed=None):
    """Build one runnable guest program imitating a website's JS.

    The program defines ``num_functions`` small helpers (string
    formatting, DOM-ish object munging, counters) and a driver that
    calls most of them once or twice, a hot subset many times with the
    same arguments, and a ``polymorphic_fraction`` of the hot subset
    with varying arguments (forcing specialized binaries to be
    discarded, as on real pages).
    """
    rng = random.Random(seed if seed is not None else hash(name) & 0xFFFFFF)
    parts = []
    hot_calls = []
    cold_calls = []
    bodies = [
        "function %(fn)s(o, k) { return o.tag + k; }",
        "function %(fn)s(s, n) { var out = ''; for (var i = 0; i < n; i++) out += s.charAt(i %% s.length); return out.length; }",
        "function %(fn)s(a, b) { return a === b ? 1 : 0; }",
        "function %(fn)s(o) { o.count = (o.count + 1) & 1023; return o.count; }",
        "function %(fn)s(x) { return typeof x == 'string' ? x.length : 0; }",
        "function %(fn)s(a, i) { return i < a.length ? a[i] : 0; }",
        "function %(fn)s(s) { var h = 0; for (var i = 0; i < s.length; i++) h = (h * 31 + s.charCodeAt(i)) & 0xffff; return h; }",
    ]
    parts.append("var state = {tag: 'node', count: 0};")
    parts.append("var items = ['alpha', 'beta', 'gamma', 'delta'];")
    parts.append("var nums = [1, 2, 3, 4, 5, 6, 7, 8];")
    parts.append("var total = 0;")
    arg_choices = {
        0: "(state, 'x')",
        1: "('padding', 12)",
        2: "('a', 'a')",
        3: "(state)",
        4: "('hello world')",
        5: "(nums, 3)",
        6: "('session-key')",
    }
    varying_choices = {
        0: "(state, 'x' + (i & 3))",
        1: "('padding', i % 7)",
        2: "('a', i % 2 ? 'a' : 'b')",
        3: "(state)",
        4: "(i % 2 ? 'hello' : 99)",
        5: "(nums, i % 10)",
        6: "('k' + (i & 7))",
    }
    for index in range(num_functions):
        body_index = rng.randrange(len(bodies))
        fn = "fn_%s_%d" % (name.replace(".", "_").replace("-", "_"), index)
        parts.append(bodies[body_index] % {"fn": fn})
        roll = rng.random()
        if roll < 0.45:
            cold_calls.append("total += %s%s | 0;" % (fn, arg_choices[body_index]))
        elif roll < 0.60:
            cold_calls.append("total += %s%s | 0;" % (fn, arg_choices[body_index]))
            cold_calls.append("total += %s%s | 0;" % (fn, arg_choices[body_index]))
        else:
            hot = rng.random() < polymorphic_fraction
            calls = varying_choices if hot else arg_choices
            hot_calls.append(
                "for (var i = 0; i < 60; i++) total += %s%s | 0;"
                % (fn, calls[body_index])
            )
    parts.extend(cold_calls)
    parts.extend(hot_calls)
    parts.append("print(total);")
    return "\n".join(parts)
