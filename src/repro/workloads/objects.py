"""Object-heavy benchmark suite: the shape/IC evaluation substrate.

The paper's web study (Figure 4) found *objects* to be the dominant
parameter type on real websites (35.57%), yet the numeric suites the
evaluation reuses barely touch property access.  This suite closes
that gap: three kernels whose hot loops are property reads and writes,
graded by receiver polymorphism so each exercises a different state of
the shape inline caches (docs/SHAPES.md):

* ``particle-field`` — **monomorphic**: every receiver shares one
  hidden class, so every compiled property site is a single-shape
  ``guardshape`` plus a direct ``loadprop``/``storeprop``;
* ``poly-records`` — **polymorphic**: the same accessors are fed
  records built with the same properties in different insertion
  orders (distinct hidden classes), so sites hold 2–3 shapes;
* ``shape-churn`` — **megamorphic + transitions**: receivers gain and
  lose properties mid-run, driving sites past the four-entry IC
  capacity and forcing shape-guard bailouts on the compiled code.
"""

from repro.workloads.benchmark import Benchmark

PARTICLE_FIELD = Benchmark(
    "particle-field",
    """
    function makeParticle(seed) {
        return {x: seed & 255, y: (seed * 7) & 255, vx: 1, vy: 2};
    }
    function step(p) {
        p.x = (p.x + p.vx) & 1023;
        p.y = (p.y + p.vy) & 1023;
        return p.x + p.y;
    }
    function driver() {
        var particles = [];
        for (var i = 0; i < 24; i++) particles[i] = makeParticle(i * 2654435761);
        var checksum = 0;
        for (var round = 0; round < 90; round++) {
            for (var i = 0; i < particles.length; i++)
                checksum = (checksum + step(particles[i])) & 0xffff;
        }
        return checksum;
    }
    print(driver());
    """,
)

POLY_RECORDS = Benchmark(
    "poly-records",
    """
    function total(r) {
        return r.price * r.count + r.tax;
    }
    function discount(r) {
        r.price = r.price - (r.price >> 3);
        return r.price;
    }
    function driver() {
        var records = [];
        for (var i = 0; i < 30; i++) {
            var kind = i % 3;
            if (kind == 0) records[i] = {price: 100 + i, count: 2, tax: 7};
            else if (kind == 1) records[i] = {count: 3, price: 50 + i, tax: 5};
            else records[i] = {tax: 9, count: 1, price: 200 + i};
        }
        var sum = 0;
        for (var round = 0; round < 70; round++) {
            for (var i = 0; i < records.length; i++) {
                sum = (sum + total(records[i])) & 0xfffff;
                if (round % 10 == 0) sum = (sum + discount(records[i])) & 0xfffff;
            }
        }
        return sum;
    }
    print(driver());
    """,
)

SHAPE_CHURN = Benchmark(
    "shape-churn",
    """
    function weigh(o) {
        return o.a + o.b;
    }
    function decorate(o, round) {
        if (round == 1) o.c = 1;
        else if (round == 2) o.d = 2;
        else if (round == 3) o.e = 3;
        else if (round == 4) { delete o.c; o.f = 4; }
        else if (round == 5) o.g = 5;
        return o;
    }
    function driver() {
        var subjects = [];
        for (var i = 0; i < 12; i++) subjects[i] = {a: i, b: i * 3};
        var sum = 0;
        for (var round = 0; round < 8; round++) {
            for (var i = 0; i < subjects.length; i++) {
                decorate(subjects[i], (round + i) % 6);
                for (var k = 0; k < 14; k++)
                    sum = (sum + weigh(subjects[i])) & 0xfffff;
            }
        }
        return sum;
    }
    print(driver());
    """,
)

#: The suite, in canonical order.
OBJECTS = [PARTICLE_FIELD, POLY_RECORDS, SHAPE_CHURN]
