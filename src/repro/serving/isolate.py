"""Tenant isolates: one engine, shape tree and metrics per tenant.

The isolation contract (docs/SERVING.md): every piece of *speculation
state* — the shape transition tree, inline caches, type feedback, spec
caches, deoptless tables, compile queue — belongs to exactly one
tenant.  Only immutable compiled artifacts (content-addressed disk
frames) may be shared across tenants.  The one piece of speculation
state the VM keeps in a module global is the shape tree
(``repro.jsvm.objects.SHAPE_TREE``), so the isolate swaps its private
tree in around every request via
:func:`repro.jsvm.objects.install_shape_tree` and verifies on the way
out that nothing replaced it mid-request; a foreign tree observed
there is counted as an isolation violation (it means another tenant's
shapes could have leaked into this tenant's ICs).

Because each tenant's tree starts from a fresh root, shape ids are
deterministic *per tenant* — bit-identical to running that tenant's
request stream alone in a dedicated engine, which is exactly what the
cross-tenant bleed test asserts.

The isolate keeps its engine (and the compiled toplevel CodeObjects of
every program it has served) alive across requests, so feedback, ICs
and spec caches warm up over a tenant's traffic — the serving-tier
payoff of the paper's premise that production traffic re-invokes the
same functions with recurring argument patterns.
"""

import os

from repro.engine.config import FULL_SPEC
from repro.engine.runtime_engine import Engine
from repro.jsvm import objects
from repro.jsvm.bytecompiler import compile_source
from repro.jsvm.objects import ShapeTree, install_shape_tree
from repro.serving.admission import AdmissionLane
from repro.telemetry.metrics import MetricsRegistry

from repro.serving.shards import ShardedDiskCache, TenantCacheView


class TenantIsolate(object):
    """One tenant's engine, shape tree, programs, lane and metrics."""

    def __init__(
        self,
        tenant,
        cache=None,
        engine_kwargs=None,
        dispatch_delay=None,
        queue_capacity=None,
    ):
        self.tenant = tenant
        self.shape_tree = ShapeTree()
        self.cache = cache
        self.metrics = MetricsRegistry()
        kwargs = dict(engine_kwargs or {})
        kwargs.setdefault("config", FULL_SPEC)
        self.engine = Engine(metrics=self.metrics, code_cache=cache, **kwargs)
        lane_kwargs = {}
        if dispatch_delay is not None:
            lane_kwargs["dispatch_delay"] = dispatch_delay
        if queue_capacity is not None:
            lane_kwargs["capacity"] = queue_capacity
        self.lane = AdmissionLane(**lane_kwargs)
        #: program name -> compiled toplevel CodeObject; reused across
        #: requests so this tenant's feedback and spec caches warm up.
        self.programs = {}
        self.requests = 0
        self.isolation_violations = 0
        self.metrics.set_gauge("repro_serving_tenants", 1)

    def execute(self, program, source):
        """Run one request; returns ``(output_lines, service_cycles)``.

        Swaps this tenant's shape tree in for the duration, measures
        service time as the engine's deterministic cycle-clock delta,
        and returns only the lines printed by *this* request (the
        runtime's ``printed`` list is truncated back so long-lived
        isolates stay bounded).
        """
        previous = install_shape_tree(self.shape_tree)
        try:
            code = self.programs.get(program)
            if code is None:
                code = compile_source(source)
                self.programs[program] = code
            runtime = self.engine.interpreter.runtime
            printed_before = len(runtime.printed)
            cycles_before = self.engine.trace_clock()
            self.engine.run_code(code)
            service_cycles = self.engine.trace_clock() - cycles_before
            output = list(runtime.printed[printed_before:])
            del runtime.printed[printed_before:]
        finally:
            if objects.SHAPE_TREE is not self.shape_tree:
                # Someone swapped a foreign tree in mid-request: this
                # tenant's ICs may now hold another tenant's shape ids.
                self.isolation_violations += 1
                self.metrics.inc("repro_serving_isolation_violations_total")
            install_shape_tree(previous)
        self.requests += 1
        return output, service_cycles

    def serve(self, program, source, arrival=None, batch=None):
        """Admit and execute one request; returns a response dict.

        ``arrival`` is a cycle on this tenant's admission clock; None
        (serve mode) means "now", i.e. the current lane cycle.  The
        response carries status, output, and the deterministic
        latency/wait/service cycle counts; a rejected request executes
        nothing.
        """
        if arrival is None:
            arrival = self.lane.lane_cycle
        if batch is None:
            # Serve mode ships no batch ids: every request is its own
            # batch (pays the dispatch delay), deterministically keyed
            # off the lane's admission count.
            batch = ("auto", self.lane.admitted)
        new_batch = batch != self.lane.last_batch
        start = self.lane.admit(arrival, batch=batch)
        registry = self.metrics
        if start is None:
            registry.inc("repro_serving_rejected_total")
            self._sample_lane()
            return {
                "tenant": self.tenant,
                "program": program,
                "status": "rejected",
                "output": [],
                "arrival": arrival,
            }
        if new_batch:
            registry.inc("repro_serving_batches_total")
        output, service_cycles = self.execute(program, source)
        done = self.lane.complete(start, service_cycles)
        registry.inc("repro_serving_requests_total")
        registry.observe("repro_serving_request_latency_cycles", done - arrival)
        registry.observe("repro_serving_queue_wait_cycles", start - arrival)
        self._sample_lane()
        return {
            "tenant": self.tenant,
            "program": program,
            "status": "ok",
            "output": output,
            "arrival": arrival,
            "dispatch": start,
            "done": done,
            "latency_cycles": done - arrival,
            "wait_cycles": start - arrival,
            "service_cycles": service_cycles,
            # Cumulative per-tenant violation count, so a live server
            # can report isolation health without waiting for the
            # shutdown summary.
            "violations": self.isolation_violations,
        }

    def _sample_lane(self):
        self.metrics.set_gauge(
            "repro_serving_queue_depth_high_water", self.lane.depth_high_water
        )

    def metrics_payload(self):
        """This tenant's finalized metrics payload (full schema keys)."""
        return self.metrics.as_dict()


class TenantHost(object):
    """A set of tenant isolates over one (optional) shared artifact store.

    ``cache_mode``:

    - ``"off"``: no disk cache.
    - ``"tenant"``: each isolate gets a private
      :class:`ShardedDiskCache` under ``<root>/tenant-<id>``; fully
      partition-invariant (used by deterministic fleet runs).
    - ``"shared"``: one :class:`ShardedDiskCache` at ``root``, fronted
      by a per-tenant :class:`TenantCacheView` so counters stay
      per-tenant while artifacts are shared fleet-wide.
    """

    def __init__(
        self,
        cache_mode="off",
        cache_root=None,
        shards=4,
        engine_kwargs=None,
        dispatch_delay=None,
        queue_capacity=None,
        catalog=None,
    ):
        if cache_mode not in ("off", "tenant", "shared"):
            raise ValueError("unknown cache_mode %r" % (cache_mode,))
        if cache_mode != "off" and cache_root is None:
            raise ValueError("cache_mode %r needs a cache_root" % (cache_mode,))
        self.cache_mode = cache_mode
        self.cache_root = cache_root
        self.num_shards = shards
        self.engine_kwargs = dict(engine_kwargs or {})
        self.dispatch_delay = dispatch_delay
        self.queue_capacity = queue_capacity
        #: program name -> guest source; requests may name a catalog
        #: program instead of shipping source.
        self.catalog = dict(catalog or {})
        self.store = None
        if cache_mode == "shared":
            self.store = ShardedDiskCache(root=cache_root, shards=shards)
        self.isolates = {}

    def isolate(self, tenant):
        isolate = self.isolates.get(tenant)
        if isolate is None:
            if self.cache_mode == "shared":
                cache = TenantCacheView(self.store)
            elif self.cache_mode == "tenant":
                cache = ShardedDiskCache(
                    root=os.path.join(self.cache_root, "tenant-%s" % tenant),
                    shards=self.num_shards,
                )
            else:
                cache = None
            isolate = TenantIsolate(
                tenant,
                cache=cache,
                engine_kwargs=self.engine_kwargs,
                dispatch_delay=self.dispatch_delay,
                queue_capacity=self.queue_capacity,
            )
            self.isolates[tenant] = isolate
        return isolate

    def execute_request(self, request):
        """Serve one request dict; returns the response dict.

        Request fields: ``tenant`` (required), ``program`` (catalog
        name) or ``source`` (inline guest code; cached under
        ``program``'s name if both are given), optional ``arrival``
        and ``batch`` (virtual-clock mode), optional ``seq`` (echoed).
        """
        tenant = request["tenant"]
        program = request.get("program", "<inline>")
        source = request.get("source")
        if source is None:
            source = self.catalog.get(program)
        if source is None:
            return {
                "tenant": tenant,
                "program": program,
                "status": "error",
                "error": "unknown program %r" % (program,),
                "output": [],
            }
        isolate = self.isolate(tenant)
        response = isolate.serve(
            program,
            source,
            arrival=request.get("arrival"),
            batch=request.get("batch"),
        )
        if "seq" in request:
            response["seq"] = request["seq"]
        return response

    # -- aggregation ---------------------------------------------------------

    @property
    def isolation_violations(self):
        return sum(i.isolation_violations for i in self.isolates.values())

    def metrics_payloads(self):
        """Per-tenant finalized payloads, in sorted tenant order."""
        payloads = []
        for tenant in sorted(self.isolates):
            isolate = self.isolates[tenant]
            isolate._sample_lane()
            payloads.append(isolate.metrics_payload())
        return payloads

    def store_stats(self):
        if self.store is not None:
            return self.store.stats()
        if self.cache_mode == "tenant":
            stats = [
                i.cache.stats() for t, i in sorted(self.isolates.items())
            ]
            return {
                "shards": self.num_shards,
                "entries": sum(s["entries"] for s in stats),
                "bytes": sum(s["bytes"] for s in stats),
                "hits": sum(s["hits"] for s in stats),
                "misses": sum(s["misses"] for s in stats),
                "stores": sum(s["stores"] for s in stats),
                "evictions": sum(s["evictions"] for s in stats),
            }
        return None
