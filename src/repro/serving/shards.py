"""Sharded shared disk code cache for the serving tier.

A :class:`ShardedDiskCache` spreads the content-key space over N
independent :class:`~repro.cache.disk.DiskCodeCache` shards (one
subdirectory each), so per-shard LRU eviction and maintenance stay
O(shard) instead of O(store) and concurrent workers mostly touch
disjoint directories.  Routing is pure key arithmetic — the first
eight hex digits of the SHA-256 content key modulo the shard count —
so every process sharing the root agrees on placement with no
coordination.

Tenant accounting is layered on top: a :class:`TenantCacheView` gives
each tenant isolate its own hit/miss/store counters while delegating
actual storage to the shared shards.  Only immutable compiled
artifacts cross the view boundary — speculation state (shapes, ICs,
spec caches) never does; that is the tenant-isolation contract
(docs/SERVING.md).
"""

import os

from repro.cache.disk import DiskCodeCache, content_key, default_cache_root
from repro.cache.serialize import Uncacheable


class ShardedDiskCache(object):
    """N DiskCodeCache shards behind the single-cache interface.

    Drop-in for the engine's ``code_cache`` slot: ``key_for``, ``load``
    and ``store`` have the same signatures, and the counter attributes
    the engine mirrors into its stats (``hits``/``misses``/``stores``/
    ``uncacheable``/``corrupt``/``evictions``) are live sums over the
    shards.
    """

    def __init__(self, root=None, shards=4):
        if shards < 1:
            raise ValueError("shards must be >= 1, got %r" % (shards,))
        self.root = root if root is not None else default_cache_root()
        self.shards = tuple(
            DiskCodeCache(root=os.path.join(self.root, "shard-%02d" % index))
            for index in range(shards)
        )
        #: Probes refused at the keying stage (identity-based values);
        #: shard-independent, so counted here rather than on a shard.
        self.uncacheable = 0

    # -- routing -------------------------------------------------------------

    def shard_index(self, key):
        """Deterministic shard index for one content key."""
        return int(key[:8], 16) % len(self.shards)

    def shard_for(self, key):
        return self.shards[self.shard_index(key)]

    # -- single-cache interface ----------------------------------------------

    def key_for(self, code, config, **kwargs):
        try:
            return content_key(code, config, **kwargs)
        except Uncacheable:
            self.uncacheable += 1
            return None

    def load(self, key, code):
        return self.shard_for(key).load(key, code)

    def store(self, key, result, executor=None):
        return self.shard_for(key).store(key, result, executor=executor)

    # -- aggregated counters -------------------------------------------------

    @property
    def hits(self):
        return sum(shard.hits for shard in self.shards)

    @property
    def misses(self):
        return sum(shard.misses for shard in self.shards)

    @property
    def stores(self):
        return sum(shard.stores for shard in self.shards)

    @property
    def corrupt(self):
        return sum(shard.corrupt for shard in self.shards)

    @property
    def evictions(self):
        return sum(shard.evictions for shard in self.shards)

    # -- maintenance ---------------------------------------------------------

    def evict(self, max_bytes=None, max_entries=None):
        """Per-shard LRU prune; budgets are divided evenly over shards.

        Dividing (rather than pruning globally) keeps eviction local
        and deterministic per shard.  Budgets round *down* so the
        global bound always holds (``sum(bound // n) * n <= bound``);
        a tight budget therefore over-prunes rather than leaving the
        store over its limit, and ``max_entries=0`` clears every shard
        exactly like the single-cache ``evict``.
        """
        count = len(self.shards)
        shard_bytes = None if max_bytes is None else max_bytes // count
        shard_entries = None if max_entries is None else max_entries // count
        removed = 0
        for shard in self.shards:
            removed += shard.evict(max_bytes=shard_bytes, max_entries=shard_entries)
        return removed

    def clear(self):
        removed = 0
        for shard in self.shards:
            removed += shard.clear()
        return removed

    def stats(self):
        """Aggregate stats dict plus a ``shards`` list of per-shard stats."""
        per_shard = [shard.stats() for shard in self.shards]
        total = {
            "root": self.root,
            "shards": len(self.shards),
            "entries": sum(s["entries"] for s in per_shard),
            "bytes": sum(s["bytes"] for s in per_shard),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "per_shard": per_shard,
        }
        probes = total["hits"] + total["misses"]
        total["hit_rate"] = (total["hits"] / probes) if probes else 0.0
        return total


class TenantCacheView(object):
    """Per-tenant counter façade over a shared :class:`ShardedDiskCache`.

    The engine reads ``cache.hits`` (etc.) when folding stats and
    metrics, so tenants sharing one store must not share counters —
    otherwise every isolate would mirror the *global* numbers and a
    fleet merge would multiply them by the tenant count.  The view
    keeps private counters and delegates storage; counter deltas are
    attributed by snapshotting the target shard's counters around each
    delegated call (isolates execute requests serially within a
    worker, so the deltas are exact).
    """

    def __init__(self, store):
        #: The shared ShardedDiskCache artifacts are delegated to
        #: (named ``backing`` so it cannot shadow the ``store`` method).
        self.backing = store
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.uncacheable = 0
        self.corrupt = 0
        #: Always 0: eviction is store-level maintenance, not a
        #: per-tenant event (the host reports store evictions).
        self.evictions = 0

    def key_for(self, code, config, **kwargs):
        try:
            return content_key(code, config, **kwargs)
        except Uncacheable:
            self.uncacheable += 1
            return None

    def load(self, key, code):
        shard = self.backing.shard_for(key)
        corrupt_before = shard.corrupt
        result = shard.load(key, code)
        if result is None:
            self.misses += 1
            self.corrupt += shard.corrupt - corrupt_before
        else:
            self.hits += 1
        return result

    def store(self, key, result, executor=None):
        shard = self.backing.shard_for(key)
        uncacheable_before = shard.uncacheable
        stored = shard.store(key, result, executor=executor)
        if stored:
            self.stores += 1
        else:
            self.uncacheable += shard.uncacheable - uncacheable_before
        return stored
