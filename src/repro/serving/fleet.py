"""Synthetic fleet traffic: power-law tenants over a program catalog.

The paper's Fig. 1–4 measurements rest on production call streams
being heavily repetitive — a few hot pages invoked over and over with
recurring argument patterns.  This driver scales the web-corpus
generator (:mod:`repro.workloads.web`) to a *fleet*: ``tenants``
tenants whose activity follows a power law (rank weight ∝ 1/rank),
each request picking a catalog program by a steeper power law
(∝ 1/rank²), so a handful of tenant×program pairs dominate — exactly
the repeat-heavy profile where warm specialization and the shared
artifact store pay off.

Everything is driven by one seeded RNG over *integer* weight tables
(no float accumulation), so a schedule is a pure function of the
profile: same seed → byte-identical JSONL schedule, and — because
request latency is measured in deterministic model cycles on
per-tenant admission lanes — identical merged metrics payloads
whatever the worker-process count (``--jobs``).  Batch ids are
precomputed on the global schedule (a batch is a run of consecutive
same-tenant requests, capped at ``batch_limit``), so batch boundaries
cannot depend on how tenants are partitioned across workers.
"""

import json
import multiprocessing
import os
import random
import shutil
import tempfile

from repro.serving.isolate import TenantHost
from repro.telemetry.metrics import merge_payloads
from repro.workloads.web import generate_website_program

#: Seed stride separating the schedule RNG from the catalog RNGs.
FLEET_SEED_STRIDE = 7000081


class FleetProfile(object):
    """Parameters of one synthetic fleet-traffic run."""

    def __init__(
        self,
        tenants=8,
        requests=200,
        programs=6,
        seed=0,
        functions_per_program=10,
        mean_gap=2048,
        batch_limit=8,
    ):
        self.tenants = tenants
        self.requests = requests
        self.programs = programs
        self.seed = seed
        self.functions_per_program = functions_per_program
        self.mean_gap = mean_gap
        self.batch_limit = batch_limit

    def as_dict(self):
        return {
            "tenants": self.tenants,
            "requests": self.requests,
            "programs": self.programs,
            "seed": self.seed,
            "functions_per_program": self.functions_per_program,
            "mean_gap": self.mean_gap,
            "batch_limit": self.batch_limit,
        }


def _power_law_weights(count, quadratic=False):
    """Integer rank weights ∝ 1/rank (or 1/rank²), scaled to avoid
    float arithmetic entirely."""
    scale = 1_000_000
    if quadratic:
        return [scale // ((rank + 1) * (rank + 1)) for rank in range(count)]
    return [scale // (rank + 1) for rank in range(count)]


def _weighted_pick(rng, cumulative, total):
    """Draw a rank from an integer cumulative-weight table."""
    point = rng.randrange(total)
    for rank, bound in enumerate(cumulative):
        if point < bound:
            return rank
    return len(cumulative) - 1


def _cumulative(weights):
    bounds = []
    running = 0
    for weight in weights:
        running += weight
        bounds.append(running)
    return bounds, running


def build_catalog(profile):
    """Program name -> guest source for this profile (seed-derived)."""
    catalog = {}
    for index in range(profile.programs):
        name = "app-%02d" % index
        catalog[name] = generate_website_program(
            "fleet_%02d" % index,
            num_functions=profile.functions_per_program,
            # Every third program is heavily polymorphic, like the
            # corpus's worst pages; the rest are repeat-friendly.
            polymorphic_fraction=0.3 if index % 3 == 2 else 0.1,
            seed=profile.seed * 1000 + index,
        )
    return catalog


def generate_schedule(profile):
    """The fleet's request schedule as a list of plain dicts.

    Each record: ``seq`` (global order), ``tenant`` (``t<NN>``),
    ``program`` (catalog name), ``arrival`` (cycles on the tenant's
    admission clock), ``batch`` (global batch id).  Pure function of
    the profile.
    """
    rng = random.Random(profile.seed * FLEET_SEED_STRIDE + 1)
    tenant_bounds, tenant_total = _cumulative(_power_law_weights(profile.tenants))
    program_bounds, program_total = _cumulative(
        _power_law_weights(profile.programs, quadratic=True)
    )
    records = []
    arrival = 0
    batch_id = -1
    last_tenant = None
    run_length = 0
    for seq in range(profile.requests):
        arrival += rng.randrange(1, 2 * profile.mean_gap)
        tenant = _weighted_pick(rng, tenant_bounds, tenant_total)
        program = _weighted_pick(rng, program_bounds, program_total)
        if tenant == last_tenant and run_length < profile.batch_limit:
            run_length += 1
        else:
            batch_id += 1
            run_length = 1
            last_tenant = tenant
        records.append(
            {
                "seq": seq,
                "tenant": "t%02d" % tenant,
                "program": "app-%02d" % program,
                "arrival": arrival,
                "batch": batch_id,
            }
        )
    return records


def schedule_jsonl(records):
    """The schedule as canonical JSONL (sorted keys, one per line)."""
    return "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)


def percentile(values, fraction):
    """Exact order-statistic percentile (nearest-rank, no interpolation)."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = int(len(ordered) * fraction)
    if rank >= len(ordered):
        rank = len(ordered) - 1
    return ordered[rank]


def _run_partition(records, catalog, host_kwargs):
    """Serve one tenant partition's records in schedule order."""
    host = TenantHost(catalog=catalog, **host_kwargs)
    responses = [host.execute_request(record) for record in records]
    return {
        "responses": responses,
        "payloads": host.metrics_payloads(),
        "isolation_violations": host.isolation_violations,
        "store_stats": host.store_stats(),
    }


def _run_partition_job(job):
    """Picklable pool worker (module-level, bench-harness idiom)."""
    records, catalog, host_kwargs = job
    return _run_partition(records, catalog, host_kwargs)


def run_fleet(
    profile,
    jobs=1,
    cache_mode="tenant",
    cache_root=None,
    shards=4,
    engine_kwargs=None,
    dispatch_delay=None,
    queue_capacity=None,
):
    """Generate and serve one fleet schedule; returns the result dict.

    Tenants are partitioned across ``jobs`` worker processes by tenant
    index modulo ``jobs`` (whole tenants, schedule order preserved
    within a partition), so per-tenant lanes and caches see the exact
    same request stream at any job count; metrics are per-tenant and
    latency is virtual-clock cycles, so the merged payload is
    identical across job counts and across runs with the same seed.

    ``cache_root=None`` with a caching mode uses a private temporary
    root, deleted afterwards — every run starts cold.  Pass an
    existing root to measure warm-start behaviour (the wallclock
    harness's ``serving`` section does exactly that).
    """
    catalog = build_catalog(profile)
    schedule = generate_schedule(profile)
    temp_root = None
    if cache_mode != "off" and cache_root is None:
        temp_root = tempfile.mkdtemp(prefix="repro-fleet-cache-")
        cache_root = temp_root
    host_kwargs = {
        "cache_mode": cache_mode,
        "cache_root": cache_root,
        "shards": shards,
        "engine_kwargs": dict(engine_kwargs or {}),
        "dispatch_delay": dispatch_delay,
        "queue_capacity": queue_capacity,
    }
    try:
        jobs = max(1, min(jobs, profile.tenants))
        if jobs == 1:
            partition_results = [_run_partition(schedule, catalog, host_kwargs)]
        else:
            partitions = [[] for _ in range(jobs)]
            for record in schedule:
                tenant_index = int(record["tenant"][1:])
                partitions[tenant_index % jobs].append(record)
            work = [(part, catalog, host_kwargs) for part in partitions if part]
            with multiprocessing.Pool(processes=len(work)) as pool:
                partition_results = pool.map(_run_partition_job, work)
    finally:
        if temp_root is not None:
            shutil.rmtree(temp_root, ignore_errors=True)

    responses = sorted(
        (r for part in partition_results for r in part["responses"]),
        key=lambda r: r["seq"],
    )
    payloads = [p for part in partition_results for p in part["payloads"]]
    merged = merge_payloads(payloads)
    latencies = [
        r["latency_cycles"] for r in responses if r["status"] == "ok"
    ]
    counters = merged["counters"]
    disk_probes = (
        counters["repro_cache_disk_hits_total"]
        + counters["repro_cache_disk_misses_total"]
    )
    store_stats = [
        part["store_stats"] for part in partition_results if part["store_stats"]
    ]
    return {
        "profile": profile.as_dict(),
        "responses": responses,
        "metrics": merged,
        "requests": counters["repro_serving_requests_total"],
        "rejected": counters["repro_serving_rejected_total"],
        "batches": counters["repro_serving_batches_total"],
        "tenants": merged["gauges"]["repro_serving_tenants"],
        "isolation_violations": sum(
            part["isolation_violations"] for part in partition_results
        ),
        "p50_latency_cycles": percentile(latencies, 0.50),
        "p99_latency_cycles": percentile(latencies, 0.99),
        "total_latency_cycles": sum(latencies),
        "warm_hit_rate": (
            counters["repro_cache_disk_hits_total"] / disk_probes
            if disk_probes
            else 0.0
        ),
        "disk_hits": counters["repro_cache_disk_hits_total"],
        "disk_misses": counters["repro_cache_disk_misses_total"],
        "store_stats": store_stats,
    }
