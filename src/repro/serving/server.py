"""The asyncio front end: JSON-line requests over a local socket.

Protocol — one JSON object per line, one JSON reply per line:

- ``{"op": "run", "tenant": "t", "program": "name", "source": "..."}``
  (``op`` defaults to ``run``; ``source`` optional when ``program``
  names a catalog entry; an optional client ``id`` is echoed back)
- ``{"op": "ping"}`` — liveness probe.
- ``{"op": "stats"}`` — live counters: requests served/rejected,
  pending, tenants seen, isolation violations.
- ``{"op": "shutdown"}`` — graceful stop: the reply is sent, new runs
  are refused, in-flight requests drain, workers retire and report
  their per-tenant metrics payloads, and the merged payload is
  flushed to ``metrics_out`` as JSONL before the process exits.

The server binds a unix socket (``socket_path``) or a TCP port and
routes requests to a :class:`~repro.serving.pool.WorkerPool`; with
``workers=0`` the pool runs inline (no child processes), with N > 0
each tenant's isolate lives in exactly one worker process.  Request
latency in replies is deterministic model cycles from the tenant's
admission lane, never wall time.
"""

import asyncio
import json
import queue as queue_module
import threading

from repro.serving.pool import WorkerPool
from repro.telemetry.metrics import write_metrics_jsonl


class ServingServer(object):
    """Asyncio JSON-line front end over a :class:`WorkerPool`.

    Owns the socket, the request sequence numbers, and the graceful
    shutdown protocol; execution, isolation and admission live in the
    pool's tenant isolates (docs/SERVING.md).
    """

    def __init__(
        self,
        socket_path=None,
        host="127.0.0.1",
        port=0,
        workers=0,
        cache_mode="off",
        cache_root=None,
        shards=4,
        engine_kwargs=None,
        catalog=None,
        metrics_out=None,
    ):
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.metrics_out = metrics_out
        self.pool = WorkerPool(
            workers=workers,
            host_kwargs={
                "cache_mode": cache_mode,
                "cache_root": cache_root,
                "shards": shards,
                "engine_kwargs": dict(engine_kwargs or {}),
            },
            catalog=catalog,
        )
        self.address = None
        self.summary = None
        self._server = None
        self._loop = None
        self._next_seq = 0
        self._pending = {}
        self._draining = False
        self._closed = None
        self._reader_stop = threading.Event()
        self._reader = None
        self._served = 0
        self._rejected = 0
        self._errors = 0
        self._tenant_violations = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind the socket, start the pool and the response reader."""
        self._loop = asyncio.get_event_loop()
        self._closed = asyncio.Event()
        self.pool.start()
        self._reader = threading.Thread(target=self._read_responses, daemon=True)
        self._reader.start()
        if self.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path
            )
            self.address = ("unix", self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            bound = self._server.sockets[0].getsockname()
            self.address = (bound[0], bound[1])
        return self.address

    async def wait_closed(self):
        await self._closed.wait()

    async def run(self):
        await self.start()
        await self.wait_closed()

    # -- response plumbing ---------------------------------------------------

    def _read_responses(self):
        """Reader thread: drain the pool outbox into pending futures."""
        while not self._reader_stop.is_set():
            try:
                kind, _index, payload = self.pool.next_response(timeout=0.1)
            except queue_module.Empty:
                continue
            if kind != "response":
                continue
            status = payload.get("status")
            if status == "ok":
                self._served += 1
                tenant = payload.get("tenant")
                self._tenant_violations[tenant] = payload.get("violations", 0)
            elif status == "rejected":
                self._rejected += 1
            else:
                self._errors += 1
            future = self._pending.pop(payload.get("seq"), None)
            if future is not None:
                self._loop.call_soon_threadsafe(
                    lambda f=future, p=payload: f.done() or f.set_result(p)
                )

    # -- protocol ------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line.decode("utf-8"))
                except ValueError:
                    reply = {"status": "error", "error": "bad json"}
                else:
                    reply = await self._dispatch(request)
                writer.write((json.dumps(reply, sort_keys=True) + "\n").encode())
                await writer.drain()
                if reply.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(self, request):
        op = request.get("op", "run")
        if op == "ping":
            return {"status": "ok", "op": "ping"}
        if op == "stats":
            return self._stats()
        if op == "shutdown":
            self._draining = True
            self._loop.create_task(self._shutdown())
            return {"status": "ok", "op": "shutdown"}
        if op != "run":
            return {"status": "error", "error": "unknown op %r" % (op,)}
        if self._draining:
            return {"status": "rejected", "error": "shutting down"}
        if "tenant" not in request:
            return {"status": "error", "error": "missing tenant"}
        seq = self._next_seq
        self._next_seq += 1
        job = {
            "tenant": request["tenant"],
            "seq": seq,
        }
        if "program" in request:
            job["program"] = request["program"]
        if "source" in request:
            job["source"] = request["source"]
        future = self._loop.create_future()
        self._pending[seq] = future
        await self._loop.run_in_executor(None, self.pool.submit, job)
        response = await future
        response = dict(response)
        response.pop("seq", None)
        if "id" in request:
            response["id"] = request["id"]
        return response

    def _stats(self):
        return {
            "status": "ok",
            "op": "stats",
            "requests": self._served,
            "rejected": self._rejected,
            "errors": self._errors,
            "pending": len(self._pending),
            "tenants": len(self._tenant_violations),
            "isolation_violations": sum(self._tenant_violations.values()),
        }

    # -- graceful stop -------------------------------------------------------

    async def _shutdown(self):
        """Drain in-flight work, retire workers, flush metrics, close."""
        self._server.close()
        while self._pending:
            await asyncio.sleep(0.01)
        self._reader_stop.set()
        self._reader.join(timeout=5)
        self.summary = await self._loop.run_in_executor(None, self.pool.shutdown)
        if self.metrics_out:
            write_metrics_jsonl(self.summary["metrics"], self.metrics_out)
        await self._server.wait_closed()
        self._closed.set()
