"""Worker pool: tenant isolates spread over engine worker processes.

Each worker process hosts a :class:`~repro.serving.isolate.TenantHost`
with every isolate of the tenants routed to it; routing is a stable
hash of the tenant id, so a tenant's whole request stream — and all
of its speculation state — lives in exactly one process.  Workers
communicate over plain ``multiprocessing`` queues: requests in, tagged
``("response", ...)`` / ``("summary", ...)`` tuples out on one shared
outbox.

``workers=0`` runs a single in-process host behind the same submit /
next_response interface — used by tests and small deployments, and by
the asyncio server when process isolation isn't needed.

Shutdown is graceful by construction: the caller drains its in-flight
requests first, then :meth:`WorkerPool.shutdown` sends one sentinel
per worker, and each worker replies with a final summary (per-tenant
metrics payloads, isolation-violation count, store stats) after
finishing everything already in its inbox — per-worker queues are
FIFO, so no response can be lost behind a summary.
"""

import multiprocessing
import queue as queue_module
import zlib

from repro.serving.isolate import TenantHost
from repro.telemetry.metrics import merge_payloads


def tenant_worker(tenant, workers):
    """Stable tenant -> worker-index routing (crc32, not PYTHONHASHSEED)."""
    if workers <= 1:
        return 0
    return zlib.crc32(str(tenant).encode("utf-8")) % workers


def _worker_summary(host):
    return {
        "payloads": host.metrics_payloads(),
        "isolation_violations": host.isolation_violations,
        "store_stats": host.store_stats(),
        "tenants": sorted(host.isolates),
    }


def _worker_main(index, inbox, outbox, host_kwargs, catalog):
    host = TenantHost(catalog=catalog, **host_kwargs)
    while True:
        item = inbox.get()
        if item is None:
            break
        try:
            response = host.execute_request(item)
        except Exception as exc:  # keep the worker alive on bad input
            response = {
                "tenant": item.get("tenant"),
                "status": "error",
                "error": "%s: %s" % (type(exc).__name__, exc),
                "output": [],
            }
            if "seq" in item:
                response["seq"] = item["seq"]
        outbox.put(("response", index, response))
    outbox.put(("summary", index, _worker_summary(host)))


class WorkerPool(object):
    """Submit/next_response façade over N engine workers (or inline)."""

    def __init__(self, workers=0, host_kwargs=None, catalog=None):
        self.workers = workers
        self.host_kwargs = dict(host_kwargs or {})
        self.catalog = dict(catalog or {})
        self._inline_host = None
        self._inline_outbox = None
        self._processes = []
        self._inboxes = []
        self._outbox = None
        self._started = False

    def start(self):
        if self._started:
            return
        self._started = True
        if self.workers <= 0:
            self._inline_host = TenantHost(
                catalog=self.catalog, **self.host_kwargs
            )
            self._inline_outbox = queue_module.Queue()
            return
        context = multiprocessing.get_context()
        self._outbox = context.Queue()
        for index in range(self.workers):
            inbox = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(index, inbox, self._outbox, self.host_kwargs, self.catalog),
                daemon=True,
            )
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)

    def submit(self, request):
        """Enqueue one request; responses arrive via next_response.

        Inline mode executes synchronously (the response is queued
        before submit returns).
        """
        if self._inline_host is not None:
            response = self._inline_host.execute_request(request)
            self._inline_outbox.put(("response", 0, response))
            return
        index = tenant_worker(request.get("tenant"), self.workers)
        self._inboxes[index].put(request)

    def next_response(self, timeout=None):
        """The next ``(kind, worker_index, payload)`` outbox tuple.

        ``kind`` is ``"response"`` or ``"summary"``; raises
        ``queue.Empty`` on timeout.
        """
        outbox = (
            self._inline_outbox if self._inline_host is not None else self._outbox
        )
        return outbox.get(timeout=timeout)

    def shutdown(self, timeout=30):
        """Stop workers and return the merged fleet summary.

        Callers must have drained their in-flight responses first.
        Returns ``{"payloads", "metrics", "isolation_violations",
        "store_stats", "tenants"}`` with ``metrics`` the
        ``merge_payloads`` fold over every tenant of every worker.
        """
        summaries = []
        if self._inline_host is not None:
            summaries.append(_worker_summary(self._inline_host))
            self._inline_host = None
        elif self._started:
            for inbox in self._inboxes:
                inbox.put(None)
            pending = len(self._processes)
            while pending:
                kind, _index, payload = self._outbox.get(timeout=timeout)
                if kind == "summary":
                    summaries.append(payload)
                    pending -= 1
            for process in self._processes:
                process.join(timeout=timeout)
            self._processes = []
            self._inboxes = []
        payloads = [p for summary in summaries for p in summary["payloads"]]
        return {
            "payloads": payloads,
            "metrics": merge_payloads(payloads),
            "isolation_violations": sum(
                s["isolation_violations"] for s in summaries
            ),
            "store_stats": [
                s["store_stats"] for s in summaries if s["store_stats"]
            ],
            "tenants": sorted(t for s in summaries for t in s["tenants"]),
        }
