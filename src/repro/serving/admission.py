"""Admission and queueing policy for the serving tier.

Each tenant owns one :class:`AdmissionLane` — a deterministic virtual
timeline with the same semantics as the engine's background compile
lane (:mod:`repro.engine.compile_queue`): work starts at
``max(arrival + dispatch_delay, lane_cycle)`` and the lane clock
advances by the request's measured service cycles.  Batching amortizes
the dispatch delay: consecutive requests of the same batch pay it only
once (the fleet driver precomputes batch ids in the *global* schedule,
so batch boundaries are identical however the schedule is partitioned
across worker processes).

All quantities are model cycles from the engine's deterministic cost
model, never wall time — so latency percentiles are bit-reproducible
across machines and can be regression-gated with zero tolerance
(docs/SERVING.md).  In serve mode (no scheduled arrival) a request
arrives "now" on its tenant's lane clock, which keeps the same
arithmetic and stays deterministic per tenant.

Admission control is a per-tenant concurrent-request cap: a request
arriving while ``capacity`` admitted requests are still in flight
(their completion cycle is after the arrival) is rejected, bounding
queue memory and head-of-line blocking per tenant rather than
globally — one tenant's burst cannot starve another's lane.
"""

#: Lane-clock cycles charged once per batch for dispatch (socket parse,
#: routing, isolate swap-in).  Mirrors the compile queue's
#: ``dispatch_delay`` default scale.
DISPATCH_DELAY = 30

#: Default per-tenant concurrent-request cap.
QUEUE_CAPACITY = 64


class AdmissionLane(object):
    """One tenant's deterministic admission timeline."""

    def __init__(self, dispatch_delay=DISPATCH_DELAY, capacity=QUEUE_CAPACITY):
        self.dispatch_delay = dispatch_delay
        self.capacity = capacity
        #: The lane clock: completion cycle of the newest finished
        #: request; new work never starts before it.
        self.lane_cycle = 0
        #: Completion cycles of admitted requests, pruned on arrival;
        #: its length is the in-flight depth.
        self.inflight = []
        self.depth_high_water = 0
        self.admitted = 0
        self.rejected = 0
        self.last_batch = None

    def admit(self, arrival, batch=None):
        """Admit a request arriving at ``arrival``; None on rejection.

        Returns the dispatch cycle (when the isolate starts executing):
        ``arrival + dispatch_delay`` for the first request of a batch,
        plain ``arrival`` for followers, but never before the lane
        clock — a busy lane queues the request.
        """
        self.inflight = [done for done in self.inflight if done > arrival]
        if len(self.inflight) >= self.capacity:
            self.rejected += 1
            return None
        delay = self.dispatch_delay if batch != self.last_batch else 0
        start = max(arrival + delay, self.lane_cycle)
        self.admitted += 1
        self.last_batch = batch
        depth = len(self.inflight) + 1
        if depth > self.depth_high_water:
            self.depth_high_water = depth
        return start

    def complete(self, start, service_cycles):
        """Retire a request dispatched at ``start``; returns its
        completion cycle and advances the lane clock to it."""
        done = start + service_cycles
        self.lane_cycle = done
        self.inflight.append(done)
        return done
