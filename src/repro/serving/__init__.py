"""The multi-tenant serving tier (docs/SERVING.md).

Layers, bottom up:

- :mod:`repro.serving.shards` — sharded shared disk code cache plus
  per-tenant counter views.
- :mod:`repro.serving.admission` — deterministic per-tenant
  admission/queueing lanes (compile-queue semantics, model cycles).
- :mod:`repro.serving.isolate` — one engine + shape tree + metrics
  registry per tenant; the tenant-isolation boundary.
- :mod:`repro.serving.fleet` — seeded power-law fleet-traffic driver
  (`repro fleet`).
- :mod:`repro.serving.pool` — tenant isolates spread over worker
  processes.
- :mod:`repro.serving.server` — asyncio JSON-line front end
  (`repro serve`).
"""

from repro.serving.admission import AdmissionLane
from repro.serving.fleet import FleetProfile, generate_schedule, run_fleet
from repro.serving.isolate import TenantHost, TenantIsolate
from repro.serving.pool import WorkerPool
from repro.serving.server import ServingServer
from repro.serving.shards import ShardedDiskCache, TenantCacheView

__all__ = [
    "AdmissionLane",
    "FleetProfile",
    "generate_schedule",
    "run_fleet",
    "TenantHost",
    "TenantIsolate",
    "WorkerPool",
    "ServingServer",
    "ShardedDiskCache",
    "TenantCacheView",
]
