"""Natural-loop discovery from back edges.

A back edge is an edge ``L -> H`` where ``H`` dominates ``L``; the
natural loop is ``H`` plus every block that can reach ``L`` without
passing through ``H``.  Loops sharing a header are merged, as usual.
"""

from repro.opts.dominators import DominatorTree


class Loop(object):
    """One natural loop."""

    __slots__ = ("header", "latches", "body")

    def __init__(self, header):
        self.header = header
        self.latches = []
        #: Every block in the loop, header included.
        self.body = {id(header): header}

    def contains(self, block):
        return id(block) in self.body

    @property
    def blocks(self):
        return list(self.body.values())

    def preheader(self):
        """The unique predecessor of the header outside the loop, or None.

        A loop entered both from straight-line code and from the OSR
        block has two outside predecessors and therefore no preheader;
        passes that need one (LICM) skip such loops.
        """
        outside = [p for p in self.header.predecessors if not self.contains(p)]
        if len(outside) == 1:
            return outside[0]
        return None

    def is_do_while_shaped(self):
        """True when reaching the header guarantees one body execution.

        After loop inversion the exit test sits in the latch, so every
        successor of the header stays inside the loop.  LICM may then
        hoist faultable loop-invariant code into the preheader without
        changing behaviour for zero-trip loops (there are none).
        """
        return all(self.contains(successor) for successor in self.header.successors)

    def exits(self):
        """Edges (block, successor) leaving the loop."""
        result = []
        for block in self.body.values():
            for successor in block.successors:
                if not self.contains(successor):
                    result.append((block, successor))
        return result

    def __repr__(self):
        return "<Loop header=B%d blocks=%d>" % (self.header.id, len(self.body))


def find_loops(graph, dominator_tree=None):
    """Return the graph's natural loops, innermost last."""
    tree = dominator_tree if dominator_tree is not None else DominatorTree(graph)
    loops = {}
    for block in graph.blocks:
        for successor in block.successors:
            if tree.dominates(successor, block):
                loop = loops.get(id(successor))
                if loop is None:
                    loop = Loop(successor)
                    loops[id(successor)] = loop
                loop.latches.append(block)
                _flood(loop, block)
    ordered = sorted(loops.values(), key=lambda l: len(l.body), reverse=True)
    return ordered


def _flood(loop, latch):
    """Add every block reaching ``latch`` without crossing the header."""
    stack = [latch]
    while stack:
        block = stack.pop()
        if id(block) in loop.body:
            continue
        loop.body[id(block)] = block
        for predecessor in block.predecessors:
            stack.append(predecessor)
