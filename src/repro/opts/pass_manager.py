"""The optimization pipeline, configured per :class:`OptConfig`.

Pass order follows the paper: parameter specialization happens during
graph construction (the builder already did it by the time this module
runs); inlining of specialization constants comes next (§3.7); then the
baseline type specialization and GVN; constant propagation (§3.3);
a second inlining round so method loads folded to constants can inline
("we are also able to inline methods from objects passed as
parameters"); dead-code elimination (§3.5); LICM; and bounds-check
elimination (§3.6) last, on the cleaned-up graph.

Loop inversion (§3.4) is a bytecode transform applied before MIR
construction (see :mod:`repro.opts.loop_inversion`); its compile-time
cost is charged here nonetheless.

The returned :class:`PassWork` records how many instructions each pass
visited — the unit the engine's cost model converts into compile-time
cycles, so that configurations running more passes pay for them and
smaller (specialized) graphs compile faster.
"""

from repro.mir.specializer import specialize_types
from repro.opts.constprop import run_constant_propagation
from repro.opts.dce import merge_blocks, run_dce, simplify_trivial_phis
from repro.opts.gvn import run_gvn
from repro.opts.inlining import run_inlining
from repro.opts.licm import run_licm
from repro.opts.bounds_check import run_bounds_check_elimination


class PassWork(object):
    """Per-pass work units and outcome counts for one compilation.

    With a tracer subscribed to the ``pass`` channel, every charge also
    emits a ``pass.run`` event carrying the graph's instruction and
    guard counts sampled at pass boundaries (the "before" counts are
    the previous pass's "after" counts).
    """

    def __init__(self, graph=None, tracer=None):
        self.units = {}  # pass name -> instructions visited
        self.results = {}  # pass name -> pass-specific result
        self._tracer = (
            tracer if (tracer is not None and tracer.wants("pass")) else None
        )
        if self._tracer is not None and graph is not None:
            self._counts = (graph.num_instructions(), graph.num_guards())
        else:
            self._counts = None

    def charge(self, name, graph, result=None):
        self.units[name] = self.units.get(name, 0) + graph.num_instructions()
        if result is not None:
            self.results[name] = result
        if self._tracer is not None:
            before = self._counts if self._counts is not None else (None, None)
            after = (graph.num_instructions(), graph.num_guards())
            self._counts = after
            self._tracer.emit(
                "pass",
                "run",
                fn=graph.code.name,
                name=name,
                instructions_before=before[0],
                instructions_after=after[0],
                guards_before=before[1],
                guards_after=after[1],
                units=after[0],
                result=result,
            )

    @property
    def total_units(self):
        return sum(self.units.values())


def optimize(graph, config, loop_inversion_applied=False, tracer=None):
    """Run the configured pipeline on ``graph``; returns PassWork."""
    work = PassWork(graph, tracer)

    if loop_inversion_applied:
        # The rotation itself ran on the bytecode; bill its walk here.
        work.charge("loop_inversion", graph)

    if config.param_spec and graph.specialized:
        inlined = run_inlining(graph)
        work.charge("inlining", graph, inlined)

    specialize_types(graph)
    work.charge("type_specialization", graph)

    merged = run_gvn(graph)
    work.charge("gvn", graph, merged)

    if config.constprop:
        folded = run_constant_propagation(graph)
        work.charge("constprop", graph, folded)
        if config.param_spec and graph.specialized:
            # Second round: method loads folded to constant functions.
            inlined = run_inlining(graph)
            if inlined:
                specialize_types(graph)
                folded = run_constant_propagation(graph)
            work.charge("inlining2", graph, inlined)

    if config.dce:
        branches, blocks, instructions = run_dce(graph)
        work.charge("dce", graph, (branches, blocks, instructions))
    else:
        # Even without the configurable DCE, collapsing single-input
        # phis is part of SSA bookkeeping every compiler does.
        simplify_trivial_phis(graph)

    hoisted = run_licm(graph)
    work.charge("licm", graph, hoisted)

    # Graph finishing: fold straight-line block chains (always on; this
    # is bookkeeping every compiler does before lowering).
    merge_blocks(graph)

    if config.bounds_check:
        removed = run_bounds_check_elimination(graph)
        work.charge("bounds_check", graph, removed)
        if removed and config.dce:
            # Removing a check leaves its length computation dead.
            from repro.opts.dce import remove_dead_instructions

            remove_dead_instructions(graph)

    # --- §6 future-work extensions (off in all paper configurations) ---
    if config.unroll:
        from repro.opts.unrolling import run_unrolling

        unrolled = run_unrolling(graph)
        work.charge("unroll", graph, unrolled)
        if unrolled and config.constprop:
            # Unrolled bodies often evaluate away entirely.
            run_constant_propagation(graph)
            if config.dce:
                run_dce(graph)

    if config.overflow_elim:
        from repro.opts.overflow_check import run_overflow_check_elimination

        cleared = run_overflow_check_elimination(graph)
        work.charge("overflow_elim", graph, cleared)

    return work
