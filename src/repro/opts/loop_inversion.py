"""Loop inversion (paper §3.4): while-loops become guarded repeat-loops.

The transformation replaces

.. code-block:: none

    H:  <test>            H:  <test>                ; wrapping guard
        iffalse E             iffalse E
        <body>            B:  <body>
        jump H            T:  <test>                ; duplicated test
    E:                        iftrue B
                          E:

so each iteration executes one conditional branch at the bottom instead
of a conditional plus an unconditional jump at the top.  As the paper
notes, the win compounds: parameter specialization often proves the
wrapping guard's condition true at compile time, constant propagation
folds it, and dead-code elimination removes it (Figure 8(a)); the
do-while shape also unlocks more loop-invariant code motion.

Implementation note (see DESIGN.md): we rotate the *bytecode* before
MIR construction rather than performing CFG surgery on SSA.  The MIR
built from rotated bytecode is exactly the rotated graph of Figure
7(c), and because the same bytecode feeds the interpreter, OSR entries
and bailout resume points need no translation layer.  The engine still
charges the pass's compile-time cost when it JIT-compiles the function.
"""

from repro.jsvm.bytecode import JUMP_OPS, Instr, Op


def _find_candidate(instructions):
    """Find one canonical while-loop: returns (header, test_end, latch).

    ``header`` starts the test region, ``test_end`` is the IFFALSE
    closing it, ``latch`` is the final backward JUMP.  The loop-exit
    target must be ``latch + 1`` (the shape our bytecode compiler emits
    for while/for loops).  Returns None when no loop qualifies.
    """
    for latch in range(len(instructions) - 1, -1, -1):
        instr = instructions[latch]
        if instr.op != Op.JUMP or instr.arg >= latch:
            continue
        header = instr.arg
        # Scan the test region: straight-line or inner jumps only,
        # ending at an IFFALSE whose target is the loop exit.
        test_end = None
        index = header
        while index < latch:
            probe = instructions[index]
            if probe.op == Op.IFFALSE and probe.arg == latch + 1:
                test_end = index
                break
            if probe.op in (Op.RETURN, Op.RETURN_UNDEF):
                break
            if probe.op in JUMP_OPS and not header <= probe.arg <= latch + 1:
                break
            index += 1
        if test_end is None or test_end >= latch:
            continue
        # Every jump to the header must be a backward jump from inside
        # the body (the latch or a `continue`); anything else makes the
        # rotation unsafe.
        safe = True
        for position, other in enumerate(instructions):
            if other.op in JUMP_OPS and other.arg == header:
                inside = test_end < position <= latch and other.op == Op.JUMP
                if not inside:
                    safe = False
                    break
            # Jumps from outside into the middle of the test region
            # would be re-executed incorrectly after duplication.
            if (
                other.op in JUMP_OPS
                and header < other.arg <= test_end
                and not header <= position <= latch
            ):
                safe = False
                break
        if not safe:
            continue
        return header, test_end, latch
    return None


def _rotate_once(code):
    """Rotate one candidate loop; returns True if a rotation happened."""
    instructions = code.instructions
    candidate = _find_candidate(instructions)
    if candidate is None:
        return False
    header, test_end, latch = candidate
    tail_len = test_end - header + 1
    tail_start = latch + 1  # the duplicated test goes where the exit was
    body_start = test_end + 1

    def remap(target):
        """Old jump target -> new index after inserting the tail."""
        if target >= tail_start:
            return target + tail_len
        return target

    new_instructions = []
    for position, instr in enumerate(instructions):
        if position == tail_start:
            # Insert the duplicated bottom test.
            for offset in range(tail_len):
                source = instructions[header + offset]
                if header + offset == test_end:
                    # IFFALSE exit  ->  IFTRUE body (falls through to exit).
                    new_instructions.append(Instr(Op.IFTRUE, body_start, source.line))
                else:
                    arg = source.arg
                    if source.op in JUMP_OPS:
                        # Inner test jumps stay within the tail copy.
                        arg = tail_start + (arg - header)
                    new_instructions.append(Instr(source.op, arg, source.line))
        if instr.op in JUMP_OPS:
            if instr.op == Op.JUMP and instr.arg == header and test_end < position <= latch:
                # Backward jumps (latch, `continue`) now reach the tail.
                new_instructions.append(Instr(Op.JUMP, tail_start, instr.line))
            else:
                new_instructions.append(Instr(instr.op, remap(instr.arg), instr.line))
        else:
            new_instructions.append(Instr(instr.op, instr.arg, instr.line))
    if tail_start == len(instructions):
        # Loop exit was the end of the function (cannot happen after
        # validate(), which requires a terminator, but stay safe).
        for offset in range(tail_len):
            source = instructions[header + offset]
            if header + offset == test_end:
                new_instructions.append(Instr(Op.IFTRUE, body_start, source.line))
            else:
                new_instructions.append(Instr(source.op, source.arg, source.line))
    code.instructions = new_instructions
    # The interpreter's threaded handler table is positional; rebuild
    # it lazily against the rotated stream.
    code.threaded = None
    return True


def rotate_loops(code, recursive=True):
    """Invert every canonical while-loop in ``code`` (in place).

    Returns the number of loops rotated.  With ``recursive``, nested
    function code objects in the constant pool are processed too.
    """
    rotated = 0
    while _rotate_once(code):
        rotated += 1
    code.validate()
    if recursive:
        from repro.jsvm.bytecode import CodeObject

        for constant in code.constants:
            if isinstance(constant, CodeObject):
                rotated += rotate_loops(constant, recursive=True)
    return rotated
