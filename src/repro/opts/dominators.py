"""Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

Works on graphs with multiple entries (function entry + OSR entry) by
introducing a virtual root above them, exactly how IonMonkey treats its
two entry points.
"""


class _VirtualRoot(object):
    """Synthetic common ancestor of the function and OSR entries."""

    id = -1

    def __init__(self, entries):
        self._entries = entries

    @property
    def successors(self):
        return list(self._entries)

    predecessors = ()


class DominatorTree(object):
    """Immediate dominators, dominance queries, and children lists."""

    def __init__(self, graph):
        self.graph = graph
        self.root = _VirtualRoot(graph.entries())
        self._postorder = self._compute_postorder()
        self._index = {id(b): i for i, b in enumerate(self._postorder)}
        self.idom = {}
        self._compute()
        self.children = {}
        for block in self._postorder:
            parent = self.idom.get(id(block))
            if parent is not None and parent is not block:
                self.children.setdefault(id(parent), []).append(block)

    def _compute_postorder(self):
        visited = set()
        order = []
        stack = [(self.root, iter(self.root.successors))]
        visited.add(id(self.root))
        while stack:
            node, successor_iter = stack[-1]
            advanced = False
            for successor in successor_iter:
                if id(successor) not in visited:
                    visited.add(id(successor))
                    stack.append((successor, iter(successor.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        return order

    def _compute(self):
        idom = self.idom
        idom[id(self.root)] = self.root
        reverse_postorder = list(reversed(self._postorder))
        changed = True
        while changed:
            changed = False
            for block in reverse_postorder:
                if block is self.root:
                    continue
                predecessors = list(block.predecessors)
                if block in self.root.successors:
                    predecessors = predecessors + [self.root]
                new_idom = None
                for predecessor in predecessors:
                    if id(predecessor) in idom:
                        if new_idom is None:
                            new_idom = predecessor
                        else:
                            new_idom = self._intersect(new_idom, predecessor)
                if new_idom is not None and idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True

    def _intersect(self, a, b):
        index = self._index
        idom = self.idom
        while a is not b:
            while index[id(a)] < index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] < index[id(a)]:
                b = idom[id(b)]
        return a

    # -- queries ---------------------------------------------------------------

    def immediate_dominator(self, block):
        dominator = self.idom.get(id(block))
        if dominator is self.root:
            return None
        return dominator

    def dominates(self, a, b):
        """True if block ``a`` dominates block ``b``."""
        node = b
        while node is not None and node is not self.root:
            if node is a:
                return True
            node = self.idom.get(id(node))
        return node is a

    def dominator_tree_children(self, block):
        return self.children.get(id(block), [])
