"""Overflow-check elimination (the paper's §6 future work).

The paper closes by planning to "re-implement other classic compiler
optimizations such as loop-unrolling and overflow-check elimination in
the context of runtime-value specialization", citing Sol et al.'s
range-analysis-based elimination of integer-overflow guards in
TraceMonkey.  This extension implements it:

* operand ranges come from the same trivial induction-variable
  analysis bounds-check elimination uses (and from constants —
  which parameter specialization supplies in abundance);
* an int32 ``+``/``-`` whose result interval fits int32 loses its
  overflow guard;
* an int32 ``*`` additionally needs the result interval to exclude
  the negative-zero hazard (result 0 with a negative operand);
* an int32 negation loses its guard when the operand range excludes
  0 and INT32_MIN.

Cleared guards lower to plain (cheaper) native instructions with no
bailout snapshot.  The pass is off in every configuration the paper
measures; enable it with ``OptConfig(..., overflow_elim=True)``.
"""

from repro.jsvm.bytecode import Op
from repro.jsvm.values import INT32_MAX, INT32_MIN
from repro.mir.instructions import MBinaryArithI, MConstant, MNegI
from repro.opts.loops import find_loops
from repro.opts.range_analysis import compute_ranges


def _range_of(definition, ranges):
    """Inclusive [low, high] of a definition, or None."""
    if isinstance(definition, MConstant) and type(definition.value) is int:
        return definition.value, definition.value
    found = ranges.get(definition)
    if found is not None:
        return found.low, found.high
    return None


def run_overflow_check_elimination(graph):
    """Clear provably safe overflow guards; returns the count cleared."""
    loops = find_loops(graph)
    ranges = compute_ranges(graph, loops)
    cleared = 0
    for block in graph.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, MBinaryArithI) and instruction.is_guard:
                if _arith_is_safe(instruction, ranges):
                    instruction.is_guard = False
                    cleared += 1
            elif isinstance(instruction, MNegI) and instruction.is_guard:
                operand_range = _range_of(instruction.operands[0], ranges)
                if operand_range is None:
                    continue
                low, high = operand_range
                excludes_zero = low > 0 or high < 0
                if excludes_zero and low > INT32_MIN:
                    instruction.is_guard = False
                    cleared += 1
    return cleared


def _arith_is_safe(instruction, ranges):
    lhs = _range_of(instruction.operands[0], ranges)
    rhs = _range_of(instruction.operands[1], ranges)
    if lhs is None or rhs is None:
        return False
    lhs_low, lhs_high = lhs
    rhs_low, rhs_high = rhs
    if instruction.op == Op.ADD:
        low, high = lhs_low + rhs_low, lhs_high + rhs_high
    elif instruction.op == Op.SUB:
        low, high = lhs_low - rhs_high, lhs_high - rhs_low
    elif instruction.op == Op.MUL:
        corners = [
            lhs_low * rhs_low,
            lhs_low * rhs_high,
            lhs_high * rhs_low,
            lhs_high * rhs_high,
        ]
        low, high = min(corners), max(corners)
        # Negative-zero hazard: a zero product with a negative operand
        # must produce the double -0, so the guard stays unless the
        # result interval excludes zero or both operands are
        # non-negative.
        may_be_negative_zero = (low <= 0 <= high) and (lhs_low < 0 or rhs_low < 0)
        if may_be_negative_zero:
            return False
    else:
        return False
    return INT32_MIN <= low and high <= INT32_MAX
