"""Function inlining of specialization constants (paper §3.7).

IonMonkey's baseline inliner is profile-guided and waits for tens of
thousands of calls; closures passed as parameters are especially hard
for it because inlining them needs identity guards.  Parameter
specialization changes the game: an actual-parameter closure becomes an
``MConstant`` holding a concrete ``JSFunction``, so the callee's
identity is certain and *no guard is needed* — if the host function is
ever called with different arguments the whole binary is discarded
anyway.

We inline a constant callee when its body is *re-executable*: it
contains no store-class effects and no nested calls, so bailing out
anywhere inside it can simply restart the whole call in the
interpreter.  Every guard inside the inlined body therefore adopts the
caller's resume point at the call bytecode (mode "at"), which re-runs
the CALL op.  Pure loads and guards are fine anywhere.

This also covers the paper's "methods from objects passed as
parameters": a method load from a constant object folds to a constant
function (constant propagation), and a second inlining round picks it
up — the pass manager runs inlining before and after constant
propagation.
"""

from repro.jsvm.values import UNDEFINED, JSFunction
from repro.mir.instructions import (
    EFFECT_STORE,
    MCall,
    MCheckOverRecursed,
    MConstant,
    MGoto,
    MParameter,
    MPhi,
    MReturn,
    ResumePoint,
)
from repro.mir.types import MIRType

#: Instruction-count ceiling for one inlining candidate.
MAX_CALLEE_SIZE = 60
#: Total instructions a single graph may gain from inlining.
MAX_TOTAL_GROWTH = 240


def run_inlining(graph, build_callee=None):
    """Inline eligible constant-callee calls; returns number inlined.

    ``build_callee`` builds a fresh callee MIR graph from a code object
    (dependency-injected to avoid an import cycle with the builder; the
    default uses :func:`repro.mir.builder.build_mir` with the callee's
    own type feedback).
    """
    if build_callee is None:
        from repro.mir.builder import build_mir

        def build_callee(code):
            return build_mir(code, feedback=code.feedback)

    inlined = 0
    growth = 0
    # Snapshot candidates first: splicing invalidates iteration order.
    candidates = []
    for block in graph.blocks:
        for instruction in block.instructions:
            if _is_candidate(instruction):
                candidates.append(instruction)
    for call in candidates:
        if call.block is None:
            continue  # removed by an earlier splice
        if growth >= MAX_TOTAL_GROWTH:
            break
        size = _try_inline(graph, call, build_callee)
        if size:
            inlined += 1
            growth += size
    return inlined


def _is_candidate(instruction):
    if not isinstance(instruction, MCall):
        return False
    callee = instruction.callee
    return isinstance(callee, MConstant) and isinstance(callee.value, JSFunction)


def _body_is_reexecutable(sub):
    """True when bailing anywhere in the body may restart the call."""
    for instruction in sub.all_instructions():
        if isinstance(instruction, (MCheckOverRecursed, MReturn)):
            continue
        if instruction.effect == EFFECT_STORE:
            return False
    return True


def _try_inline(graph, call, build_callee):
    """Attempt one inline; returns the spliced size or 0."""
    from repro.errors import NotCompilable

    function = call.callee.value
    code = function.code
    if code.has_frees or code.has_cells:
        return 0
    try:
        sub = build_callee(code)
    except NotCompilable:
        return 0
    size = sub.num_instructions()
    if size > MAX_CALLEE_SIZE:
        return 0
    if sub.osr_entry is not None or not _body_is_reexecutable(sub):
        return 0
    if not any(isinstance(b.terminator, MReturn) for b in sub.blocks):
        return 0  # degenerate body (infinite loop): nothing to wire up

    caller_resume = call.resume_point
    block = call.block

    # 1. Split the caller block: everything after the call moves to a
    #    fresh continuation block, which inherits the old terminator.
    continuation = graph.new_block()
    call_index = block.instructions.index(call)
    moved = block.instructions[call_index + 1 :]
    del block.instructions[call_index + 1 :]
    for instruction in moved:
        instruction.block = continuation
    continuation.instructions = moved
    old_terminator = continuation.terminator
    if old_terminator is not None:
        for successor in old_terminator.successors:
            for index, predecessor in enumerate(successor.predecessors):
                if predecessor is block:
                    successor.predecessors[index] = continuation

    # 2. Adopt the callee blocks into the caller graph.
    for sub_block in sub.blocks:
        sub_block.graph = graph
        sub_block.id = graph._next_block_id
        graph._next_block_id += 1
        for definition in list(sub_block.phis) + sub_block.instructions:
            definition.id = -1
            graph.assign_id(definition)

    # 3. Rebind parameters / `this` / entry boilerplate, and retarget
    #    every resume point at the caller's call site.
    args = list(call.call_args)
    entry = sub.entry
    for sub_block in sub.blocks:
        for instruction in list(sub_block.instructions):
            if isinstance(instruction, MParameter):
                if instruction.index == -1:
                    replacement = call.this_value
                elif instruction.index < len(args):
                    replacement = args[instruction.index]
                else:
                    replacement = block.insert_before(call, MConstant(UNDEFINED))
                instruction.replace_all_uses_with(replacement)
                sub_block.remove_instruction(instruction)
            elif isinstance(instruction, MCheckOverRecursed):
                sub_block.remove_instruction(instruction)
            elif instruction.resume_point is not None:
                instruction.resume_point.discard()
                instruction.resume_point = None
                if caller_resume is not None:
                    clone = ResumePoint(
                        caller_resume.pc,
                        ResumePoint.MODE_AT,
                        caller_resume.args,
                        caller_resume.locals,
                        caller_resume.stack,
                    )
                    instruction.attach_resume_point(clone)

    # 4. Merge the callee entry block into the caller block.
    for instruction in entry.instructions:
        instruction.block = block
    block.instructions.extend(entry.instructions)
    entry.instructions = []
    entry_terminator = block.terminator
    if entry_terminator is not None:
        for successor in entry_terminator.successors:
            for index, predecessor in enumerate(successor.predecessors):
                if predecessor is entry:
                    successor.predecessors[index] = block

    # 5. Rewrite returns into edges to the continuation block.
    merged_blocks = [block] + [b for b in sub.blocks if b is not entry]
    return_values = []
    for merged in merged_blocks:
        terminator = merged.terminator
        if isinstance(terminator, MReturn):
            value = terminator.operands[0]
            merged.remove_instruction(terminator)
            goto = MGoto(continuation)
            merged.append(goto)
            continuation.add_predecessor(merged)
            return_values.append(value)

    if len(return_values) == 1:
        result = return_values[0]
    else:
        result = MPhi(MIRType.VALUE, ("inline", 0))
        continuation.add_phi(result)
        for value in return_values:
            result.add_input(value)

    # 6. Replace the call and finish the splice.
    call.replace_all_uses_with(result)
    block.remove_instruction(call)
    for sub_block in sub.blocks:
        if sub_block is not entry:
            graph.blocks.append(sub_block)
    return size
