"""Global value numbering (baseline IonMonkey pass).

Dominator-tree-scoped hashing in the style of Alpern, Wegman and
Zadeck's congruence partitioning, which the paper cites as the
algorithm IonMonkey uses: walk the dominator tree, keep a scoped table
from congruence keys to definitions, and replace any pure instruction
congruent to a dominating one.

Instructions declare their own eligibility via ``congruence_key``:
effectful or non-movable instructions return None and are never
merged.  ``in`` comparisons read the heap and are excluded.
"""

from repro.jsvm.bytecode import Op
from repro.mir.instructions import MBinaryV
from repro.opts.dominators import DominatorTree


def run_gvn(graph, dominator_tree=None):
    """Run GVN over ``graph``; returns the number of merged values."""
    tree = dominator_tree if dominator_tree is not None else DominatorTree(graph)
    merged = [0]

    def visit(block, scope):
        local = dict(scope)
        for instruction in list(block.instructions):
            if isinstance(instruction, MBinaryV) and instruction.op == Op.IN:
                continue  # reads the heap; not congruent across stores
            key = instruction.congruence_key()
            if key is None:
                continue
            existing = local.get(key)
            if existing is not None:
                instruction.replace_all_uses_with(existing)
                block.remove_instruction(instruction)
                merged[0] += 1
            else:
                local[key] = instruction
        for child in tree.dominator_tree_children(block):
            visit(child, local)

    for entry in graph.entries():
        visit(entry, {})
    return merged[0]
