"""Trivial induction-variable range analysis (paper §3.6).

The paper keeps its optimizer simple: it only recognizes variables
defined by the pattern ``i0 = exp; i1 = phi(i0, i2); i2 = i1 + c`` and
estimates their ranges from the loop's controlling comparison.  We
implement the same recognizer:

* an *induction phi* in a loop header with a constant (or
  constant-range) initial value and a ``phi + c`` increment (c > 0)
  flowing around the back edge;
* a loop-controlling test ``x < bound`` / ``x <= bound`` with ``bound``
  a compile-time constant — which, after parameter specialization,
  loop bounds frequently are;
* derived ranges for the increment definition.

Ranges are inclusive ``[low, high]`` integer pairs.
"""

from repro.jsvm.bytecode import Op
from repro.mir.instructions import MBinaryArithI, MCompare, MConstant, MPhi, MTest


class Range(object):
    """An inclusive integer interval."""

    __slots__ = ("low", "high")

    def __init__(self, low, high):
        self.low = low
        self.high = high

    def __repr__(self):
        return "[%d, %d]" % (self.low, self.high)


def _constant_int(definition):
    if isinstance(definition, MConstant) and type(definition.value) is int:
        return definition.value
    return None


def _induction_increment(phi):
    """Return (increment_def, step) for ``i2 = i1 + c`` patterns."""
    for operand in phi.operands:
        if not isinstance(operand, MBinaryArithI) or operand.op != Op.ADD:
            continue
        lhs, rhs = operand.operands
        if lhs is phi:
            step = _constant_int(rhs)
        elif rhs is phi:
            step = _constant_int(lhs)
        else:
            continue
        if step is not None and step > 0:
            return operand, step
    return None, None


def _loop_bound(loop, phi, increment):
    """Find ``tested < bound`` controlling the loop; returns the
    inclusive maximum of the *tested* definition, or None."""
    for block, _exit_target in loop.exits():
        # Soundness: only the header test or a latch test bounds every
        # trip around the back edge.  A conditional `break` elsewhere
        # does not constrain the induction variable.
        if block is not loop.header and block not in loop.latches:
            continue
        terminator = block.terminator
        if not isinstance(terminator, MTest):
            continue
        condition = terminator.operands[0]
        if not isinstance(condition, MCompare):
            continue
        lhs, rhs = condition.operands
        op = condition.op
        # Normalize to tested-on-the-left.
        if lhs in (phi, increment):
            tested, bound = lhs, rhs
        elif rhs in (phi, increment):
            tested, bound = rhs, lhs
            op = {Op.LT: Op.GT, Op.LE: Op.GE, Op.GT: Op.LT, Op.GE: Op.LE}.get(op, op)
        else:
            continue
        bound_value = _constant_int(bound)
        if bound_value is None:
            continue
        # The loop continues while the condition holds on the body edge.
        body_successor = terminator.successors[0]
        if not loop.contains(body_successor):
            # Branch polarity: true edge exits, so the loop continues
            # while the *negation* holds.
            op = {Op.LT: Op.GE, Op.LE: Op.GT, Op.GT: Op.LE, Op.GE: Op.LT}[op] if op in (
                Op.LT,
                Op.LE,
                Op.GT,
                Op.GE,
            ) else op
        if op == Op.LT:
            maximum = bound_value - 1
        elif op == Op.LE:
            maximum = bound_value
        else:
            continue  # decreasing loops: out of the paper's pattern
        return tested, maximum
    return None, None


def compute_ranges(graph, loops):
    """Map definition -> :class:`Range` for recognized variables.

    Keyed by the definition objects (identity hash), never ``id()``,
    so entries cannot be confused across allocation reuse.
    """
    ranges = {}
    for loop in loops:
        for phi in loop.header.phis:
            if not isinstance(phi, MPhi):
                continue
            increment, step = _induction_increment(phi)
            if increment is None:
                continue
            initials = []
            for operand in phi.operands:
                if operand is increment:
                    continue
                value = _constant_int(operand)
                if value is None:
                    initials = None
                    break
                initials.append(value)
            if not initials:
                continue
            tested, maximum = _loop_bound(loop, phi, increment)
            if tested is None:
                continue
            if tested is increment:
                # phi's value is the previous increment, bounded by max;
                # the initial values enter directly.
                phi_high = max(initials + [maximum])
            else:
                phi_high = max(initials + [maximum])
            phi_low = min(initials)
            ranges[phi] = Range(phi_low, phi_high)
            ranges[increment] = Range(phi_low + step, phi_high + step)
            if tested is increment:
                # The increment itself never exceeds the bound inside
                # the loop body *after* the test; conservatively keep
                # the shifted range computed above.
                pass
    return ranges
