"""Optimization passes over MIR (and one over bytecode).

The paper's configurable optimizations:

* :mod:`repro.opts.param_spec` — parameter specialization (§3.2); the
  graph-construction side lives in the MIR builder, the closure
  inlining side (§3.7) in :mod:`repro.opts.inlining`.
* :mod:`repro.opts.constprop` — constant propagation (§3.3).
* :mod:`repro.opts.loop_inversion` — loop inversion (§3.4), done as a
  bytecode rotation before MIR construction.
* :mod:`repro.opts.dce` — dead-code elimination (§3.5).
* :mod:`repro.opts.bounds_check` — array-bounds-check elimination
  (§3.6) on top of :mod:`repro.opts.range_analysis`.

Baseline (always-on, IonMonkey-equivalent) passes:

* :mod:`repro.opts.gvn` — global value numbering [Alpern et al.].
* :mod:`repro.opts.licm` — loop-invariant code motion.
"""

from repro.opts.dominators import DominatorTree
from repro.opts.loops import find_loops
from repro.opts.gvn import run_gvn
from repro.opts.constprop import run_constant_propagation
from repro.opts.dce import run_dce
from repro.opts.licm import run_licm
from repro.opts.loop_inversion import rotate_loops
from repro.opts.bounds_check import run_bounds_check_elimination
from repro.opts.inlining import run_inlining

__all__ = [
    "DominatorTree",
    "find_loops",
    "run_gvn",
    "run_constant_propagation",
    "run_dce",
    "run_licm",
    "rotate_loops",
    "run_bounds_check_elimination",
    "run_inlining",
]
