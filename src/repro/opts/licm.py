"""Loop-invariant code motion (baseline IonMonkey pass).

Hoists loop-invariant computations into the loop preheader.  Two
safety rules shape what may move:

* **Aliasing** — heap loads move only when the loop body contains no
  store-class instruction (the same naive alias analysis the paper
  describes IonMonkey using).
* **Faultability** — instructions that can raise a guest error (the
  generic property/element/global loads) move only when the loop is
  do-while shaped, i.e. guaranteed to execute at least once.  Loop
  inversion produces exactly that shape, which is how it "improved the
  effectiveness of IonMonkey's invariant code motion" on
  ``string-unpack-code`` (paper §4).

Guards never move (their resume points anchor them to a bytecode
position), and loops reachable from the OSR entry keep their code in
place because they have no usable preheader.
"""

from repro.mir.instructions import (
    EFFECT_LOAD,
    EFFECT_NONE,
    EFFECT_STORE,
    MGetElemV,
    MGetPropV,
    MLoadGlobal,
)
from repro.opts.dominators import DominatorTree
from repro.opts.loops import find_loops

#: Load-class instructions that may raise a guest error when executed.
_FAULTABLE = (MGetElemV, MGetPropV, MLoadGlobal)


def run_licm(graph):
    """Hoist invariant code; returns the number of hoisted instructions."""
    tree = DominatorTree(graph)
    loops = find_loops(graph, tree)
    hoisted = 0
    # Outermost loops first, so code can migrate several levels out.
    for loop in loops:
        hoisted += _hoist_loop(loop)
    return hoisted


def _hoist_loop(loop):
    preheader = loop.preheader()
    if preheader is None or preheader.terminator is None:
        return 0
    guaranteed = loop.is_do_while_shaped()
    has_store = any(
        instruction.effect == EFFECT_STORE
        for block in loop.blocks
        for instruction in block.instructions
    )

    in_loop = set()
    for block in loop.blocks:
        for phi in block.phis:
            in_loop.add(id(phi))
        for instruction in block.instructions:
            in_loop.add(id(instruction))

    hoisted = 0
    anchor = preheader.terminator
    changed = True
    while changed:
        changed = False
        for block in loop.blocks:
            for instruction in list(block.instructions):
                if not _hoistable(instruction, guaranteed, has_store):
                    continue
                if any(id(op) in in_loop for op in instruction.operands):
                    continue
                block.instructions.remove(instruction)
                instruction.block = preheader
                preheader.instructions.insert(
                    preheader.instructions.index(anchor), instruction
                )
                in_loop.discard(id(instruction))
                hoisted += 1
                changed = True
    return hoisted


def _hoistable(instruction, guaranteed, has_store):
    if instruction.is_control or instruction.is_guard or not instruction.movable:
        return False
    if instruction.effect == EFFECT_STORE:
        return False
    if instruction.effect == EFFECT_LOAD:
        if has_store:
            return False
        if isinstance(instruction, _FAULTABLE) and not guaranteed:
            return False
        return True
    return instruction.effect == EFFECT_NONE
