"""Loop unrolling under value specialization (paper §6 future work).

"It is our intention to re-implement other classic compiler
optimizations such as loop-unrolling ... in the context of
runtime-value specialization."  This extension does exactly that for
the profitable case specialization creates: once parameters are
constants, many loop trip counts become compile-time constants, and a
short counted loop can be *fully unrolled* — after which constant
propagation frequently evaluates the whole loop away.

Scope (deliberately conservative):

* single-block loops (header == latch == body), the shape loop
  inversion produces for simple counted loops;
* one recognized induction variable ``i = phi(init, i + step)`` with
  constant ``init``/``step``/bound and a ``<``/``<=`` latch test;
* trip count and code growth under small fixed budgets;
* no calls inside the body (stores and guards are fine — each clone
  keeps its own resume point, with operands remapped to that
  iteration's values).

Off in every configuration the paper measures; enable with
``OptConfig(..., unroll=True)``.
"""

import copy

from repro.jsvm.bytecode import Op
from repro.mir.instructions import (
    MCall,
    MCompare,
    MConstant,
    MGoto,
    MNew,
    MPhi,
    MTest,
    ResumePoint,
)
from repro.opts.loops import find_loops
from repro.opts.range_analysis import _constant_int, _induction_increment

#: Maximum trip count eligible for full unrolling.
MAX_TRIP_COUNT = 12
#: Maximum body size (instructions) eligible.
MAX_BODY_SIZE = 24
#: Maximum total instructions added per loop.
MAX_GROWTH = 160


def run_unrolling(graph):
    """Fully unroll eligible constant-trip-count loops.

    Returns the number of loops unrolled.
    """
    from repro.opts.dce import merge_blocks

    # Rotated counted loops are a body block plus a latch-test block;
    # folding straight-line chains first gives the single-block shape.
    merge_blocks(graph)
    unrolled = 0
    # Re-discover loops after each unroll (the CFG changed).
    changed = True
    while changed:
        changed = False
        for loop in find_loops(graph):
            if _try_unroll(graph, loop):
                unrolled += 1
                changed = True
                break
    return unrolled


def _try_unroll(graph, loop):
    header = loop.header
    if len(loop.body) != 1 or loop.latches != [header]:
        return False
    terminator = header.terminator
    if not isinstance(terminator, MTest):
        return False
    if terminator.successors[0] is not header:
        return False  # loop continues on the true edge in our shape
    exit_block = terminator.successors[1]
    if exit_block is header:
        return False
    outside_preds = [p for p in header.predecessors if p is not header]
    if len(outside_preds) != 1:
        return False  # OSR-entered or irreducible: leave it alone
    preheader = outside_preds[0]
    entry_index = header.predecessors.index(preheader)
    back_index = header.predecessors.index(header)

    if len(header.instructions) > MAX_BODY_SIZE:
        return False
    for instruction in header.instructions:
        if isinstance(instruction, (MCall, MNew)):
            return False

    trip_count = _trip_count(header, entry_index)
    if trip_count is None or trip_count > MAX_TRIP_COUNT:
        return False
    if trip_count * len(header.instructions) > MAX_GROWTH:
        return False

    # --- clone the body trip_count times -----------------------------------
    phis = list(header.phis)
    current = {phi: phi.operands[entry_index] for phi in phis}
    blocks = []
    for _iteration in range(trip_count):
        block = graph.new_block()
        value_map = dict(current)
        for instruction in header.instructions[:-1]:
            clone = _clone_instruction(instruction, value_map)
            block.append(clone)
            value_map[instruction] = clone
        blocks.append((block, value_map))
        current = {
            phi: value_map.get(phi.operands[back_index], phi.operands[back_index])
            for phi in phis
        }

    # --- wire the chain ------------------------------------------------------
    for position, (block, _value_map) in enumerate(blocks):
        goto = MGoto(None)
        block.append(goto)
        if position + 1 < len(blocks):
            target = blocks[position + 1][0]
        else:
            target = exit_block
        goto.successors[0] = target
        if position + 1 < len(blocks):
            target.add_predecessor(block)

    first_block = blocks[0][0]
    last_block, last_map = blocks[-1]

    # Preheader now enters the first clone.
    pre_terminator = preheader.terminator
    for index, successor in enumerate(pre_terminator.successors):
        if successor is header:
            pre_terminator.successors[index] = first_block
    first_block.add_predecessor(preheader)

    # The exit keeps its phi-operand order: swap the header for the
    # last clone in place.
    exit_index = exit_block.predecessors.index(header)
    exit_block.predecessors[exit_index] = last_block

    # Redirect surviving uses of loop definitions to their final
    # (exit-time) values.
    for phi in phis:
        phi.replace_all_uses_with(current[phi])
    for instruction in header.instructions[:-1]:
        final = last_map.get(instruction)
        if final is not None:
            instruction.replace_all_uses_with(final)

    # Delete the original loop body.
    for phi in list(header.phis):
        header.remove_phi(phi)
    for instruction in list(header.instructions):
        header.remove_instruction(instruction)
    graph.blocks.remove(header)
    return True


def _trip_count(header, entry_index):
    """Exact body-execution count for the recognized induction shape."""
    terminator = header.terminator
    condition = terminator.operands[0]
    if not isinstance(condition, MCompare) or condition.op not in (Op.LT, Op.LE):
        return None
    for phi in header.phis:
        increment, step = _induction_increment(phi)
        if increment is None:
            continue
        init = _constant_int(phi.operands[entry_index])
        if init is None:
            continue
        lhs, rhs = condition.operands
        if lhs is phi:
            tested_is_phi = True
        elif lhs is increment:
            tested_is_phi = False
        else:
            continue
        bound = _constant_int(rhs)
        if bound is None:
            continue

        def continues(value):
            return value < bound if condition.op == Op.LT else value <= bound

        i = init
        count = 0
        while True:
            count += 1
            if count > MAX_TRIP_COUNT:
                return None
            nxt = i + step
            tested = i if tested_is_phi else nxt
            if not continues(tested):
                return count
            i = nxt
    return None


def _clone_instruction(instruction, value_map):
    """Copy one instruction, remapping operands (and its snapshot)."""
    clone = copy.copy(instruction)
    clone.id = -1
    clone.block = None
    clone.uses = []
    clone.resume_point = None
    clone.operands = []
    for operand in instruction.operands:
        mapped = value_map.get(operand, operand)
        clone.operands.append(mapped)
        mapped.add_use(clone, len(clone.operands) - 1)
    resume = instruction.resume_point
    if resume is not None:
        clone.attach_resume_point(
            ResumePoint(
                resume.pc,
                resume.mode,
                [value_map.get(o, o) for o in resume.args],
                [value_map.get(o, o) for o in resume.locals],
                [value_map.get(o, o) for o in resume.stack],
            )
        )
    return clone
