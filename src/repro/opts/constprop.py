"""Constant propagation and folding (paper §3.3).

The lattice is the textbook one the paper cites from Aho et al.:
⊥ (unvisited) < c (one constant) < ⊤ (varying), with the meet operator
of §3.3.  Deliberately *no* information is extracted from conditional
branches — the paper chose the simplest Kildall-style formulation over
Wegman–Zadeck conditional constant propagation to keep the JIT-time
overhead low, and so do we.

On its own this pass rarely helps (IonMonkey's GVN already removes most
redundancy — the paper measures a slight *slowdown* for constprop
alone); its power comes from parameter specialization turning argument
uses into constants, which then fold through arithmetic, comparisons,
``typeof``, type guards and pure builtins.

Folded forms:

* all arithmetic/bitwise/comparison operators on constants (evaluated
  through the very operator implementations the interpreter uses, so
  folding is exact);
* ``typeof`` of a constant *or* of any value whose MIR type is known;
* ``===``/``!==`` between values of provably different types;
* type guards (``unbox``/``typebarrier``) on constants of the right
  type — this is how specialization erases the paper's Figure 7 type
  guards;
* ``length`` of constant strings;
* calls to pure (``foldable``) native builtins with constant arguments.
"""

import math

from repro.errors import ReproError
from repro.jsvm import operations
from repro.jsvm.bytecode import Op
from repro.jsvm.values import NativeFunction, to_boolean, type_of
from repro.mir.instructions import (
    MBinaryArithD,
    MBinaryArithI,
    MBinaryV,
    MBitOpI,
    MCall,
    MCompare,
    MConcat,
    MConstant,
    MGetPropV,
    MNegD,
    MNegI,
    MNot,
    MPhi,
    MStringLength,
    MToDouble,
    MToInt32,
    MTypeBarrier,
    MTypeOf,
    MUnaryV,
    MUnbox,
)
from repro.mir.types import MIRType, value_matches_mirtype

#: Lattice elements: _BOTTOM (unvisited), (value,) tuples for constants,
#: _TOP (varying).  Constants are wrapped so that e.g. the constant
#: ``False`` is distinguishable from lattice states.
_BOTTOM = "bottom"
_TOP = "top"

_TYPEOF_BY_MIRTYPE = {
    MIRType.INT32: "number",
    MIRType.DOUBLE: "number",
    MIRType.BOOLEAN: "boolean",
    MIRType.STRING: "string",
    MIRType.OBJECT: "object",
    MIRType.ARRAY: "object",
    MIRType.NULL: "object",
    MIRType.FUNCTION: "function",
    MIRType.UNDEFINED: "undefined",
}

#: MIR types whose values can never be strictly equal to a value of a
#: different listed type (numbers excluded: int32 1 === double 1.0).
_DISJOINT_TYPES = frozenset(
    [
        MIRType.BOOLEAN,
        MIRType.STRING,
        MIRType.OBJECT,
        MIRType.ARRAY,
        MIRType.FUNCTION,
        MIRType.UNDEFINED,
        MIRType.NULL,
    ]
)


#: The instruction kinds :meth:`ConstantPropagation._evaluate` can fold;
#: everything else transfers straight to ⊤ without touching operands.
_EVALUATED_KINDS = (
    MBinaryArithI,
    MBinaryArithD,
    MBitOpI,
    MBinaryV,
    MCompare,
    MConcat,
    MUnaryV,
    MNegI,
    MNegD,
    MNot,
    MToDouble,
    MToInt32,
    MTypeOf,
    MUnbox,
    MTypeBarrier,
    MStringLength,
    MGetPropV,
    MCall,
)


def _meet(a, b):
    """The paper's meet: ⊥∧x = x, ⊤∧x = ⊤, c∧c = c, c0∧c1 = ⊤."""
    if a == _BOTTOM:
        return b
    if b == _BOTTOM:
        return a
    if a == _TOP or b == _TOP:
        return _TOP
    if _same_constant(a[0], b[0]):
        return a
    return _TOP


def _same_constant(x, y):
    if type(x) is not type(y):
        return False
    if type(x) is float:
        if math.isnan(x) and math.isnan(y):
            return True
        if x == 0.0 and y == 0.0:
            # +0.0 and -0.0 are distinct constants (1/x differs).
            return math.copysign(1.0, x) == math.copysign(1.0, y)
    try:
        return x is y or x == y
    except Exception:  # pragma: no cover - defensive
        return x is y


def _states_equal(a, b):
    """Lattice-state equality; NaN constants compare equal to
    themselves (raw tuple comparison would loop the fixpoint forever
    on any NaN-producing fold)."""
    if a is b:
        return True
    if isinstance(a, tuple) and isinstance(b, tuple):
        return _same_constant(a[0], b[0])
    return a == b


class ConstantPropagation(object):
    """Kildall-style fixpoint plus a rewrite phase."""

    def __init__(self, graph):
        self.graph = graph
        # Keyed by the definition objects (identity hash), never id():
        # object keys keep the definitions alive, so a deleted
        # instruction's address can never be reused by a new one that
        # would then inherit a stale lattice state.
        self.lattice = {}

    def state_of(self, definition):
        return self.lattice.get(definition, _BOTTOM)

    def constant_of(self, definition):
        """The lattice tuple ``(value,)`` if constant, else None."""
        state = self.state_of(definition)
        if state not in (_TOP, _BOTTOM):
            return state
        return None

    # -- fixpoint ---------------------------------------------------------------

    def analyze(self):
        instructions = list(self.graph.all_instructions())
        lattice = self.lattice
        changed = True
        while changed:
            changed = False
            for instruction in instructions:
                if instruction.block is None:
                    continue
                old = lattice.get(instruction, _BOTTOM)
                if old is _TOP:
                    # The transfer is monotone and operand states only
                    # climb the lattice, so ⊤ is absorbing: skip.
                    continue
                new_state = self._transfer(instruction)
                if not _states_equal(new_state, old):
                    lattice[instruction] = new_state
                    changed = True

    def _transfer(self, instruction):
        if isinstance(instruction, MConstant):
            return (instruction.value,)
        if isinstance(instruction, MPhi):
            state = _BOTTOM
            for operand in instruction.operands:
                state = _meet(state, self.state_of(operand))
            return state
        return self._evaluate(instruction)

    def _operand_constants(self, instruction):
        """Operand constant values, or a lattice marker.

        Returns ``_BOTTOM`` while any operand is still unvisited — the
        instruction must stay unknown rather than pessimizing to ⊤
        (evaluating ⊥ as ⊤ makes the transfer non-monotone, which can
        oscillate — and, with string concatenation, double a folded
        constant every fixpoint round).  Returns ``_TOP`` when any
        operand is varying.
        """
        values = []
        saw_bottom = False
        lattice_get = self.lattice.get
        for operand in instruction.operands:
            state = lattice_get(operand, _BOTTOM)
            if state is _BOTTOM:
                saw_bottom = True
            elif state is _TOP:
                return _TOP
            else:
                values.append(state[0])
        if saw_bottom:
            return _BOTTOM
        return values

    #: Folded strings larger than this stay ⊤ (real compilers bound the
    #: size of compile-time-materialized constants).
    MAX_FOLDED_STRING = 4096

    def _bounded(self, value):
        """Wrap a folded value, refusing oversized string constants."""
        if type(value) is str and len(value) > self.MAX_FOLDED_STRING:
            return _TOP
        return (value,)

    def _evaluate(self, instruction):
        """Abstractly evaluate one instruction; returns a lattice state.

        ``constants`` is a value list when every operand is a known
        constant, ``_BOTTOM`` while any operand is unvisited (the
        result stays unknown), or ``_TOP``.  Type-based folds (typeof,
        strict equality of disjoint types) apply even without constant
        operands.
        """
        if not isinstance(instruction, _EVALUATED_KINDS):
            # Loads, stores, allocations, guards-without-result and
            # control flow always evaluate to ⊤ — skip the operand walk.
            return _TOP
        constants = self._operand_constants(instruction)
        folded = constants not in (_TOP, _BOTTOM)

        try:
            if isinstance(instruction, (MBinaryArithI, MBinaryArithD, MBitOpI, MBinaryV)):
                if instruction.op == Op.IN:
                    return _TOP  # reads the mutable heap
                if folded:
                    return self._bounded(
                        operations.binary_op(
                            instruction.op, constants[0], constants[1]
                        )
                    )
                by_type = self._type_based_equality(instruction)
                if by_type != _TOP:
                    return by_type
                return constants
            if isinstance(instruction, MCompare):
                if folded:
                    return (operations.binary_op(instruction.op, constants[0], constants[1]),)
                by_type = self._type_based_equality(instruction)
                if by_type != _TOP:
                    return by_type
                return constants
            if isinstance(instruction, MConcat):
                if folded:
                    return self._bounded(constants[0] + constants[1])
                return constants
            if isinstance(instruction, (MUnaryV, MNegI, MNegD)):
                op = instruction.op if isinstance(instruction, MUnaryV) else Op.NEG
                if folded:
                    return (operations.unary_op(op, constants[0]),)
                return constants
            if isinstance(instruction, MNot):
                if folded:
                    return (not to_boolean(constants[0]),)
                return constants
            if isinstance(instruction, MToDouble):
                if folded:
                    return (float(constants[0]),)
                return constants
            if isinstance(instruction, MToInt32):
                if folded:
                    return (operations.to_int32(constants[0]),)
                return constants
            if isinstance(instruction, MTypeOf):
                if folded:
                    return (type_of(constants[0]),)
                operand_type = instruction.operands[0].type
                by_type = _TYPEOF_BY_MIRTYPE.get(operand_type)
                if operand_type != MIRType.VALUE and by_type is not None:
                    return (by_type,)
                return constants
            if isinstance(instruction, (MUnbox, MTypeBarrier)):
                if folded:
                    expected = (
                        instruction.type
                        if isinstance(instruction, MUnbox)
                        else instruction.expected
                    )
                    if value_matches_mirtype(constants[0], expected):
                        return (constants[0],)
                    if expected == MIRType.DOUBLE and value_matches_mirtype(
                        constants[0], MIRType.INT32
                    ):
                        # Numbers widen: an int32 passes a double guard.
                        return (constants[0],)
                    return _TOP
                return constants
            if isinstance(instruction, MStringLength):
                if folded:
                    return (len(constants[0]),)
                return constants
            if isinstance(instruction, MGetPropV):
                if folded and type(constants[0]) is str and instruction.name == "length":
                    return (len(constants[0]),)
                return _TOP
            if isinstance(instruction, MCall):
                return self._fold_native_call(instruction)
        except ReproError:
            return _TOP
        except (ZeroDivisionError, OverflowError, ValueError):
            return _TOP
        return _TOP

    def _type_based_equality(self, instruction):
        """Fold ``===``/``!==`` when operand types are provably disjoint."""
        if instruction.op not in (Op.STRICTEQ, Op.STRICTNE):
            return _TOP
        lhs_type = instruction.operands[0].type
        rhs_type = instruction.operands[1].type
        if lhs_type == rhs_type or MIRType.VALUE in (lhs_type, rhs_type):
            return _TOP
        numeric = (MIRType.INT32, MIRType.DOUBLE)
        if lhs_type in numeric and rhs_type in numeric:
            return _TOP
        if lhs_type in _DISJOINT_TYPES or rhs_type in _DISJOINT_TYPES:
            return (instruction.op == Op.STRICTNE,)
        return _TOP

    def _fold_native_call(self, instruction):
        callee_state = self.state_of(instruction.callee)
        if callee_state == _BOTTOM:
            return _BOTTOM
        if callee_state == _TOP:
            return _TOP
        callee = callee_state[0]
        if not isinstance(callee, NativeFunction) or not callee.foldable:
            return _TOP
        args = []
        for operand in instruction.call_args:
            state = self.state_of(operand)
            if state == _BOTTOM:
                return _BOTTOM
            if state == _TOP:
                return _TOP
            args.append(state[0])
        try:
            return self._bounded(callee.fn(None, args))
        except Exception:
            return _TOP

    # -- rewriting --------------------------------------------------------------------

    def rewrite(self):
        """Replace constant definitions with MConstant nodes.

        Returns the number of folded instructions — the quantity the
        paper's Figure 7(b) annotates ("the 14 instructions that we
        have been able to fold").
        """
        folded = 0
        for block in list(self.graph.blocks):
            for phi in list(block.phis):
                state = self.constant_of(phi)
                if state is None or self._breaks_int32_contract(phi, state):
                    continue
                replacement = MConstant(state[0])
                block.instructions.insert(0, replacement)
                replacement.block = block
                self.graph.assign_id(replacement)
                phi.replace_all_uses_with(replacement)
                block.remove_phi(phi)
                folded += 1
            for instruction in list(block.instructions):
                if isinstance(instruction, MConstant) or instruction.is_control:
                    continue
                state = self.constant_of(instruction)
                if state is None or self._breaks_int32_contract(instruction, state):
                    continue
                if instruction.effect != 0 and not self._is_foldable_call(instruction):
                    continue
                replacement = MConstant(state[0])
                block.insert_before(instruction, replacement)
                instruction.replace_all_uses_with(replacement)
                block.remove_instruction(instruction)
                folded += 1
        return folded

    @staticmethod
    def _breaks_int32_contract(definition, state):
        """True when materializing ``state`` would break INT32 typing.

        Specialized int32 arithmetic can *fold* out of int32 (overflow,
        negative zero, uint32 ``>>>``) — the lattice keeps the true JS
        value so double-typed consumers still fold through it — but the
        definition itself promises an INT32 result and bails at runtime
        instead.  Replacing it with a double constant would delete that
        bailout and feed a raw float into INT32-typed uses (the whole
        backend inlines ``bitop_i`` as a host ``&``), so the definition
        must survive for the guard to fire.
        """
        return definition.type == MIRType.INT32 and type(state[0]) is not int

    def _is_foldable_call(self, instruction):
        if not isinstance(instruction, MCall):
            return False
        state = self.constant_of(instruction.callee)
        if state is None:
            return False
        return isinstance(state[0], NativeFunction) and state[0].foldable


def run_constant_propagation(graph):
    """Run the full pass; returns the number of folded instructions."""
    cp = ConstantPropagation(graph)
    cp.analyze()
    return cp.rewrite()
