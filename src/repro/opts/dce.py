"""Dead-code elimination (paper §3.5).

Runs after constant propagation "to give instruction folding the
chance to transform conditional branches into simple boolean values":

1. *Branch folding* — a ``test`` whose condition is a constant becomes
   a ``goto``; the untaken edge is removed (phi operands trimmed).
2. *Unreachable-block removal* — blocks no longer reachable from the
   entry points are deleted.  The function entry block itself is
   always kept, as the paper notes: the cached binary must remain
   callable from its function entry point.
3. *Dead-instruction elimination* — pure, removable instructions (and
   phis) with no remaining uses are deleted, iterating to a fixed
   point.  Resume-point references count as uses, so values the
   interpreter would need after a bailout stay alive.
4. *Trivial-phi cleanup* — collapsing the CFG leaves single-input
   phis behind; they are forwarded.
"""

from repro.jsvm.values import to_boolean
from repro.mir.instructions import EFFECT_STORE, MConstant, MGoto, MTest


def fold_branches(graph):
    """Rewrite constant ``test``s to ``goto``s; returns count folded."""
    folded = 0
    for block in list(graph.blocks):
        terminator = block.terminator
        if not isinstance(terminator, MTest):
            continue
        condition = terminator.operands[0]
        if not isinstance(condition, MConstant):
            continue
        taken_index = 0 if to_boolean(condition.value) else 1
        taken = terminator.successors[taken_index]
        untaken = terminator.successors[1 - taken_index]
        block.remove_instruction(terminator)
        goto = MGoto(taken)
        block.append(goto)
        if untaken is not taken and block in untaken.predecessors:
            untaken.remove_predecessor(block)
        folded += 1
    return folded


def remove_dead_instructions(graph):
    """Delete unused pure instructions and phis; returns count removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in graph.blocks:
            for phi in list(block.phis):
                if not phi.has_uses():
                    block.remove_phi(phi)
                    removed += 1
                    changed = True
            for instruction in list(block.instructions):
                if instruction.is_control or not instruction.removable:
                    continue
                if instruction.effect == EFFECT_STORE:
                    continue
                if instruction.has_uses():
                    continue
                block.remove_instruction(instruction)
                removed += 1
                changed = True
    return removed


def simplify_trivial_phis(graph):
    """Forward phis whose inputs are all identical (or self + one)."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in graph.blocks:
            for phi in list(block.phis):
                inputs = set(op for op in phi.operands if op is not phi)
                if len(inputs) == 1:
                    phi.replace_all_uses_with(inputs.pop())
                    block.remove_phi(phi)
                    removed += 1
                    changed = True
    return removed


def merge_blocks(graph):
    """Merge straight-line block pairs (goto to a single-pred block).

    Standard CFG cleanup every compiler performs: ``B: ...; goto S``
    where ``S`` has no other predecessors (and no phis) folds into one
    block.  Entry blocks are never merged away.
    """
    merged = 0
    entries = set(id(block) for block in graph.entries())
    changed = True
    while changed:
        changed = False
        for block in list(graph.blocks):
            terminator = block.terminator
            if not isinstance(terminator, MGoto):
                continue
            successor = terminator.successors[0]
            if (
                successor is block
                or id(successor) in entries
                or successor.phis
                or len(successor.predecessors) != 1
            ):
                continue
            block.remove_instruction(terminator)
            for instruction in successor.instructions:
                instruction.block = block
            block.instructions.extend(successor.instructions)
            successor.instructions = []
            new_terminator = block.terminator
            if new_terminator is not None:
                for next_successor in new_terminator.successors:
                    for index, predecessor in enumerate(next_successor.predecessors):
                        if predecessor is successor:
                            next_successor.predecessors[index] = block
            graph.blocks.remove(successor)
            merged += 1
            changed = True
    return merged


def run_dce(graph):
    """The full §3.5 pass; returns (branches folded, blocks removed,
    instructions removed)."""
    branches = fold_branches(graph)
    blocks = graph.compact()
    phis = simplify_trivial_phis(graph)
    instructions = remove_dead_instructions(graph)
    return branches, blocks, instructions + phis
