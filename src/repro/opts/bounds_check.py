"""Array-bounds-check elimination (paper §3.6).

Removes ``boundscheck`` guards when the trivial range analysis proves
``0 <= index < length``:

* the index must be a recognized induction variable (or a constant);
* the array length must be known at compile time, which happens when
  the array is itself a *specialization constant* — a concrete JSArray
  reference baked in by parameter specialization — exactly the
  situation of the paper's Figure 8(b), where ``s2``'s length is known
  because ``s2`` is the baked-in reference ``0xFF3D8800``.

Aliasing discipline: the length of a constant array is only trusted if
nothing in the graph can change any array's length.  Guarded
``storeelement`` instructions cannot grow an array (they bail out
instead), so they are harmless; generic element/property stores and
calls make the pass give up, the same conservative all-or-nothing
aliasing the paper describes IonMonkey using.
"""

from repro.mir.instructions import (
    MArrayLength,
    MBoundsCheck,
    MCall,
    MConstant,
    MNew,
    MSetElemV,
    MSetPropV,
    MStoreGlobal,
    MStoreProperty,
)
from repro.opts.loops import find_loops
from repro.opts.range_analysis import compute_ranges
from repro.jsvm.objects import JSArray

#: Instruction classes that may (directly or through reentrancy)
#: change some array's length.
_LENGTH_CLOBBERS = (MSetElemV, MSetPropV, MCall, MNew, MStoreProperty, MStoreGlobal)


def _graph_may_resize_arrays(graph):
    for instruction in graph.all_instructions():
        if isinstance(instruction, _LENGTH_CLOBBERS):
            return True
    return False


def _known_length(length_def, may_resize):
    """Compile-time array length, or None."""
    if isinstance(length_def, MConstant) and type(length_def.value) is int:
        return length_def.value
    if isinstance(length_def, MArrayLength):
        array = length_def.operands[0]
        if isinstance(array, MConstant) and isinstance(array.value, JSArray):
            if not may_resize:
                return array.value.length
    return None


def run_bounds_check_elimination(graph):
    """Remove provably safe bounds checks; returns the count removed."""
    loops = find_loops(graph)
    ranges = compute_ranges(graph, loops)
    may_resize = _graph_may_resize_arrays(graph)

    in_loop_blocks = {}
    for loop in loops:
        for block in loop.blocks:
            in_loop_blocks.setdefault(id(block), []).append(loop)

    removed = 0
    for block in list(graph.blocks):
        for instruction in list(block.instructions):
            if not isinstance(instruction, MBoundsCheck):
                continue
            index_def, length_def = instruction.operands
            length = _known_length(length_def, may_resize)
            if length is None:
                continue
            index_range = _index_range(index_def, ranges, block, in_loop_blocks)
            if index_range is None:
                continue
            low, high = index_range
            if 0 <= low and high < length:
                block.remove_instruction(instruction)
                removed += 1
    return removed


def _index_range(index_def, ranges, block, in_loop_blocks):
    """The index's [low, high], honouring loop-scoped ranges."""
    if isinstance(index_def, MConstant) and type(index_def.value) is int:
        return index_def.value, index_def.value
    found = ranges.get(index_def)
    if found is None:
        return None
    # Induction ranges hold for uses *inside* the loop body; a use
    # after the loop may see the final (exceeding) value.
    loops_here = in_loop_blocks.get(id(block), [])
    index_loops = in_loop_blocks.get(id(index_def.block), [])
    if not any(loop in loops_here for loop in index_loops):
        return None
    return found.low, found.high
