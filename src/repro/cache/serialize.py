"""Artifact (de)serialization for the persistent code cache.

A cached artifact is a plain-data snapshot of one
:class:`~repro.engine.jit.CompileResult`: the finalized native
instruction stream (physical operand locations, resolved jump targets,
guard snapshots), the immediate pool, the compile-cost inputs (pass
work units, codegen stats, MIR size) and, when the closure backend
produced one, the generated Python source plus its marshalled code
object.  Everything is encoded to structures :mod:`marshal` handles
natively — no pickle, no executable state beyond the closure module
code (which is only trusted after a byte-exact source match, see
:mod:`repro.lir.closures`).

Guest values that appear in artifacts (immediates, specialized-args
metadata, instruction extras) are encoded with a small tagged scheme;
anything the scheme cannot represent faithfully — object references,
live functions — raises :class:`Uncacheable` and the compile is simply
not cached.  Nested :class:`~repro.jsvm.bytecode.CodeObject` references
(the ``lambda`` instruction's payload) are encoded as constant-pool
indices and re-resolved against the live code object at load time, so
a thawed binary creates closures over the *current* run's code objects.
"""

from repro.jsvm.bytecode import CodeObject
from repro.jsvm.values import NULL, UNDEFINED
from repro.lir.lir_nodes import LInstruction, Snapshot
from repro.lir.native import NativeCode, annotate_static_costs


class Uncacheable(Exception):
    """Raised when a value cannot be faithfully serialized.

    The caller treats this as "do not cache this compile" — never as an
    error surfaced to the user.
    """


#: Bump when the artifact layout changes; part of every cache key, so a
#: layout change simply misses instead of misreading old entries.
#: v2: added the whole-function backend's module artifact ("whole").
#: v3: guardshape bails carry the observed shape id (changes the
#: generated closure/whole sources) and meta gained "ic_fingerprint".
FORMAT_VERSION = 3

_PRIMITIVES = (int, float, bool, str)


def encode_value(value, code):
    """Encode one guest value (or instruction payload) as plain data.

    ``code`` is the function being compiled; nested code objects are
    encoded as indices into its constant pool.  Raises
    :class:`Uncacheable` for anything identity-based.
    """
    if value is None:
        return ("n",)
    if value is True or value is False:
        # Before int: bool is an int subtype and marshal keeps the
        # distinction, but tagging explicitly keeps decode trivial.
        return ("b", bool(value))
    kind = type(value)
    if kind in (int, float, str):
        return ("p", value)
    if value is UNDEFINED:
        return ("u",)
    if value is NULL:
        return ("z",)
    if kind is tuple:
        return ("t", [encode_value(item, code) for item in value])
    if kind is list:
        return ("l", [encode_value(item, code) for item in value])
    if kind is dict:
        items = []
        for key in value:
            if type(key) is not str:
                raise Uncacheable("non-string dict key %r" % (key,))
            items.append((key, encode_value(value[key], code)))
        items.sort()
        return ("d", items)
    if kind is CodeObject:
        for index, constant in enumerate(code.constants):
            if constant is value:
                return ("c", index)
        raise Uncacheable("code object %r not in the constant pool" % value.name)
    raise Uncacheable("unserializable value %r" % (value,))


def decode_value(encoded, code):
    """Invert :func:`encode_value` against the live ``code`` object."""
    tag = encoded[0]
    if tag == "n":
        return None
    if tag == "b":
        return encoded[1]
    if tag == "p":
        return encoded[1]
    if tag == "u":
        return UNDEFINED
    if tag == "z":
        return NULL
    if tag == "t":
        return tuple(decode_value(item, code) for item in encoded[1])
    if tag == "l":
        return [decode_value(item, code) for item in encoded[1]]
    if tag == "d":
        return {key: decode_value(item, code) for key, item in encoded[1]}
    if tag == "c":
        return code.constants[encoded[1]]
    raise ValueError("unknown value tag %r" % (tag,))


def _encode_snapshot(snapshot):
    if snapshot.locations is None:
        raise Uncacheable("snapshot without located values")
    return (
        snapshot.pc,
        snapshot.mode,
        snapshot.num_args,
        snapshot.num_locals,
        list(snapshot.locations),
        snapshot.snapshot_id,
    )


def _decode_snapshot(encoded):
    pc, mode, num_args, num_locals, locations, snapshot_id = encoded
    snapshot = Snapshot(pc, mode, num_args, num_locals, list(locations))
    snapshot.locations = list(locations)
    snapshot.snapshot_id = snapshot_id
    return snapshot


def _encode_instruction(instruction, code):
    return (
        instruction.op,
        instruction.dest,
        list(instruction.srcs),
        encode_value(instruction.extra, code),
        None if instruction.snapshot is None else _encode_snapshot(instruction.snapshot),
        None if instruction.targets is None else list(instruction.targets),
    )


def _decode_instruction(encoded, code):
    op, dest, srcs, extra, snapshot, targets = encoded
    return LInstruction(
        op,
        dest=dest,
        srcs=srcs,
        extra=decode_value(extra, code),
        snapshot=None if snapshot is None else _decode_snapshot(snapshot),
        targets=None if targets is None else list(targets),
    )


def freeze_result(result, code):
    """Encode a :class:`CompileResult` as a plain-data artifact dict.

    Raises :class:`Uncacheable` when any component resists faithful
    serialization (the caller then skips the store).
    """
    native = result.native
    return {
        "format": FORMAT_VERSION,
        "fn": code.name,
        "native": {
            "entry_index": native.entry_index,
            "osr_index": native.osr_index,
            "num_slots": native.num_slots,
            "immediates": [encode_value(value, code) for value in native.immediates],
            "meta": encode_value(dict(native.meta), code),
            "instructions": [
                _encode_instruction(instruction, code)
                for instruction in native.instructions
            ],
        },
        "work_units": result.work.total_units,
        "codegen_stats": dict(result.codegen_stats),
        "mir_instructions": result.mir_instructions,
        "closure": None,
        "whole": None,
    }


class ReplayedPassWork(object):
    """Stand-in for :class:`~repro.opts.pass_manager.PassWork`.

    A thawed artifact only needs the total work units the original
    pass pipeline reported — the engine charges compile cycles from
    ``total_units`` and nothing else — so the per-pass breakdown is
    not persisted.
    """

    __slots__ = ("total_units",)

    def __init__(self, total_units):
        self.total_units = total_units


def thaw_result(artifact, code):
    """Rebuild a :class:`CompileResult` from an artifact dict.

    ``code`` must be the same guest function the artifact was frozen
    from (the cache key guarantees it).  The rebuilt native is
    re-priced with :func:`annotate_static_costs` exactly as
    ``generate_native`` would have, so cycle accounting is identical
    to a fresh compile.
    """
    from repro.engine.jit import CompileResult

    blob = artifact["native"]
    instructions = [
        _decode_instruction(encoded, code) for encoded in blob["instructions"]
    ]
    annotate_static_costs(instructions)
    native = NativeCode(
        code,
        instructions,
        entry_index=blob["entry_index"],
        osr_index=blob["osr_index"],
        num_slots=blob["num_slots"],
        meta=decode_value(blob["meta"], code),
        immediates=[decode_value(value, code) for value in blob["immediates"]],
    )
    closure = artifact.get("closure")
    if closure is not None:
        native.disk_closure = (closure["source"], closure["code"])
    whole = artifact.get("whole")
    if whole is not None:
        native.disk_whole = (whole["source"], whole["code"])
    return CompileResult(
        native,
        ReplayedPassWork(artifact["work_units"]),
        dict(artifact["codegen_stats"]),
        None,
        mir_instructions=artifact["mir_instructions"],
    )
