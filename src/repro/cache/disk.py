"""The on-disk, content-addressed code store.

Layout (under ``$REPRO_CACHE_DIR``, default ``~/.cache/repro``)::

    <root>/code/<key[:2]>/<key>.bin

where ``key`` is the SHA-256 over every input that determines the
compile's output — see :meth:`DiskCodeCache.key_for` for the full
anatomy (also documented in docs/COMPILE_PIPELINE.md).  Entries are
written atomically (temp file + ``os.replace``) so concurrent runs
sharing a cache directory never observe torn artifacts; corrupt or
version-skewed entries read as misses, never as errors.

Every entry is integrity-framed on disk: a magic tag, the payload
length, and a SHA-256 digest precede the marshalled artifact (see
:data:`ENTRY_MAGIC`).  :meth:`DiskCodeCache.load` verifies the frame
*before* unmarshalling, so a truncated, bit-flipped or
foreign-format file — e.g. a reader racing a non-atomic copy of the
cache directory, or a crashed writer on a filesystem without atomic
rename — is detected as a miss instead of being fed to ``marshal``
(which happily decodes some prefixes of valid input).
"""

import hashlib
import marshal
import os
import sys
import tempfile

from repro.cache.serialize import (
    FORMAT_VERSION,
    Uncacheable,
    freeze_result,
    thaw_result,
)
from repro.jsvm.bytecode import CodeObject
from repro.jsvm.feedback import shape_ic_fingerprint
from repro.jsvm.values import value_key


#: First bytes of every cache entry.  The trailing version digit is
#: bumped whenever the framing itself changes (the artifact format has
#: its own ``FORMAT_VERSION`` inside the payload).
ENTRY_MAGIC = b"RPC1"

#: Frame layout: magic, 8-byte big-endian payload length, 32-byte
#: SHA-256 of the payload, then the payload itself.
_FRAME_HEADER_SIZE = len(ENTRY_MAGIC) + 8 + 32


def _frame_entry(payload):
    """Wrap a marshalled artifact in the integrity frame."""
    return b"".join(
        [
            ENTRY_MAGIC,
            len(payload).to_bytes(8, "big"),
            hashlib.sha256(payload).digest(),
            payload,
        ]
    )


def _unframe_entry(blob):
    """Return the verified payload of a framed entry, or None.

    None means the blob is not a complete, intact entry written by
    this code: wrong magic (foreign or pre-framing file), short or
    over-long data (torn or concatenated write), or digest mismatch
    (corruption).  Callers treat all of these as cache misses.
    """
    if len(blob) < _FRAME_HEADER_SIZE or not blob.startswith(ENTRY_MAGIC):
        return None
    offset = len(ENTRY_MAGIC)
    length = int.from_bytes(blob[offset : offset + 8], "big")
    digest = blob[offset + 8 : offset + 40]
    payload = blob[_FRAME_HEADER_SIZE:]
    if len(payload) != length:
        return None
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


def default_cache_root():
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return root
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _key_value(value):
    """A hashable, repr-stable stand-in for one fingerprint component.

    Raises :class:`Uncacheable` for identity-based values — their
    content cannot be named across runs.
    """
    from repro.jsvm.values import NULL, UNDEFINED

    if value is None or value is True or value is False:
        return value
    kind = type(value)
    if kind in (int, float, str):
        return value
    if value is UNDEFINED:
        return ("undefined",)
    if value is NULL:
        return ("null",)
    if kind in (tuple, list):
        return tuple(_key_value(item) for item in value)
    raise Uncacheable("cannot fingerprint %r" % (value,))


def _code_fingerprint(code):
    """Recursive content fingerprint of one guest code object.

    Captures everything the MIR builder reads: the instruction stream
    (post any bytecode rewriting, since the fingerprint is taken at
    compile time), the name tables, and the constant pool with nested
    function bodies fingerprinted recursively.
    """
    constants = []
    for constant in code.constants:
        if type(constant) is CodeObject:
            constants.append(("code", _code_fingerprint(constant)))
        else:
            constants.append(_key_value(constant))
    return (
        code.name,
        tuple(code.params),
        tuple(code.local_names),
        tuple(code.cell_names),
        tuple(code.free_names),
        tuple(code.names),
        code.uses_this,
        code.self_name,
        tuple((instr.op, _key_value(instr.arg)) for instr in code.instructions),
        tuple(constants),
    )


def _value_keys(values):
    """``value_key`` per value; :class:`Uncacheable` on any reference key."""
    keys = []
    for value in values:
        key = value_key(value)
        if key[0] == "ref":
            raise Uncacheable("object-reference value %r" % (value,))
        keys.append(key)
    return tuple(keys)


# Canonical shape-IC fingerprint: shared with the engine's
# retrain-noop detector, so the definition lives next to the IC itself.
_shape_ic_fingerprint = shape_ic_fingerprint


def _feedback_fingerprint(feedback):
    """Canonical (sorted) snapshot of a :class:`TypeFeedback`, or None."""
    if feedback is None:
        return None
    return (
        tuple(tuple(sorted(tags)) for tags in feedback.arg_tags),
        tuple(sorted(feedback.this_tags)),
        tuple(sorted((pc, tuple(sorted(tags))) for pc, tags in feedback.site_tags.items())),
        tuple(sorted((pc, tuple(sorted(tags))) for pc, tags in feedback.recv_tags.items())),
        _shape_ic_fingerprint(feedback.shape_ics),
    )


def content_key(
    code,
    config,
    feedback=None,
    param_values=None,
    this_value=None,
    osr_pc=None,
    osr_args=None,
    osr_locals=None,
    generic=False,
    shape_guards=True,
):
    """The content key for one compile; raises :class:`Uncacheable`.

    Pure keying logic shared by :meth:`DiskCodeCache.key_for` and the
    per-tenant cache views in ``repro.serving.shards`` (which keep
    their own ``uncacheable`` counters).  See ``key_for`` for the key
    anatomy.
    """
    if not config.param_spec:
        param_values = None
        this_value = None
    structure = (
        "repro-code-cache",
        FORMAT_VERSION,
        tuple(sys.version_info[:2]),
        marshal.version,
        _code_fingerprint(code),
        tuple((slot, getattr(config, slot)) for slot in config.__slots__),
        bool(generic),
        bool(shape_guards),
        osr_pc,
        None if param_values is None else _value_keys(param_values),
        None if this_value is None else _value_keys([this_value]),
        None if osr_args is None else _value_keys(osr_args),
        None if osr_locals is None else _value_keys(osr_locals),
        _feedback_fingerprint(feedback),
    )
    return hashlib.sha256(repr(structure).encode("utf-8")).hexdigest()


class DiskCodeCache(object):
    """Content-addressed store of compiled artifacts across runs.

    The engine probes it inside ``_produce``: :meth:`key_for` names the
    compile (or refuses), :meth:`load` returns a thawed
    :class:`~repro.engine.jit.CompileResult` on a hit, and
    :meth:`store` persists a fresh compile — including the closure
    backend's generated module when ``executor`` is a
    :class:`~repro.lir.closures.ClosureExecutor`.  In-process counters
    (``hits``/``misses``/``stores``/``uncacheable``) feed the CLI's
    ``repro cache`` report and the bench harness.
    """

    def __init__(self, root=None):
        self.root = root if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.uncacheable = 0
        #: Misses caused by a *present but unusable* entry — torn or
        #: bit-flipped frame, unmarshalable payload, version skew, or a
        #: thaw failure.  Every corruption-degraded read also counts as
        #: a miss; this counter says how many of the misses were
        #: degradations rather than absences.
        self.corrupt = 0
        #: Entries removed by :meth:`evict` (size/entry pressure).
        self.evictions = 0

    # -- keying --------------------------------------------------------------

    def key_for(
        self,
        code,
        config,
        feedback=None,
        param_values=None,
        this_value=None,
        osr_pc=None,
        osr_args=None,
        osr_locals=None,
        generic=False,
        shape_guards=True,
    ):
        """The content key for one compile, or None if uncacheable.

        The key covers, in order: the artifact format version and host
        marshal format (so incompatible stores read as misses), the
        recursive code fingerprint, the optimization configuration, the
        generic and shape-guard flags, the OSR entry state (pc plus the
        value keys of the live frame), the specialization values (value
        keys of ``this`` and the arguments when parameter
        specialization will bake them in), and the type-feedback
        snapshot.  Any component that is identity-based — an
        object-reference argument, a constant with no content name —
        makes the whole compile uncacheable.
        """
        try:
            return content_key(
                code,
                config,
                feedback=feedback,
                param_values=param_values,
                this_value=this_value,
                osr_pc=osr_pc,
                osr_args=osr_args,
                osr_locals=osr_locals,
                generic=generic,
                shape_guards=shape_guards,
            )
        except Uncacheable:
            self.uncacheable += 1
            return None

    # -- storage -------------------------------------------------------------

    def _path(self, key):
        return os.path.join(self.root, "code", key[:2], key + ".bin")

    def load(self, key, code):
        """Thaw the artifact stored under ``key`` for ``code``, or None.

        Anything unexpected — missing file, version skew, a torn or
        corrupted frame — is a miss; the engine then compiles (and
        re-stores) normally.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self.misses += 1
            return None
        payload = _unframe_entry(blob)
        if payload is None:
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            artifact = marshal.loads(payload)
        except (ValueError, EOFError, TypeError):
            self.corrupt += 1
            self.misses += 1
            return None
        if not isinstance(artifact, dict) or artifact.get("format") != FORMAT_VERSION:
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            result = thaw_result(artifact, code)
        except Exception:
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key, result, executor=None):
        """Persist ``result`` under ``key``; returns True on success.

        When ``executor`` is a codegen backend (closure or whole), its
        generated module (source + marshalled code object) rides along
        so a warm run also skips host ``compile()`` time — the dominant
        cost on those backends (see
        :func:`repro.lir.closures.closure_artifact` and
        :func:`repro.lir.wholefn.whole_artifact`).
        """
        try:
            artifact = freeze_result(result, result.native.code)
        except Uncacheable:
            self.uncacheable += 1
            return False
        if executor is not None:
            from repro.lir.closures import closure_artifact
            from repro.lir.wholefn import whole_artifact

            closure = closure_artifact(result.native, executor)
            if closure is not None:
                artifact["closure"] = closure
            whole = whole_artifact(result.native, executor)
            if whole is not None:
                artifact["whole"] = whole
        path = self._path(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            # Atomic publish: frame into a private temp file in the
            # destination directory (same filesystem), then rename over
            # the final name.  Concurrent writers race benignly — the
            # last complete frame wins — and readers only ever see
            # either no file or a complete frame.
            handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(handle, "wb") as out:
                    out.write(_frame_entry(marshal.dumps(artifact)))
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.stores += 1
        return True

    # -- maintenance ---------------------------------------------------------

    def stats(self):
        """Store-wide stats dict: location, entry count/bytes, counters."""
        entries = 0
        total_bytes = 0
        code_root = os.path.join(self.root, "code")
        if os.path.isdir(code_root):
            for dirpath, _dirnames, filenames in os.walk(code_root):
                for filename in filenames:
                    if not filename.endswith(".bin"):
                        continue
                    entries += 1
                    try:
                        total_bytes += os.path.getsize(os.path.join(dirpath, filename))
                    except OSError:
                        pass
        return {
            "root": self.root,
            "entries": entries,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
        }

    def _entries(self):
        """Every stored artifact as ``(mtime, path, size)``, sorted.

        Oldest first; ties break on path so eviction order is
        deterministic for a given directory state.
        """
        found = []
        code_root = os.path.join(self.root, "code")
        if not os.path.isdir(code_root):
            return found
        for dirpath, _dirnames, filenames in os.walk(code_root):
            for filename in filenames:
                if not filename.endswith(".bin"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                found.append((status.st_mtime, path, status.st_size))
        found.sort()
        return found

    def evict(self, max_bytes=None, max_entries=None):
        """Prune oldest entries until the store fits the given bounds.

        LRU-by-mtime (``load`` leaves mtimes untouched, so "oldest"
        means least-recently *written*; a warm artifact that keeps
        getting re-stored stays young).  Either bound may be None
        (unbounded); with both None this is a no-op.  Returns the
        number of entries removed and adds it to ``evictions``.

        Safe against a concurrent writer racing the prune: the victim
        is first renamed aside to a ``.evict`` tombstone (atomic, and
        excluded from ``_entries``/``stats`` by the ``.bin`` filter),
        then unlinked.  A writer re-publishing the same key via
        ``store``'s ``os.replace`` either lands before the rename — its
        complete frame becomes the victim, which is correct LRU
        behaviour and never tears the file — or after it, in which case
        the fresh artifact survives untouched under the final name.  An
        entry that vanished between the directory walk and the rename
        (another evictor, a ``clear``) is skipped without being
        counted.
        """
        if max_bytes is None and max_entries is None:
            return 0
        entries = self._entries()
        total_bytes = sum(size for _mtime, _path, size in entries)
        total_entries = len(entries)
        removed = 0
        for _mtime, path, size in entries:
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            over_entries = max_entries is not None and total_entries > max_entries
            if not over_bytes and not over_entries:
                break
            tombstone = path + ".evict"
            try:
                os.replace(path, tombstone)
            except FileNotFoundError:
                # Gone already (concurrent evictor or clear): it no
                # longer occupies the store, so drop it from the
                # running totals, but it is not our eviction.
                total_bytes -= size
                total_entries -= 1
                continue
            except OSError:
                continue
            try:
                os.unlink(tombstone)
            except OSError:
                # A crash here merely leaks a tombstone; the next
                # evict pass sweeps it (below) and readers never look
                # at non-``.bin`` names.
                pass
            removed += 1
            total_bytes -= size
            total_entries -= 1
        self.evictions += removed
        self._sweep_tombstones()
        return removed

    def _sweep_tombstones(self):
        """Remove ``.evict`` tombstones left by an interrupted prune."""
        code_root = os.path.join(self.root, "code")
        if not os.path.isdir(code_root):
            return
        for dirpath, _dirnames, filenames in os.walk(code_root):
            for filename in filenames:
                if not filename.endswith(".evict"):
                    continue
                try:
                    os.unlink(os.path.join(dirpath, filename))
                except OSError:
                    pass

    def clear(self):
        """Delete every stored artifact; returns the number removed."""
        removed = 0
        code_root = os.path.join(self.root, "code")
        if not os.path.isdir(code_root):
            return removed
        for dirpath, _dirnames, filenames in os.walk(code_root, topdown=False):
            for filename in filenames:
                try:
                    os.unlink(os.path.join(dirpath, filename))
                    if filename.endswith(".bin"):
                        removed += 1
                except OSError:
                    pass
            try:
                os.rmdir(dirpath)
            except OSError:
                pass
        return removed
