"""Persistent cross-run code cache.

Compilation in this reproduction is deterministic: the native binary a
compile produces is a pure function of the guest bytecode, the
optimization configuration, the type feedback, and (under parameter
specialization) the concrete argument values.  That makes compiled
artifacts content-addressable — hash the inputs, store the output —
and lets a *warm* run skip the whole MIR → LIR → codegen pipeline on
the host, the same trick every production JIT with a startup cache
plays (JSC's bytecode cache, V8's code cache, HHVM's repo-authoritative
mode).

Two invariants keep the cache honest:

* **Purely a wall-clock optimization.**  The simulated cycle ledger is
  computed from the artifact's recorded work units and codegen stats,
  so ``EngineStats`` — including ``compile_cycles`` — and the printed
  output are bit-identical between a cold and a warm run.  Only host
  time changes.  (The one visible trace difference: per-pass
  ``pass.run`` events are absent on a disk hit, replaced by a
  ``cache.disk_hit`` event; see docs/TRACING.md.)
* **Refuse rather than guess.**  Any input the key cannot capture
  faithfully — an object-reference argument under specialization, an
  unserializable constant — makes the compile uncacheable
  (:meth:`DiskCodeCache.key_for` returns ``None``) and the engine
  compiles normally.

The store lives under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``); see docs/COMPILE_PIPELINE.md for the key anatomy
and ``python -m repro cache`` for inspection/clearing.
"""

from repro.cache.disk import DiskCodeCache, default_cache_root

__all__ = ["DiskCodeCache", "default_cache_root"]
