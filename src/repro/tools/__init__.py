"""Command-line tooling: ``python -m repro <command>``."""

from repro.tools.cli import main

__all__ = ["main"]
