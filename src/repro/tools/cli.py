"""The ``repro`` command line interface.

Subcommands::

    python -m repro run script.js [--config all] [--stats]
    python -m repro trace script.js [--channels compile,deopt] [--jsonl f] [--chrome f]
    python -m repro profile script.js [--json]
    python -m repro profile script.js --cycles [--json] [--collapsed f] [--top 20]
    python -m repro annotate script.js --function f [--config all]
    python -m repro disasm script.js --function f [--config all]
    python -m repro bench --suite sunspider [--configs PS,PS+CP,all] [--jobs N] [--metrics]
    python -m repro bench --wallclock [--repeats 3] [--output BENCH_wallclock.json]
    python -m repro bench --compare BASELINE.json [--input NEW.json] [--report-only]
    python -m repro metrics workload [--interval N] [--prometheus f] [--jsonl f] [--json]
    python -m repro top workload [--interval N]
    python -m repro fuzz [--seed 0] [--iterations 100] [--matrix jit,chaos] [--corpus-dir DIR]
    python -m repro cache stats|clear|evict [--dir DIR] [--max-bytes N] [--max-entries N]
    python -m repro configs

``run`` executes a guest script under the JIT; ``trace`` runs a script
or a named benchmark (e.g. ``sunspider/bitops-bits-in-byte``) with the
JIT event tracer on and prints the per-function timeline, optionally
writing JSONL and Chrome ``trace_event`` files (see docs/TRACING.md);
``profile`` prints the Section 2-style call histogram, or with
``--cycles`` the cycle-exact (function, tier, block) attribution of
``total_cycles`` with optional flamegraph export (docs/PROFILING.md);
``annotate`` interleaves a function's native disassembly with
per-instruction execution counts, cycle shares and guard failures;
``disasm`` shows a function's optimized MIR and native code; ``bench``
runs a suite sweep and prints its Figure 9 row — with ``--compare``
it instead runs the bench regression sentinel against a stored
baseline (docs/METRICS.md); ``metrics`` runs a workload with the
deterministic metrics registry attached and exports Prometheus text
or JSONL snapshots; ``top`` renders the same registry as a one-shot
console dashboard; ``fuzz`` runs the
differential fuzzer — seeded program generation, the cross-engine
oracle, chaos deopt and ddmin shrinking (docs/FUZZING.md); ``cache``
inspects or clears the persistent cross-run code cache
(docs/COMPILE_PIPELINE.md); ``configs`` lists the available
optimization configurations.

``run`` and ``trace`` accept ``--background``/``--no-background`` to
toggle the background compilation lane and ``--code-cache [DIR]`` to
compile through the persistent code cache.
"""

import argparse
import sys

from repro.engine.config import BASELINE, EXTENDED, FULL_SPEC, PAPER_CONFIGS
from repro.engine.runtime_engine import Engine


def _config_registry():
    registry = {"baseline": BASELINE, "extended": EXTENDED}
    for config in PAPER_CONFIGS:
        registry[config.name] = config
    return registry


def _resolve_config(name):
    registry = _config_registry()
    if name not in registry:
        raise SystemExit(
            "unknown config %r; available: %s" % (name, ", ".join(sorted(registry)))
        )
    return registry[name]


def _read_source(path):
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


# -- subcommands -------------------------------------------------------------


def _make_code_cache(args):
    """Build the persistent code cache requested by ``--code-cache``.

    ``None`` (flag absent) disables the cache; an empty value (bare
    ``--code-cache``) uses the default root (``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro``); anything else is an explicit directory.
    """
    spec = getattr(args, "code_cache", None)
    if spec is None:
        return None
    from repro.cache import DiskCodeCache

    return DiskCodeCache(root=spec if spec else None)


def cmd_run(args, out):
    """``repro run``: execute a guest script under the JIT."""
    config = _resolve_config(args.config)
    engine = Engine(
        config=config,
        spec_cache_capacity=args.cache_capacity,
        executor_backend=args.executor,
        background_compile=args.background,
        code_cache=_make_code_cache(args),
    )
    printed = engine.run_source(_read_source(args.script))
    for line in printed:
        out.write(line + "\n")
    if args.stats:
        out.write("\n-- engine stats (%s) --\n" % config.describe())
        for key, value in sorted(engine.stats.summary().items()):
            out.write("%-18s %s\n" % (key, value))
    return 0


def _resolve_workload(spec):
    """Turn a trace workload spec into guest source.

    ``spec`` is a script path (or ``-`` for stdin), a
    ``suite/benchmark`` pair, or a bare benchmark name searched across
    all suites.
    """
    import os

    if spec == "-" or os.path.exists(spec):
        return _read_source(spec)
    from repro.workloads import ALL_SUITES

    if "/" in spec:
        suite_name, _, bench_name = spec.partition("/")
        suite = ALL_SUITES.get(suite_name)
        if suite is None:
            raise SystemExit(
                "unknown suite %r; available: %s"
                % (suite_name, ", ".join(sorted(ALL_SUITES)))
            )
        for benchmark in suite:
            if benchmark.name == bench_name:
                return benchmark.source
        raise SystemExit(
            "no benchmark %r in %s; available: %s"
            % (bench_name, suite_name, ", ".join(b.name for b in suite))
        )
    for suite in ALL_SUITES.values():
        for benchmark in suite:
            if benchmark.name == spec:
                return benchmark.source
    raise SystemExit(
        "workload %r is neither a file nor a known benchmark "
        "(try e.g. sunspider/bitops-bits-in-byte)" % spec
    )


def cmd_trace(args, out):
    """``repro trace``: run a workload with the JIT event tracer on."""
    from repro.telemetry.tracing import (
        Tracer,
        format_timeline,
        write_chrome_trace,
        write_jsonl,
    )

    config = _resolve_config(args.config)
    channels = args.channels.split(",") if args.channels else None
    try:
        tracer = Tracer(channels=channels)
    except ValueError as error:
        raise SystemExit(str(error))
    source = _resolve_workload(args.workload)
    # profile.summary only exists when a profiler runs alongside the
    # tracer; asking for the channel implies wanting one.
    cycle_profiler = None
    if channels is None or "profile" in channels:
        from repro.telemetry.profiler import CycleProfiler

        cycle_profiler = CycleProfiler()
    engine = Engine(
        config=config,
        tracer=tracer,
        cycle_profiler=cycle_profiler,
        background_compile=args.background,
        code_cache=_make_code_cache(args),
    )
    engine.run_source(source)
    if args.jsonl:
        write_jsonl(tracer.events, args.jsonl)
        out.write("wrote %d events to %s\n" % (len(tracer.events), args.jsonl))
    if args.chrome:
        write_chrome_trace(tracer.events, args.chrome)
        out.write(
            "wrote Chrome trace to %s (load in chrome://tracing or Perfetto)\n"
            % args.chrome
        )
    if not args.no_timeline:
        out.write(format_timeline(tracer.events, limit=args.limit) + "\n")
    out.write(
        "-- %d events under %s (clock: model cycles) --\n"
        % (len(tracer.events), config.describe())
    )
    return 0


def _run_with_metrics(args):
    """Run ``args.workload`` under an engine with a metrics registry.

    Returns ``(engine, registry)``; shared by ``metrics`` and ``top``.
    """
    from repro.telemetry.metrics import MetricsRegistry

    config = _resolve_config(args.config)
    registry = MetricsRegistry(snapshot_interval=args.interval)
    engine = Engine(
        config=config,
        metrics=registry,
        executor_backend=args.executor,
        background_compile=args.background,
        code_cache=_make_code_cache(args),
    )
    engine.run_source(_resolve_workload(args.workload))
    return engine, registry


def cmd_metrics(args, out):
    """``repro metrics``: run a workload and export its metrics."""
    import json

    from repro.telemetry.metrics import (
        to_prometheus,
        write_metrics_jsonl,
        write_prometheus,
    )

    engine, registry = _run_with_metrics(args)
    payload = registry.as_dict()
    wrote = False
    if args.prometheus:
        write_prometheus(payload, args.prometheus)
        out.write("wrote Prometheus exposition to %s\n" % args.prometheus)
        wrote = True
    if args.jsonl:
        write_metrics_jsonl(payload, args.jsonl)
        out.write(
            "wrote %d snapshot(s) to %s\n"
            % (len(payload["snapshots"]) or 1, args.jsonl)
        )
        wrote = True
    if args.json:
        out.write(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        wrote = True
    if not wrote:
        out.write(to_prometheus(payload))
    return 0


def cmd_top(args, out):
    """``repro top``: one-shot console dashboard for a workload's run."""
    from repro.telemetry.metrics import format_dashboard

    engine, registry = _run_with_metrics(args)
    out.write(
        format_dashboard(
            registry.as_dict(), title="repro top — %s" % args.workload
        )
        + "\n"
    )
    return 0


def _run_cycle_profile(args):
    """Run ``args.script`` under an engine with a cycle profiler.

    Returns ``(engine, profiler)``; shared by ``profile --cycles`` and
    ``annotate``.
    """
    from repro.telemetry.profiler import CycleProfiler

    config = _resolve_config(args.config)
    profiler = CycleProfiler()
    engine = Engine(
        config=config, cycle_profiler=profiler, executor_backend=args.executor
    )
    engine.run_source(_resolve_workload(args.script))
    return engine, profiler


def cmd_profile(args, out):
    """``repro profile``: call histogram, or ``--cycles`` attribution."""
    import json

    if args.cycles:
        from repro.telemetry.reports import (
            format_function_table,
            profile_as_dict,
            write_collapsed,
        )

        engine, profiler = _run_cycle_profile(args)
        total = engine.stats.total_cycles
        if args.collapsed:
            write_collapsed(profiler, args.collapsed)
            out.write("wrote collapsed stacks to %s\n" % args.collapsed)
        if args.json:
            out.write(
                json.dumps(profile_as_dict(profiler, engine.stats), indent=1) + "\n"
            )
            return 0
        summary = profiler.summary()
        out.write(
            "total cycles: %d (attributed: %d)\n"
            % (total, summary["attributed_cycles"])
        )
        out.write(
            "functions: %d · binaries: %d · guard failures: %d\n\n"
            % (summary["functions"], summary["binaries"], summary["guard_failures"])
        )
        out.write(format_function_table(profiler, total_cycles=total, top=args.top) + "\n")
        return 0

    from repro.jsvm.interpreter import Interpreter
    from repro.telemetry.histograms import CallProfiler

    profiler = CallProfiler()
    interpreter = Interpreter(profiler=profiler)
    interpreter.run_source(_resolve_workload(args.script))
    profiles = sorted(
        profiler.profiles.values(), key=lambda p: p.call_count, reverse=True
    )
    total_calls = sum(profile.call_count for profile in profiles)
    if args.json:
        payload = {
            "functions": profiler.num_functions,
            "total_calls": total_calls,
            "fraction_called_once": profiler.fraction_called_once(),
            "fraction_single_argument_set": profiler.fraction_single_argument_set(),
            "profiles": [
                {
                    "name": profile.name,
                    "calls": profile.call_count,
                    "call_share": (
                        profile.call_count / total_calls if total_calls else 0.0
                    ),
                    "argument_sets": profile.distinct_argument_sets,
                    "monomorphic": profile.monomorphic,
                }
                for profile in profiles
            ],
        }
        out.write(json.dumps(payload, indent=1) + "\n")
        return 0
    out.write("functions: %d\n" % profiler.num_functions)
    out.write("called once: %.2f%%\n" % (100 * profiler.fraction_called_once()))
    out.write(
        "single argument set: %.2f%%\n" % (100 * profiler.fraction_single_argument_set())
    )
    out.write(
        "\n%-24s %10s %8s %14s %6s\n"
        % ("function", "calls", "calls%", "argument sets", "mono")
    )
    for profile in profiles[: args.top]:
        share = 100.0 * profile.call_count / total_calls if total_calls else 0.0
        out.write(
            "%-24s %10d %7.2f%% %14d %6s\n"
            % (
                profile.name,
                profile.call_count,
                share,
                profile.distinct_argument_sets,
                "yes" if profile.monomorphic else "no",
            )
        )
    return 0


def cmd_annotate(args, out):
    """``repro annotate``: disassembly with execution counts per line."""
    from repro.telemetry.reports import annotate_function

    engine, profiler = _run_cycle_profile(args)
    try:
        text = annotate_function(profiler, args.function)
    except ValueError as error:
        raise SystemExit(str(error))
    out.write("; config: %s\n" % engine.config.describe())
    out.write(
        "; total cycles: %d · native cycles: %d · guard failures: %d\n\n"
        % (engine.stats.total_cycles, engine.stats.native_cycles, profiler.guard_failures())
    )
    out.write(text + "\n")
    return 0


def cmd_disasm(args, out):
    """``repro disasm``: bytecode, optimized MIR and native code."""
    from repro.engine.jit import compile_function
    from repro.jsvm.bytecompiler import compile_source
    from repro.jsvm.feedback import TypeFeedback
    from repro.jsvm.interpreter import Interpreter
    from repro.mir.printer import format_graph
    from repro.opts.loop_inversion import rotate_loops

    config = _resolve_config(args.config)
    source = _read_source(args.script)
    toplevel = compile_source(source)

    functions = {}

    def collect(code):
        for constant in code.constants:
            if hasattr(constant, "instructions"):
                functions[constant.name] = constant
                collect(constant)

    collect(toplevel)
    if args.function not in functions:
        raise SystemExit(
            "no function %r; found: %s" % (args.function, ", ".join(sorted(functions)))
        )
    target = functions[args.function]

    # Warm up interpreted so the compiler sees real type feedback.
    for code in functions.values():
        code.feedback = TypeFeedback(code.num_params)
    interpreter = Interpreter()
    original = interpreter.call_function
    recorded = {}

    def recording(function, this_value, call_args):
        if function.code.feedback is not None:
            function.code.feedback.record_args(call_args, this_value)
        if function.code is target and "args" not in recorded:
            recorded["args"] = list(call_args)
            recorded["this"] = this_value
        return original(function, this_value, call_args)

    interpreter.call_function = recording
    interpreter.run_code(toplevel)

    if config.loop_inversion:
        rotate_loops(target, recursive=False)

    param_values = recorded.get("args") if config.param_spec else None
    result = compile_function(
        target,
        config,
        feedback=target.feedback,
        param_values=param_values,
        this_value=recorded.get("this"),
        keep_graph=True,
    )
    out.write("; config: %s\n" % config.describe())
    if param_values is not None:
        out.write("; specialized on: %r\n" % (param_values,))
    out.write("\n== bytecode ==\n")
    out.write(target.disassemble() + "\n")
    out.write("\n== optimized MIR ==\n")
    out.write(format_graph(result.graph) + "\n")
    out.write("\n== native code (%d instructions) ==\n" % result.native.size)
    out.write(result.native.disassemble() + "\n")
    return 0


def cmd_bench(args, out):
    """``repro bench``: Figure 9 rows, ``--wallclock`` timing, or
    ``--compare`` regression sentinel."""
    from repro.bench.harness import format_figure9, run_suite_sweep
    from repro.workloads import ALL_SUITES

    if args.compare:
        import os

        from repro.bench.compare import (
            compare_results,
            format_compare,
            write_compare_json,
        )
        from repro.bench.wallclock import (
            ALL_SECTIONS,
            load_wallclock_json,
            run_wallclock,
        )

        if not os.path.exists(args.compare):
            raise SystemExit("no baseline at %s" % args.compare)
        sections = ALL_SECTIONS
        if args.sections:
            sections = tuple(
                part.strip() for part in args.sections.split(",") if part.strip()
            )
            unknown = [part for part in sections if part not in ALL_SECTIONS]
            if unknown:
                raise SystemExit(
                    "unknown sections %s; available: %s"
                    % (", ".join(unknown), ", ".join(ALL_SECTIONS))
                )
        baseline = load_wallclock_json(args.compare)
        if args.input:
            current = load_wallclock_json(args.input)
        else:
            current = run_wallclock(repeats=args.repeats, sections=sections)
        report = compare_results(current, baseline, sections=sections)
        out.write(format_compare(report) + "\n")
        if args.json_out:
            write_compare_json(report, args.json_out)
            out.write("delta report written: %s\n" % args.json_out)
        if report["regressions"] and not args.report_only:
            return 1
        return 0

    if args.wallclock:
        from repro.bench.wallclock import (
            format_wallclock,
            run_wallclock,
            write_wallclock_json,
        )

        if args.suite:
            if args.suite not in ALL_SUITES:
                raise SystemExit(
                    "unknown suite %r; available: %s"
                    % (args.suite, ", ".join(sorted(ALL_SUITES)))
                )
            suites = {args.suite: ALL_SUITES[args.suite]}
        else:
            suites = ALL_SUITES
        results = run_wallclock(suites=suites, repeats=args.repeats)
        out.write(format_wallclock(results) + "\n")
        if args.output:
            write_wallclock_json(results, args.output)
            out.write("wrote %s\n" % args.output)
        return 0

    if not args.suite:
        raise SystemExit("--suite is required (or use --wallclock)")
    if args.suite not in ALL_SUITES:
        raise SystemExit(
            "unknown suite %r; available: %s" % (args.suite, ", ".join(sorted(ALL_SUITES)))
        )
    if args.configs:
        configs = [_resolve_config(name) for name in args.configs.split(",")]
    else:
        configs = PAPER_CONFIGS
    sweep = run_suite_sweep(
        args.suite,
        ALL_SUITES[args.suite],
        configs=configs,
        jobs=args.jobs,
        collect_metrics=args.metrics,
    )
    out.write(format_figure9([sweep], configs, "total_cycles", "runtime speedup") + "\n")
    out.write(
        format_figure9([sweep], configs, "compile_cycles", "compilation overhead") + "\n"
    )
    if args.metrics:
        from repro.telemetry.metrics import format_dashboard, merge_payloads

        payloads = [
            run.metrics
            for by_bench in sweep.runs.values()
            for run in by_bench.values()
            if run.metrics is not None
        ]
        fleet = merge_payloads(payloads)
        out.write(
            format_dashboard(
                fleet,
                title="repro top — %s fleet (%d runs)"
                % (args.suite, len(payloads)),
            )
            + "\n"
        )
    return 0


def cmd_fleet(args, out):
    """``repro fleet``: reproducible multi-tenant fleet traffic run."""
    import json

    from repro.serving.fleet import (
        FleetProfile,
        generate_schedule,
        run_fleet,
        schedule_jsonl,
    )
    from repro.telemetry.metrics import write_metrics_jsonl

    profile = FleetProfile(
        tenants=args.tenants,
        requests=args.requests,
        programs=args.programs,
        seed=args.seed,
        functions_per_program=args.functions,
    )
    if args.schedule_out:
        with open(args.schedule_out, "w") as handle:
            handle.write(schedule_jsonl(generate_schedule(profile)))
        out.write("schedule written: %s\n" % args.schedule_out)
    result = run_fleet(
        profile,
        jobs=args.jobs,
        cache_mode=args.cache,
        cache_root=args.cache_dir,
        shards=args.shards,
    )
    out.write(
        "fleet: %d requests over %d tenants (seed %d, jobs %d, cache %s)\n"
        % (result["requests"], result["tenants"], args.seed, args.jobs, args.cache)
    )
    out.write(
        "latency p50 %s / p99 %s cycles; %d batches, %d rejected\n"
        % (
            "{:,}".format(result["p50_latency_cycles"]),
            "{:,}".format(result["p99_latency_cycles"]),
            result["batches"],
            result["rejected"],
        )
    )
    out.write(
        "disk: %d hits / %d misses (hit rate %.3f); isolation violations: %d\n"
        % (
            result["disk_hits"],
            result["disk_misses"],
            result["warm_hit_rate"],
            result["isolation_violations"],
        )
    )
    if args.metrics_jsonl:
        write_metrics_jsonl(result["metrics"], args.metrics_jsonl)
        out.write("merged metrics written: %s\n" % args.metrics_jsonl)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        out.write("full result written: %s\n" % args.json)
    return 1 if result["isolation_violations"] else 0


def cmd_serve(args, out):
    """``repro serve``: the asyncio JSON-line serving front end."""
    import asyncio

    from repro.serving.fleet import FleetProfile, build_catalog
    from repro.serving.server import ServingServer

    if args.cache != "off" and not args.cache_dir:
        raise SystemExit("serve: --cache %s needs --cache-dir" % args.cache)
    catalog = None
    if args.catalog_programs:
        catalog = build_catalog(
            FleetProfile(
                programs=args.catalog_programs,
                seed=args.catalog_seed,
                functions_per_program=args.catalog_functions,
            )
        )
    server = ServingServer(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_mode=args.cache,
        cache_root=args.cache_dir,
        shards=args.shards,
        catalog=catalog,
        metrics_out=args.metrics_out,
    )

    async def _serve():
        address = await server.start()
        out.write("serving on %s\n" % (address,))
        out.flush()
        await server.wait_closed()

    asyncio.run(_serve())
    summary = server.summary or {}
    out.write(
        "server stopped; %d tenants, %d isolation violations\n"
        % (len(summary.get("tenants", [])), summary.get("isolation_violations", 0))
    )
    return 1 if summary.get("isolation_violations") else 0


def _fuzz_replay(args, out, matrix):
    """``repro fuzz --replay DIR``: corpus triage instead of generation."""
    import os

    from repro.fuzz.corpus import triage_corpus

    if not os.path.isdir(args.replay):
        raise SystemExit("fuzz --replay: no such directory: %s" % args.replay)
    try:
        results = triage_corpus(
            args.replay,
            matrix=matrix,
            reshrink=args.shrink,
            log=lambda message: out.write(message + "\n"),
        )
    except ValueError as error:
        raise SystemExit(str(error))
    failing = sorted(name for name, found in results.items() if found)
    out.write(
        "fuzz --replay: %d reproducer(s), %d mismatch(es)\n"
        % (len(results), len(failing))
    )
    if failing:
        for name in failing:
            out.write("  still failing: %s\n" % name)
        return 1
    return 0


def cmd_fuzz(args, out):
    """``repro fuzz``: differential fuzzing campaign (docs/FUZZING.md)."""
    from repro.fuzz import FuzzSession
    from repro.fuzz.oracle import VARIANT_NAMES
    from repro.telemetry.tracing import Tracer, write_jsonl

    matrix = args.matrix.split(",") if args.matrix else None
    if args.replay is not None:
        return _fuzz_replay(args, out, matrix)
    tracer = Tracer(channels=("fuzz",)) if args.jsonl else None
    try:
        session = FuzzSession(
            seed=args.seed,
            iterations=args.iterations,
            matrix=matrix,
            shrink=args.shrink,
            corpus_dir=args.corpus_dir,
            tracer=tracer,
            log=lambda message: out.write(message + "\n"),
        )
    except ValueError as error:
        raise SystemExit(str(error))
    summary = session.run()
    if args.jsonl:
        write_jsonl(tracer.events, args.jsonl)
        out.write("wrote %d events to %s\n" % (len(tracer.events), args.jsonl))
    out.write(
        "fuzz: seed=%d iterations=%d matrix=%s\n"
        % (summary["seed"], summary["iterations"], ",".join(summary["variants"]))
    )
    if summary["failures"]:
        out.write("FAIL: %d mismatching program(s)\n" % summary["failures"])
        for path in summary["reproducers"]:
            out.write("  reproducer: %s\n" % path)
        for record in session.failures:
            if record["path"] is None:
                out.write(
                    "  iteration %d: %s mismatch in %s (%s)\n"
                    % (
                        record["iteration"],
                        record["kind"],
                        record["variant"],
                        record["detail"],
                    )
                )
        return 1
    out.write(
        "OK: all variants agree (%s)\n" % ", ".join(VARIANT_NAMES)
        if matrix is None
        else "OK: all variants agree\n"
    )
    return 0


def cmd_cache(args, out):
    """``repro cache``: inspect, clear or evict the persistent code cache."""
    from repro.cache import DiskCodeCache

    cache = DiskCodeCache(root=args.dir)
    if args.action == "stats":
        info = cache.stats()
        out.write("cache root: %s\n" % info["root"])
        out.write("entries:    %d\n" % info["entries"])
        out.write("bytes:      %d\n" % info["bytes"])
        return 0
    if args.action == "evict":
        if args.max_bytes is None and args.max_entries is None:
            raise SystemExit("cache evict: need --max-bytes and/or --max-entries")
        removed = cache.evict(max_bytes=args.max_bytes, max_entries=args.max_entries)
        info = cache.stats()
        out.write(
            "evicted %d artifact(s) from %s (%d entries, %d bytes remain)\n"
            % (removed, cache.root, info["entries"], info["bytes"])
        )
        return 0
    removed = cache.clear()
    out.write("removed %d cached artifact(s) from %s\n" % (removed, cache.root))
    return 0


def cmd_configs(args, out):
    """``repro configs``: list optimization configurations."""
    registry = _config_registry()
    for name in sorted(registry):
        out.write("%-14s %s\n" % (name, registry[name].describe()))
    return 0


# -- entry point --------------------------------------------------------------


def _add_lane_and_cache_flags(subparser):
    """Attach ``--background/--no-background`` and ``--code-cache``."""
    subparser.add_argument(
        "--background",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="compile hot functions on the background lane instead of "
        "stalling (docs/COMPILE_PIPELINE.md)",
    )
    subparser.add_argument(
        "--code-cache",
        metavar="DIR",
        nargs="?",
        const="",
        default=None,
        help="compile through the persistent code cache; DIR overrides "
        "$REPRO_CACHE_DIR / ~/.cache/repro",
    )


def build_parser():
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Just-in-Time Value Specialization (CGO 2013) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a guest script under the JIT")
    run.add_argument("script", help="path to a guest script, or - for stdin")
    run.add_argument("--config", default="all", help="optimization config (see `configs`)")
    run.add_argument("--stats", action="store_true", help="print engine statistics")
    run.add_argument(
        "--cache-capacity", type=int, default=1, help="specialized binaries kept per function"
    )
    run.add_argument(
        "--executor",
        choices=["simple", "closure", "whole"],
        default=None,
        help="executor backend (default: closure, or $REPRO_EXECUTOR)",
    )
    _add_lane_and_cache_flags(run)
    run.set_defaults(handler=cmd_run)

    trace = sub.add_parser(
        "trace", help="run a workload with JIT event tracing (docs/TRACING.md)"
    )
    trace.add_argument(
        "workload",
        help="script path, -, suite/benchmark (e.g. sunspider/bitops-bits-in-byte), "
        "or a bare benchmark name",
    )
    trace.add_argument("--config", default="all", help="optimization config (see `configs`)")
    from repro.telemetry.tracing import CHANNELS

    trace.add_argument(
        "--channels",
        help="comma-separated channel subset (default: all): %s"
        % ",".join(CHANNELS),
    )
    trace.add_argument("--jsonl", metavar="PATH", help="write events as JSON Lines")
    trace.add_argument(
        "--chrome", metavar="PATH", help="write a Chrome trace_event file (Perfetto)"
    )
    trace.add_argument(
        "--no-timeline", action="store_true", help="skip the stdout timeline"
    )
    trace.add_argument(
        "--limit", type=int, default=None, help="max timeline rows per function"
    )
    _add_lane_and_cache_flags(trace)
    trace.set_defaults(handler=cmd_trace)

    profile = sub.add_parser(
        "profile",
        help="call/argument-set histogram, or --cycles attribution (docs/PROFILING.md)",
    )
    profile.add_argument(
        "script",
        help="script path, -, suite/benchmark, or a bare benchmark name",
    )
    profile.add_argument("--top", type=int, default=20, help="rows to display")
    profile.add_argument(
        "--cycles",
        action="store_true",
        help="cycle-exact profile under the JIT instead of the §2 call histogram",
    )
    profile.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    profile.add_argument(
        "--collapsed",
        metavar="PATH",
        help="--cycles: write collapsed stacks (flamegraph.pl / speedscope format)",
    )
    profile.add_argument(
        "--config", default="all", help="--cycles: optimization config (see `configs`)"
    )
    profile.add_argument(
        "--executor",
        choices=["simple", "closure", "whole"],
        default=None,
        help="--cycles: executor backend (default: closure, or $REPRO_EXECUTOR)",
    )
    profile.set_defaults(handler=cmd_profile)

    annotate = sub.add_parser(
        "annotate",
        help="native disassembly annotated with per-instruction counts/cycles/guards",
    )
    annotate.add_argument(
        "script",
        help="script path, -, suite/benchmark, or a bare benchmark name",
    )
    annotate.add_argument("--function", required=True, help="guest function name")
    annotate.add_argument("--config", default="all")
    annotate.add_argument(
        "--executor",
        choices=["simple", "closure", "whole"],
        default=None,
        help="executor backend (default: closure, or $REPRO_EXECUTOR)",
    )
    annotate.set_defaults(handler=cmd_annotate)

    disasm = sub.add_parser("disasm", help="show a function's MIR and native code")
    disasm.add_argument("script")
    disasm.add_argument("--function", required=True, help="guest function name")
    disasm.add_argument("--config", default="all")
    disasm.set_defaults(handler=cmd_disasm)

    bench = sub.add_parser(
        "bench", help="run a suite sweep (Figure 9 row) or --wallclock backend timing"
    )
    bench.add_argument("--suite", help="sunspider | v8 | kraken (default for --wallclock: all)")
    bench.add_argument("--configs", help="comma-separated config names (default: all 11)")
    bench.add_argument(
        "--wallclock",
        action="store_true",
        help="compare executor backends in host seconds (docs/PERF.md)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3, help="wallclock: best-of-N suite passes"
    )
    bench.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="wallclock: write results JSON (e.g. BENCH_wallclock.json)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="suite sweep: parallel worker processes (wall-clock only; "
        "results are order-preserving and identical to --jobs 1)",
    )
    bench.add_argument(
        "--metrics",
        action="store_true",
        help="suite sweep: collect per-run metrics and print the merged "
        "fleet dashboard (docs/METRICS.md)",
    )
    bench.add_argument(
        "--compare",
        metavar="BASELINE_JSON",
        default=None,
        help="regression sentinel: diff a bench run against this baseline "
        "(e.g. BENCH_wallclock.json) instead of sweeping",
    )
    bench.add_argument(
        "--input",
        metavar="PATH",
        default=None,
        help="--compare: stored current results JSON (default: measure now)",
    )
    bench.add_argument(
        "--sections",
        default=None,
        help="--compare: comma-separated subset of "
        "backends,background,warm-cache,deoptless,serving",
    )
    bench.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="--compare: write the machine-readable delta report here",
    )
    bench.add_argument(
        "--report-only",
        action="store_true",
        help="--compare: always exit 0; regressions reported, not fatal",
    )
    bench.set_defaults(handler=cmd_bench)

    def _add_metrics_flags(subparser, default_interval):
        subparser.add_argument(
            "workload",
            help="script path, -, suite/benchmark, or a bare benchmark name",
        )
        subparser.add_argument(
            "--config", default="all", help="optimization config (see `configs`)"
        )
        subparser.add_argument(
            "--interval",
            type=int,
            default=default_interval,
            help="cycles between periodic snapshots (0: final snapshot only; "
            "default %d)" % default_interval,
        )
        subparser.add_argument(
            "--executor",
            choices=["simple", "closure", "whole"],
            default=None,
            help="executor backend (default: closure, or $REPRO_EXECUTOR)",
        )
        _add_lane_and_cache_flags(subparser)

    metrics = sub.add_parser(
        "metrics",
        help="run a workload with the metrics registry on (docs/METRICS.md)",
    )
    _add_metrics_flags(metrics, default_interval=0)
    metrics.add_argument(
        "--prometheus",
        metavar="PATH",
        help="write Prometheus text exposition (default output when no "
        "export flag is given: exposition on stdout)",
    )
    metrics.add_argument(
        "--jsonl", metavar="PATH", help="write snapshot time series as JSON Lines"
    )
    metrics.add_argument(
        "--json", action="store_true", help="print the full payload dict as JSON"
    )
    metrics.set_defaults(handler=cmd_metrics)

    top = sub.add_parser(
        "top", help="console health dashboard for one workload run"
    )
    _add_metrics_flags(top, default_interval=10000)
    top.set_defaults(handler=cmd_top)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing with chaos deopt (docs/FUZZING.md)",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz.add_argument(
        "--iterations", type=int, default=100, help="programs to generate and check"
    )
    fuzz.add_argument(
        "--matrix",
        help="comma-separated variant subset (default: all): interp,jit,jit-simple,"
        "whole,nospec,bg,cache-cold,cache-warm,chaos,chaos-simple,chaos-whole,"
        "chaos-sched,deoptless,deoptless-simple,deoptless-whole",
    )
    fuzz.add_argument(
        "--shrink",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="ddmin-reduce mismatching programs before banking them",
    )
    fuzz.add_argument(
        "--corpus-dir",
        metavar="DIR",
        default=None,
        help="write (shrunk) reproducers for mismatching programs here",
    )
    fuzz.add_argument(
        "--replay",
        metavar="DIR",
        default=None,
        help="triage mode: re-run every .js reproducer in DIR through the "
        "oracle instead of generating programs (--shrink re-reduces and "
        "rewrites still-failing files in place); exits 1 on any mismatch",
    )
    fuzz.add_argument(
        "--jsonl", metavar="PATH", help="write fuzz.* trace events as JSON Lines"
    )
    fuzz.set_defaults(handler=cmd_fuzz)

    cache = sub.add_parser(
        "cache", help="inspect, clear or evict the persistent code cache"
    )
    cache.add_argument(
        "action", choices=["stats", "clear", "evict"], help="what to do"
    )
    cache.add_argument(
        "--dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict: prune oldest artifacts until total size fits",
    )
    cache.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="evict: prune oldest artifacts until this many remain",
    )
    cache.set_defaults(handler=cmd_cache)

    def _add_serving_cache_flags(subparser, default_cache):
        subparser.add_argument(
            "--cache",
            choices=["off", "tenant", "shared"],
            default=default_cache,
            help="artifact store mode: off, per-tenant, or shared shards "
            "(default %s)" % default_cache,
        )
        subparser.add_argument(
            "--cache-dir",
            metavar="DIR",
            default=None,
            help="store root (fleet default: private temp dir, deleted after)",
        )
        subparser.add_argument(
            "--shards",
            type=int,
            default=4,
            help="disk-cache shard count (default 4)",
        )

    fleet = sub.add_parser(
        "fleet",
        help="run reproducible multi-tenant fleet traffic (docs/SERVING.md)",
    )
    fleet.add_argument("--tenants", type=int, default=8, help="tenant count")
    fleet.add_argument("--requests", type=int, default=200, help="request count")
    fleet.add_argument(
        "--programs", type=int, default=6, help="catalog size (distinct programs)"
    )
    fleet.add_argument("--seed", type=int, default=0, help="schedule/catalog seed")
    fleet.add_argument(
        "--functions",
        type=int,
        default=10,
        help="guest functions per catalog program (default 10)",
    )
    fleet.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (tenants partitioned by index; results are "
        "identical at any job count)",
    )
    fleet.add_argument(
        "--schedule-out",
        metavar="PATH",
        default=None,
        help="write the request schedule as canonical JSONL",
    )
    fleet.add_argument(
        "--metrics-jsonl",
        metavar="PATH",
        default=None,
        help="write the merged fleet metrics payload as JSONL",
    )
    fleet.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the full result (responses included) as JSON",
    )
    _add_serving_cache_flags(fleet, "tenant")
    fleet.set_defaults(handler=cmd_fleet)

    serve = sub.add_parser(
        "serve",
        help="serve JSON-line requests over a local socket (docs/SERVING.md)",
    )
    serve.add_argument(
        "--socket", metavar="PATH", default=None, help="bind a unix socket here"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host (when no --socket)"
    )
    serve.add_argument(
        "--port", type=int, default=0, help="TCP bind port (0: ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="engine worker processes (0: in-process)",
    )
    serve.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="flush the merged metrics payload here (JSONL) on shutdown",
    )
    serve.add_argument(
        "--catalog-programs",
        type=int,
        default=0,
        help="preload a fleet catalog of N programs (0: none; requests "
        "must then ship source)",
    )
    serve.add_argument(
        "--catalog-seed", type=int, default=0, help="catalog generator seed"
    )
    serve.add_argument(
        "--catalog-functions",
        type=int,
        default=10,
        help="guest functions per catalog program",
    )
    _add_serving_cache_flags(serve, "off")
    serve.set_defaults(handler=cmd_serve)

    configs = sub.add_parser("configs", help="list optimization configurations")
    configs.set_defaults(handler=cmd_configs)
    return parser


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args, out if out is not None else sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
