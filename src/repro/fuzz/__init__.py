"""Differential fuzzing and deopt fault injection (docs/FUZZING.md).

The subsystem has four parts, one module each:

* :mod:`repro.fuzz.generator` — seeded grammar-based program
  generation, weighted toward specialization-hostile shapes;
* :mod:`repro.fuzz.oracle` — the differential oracle running one
  program through a matrix of engine configurations and asserting the
  observables agree;
* :mod:`repro.fuzz.shrink` — delta-debugging reduction of mismatching
  programs to minimal reproducers;
* :mod:`repro.fuzz.harness` — the iteration loop behind ``python -m
  repro fuzz``, emitting ``fuzz.*`` trace events and writing
  reproducers into the corpus;
* :mod:`repro.fuzz.corpus` — replay of the checked-in reproducer
  corpus (``tests/corpus/``).

Chaos deopt itself — forcing every compiled guard to fail with exact
recovery values — lives with the engine
(:class:`repro.engine.bailout.GuardFaultInjector`); the oracle's
``chaos`` variants are built on it.
"""

from repro.fuzz.generator import generate_program
from repro.fuzz.harness import FuzzSession
from repro.fuzz.oracle import (
    DEFAULT_MATRIX,
    VARIANT_NAMES,
    Mismatch,
    check_program,
)
from repro.fuzz.shrink import shrink_program

__all__ = [
    "DEFAULT_MATRIX",
    "VARIANT_NAMES",
    "FuzzSession",
    "Mismatch",
    "check_program",
    "generate_program",
    "shrink_program",
]
