"""Replay of banked reproducers (``tests/corpus/``).

Every ``.js`` file in the corpus directory — hand-picked
specialization-hostile programs plus shrunk fuzzer finds — is run
through the full differential matrix on every tier-1 run
(``tests/test_fuzz.py``), so a bug once caught stays caught.
"""

import os

from repro.errors import JSSyntaxError
from repro.fuzz.oracle import check_program, resolve_matrix
from repro.fuzz.shrink import shrink_program


def corpus_files(directory):
    """Sorted absolute paths of every ``.js`` file in ``directory``."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".js")
    )


def replay_corpus(directory, matrix=None):
    """Run every corpus program through the oracle.

    Returns ``{filename: [Mismatch, ...]}`` — empty lists throughout
    is the passing verdict.
    """
    results = {}
    for path in corpus_files(directory):
        with open(path, "r") as handle:
            source = handle.read()
        results[os.path.basename(path)] = check_program(source, matrix)
    return results


def triage_corpus(directory, matrix=None, reshrink=False, log=None):
    """Re-run every corpus reproducer; optionally re-shrink failures.

    The triage flow behind ``python -m repro fuzz --replay DIR``: each
    ``.js`` file runs through the oracle matrix again.  A file that
    still mismatches is reported (and, with ``reshrink``, ddmin-reduced
    once more — pinned to its first mismatch kind, exactly like the
    live fuzzing loop — and rewritten in place when the reducer finds a
    strictly smaller reproducer).  Returns the same mapping as
    :func:`replay_corpus`, post-shrink.
    """
    matrix = resolve_matrix(matrix)
    emit = log if log is not None else (lambda message: None)
    results = {}
    for path in corpus_files(directory):
        name = os.path.basename(path)
        with open(path, "r") as handle:
            source = handle.read()
        mismatches = check_program(source, matrix)
        results[name] = mismatches
        if not mismatches:
            emit("ok: %s" % name)
            continue
        first = mismatches[0]
        emit(
            "MISMATCH %s: %s in %s (%s)"
            % (name, first.kind, first.variant, first.detail)
        )
        if not reshrink:
            continue

        def still_fails(candidate_source, kind=first.kind):
            try:
                found = check_program(candidate_source, matrix)
            except JSSyntaxError:
                return False
            return any(mismatch.kind == kind for mismatch in found)

        result = shrink_program(source, still_fails)
        if result.to_lines < result.from_lines:
            header = "// re-shrunk by fuzz --replay: kind=%s variant=%s\n" % (
                first.kind,
                first.variant,
            )
            with open(path, "w") as handle:
                handle.write(header + result.source)
            emit(
                "  re-shrunk %s: %d -> %d lines (%d steps)"
                % (name, result.from_lines, result.to_lines, result.steps)
            )
    return results
