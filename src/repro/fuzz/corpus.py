"""Replay of banked reproducers (``tests/corpus/``).

Every ``.js`` file in the corpus directory — hand-picked
specialization-hostile programs plus shrunk fuzzer finds — is run
through the full differential matrix on every tier-1 run
(``tests/test_fuzz.py``), so a bug once caught stays caught.
"""

import os

from repro.fuzz.oracle import check_program


def corpus_files(directory):
    """Sorted absolute paths of every ``.js`` file in ``directory``."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".js")
    )


def replay_corpus(directory, matrix=None):
    """Run every corpus program through the oracle.

    Returns ``{filename: [Mismatch, ...]}`` — empty lists throughout
    is the passing verdict.
    """
    results = {}
    for path in corpus_files(directory):
        with open(path, "r") as handle:
            source = handle.read()
        results[os.path.basename(path)] = check_program(source, matrix)
    return results
