"""The fuzzing loop: generate, cross-check, shrink, bank.

:class:`FuzzSession` drives ``python -m repro fuzz``: for each
iteration it generates the deterministic program for
``(seed, iteration)``, runs it through the differential oracle, and on
a mismatch optionally shrinks the program with ddmin and writes the
reproducer into a corpus directory (the CI job uploads that directory
as its failure artifact; curated reproducers graduate into
``tests/corpus/`` where tier-1 replays them forever).

Progress is observable twice over: a ``fuzz``-channel tracer receives
one ``fuzz.run`` event per clean iteration and ``fuzz.mismatch`` /
``fuzz.shrink`` events on failures, and an optional ``log`` callable
(the CLI passes a printer) gets one human-readable line per notable
event.
"""

import os

from repro.errors import JSSyntaxError
from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import check_program, resolve_matrix
from repro.fuzz.shrink import shrink_program


class FuzzSession(object):
    """One differential-fuzzing campaign over a seed range."""

    def __init__(
        self,
        seed=0,
        iterations=100,
        matrix=None,
        shrink=True,
        corpus_dir=None,
        tracer=None,
        log=None,
    ):
        self.seed = seed
        self.iterations = iterations
        self.matrix = resolve_matrix(matrix)
        self.shrink = shrink
        self.corpus_dir = corpus_dir
        self.tracer = tracer
        self.log = log if log is not None else (lambda message: None)
        #: One record per mismatching iteration (dicts; see ``run``).
        self.failures = []

    def _emit(self, event, **fields):
        if self.tracer is not None:
            self.tracer.emit("fuzz", event, **fields)

    def _predicate_for(self, kind):
        """The shrinker's predicate: candidate still mismatches.

        Pinned to the original mismatch ``kind`` so reduction cannot
        wander onto an unrelated (and possibly shallower) disagreement
        mid-shrink.  Syntax-breaking candidates are simply False.
        """

        def predicate(candidate_source):
            try:
                found = check_program(candidate_source, self.matrix)
            except JSSyntaxError:
                return False
            return any(mismatch.kind == kind for mismatch in found)

        return predicate

    def _bank(self, source, iteration, mismatch):
        """Write ``source`` into the corpus directory; returns the path
        (or None when no corpus directory is configured)."""
        if self.corpus_dir is None:
            return None
        os.makedirs(self.corpus_dir, exist_ok=True)
        path = os.path.join(
            self.corpus_dir,
            "repro-seed%d-iter%d.js" % (self.seed, iteration),
        )
        header = (
            "// fuzz reproducer: seed=%d iteration=%d kind=%s variant=%s\n"
            "// %s\n"
        ) % (self.seed, iteration, mismatch.kind, mismatch.variant, mismatch.detail)
        with open(path, "w") as handle:
            handle.write(header + source)
        return path

    def run_iteration(self, iteration):
        """Run one iteration; returns the failure record or None."""
        source = generate_program(self.seed, iteration)
        line_count = source.count("\n")
        mismatches = check_program(source, self.matrix)
        if not mismatches:
            self._emit(
                "run",
                seed=self.seed,
                iteration=iteration,
                lines=line_count,
                variants=list(self.matrix),
            )
            return None

        first = mismatches[0]
        self._emit(
            "mismatch",
            seed=self.seed,
            iteration=iteration,
            kind=first.kind,
            variant=first.variant,
            detail=first.detail,
        )
        self.log(
            "iteration %d: %s mismatch in %s (%s)"
            % (iteration, first.kind, first.variant, first.detail)
        )
        reduced = source
        if self.shrink:
            result = shrink_program(source, self._predicate_for(first.kind))
            reduced = result.source
            self._emit(
                "shrink",
                seed=self.seed,
                iteration=iteration,
                from_lines=result.from_lines,
                to_lines=result.to_lines,
                steps=result.steps,
            )
            self.log(
                "iteration %d: shrunk %d -> %d lines in %d oracle runs"
                % (iteration, result.from_lines, result.to_lines, result.steps)
            )
        path = self._bank(reduced, iteration, first)
        record = {
            "iteration": iteration,
            "kind": first.kind,
            "variant": first.variant,
            "detail": first.detail,
            "source": reduced,
            "path": path,
            "mismatches": mismatches,
        }
        self.failures.append(record)
        return record

    def run(self):
        """Run the whole campaign; returns the summary dict.

        Keys: ``seed``, ``iterations``, ``variants``, ``failures``
        (count) and ``reproducers`` (paths written, corpus configured
        and mismatches found permitting).
        """
        for iteration in range(self.iterations):
            self.run_iteration(iteration)
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "variants": list(self.matrix),
            "failures": len(self.failures),
            "reproducers": [
                record["path"] for record in self.failures if record["path"]
            ],
        }
