"""The differential oracle: one program, many engines, one answer.

A program is executed under every *variant* in the requested matrix —
interpreter, JIT on all three executor backends, specialization forced
off, background compilation, cold and warm persistent cache, chaos
deopt (every guard force-failed) on all three backends plus a seeded
random-schedule chaos run, and the deoptless dispatch table
(docs/DEOPTLESS.md) on all three backends — and the observations are
compared:

* **output and guest errors** must agree across *every* variant.  The
  plain interpreter is the reference semantics; a chaos run agreeing
  with it is the proof that every forced deoptimization path recovered
  the exact interpreter state.
* **stats ledgers and deopt/bailout event streams** must agree within
  *equivalence classes* of variants that promise bit-identical
  simulation: the three executor backends, and cold vs warm cache runs.
  (Background compilation intentionally reorders work, and chaos runs
  intentionally add bailouts, so those classes only pin the backends
  against each other.)

Any disagreement is returned as a :class:`Mismatch`; an empty list is
the oracle's "all variants agree" verdict.
"""

import shutil
import tempfile

from repro.cache import DiskCodeCache
from repro.engine.bailout import GuardFaultInjector
from repro.engine.config import BASELINE, FULL_SPEC
from repro.engine.runtime_engine import Engine
from repro.engine.stats import DISK_TRAFFIC_KEYS
from repro.errors import CompilerError, ReproError
from repro.jsvm.bytecode import CodeObject
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.objects import reset_shapes
from repro.telemetry.tracing import Tracer

#: Fast tiering thresholds: compile and OSR kick in quickly so short
#: generated programs still exercise every tier.
HOT_CALLS = 3
OSR_BACKEDGES = 10

#: Effectively-unlimited bailout budget for chaos variants: every
#: guard of every binary is force-failed once, and the engine must not
#: fall back to generic code mid-sweep.
CHAOS_BAILOUT_LIMIT = 10 ** 9

#: Seed for the random-schedule chaos variant: each (binary, guard)
#: fires on its own deterministic Nth execution instead of the first,
#: so guards that survive a warm-up and then die are exercised too.
CHAOS_SCHEDULE_SEED = 1234

#: Trace channels whose event streams are compared within an
#: equivalence class (the deterministic deopt narrative plus the
#: deoptless dispatch narrative; compile/cache traffic legitimately
#: differs between cold and warm runs).
_COMPARED_CHANNELS = ("bailout", "deopt", "deoptless")


class Mismatch(object):
    """One oracle disagreement.

    ``kind`` is what diverged (``output``, ``error``, ``stats`` or
    ``events``), ``variant`` the offending variant's name, ``detail``
    a one-line human-readable description of the first divergence.
    """

    def __init__(self, kind, variant, detail):
        self.kind = kind
        self.variant = variant
        self.detail = detail

    def __repr__(self):
        return "<Mismatch %s@%s: %s>" % (self.kind, self.variant, self.detail)


class Observation(object):
    """Everything the oracle compares for one variant run."""

    def __init__(self, printed, error, stats, events):
        #: Lines printed by the guest (the printed-so-far prefix when
        #: the run died on a guest error).
        self.printed = printed
        #: Guest error class name, or None for a clean run.
        self.error = error
        #: ``EngineStats.as_dict()`` (None for the plain interpreter).
        self.stats = stats
        #: The deterministic deopt narrative: (event, fields) pairs
        #: from the compared channels, sequence data stripped.
        self.events = events


def _strip(event):
    """An event as comparable data: drop ``seq`` (position in the full
    stream, which legitimately shifts when other channels' traffic
    differs) but keep the cycle timestamp and every payload field."""
    return tuple(
        sorted(item for item in event.items() if item[0] != "seq")
    )


def _observe_interp(source):
    """Reference observation: the plain interpreter."""
    reset_shapes()
    interpreter = Interpreter()
    error = None
    try:
        printed = interpreter.run_source(source)
    except ReproError as exc:
        if isinstance(exc, CompilerError):
            raise
        error = type(exc).__name__
        printed = list(interpreter.runtime.printed)
    return Observation(printed, error, None, None)


def _observe_engine(source, **engine_kwargs):
    """One engine run as an :class:`Observation`.

    Resets the process-global code-id counter first so per-function
    stats keys line up across variants, and the process-global shape
    transition tree so shape ids (and with them IC contents, guard
    extras and cache keys) line up too; folds the live counters in
    (``Engine.finish``) even when the guest dies mid-run.
    """
    CodeObject._next_id = 1
    reset_shapes()
    tracer = Tracer(channels=_COMPARED_CHANNELS)
    engine = Engine(
        tracer=tracer,
        hot_call_threshold=HOT_CALLS,
        osr_backedge_threshold=OSR_BACKEDGES,
        **engine_kwargs
    )
    error = None
    try:
        printed = engine.run_source(source)
    except ReproError as exc:
        if isinstance(exc, CompilerError):
            raise
        error = type(exc).__name__
        engine.finish()
        printed = list(engine.interpreter.runtime.printed)
    return Observation(
        printed,
        error,
        engine.stats.as_dict(),
        [_strip(event) for event in tracer.events],
    )


def _run_interp(source, _context):
    return _observe_interp(source)


def _run_jit(source, _context):
    return _observe_engine(source, config=FULL_SPEC, executor_backend="closure")


def _run_jit_simple(source, _context):
    return _observe_engine(source, config=FULL_SPEC, executor_backend="simple")


def _run_whole(source, _context):
    return _observe_engine(source, config=FULL_SPEC, executor_backend="whole")


def _run_nospec(source, _context):
    return _observe_engine(source, config=BASELINE, executor_backend="closure")


def _run_background(source, _context):
    return _observe_engine(
        source, config=FULL_SPEC, executor_backend="closure", background_compile=True
    )


def _run_cache_cold(source, context):
    cache = DiskCodeCache(root=context["cache_root"])
    return _observe_engine(
        source, config=FULL_SPEC, executor_backend="closure", code_cache=cache
    )


def _run_cache_warm(source, context):
    # Runs after cache-cold against the same root: artifacts are hot.
    cache = DiskCodeCache(root=context["cache_root"])
    return _observe_engine(
        source, config=FULL_SPEC, executor_backend="closure", code_cache=cache
    )


def _run_chaos(source, _context):
    return _observe_engine(
        source,
        config=FULL_SPEC,
        executor_backend="closure",
        fault_injector=GuardFaultInjector(),
        bailout_limit=CHAOS_BAILOUT_LIMIT,
    )


def _run_chaos_simple(source, _context):
    return _observe_engine(
        source,
        config=FULL_SPEC,
        executor_backend="simple",
        fault_injector=GuardFaultInjector(),
        bailout_limit=CHAOS_BAILOUT_LIMIT,
    )


def _run_chaos_whole(source, _context):
    return _observe_engine(
        source,
        config=FULL_SPEC,
        executor_backend="whole",
        fault_injector=GuardFaultInjector(),
        bailout_limit=CHAOS_BAILOUT_LIMIT,
    )


def _run_chaos_sched(source, _context):
    # Seeded random schedule: guards fire on a per-guard deterministic
    # Nth execution, so recovery from *warmed-up* speculation (the
    # deoptless regime) is exercised, not just first-execution faults.
    return _observe_engine(
        source,
        config=FULL_SPEC,
        executor_backend="closure",
        fault_injector=GuardFaultInjector(schedule_seed=CHAOS_SCHEDULE_SEED),
        bailout_limit=CHAOS_BAILOUT_LIMIT,
    )


def _run_deoptless(source, _context):
    return _observe_engine(
        source, config=FULL_SPEC, executor_backend="closure", deoptless=True
    )


def _run_deoptless_simple(source, _context):
    return _observe_engine(
        source, config=FULL_SPEC, executor_backend="simple", deoptless=True
    )


def _run_deoptless_whole(source, _context):
    return _observe_engine(
        source, config=FULL_SPEC, executor_backend="whole", deoptless=True
    )


#: Variant name -> runner.  Declaration order is execution order
#: (cache-cold must precede cache-warm).
_RUNNERS = (
    ("interp", _run_interp),
    ("jit", _run_jit),
    ("jit-simple", _run_jit_simple),
    ("whole", _run_whole),
    ("nospec", _run_nospec),
    ("bg", _run_background),
    ("cache-cold", _run_cache_cold),
    ("cache-warm", _run_cache_warm),
    ("chaos", _run_chaos),
    ("chaos-simple", _run_chaos_simple),
    ("chaos-whole", _run_chaos_whole),
    ("chaos-sched", _run_chaos_sched),
    ("deoptless", _run_deoptless),
    ("deoptless-simple", _run_deoptless_simple),
    ("deoptless-whole", _run_deoptless_whole),
)

#: Every variant name, in execution order.
VARIANT_NAMES = tuple(name for name, _runner in _RUNNERS)

#: The full matrix: what ``python -m repro fuzz`` runs by default.
DEFAULT_MATRIX = VARIANT_NAMES

#: Variant groups whose stats ledgers and deopt narratives must be
#: bit-identical (first member is each group's reference).
_IDENTICAL_CLASSES = (
    ("jit", "jit-simple", "whole"),
    ("cache-cold", "cache-warm"),
    ("chaos", "chaos-simple", "chaos-whole"),
    # The dispatch table must be backend-invariant too: same cycles,
    # same deoptless dispatch narrative, on all three executors.
    # (Table on vs off legitimately differ in stats — on/off agreement
    # is pinned at the output level against the interpreter.)
    ("deoptless", "deoptless-simple", "deoptless-whole"),
)


def resolve_matrix(matrix):
    """Validate and order ``matrix`` (an iterable of variant names).

    Returns the names in canonical execution order; ``None`` means the
    full default matrix.  ``cache-warm`` without ``cache-cold`` is
    rejected — warm means "after a cold run populated the same root".
    """
    if matrix is None:
        return DEFAULT_MATRIX
    requested = list(matrix)
    unknown = sorted(set(requested) - set(VARIANT_NAMES))
    if unknown:
        raise ValueError(
            "unknown fuzz variants %s; available: %s"
            % (unknown, ", ".join(VARIANT_NAMES))
        )
    if "cache-warm" in requested and "cache-cold" not in requested:
        raise ValueError("variant cache-warm requires cache-cold in the matrix")
    if "interp" not in requested:
        requested.append("interp")
    return tuple(name for name in VARIANT_NAMES if name in requested)


def _first_line_diff(left, right):
    """Index and values of the first difference between two lists."""
    for index in range(max(len(left), len(right))):
        left_value = left[index] if index < len(left) else "<absent>"
        right_value = right[index] if index < len(right) else "<absent>"
        if left_value != right_value:
            return index, left_value, right_value
    return None


def check_program(source, matrix=None):
    """Run ``source`` through the matrix; return the mismatch list.

    An empty list means every variant printed the reference output
    (and raised the reference guest error, if any), and every
    bit-identity class agreed on stats and deopt events.  Host-side
    errors (:class:`CompilerError`) propagate — those are engine bugs
    the oracle must never swallow.
    """
    names = resolve_matrix(matrix)
    runners = dict(_RUNNERS)
    cache_root = None
    observations = {}
    try:
        if "cache-cold" in names:
            cache_root = tempfile.mkdtemp(prefix="repro-fuzz-cache-")
        context = {"cache_root": cache_root}
        for name in names:
            observations[name] = runners[name](source, context)
    finally:
        if cache_root is not None:
            shutil.rmtree(cache_root, ignore_errors=True)

    mismatches = []
    reference = observations["interp"]
    for name in names:
        if name == "interp":
            continue
        observation = observations[name]
        if observation.error != reference.error:
            mismatches.append(
                Mismatch(
                    "error",
                    name,
                    "guest error %s != %s" % (observation.error, reference.error),
                )
            )
            continue
        if observation.printed != reference.printed:
            diff = _first_line_diff(observation.printed, reference.printed)
            index, got, expected = diff
            mismatches.append(
                Mismatch(
                    "output",
                    name,
                    "line %d: %r != %r" % (index, got, expected),
                )
            )

    for group in _IDENTICAL_CLASSES:
        members = [name for name in group if name in observations]
        if len(members) < 2:
            continue
        base = observations[members[0]]
        for name in members[1:]:
            observation = observations[name]
            keys = sorted(
                key
                for key in set(base.stats) | set(observation.stats)
                # Disk-traffic counters are host-side accounting and
                # differ between cache-cold and cache-warm by design.
                if key not in DISK_TRAFFIC_KEYS
                and base.stats.get(key) != observation.stats.get(key)
            )
            if keys:
                mismatches.append(
                    Mismatch(
                        "stats",
                        name,
                        "differs from %s on %s" % (members[0], keys),
                    )
                )
            if observation.events != base.events:
                diff = _first_line_diff(observation.events, base.events)
                index, got, expected = diff
                mismatches.append(
                    Mismatch(
                        "events",
                        name,
                        "event %d: %r != %r (vs %s)"
                        % (index, got, expected, members[0]),
                    )
                )
    return mismatches
