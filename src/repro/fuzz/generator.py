"""Seeded grammar-based generation of specialization-hostile programs.

Every program is a deterministic function of ``(seed, iteration)``:
the only randomness source is one :class:`random.Random` seeded with
an integer derived from both, and every choice point draws through
integer-weighted tables (never ``random.choices`` or anything
float- or hash-order-dependent), so the same pair names the same
program on every Python version the CI matrix runs.

The grammar is a small statement/expression language inside a fixed
skeleton — function declarations followed by call-site lines — and
the weights are deliberately skewed toward the shapes that historically
break value-specializing JITs:

* **reassigned parameters** — the baked-in argument constant must not
  survive a ``a = a + 1`` in the body;
* **polymorphic call sites** — the same function called with ints,
  then doubles, then strings, exercising the spec cache's key/discard
  policy and type-guard bailouts;
* **OSR-triggering loops** — trip counts straddling the back-edge
  threshold, so some loops tier up mid-execution and some don't;
* **guard-boundary values** — INT32_MAX/MIN and friends as literals
  and arguments, so overflow and negative-zero guards actually fire;
* **polymorphic receiver shapes** — object literals with the same
  properties in different insertion orders (distinct hidden classes)
  fed to the same property-accessing function, plus property adds and
  deletes mid-run, so shape inline caches transition mono → poly →
  megamorphic and compiled ``guardshape`` guards genuinely fail;
* **precondition churn** — functions whose small-integer regime
  argument rotates through phases and *returns* to earlier values, so
  the spec-cache key space is churned rather than warmed once: under
  the §4 policy every phase flip is a discard, while the deoptless
  dispatch table (docs/DEOPTLESS.md) must re-enter the matching
  retained sibling — and the oracle's deoptless on/off variants must
  still print identical output;
* **spec-cache key-space churn** — two-parameter functions driven with
  more distinct literal argument pairs than any configured spec-cache
  capacity, in repeated rounds, so collision-eviction and interleaved
  re-hits of previously evicted keys are exercised directly;
* **array element traffic** — hot ``a[i % a.length]`` reads, in-bounds
  stores, mixed-type array literals and mid-run appends through
  ``arr[arr.length] = v``, staling any cached length/bounds guards;
* **closure cells** — makers returning function expressions that
  mutate a captured local, with two instances of the same code driven
  interleaved, so specialized binaries must read cells rather than
  baked constants and must not leak state across instances.

Each top-level construct is emitted on a *single line*: the shrinker
(:mod:`repro.fuzz.shrink`) reduces line sets, and one-construct-per-
line makes every subset syntactically plausible.
"""

import random

#: The multiplier folding ``seed`` and ``iteration`` into one integer
#: seed (a large prime, so adjacent seeds don't collide across
#: adjacent iterations).
SEED_STRIDE = 1000003

#: Int literals sitting on guard boundaries: int32 overflow edges,
#: negative-zero feeders, bit-op widths.
BOUNDARY_INTS = (
    0,
    1,
    -1,
    2,
    3,
    7,
    16,
    255,
    256,
    1023,
    65535,
    46340,  # isqrt(INT32_MAX): mul_i overflow pivot
    2147483646,
    2147483647,
    -2147483647,
    -2147483648,
)

#: Double and string literals for the polymorphic arms.
OTHER_LITERALS = ('0.5', '-0.25', '2.5', '1e9', '"s"', '"x7"', '""')

#: Loop trip counts straddling the FAST OSR back-edge threshold (10)
#: and the default one (100).
TRIP_COUNTS = (2, 5, 9, 11, 13, 40, 75, 120)

#: Object-literal templates for the shape-IC arms.  Every template
#: defines ``x`` and ``y`` (so the generated accessors never touch a
#: missing property) but in different insertion orders and with
#: different extras — each template is a distinct hidden class, so a
#: call site cycling through them drives the callee's property ICs
#: from monomorphic through polymorphic to megamorphic (five templates
#: > the four-entry IC capacity).
OBJECT_TEMPLATES = (
    ("x", "y"),
    ("y", "x"),
    ("x", "y", "z"),
    ("z", "x", "y"),
    ("y", "z", "x"),
)


def _weighted(rng, table):
    """Draw from ``table`` — ``(integer_weight, item)`` pairs.

    Integer arithmetic end to end: ``randrange`` over the weight sum,
    so the draw sequence is identical on every platform and Python
    version for a given ``rng`` state.
    """
    total = 0
    for weight, _item in table:
        total += weight
    roll = rng.randrange(total)
    for weight, item in table:
        roll -= weight
        if roll < 0:
            return item
    raise AssertionError("unreachable: weights exhausted")


def _int_literal(rng):
    """A boundary-biased integer literal as source text."""
    value = BOUNDARY_INTS[rng.randrange(len(BOUNDARY_INTS))]
    if value < 0:
        return "(%d)" % value
    return "%d" % value


def _leaf(rng, names):
    """An expression leaf: a live variable or a boundary literal."""
    kind = _weighted(rng, [(5, "var"), (3, "int"), (1, "other")])
    if kind == "var":
        return names[rng.randrange(len(names))]
    if kind == "int":
        return _int_literal(rng)
    return OTHER_LITERALS[rng.randrange(len(OTHER_LITERALS))]


#: Binary operators, weighted.  Heavy on the int-speculated group
#: (arithmetic and bitops compile to guarded ``*_i`` forms); division
#: and modulo produce doubles/NaN, poisoning int chains mid-loop.
_BINOPS = [
    (6, "+"),
    (5, "-"),
    (5, "*"),
    (4, "&"),
    (4, "|"),
    (3, "^"),
    (2, "<<"),
    (2, ">>"),
    (2, ">>>"),
    (2, "%"),
    (1, "/"),
]


def _expression(rng, names, depth):
    """A parenthesized expression over ``names``, recursion-bounded."""
    if depth <= 0:
        return _leaf(rng, names)
    kind = _weighted(
        rng, [(6, "binary"), (2, "leaf"), (1, "unary"), (1, "ternary")]
    )
    if kind == "leaf":
        return _leaf(rng, names)
    if kind == "unary":
        op = _weighted(rng, [(3, "-"), (2, "~"), (1, "!")])
        return "(%s%s)" % (op, _expression(rng, names, depth - 1))
    if kind == "ternary":
        comparison = _weighted(rng, [(2, "<"), (2, ">"), (1, "=="), (1, "<=")])
        return "(%s %s %s ? %s : %s)" % (
            _leaf(rng, names),
            comparison,
            _leaf(rng, names),
            _expression(rng, names, depth - 1),
            _expression(rng, names, depth - 1),
        )
    return "(%s %s %s)" % (
        _expression(rng, names, depth - 1),
        _weighted(rng, _BINOPS),
        _expression(rng, names, depth - 1),
    )


def _loop_body(rng, names, accumulator):
    """Statements for one loop body, as a list of source fragments."""
    statements = ["%s = %s;" % (accumulator, _expression(rng, names, 2))]
    # Reassigned parameter: the canonical specialization-hostile shape.
    if rng.randrange(3) == 0:
        param = names[rng.randrange(2)]
        statements.append("%s = %s;" % (param, _expression(rng, names, 1)))
    if rng.randrange(3) == 0:
        statements.append(
            "if (%s %s %s) { %s = %s; }"
            % (
                accumulator,
                _weighted(rng, [(2, "<"), (2, ">"), (1, "==")]),
                _int_literal(rng),
                accumulator,
                _expression(rng, names, 1),
            )
        )
    return statements


def _function_line(rng, index):
    """One guest function declaration, emitted on a single line."""
    name = "f%d" % index
    names = ("a", "b", "s", "i")
    trips = TRIP_COUNTS[rng.randrange(len(TRIP_COUNTS))]
    pieces = ["function %s(a, b) {" % name, "var s = %s;" % _int_literal(rng)]
    if rng.randrange(4) == 0:
        # Pre-loop parameter clobber: defeats the baked-in constant
        # before the loop even starts.
        pieces.append("a = %s;" % _expression(rng, ("a", "b"), 1))
    pieces.append("for (var i = 0; i < %d; i = i + 1) {" % trips)
    pieces.extend(_loop_body(rng, names, "s"))
    pieces.append("}")
    if rng.randrange(4) == 0:
        pieces.append('return "" + s;')
    else:
        pieces.append("return s;")
    pieces.append("}")
    return name, " ".join(pieces)


def _argument(rng, polymorphic):
    """One call-site argument literal."""
    if polymorphic and rng.randrange(2) == 0:
        return OTHER_LITERALS[rng.randrange(len(OTHER_LITERALS))]
    return _int_literal(rng)


def _call_lines(rng, name, index):
    """Call-site lines for one function: a monomorphic warm-up wave,
    then optionally polymorphic follow-ups (type-change deopts), then
    a hot driver loop (call-threshold and OSR pressure)."""
    lines = []
    first_args = (_argument(rng, False), _argument(rng, False))
    lines.append("print(%s(%s, %s));" % (name, first_args[0], first_args[1]))
    polymorphic = rng.randrange(2) == 0
    for _ in range(rng.randrange(1, 3)):
        lines.append(
            "print(%s(%s, %s));"
            % (name, _argument(rng, polymorphic), _argument(rng, polymorphic))
        )
    driver_trips = TRIP_COUNTS[rng.randrange(len(TRIP_COUNTS))]
    lines.append(
        "var t%d = 0; for (var r%d = 0; r%d < %d; r%d = r%d + 1) "
        "{ t%d = %s(%s, r%d); } print(t%d);"
        % (
            index,
            index,
            index,
            driver_trips,
            index,
            index,
            index,
            name,
            _argument(rng, polymorphic),
            index,
            index,
        )
    )
    return lines


def _object_literal(rng, template):
    """Source text of one object literal following ``template``."""
    return "{%s}" % ", ".join(
        "%s: %s" % (prop, _int_literal(rng)) for prop in template
    )


def _object_function_line(rng, index):
    """One property-accessing guest function, on a single line.

    The body reads ``o.x``/``o.y`` in a hot loop (GETPROP shape ICs)
    and sometimes writes a property back — either an existing one (a
    SETPROP IC hit on a stable shape) or a brand-new one (the store
    itself transitions the receiver's shape, so the next iteration's
    reads see a shape the compile-time IC may not know).
    """
    name = "g%d" % index
    trips = TRIP_COUNTS[rng.randrange(len(TRIP_COUNTS))]
    pieces = ["function %s(o) {" % name, "var s = 0;"]
    pieces.append("for (var i = 0; i < %d; i = i + 1) {" % trips)
    pieces.append("s = (s + o.x + o.y) & 65535;")
    write = rng.randrange(3)
    if write == 1:
        pieces.append("o.x = s;")
    elif write == 2:
        pieces.append("o.w = s;")
    pieces.append("}")
    pieces.append("return s;")
    pieces.append("}")
    return name, " ".join(pieces)


def _object_call_lines(rng, name, index):
    """Receivers and call sites for one property-accessing function.

    One to three receiver variables with distinct literal shapes (the
    callee's ICs go mono → poly as they cycle through), an optional
    mid-run ``delete`` (a deletion transition the next call observes
    as yet another shape), then a hot driver loop over one receiver.
    """
    lines = []
    count = rng.randrange(1, 4)
    start = rng.randrange(len(OBJECT_TEMPLATES))
    receivers = []
    for offset in range(count):
        template = OBJECT_TEMPLATES[(start + offset) % len(OBJECT_TEMPLATES)]
        receiver = "o%d_%d" % (index, offset)
        receivers.append(receiver)
        lines.append("var %s = %s;" % (receiver, _object_literal(rng, template)))
        lines.append("print(%s(%s));" % (name, receiver))
    if rng.randrange(2) == 0:
        victim = receivers[rng.randrange(len(receivers))]
        lines.append("delete %s.z;" % victim)
        lines.append("print(%s(%s));" % (name, victim))
    driver = receivers[rng.randrange(len(receivers))]
    trips = TRIP_COUNTS[rng.randrange(len(TRIP_COUNTS))]
    lines.append(
        "var u%d = 0; for (var q%d = 0; q%d < %d; q%d = q%d + 1) "
        "{ u%d = %s(%s); } print(u%d);"
        % (index, index, index, trips, index, index, index, name, driver, index)
    )
    return lines


def _churn_function_line(rng, index):
    """One phase-churning guest function, on a single line.

    The body branches on a small integer regime parameter: under value
    specialization each regime value bakes to a different binary, so
    the rotating call pattern (:func:`_churn_call_lines`) churns the
    spec-cache key space instead of warming it once — the workload the
    deoptless dispatch table (docs/DEOPTLESS.md) converges on.
    """
    name = "h%d" % index
    names = ("s", "i", "k")
    trips = TRIP_COUNTS[rng.randrange(len(TRIP_COUNTS))]
    arms = rng.randrange(2, 4)
    pieces = ["function %s(k) {" % name, "var s = %s;" % _int_literal(rng)]
    pieces.append("for (var i = 0; i < %d; i = i + 1) {" % trips)
    for arm in range(arms):
        if arm == 0:
            head = "if (k == 0)"
        elif arm < arms - 1:
            head = "else if (k == %d)" % arm
        else:
            head = "else"
        pieces.append(
            "%s s = (%s) & 65535;" % (head, _expression(rng, names, 1))
        )
    pieces.append("}")
    pieces.append("return s;")
    pieces.append("}")
    return name, " ".join(pieces)


def _churn_call_lines(rng, name, index):
    """Phase-rotating call sites: the spec-cache key churner.

    An outer phase loop rotates the regime argument modulo a small
    base (so regimes *recur* — the property that distinguishes a
    dispatch-table re-entry from a plain recompile), and an inner wave
    re-calls the function enough times per phase to clear the hot-call
    threshold within each regime.
    """
    phases = rng.randrange(4, 9)
    wave = rng.randrange(3, 7)
    base = rng.randrange(2, 4)
    lines = [
        "var c%d = 0; for (var p%d = 0; p%d < %d; p%d = p%d + 1) "
        "{ for (var w%d = 0; w%d < %d; w%d = w%d + 1) "
        "{ c%d = (c%d + %s(p%d %% %d)) & 65535; } } print(c%d);"
        % (
            index,
            index,
            index,
            phases,
            index,
            index,
            index,
            index,
            wave,
            index,
            index,
            index,
            index,
            name,
            index,
            base,
            index,
        )
    ]
    return lines


def _speckey_function_line(rng, index):
    """One two-parameter function for the spec-cache key-space arm.

    Both parameters feed the loop body, so under value specialization
    every distinct literal argument pair is a distinct spec-cache key
    — the raw material :func:`_speckey_call_lines` uses to overflow
    the per-function cache capacity.
    """
    name = "k%d" % index
    names = ("v", "w", "s", "i")
    trips = TRIP_COUNTS[rng.randrange(len(TRIP_COUNTS))]
    pieces = ["function %s(v, w) {" % name, "var s = %s;" % _int_literal(rng)]
    pieces.append("for (var i = 0; i < %d; i = i + 1) {" % trips)
    pieces.append("s = (%s) & 65535;" % _expression(rng, names, 2))
    pieces.append("}")
    pieces.append("return s;")
    pieces.append("}")
    return name, " ".join(pieces)


def _speckey_call_lines(rng, name, index):
    """Collision/eviction call sequences over the spec-cache key space.

    More distinct literal argument pairs than any configured spec-cache
    capacity (3–7 keys vs the paper's capacity of 1 and the deoptless
    table's 4), each hammered past the hot-call threshold, and the
    whole key set revisited for 2–3 rounds — so previously-evicted keys
    *re-hit* the cache interleaved with fresh insertions.  Exercises
    insert, collision-evict and re-specialize paths; every variant
    must still print identical output.
    """
    distinct = rng.randrange(3, 8)
    rounds = rng.randrange(2, 4)
    wave = rng.randrange(3, 7)
    start = rng.randrange(len(BOUNDARY_INTS))
    keys = []
    for offset in range(distinct):
        first = BOUNDARY_INTS[(start + offset) % len(BOUNDARY_INTS)]
        first_text = "(%d)" % first if first < 0 else "%d" % first
        # The second component enumerates offsets, guaranteeing the
        # pairs are pairwise distinct whatever the boundary draw did.
        keys.append((first_text, "%d" % offset))
    lines = []
    for round_index in range(rounds):
        for key_index, (first, second) in enumerate(keys):
            label = "z%d_%d_%d" % (index, round_index, key_index)
            loop = "e%d_%d_%d" % (index, round_index, key_index)
            lines.append(
                "var %s = 0; for (var %s = 0; %s < %d; %s = %s + 1) "
                "{ %s = (%s + %s(%s, %s)) & 65535; } print(%s);"
                % (
                    label,
                    loop,
                    loop,
                    wave,
                    loop,
                    loop,
                    label,
                    label,
                    name,
                    first,
                    second,
                    label,
                )
            )
    return lines


def _array_function_line(rng, index):
    """One array-walking guest function, on a single line.

    Reads ``a[i % a.length]`` in a hot loop (guarded element loads plus
    ``.length``), optionally storing back in-bounds (SETELEM on a live
    array the loop immediately re-reads).
    """
    name = "b%d" % index
    trips = TRIP_COUNTS[rng.randrange(len(TRIP_COUNTS))]
    pieces = ["function %s(a, n) {" % name, "var s = 0;"]
    pieces.append("for (var i = 0; i < %d; i = i + 1) {" % trips)
    pieces.append("s = (s + a[i % a.length] + n) & 65535;")
    if rng.randrange(3) == 0:
        pieces.append("a[i % a.length] = s;")
    pieces.append("}")
    pieces.append("return s;")
    pieces.append("}")
    return name, " ".join(pieces)


def _array_call_lines(rng, name, index):
    """Array receivers and call sites for one array-walking function.

    Two array literals of different lengths (and sometimes mixed
    element types), an optional append through ``arr[arr.length]``
    (growing the array mid-run, so cached length/bounds guards go
    stale), then a hot driver loop.
    """
    lines = []
    first = "ar%d_0" % index
    second = "ar%d_1" % index
    length = rng.randrange(2, 6)
    elements = [_int_literal(rng) for _ in range(length)]
    if rng.randrange(3) == 0:
        elements[rng.randrange(length)] = OTHER_LITERALS[
            rng.randrange(len(OTHER_LITERALS))
        ]
    lines.append("var %s = [%s];" % (first, ", ".join(elements)))
    lines.append("print(%s(%s, %s));" % (name, first, _int_literal(rng)))
    arrays = [first]
    if rng.randrange(2) == 0:
        other = [_int_literal(rng) for _ in range(rng.randrange(1, 4))]
        lines.append("var %s = [%s];" % (second, ", ".join(other)))
        lines.append("print(%s(%s, %s));" % (name, second, _int_literal(rng)))
        arrays.append(second)
    if rng.randrange(2) == 0:
        victim = arrays[rng.randrange(len(arrays))]
        lines.append("%s[%s.length] = %s;" % (victim, victim, _int_literal(rng)))
        lines.append("print(%s(%s, %s));" % (name, victim, _int_literal(rng)))
    driver = arrays[rng.randrange(len(arrays))]
    trips = TRIP_COUNTS[rng.randrange(len(TRIP_COUNTS))]
    lines.append(
        "var v%d = 0; for (var d%d = 0; d%d < %d; d%d = d%d + 1) "
        "{ v%d = %s(%s, d%d); } print(v%d);"
        % (index, index, index, trips, index, index, index, name, driver, index, index)
    )
    return lines


def _closure_function_line(rng, index):
    """One closure-maker guest function, on a single line.

    Returns a function expression capturing (and mutating) the maker's
    local — a cell variable, so the inner function's compiled code
    reads and writes through the environment rather than a baked
    constant.  Two instances from the same maker share code but not
    cells; specializing one must never leak state into the other.
    """
    maker = "m%d" % index
    pieces = ["function %s(n) {" % maker, "var t = n;"]
    if rng.randrange(2) == 0:
        pieces.append("var u = %s;" % _int_literal(rng))
        body = "t = (t + d + u) & 65535; u = (u ^ d) & 255; return t;"
    else:
        body = "t = (t + d * %d) & 65535; return t;" % rng.randrange(1, 5)
    pieces.append("return function (d) { %s };" % body)
    pieces.append("}")
    return maker, " ".join(pieces)


def _closure_call_lines(rng, name, index):
    """Instances and call sites for one closure maker.

    Two closures from the same maker, seeded differently; each is
    called a couple of times then driven hot in a loop — interleaved,
    so a binary specialized on one instance's cell values meets the
    sibling's cells immediately.
    """
    lines = []
    first = "cl%d_0" % index
    second = "cl%d_1" % index
    lines.append("var %s = %s(%s);" % (first, name, _int_literal(rng)))
    lines.append("var %s = %s(%s);" % (second, name, _int_literal(rng)))
    lines.append("print(%s(%s));" % (first, _int_literal(rng)))
    lines.append("print(%s(%s));" % (second, _int_literal(rng)))
    trips = TRIP_COUNTS[rng.randrange(len(TRIP_COUNTS))]
    lines.append(
        "var y%d = 0; for (var x%d = 0; x%d < %d; x%d = x%d + 1) "
        "{ y%d = (y%d + %s(x%d) + %s(x%d)) & 65535; } print(y%d);"
        % (
            index,
            index,
            index,
            trips,
            index,
            index,
            index,
            index,
            first,
            index,
            second,
            index,
            index,
        )
    )
    return lines


def generate_program(seed, iteration=0):
    """The program for ``(seed, iteration)``, as source text.

    Deterministic: same pair, same text, on every supported platform.
    Every generated program terminates (all loops have literal bounds)
    and is syntactically valid; most print several lines.
    """
    rng = random.Random(seed * SEED_STRIDE + iteration)
    lines = []
    function_names = []
    for index in range(rng.randrange(1, 4)):
        name, line = _function_line(rng, index)
        function_names.append(name)
        lines.append(line)
    object_names = []
    for index in range(rng.randrange(0, 3)):
        name, line = _object_function_line(rng, index)
        object_names.append(name)
        lines.append(line)
    churn_names = []
    for index in range(rng.randrange(0, 3)):
        name, line = _churn_function_line(rng, index)
        churn_names.append(name)
        lines.append(line)
    speckey_names = []
    for index in range(rng.randrange(0, 2)):
        name, line = _speckey_function_line(rng, index)
        speckey_names.append(name)
        lines.append(line)
    array_names = []
    for index in range(rng.randrange(0, 2)):
        name, line = _array_function_line(rng, index)
        array_names.append(name)
        lines.append(line)
    closure_names = []
    for index in range(rng.randrange(0, 2)):
        name, line = _closure_function_line(rng, index)
        closure_names.append(name)
        lines.append(line)
    for index, name in enumerate(function_names):
        lines.extend(_call_lines(rng, name, index))
    for index, name in enumerate(object_names):
        lines.extend(_object_call_lines(rng, name, index))
    for index, name in enumerate(churn_names):
        lines.extend(_churn_call_lines(rng, name, index))
    for index, name in enumerate(speckey_names):
        lines.extend(_speckey_call_lines(rng, name, index))
    for index, name in enumerate(array_names):
        lines.extend(_array_call_lines(rng, name, index))
    for index, name in enumerate(closure_names):
        lines.extend(_closure_call_lines(rng, name, index))
    return "\n".join(lines) + "\n"
