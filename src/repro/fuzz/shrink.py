"""Delta-debugging reduction of mismatching programs.

Classic ddmin (Zeller & Hildebrandt) over *source lines*: the
generator emits one top-level construct per line precisely so that
line subsets are plausible programs.  The predicate is "the oracle
still reports a mismatch"; subsets that fail to parse simply don't
satisfy it, so the algorithm needs no grammar awareness.

The result is what lands in ``tests/corpus/`` when a fuzzing run
finds a bug: the smallest line subset (then further cleaned by
dropping any single line whose removal preserves the mismatch) that
still reproduces the disagreement.
"""


class ShrinkResult(object):
    """Outcome of one reduction: the text, its size, the work done."""

    def __init__(self, source, from_lines, to_lines, steps):
        self.source = source
        self.from_lines = from_lines
        self.to_lines = to_lines
        #: Predicate evaluations spent (each is one full oracle pass).
        self.steps = steps


def _split(items, chunk_count):
    """Partition ``items`` into ``chunk_count`` contiguous chunks."""
    chunks = []
    start = 0
    for index in range(chunk_count):
        end = start + (len(items) - start) // (chunk_count - index)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks


def ddmin(lines, predicate, max_steps=2000):
    """Minimal failing subset of ``lines`` under ``predicate``.

    ``predicate(candidate_lines)`` must return True when the candidate
    still exhibits the failure; it is assumed True for ``lines``
    itself.  Returns ``(minimal_lines, steps_used)``.  ``max_steps``
    bounds predicate evaluations — reduction is best-effort beyond it.
    """
    steps = 0
    granularity = 2
    while len(lines) >= 2 and steps < max_steps:
        chunks = _split(lines, min(granularity, len(lines)))
        reduced = False
        for index in range(len(chunks)):
            complement = []
            for chunk_index, chunk in enumerate(chunks):
                if chunk_index != index:
                    complement.extend(chunk)
            steps += 1
            if predicate(complement):
                lines = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if steps >= max_steps:
                break
        if not reduced:
            if granularity >= len(lines):
                break
            granularity = min(len(lines), granularity * 2)
    return lines, steps


def shrink_program(source, predicate, max_steps=2000):
    """Reduce ``source`` to a minimal reproducer under ``predicate``.

    ``predicate(candidate_source)`` gets joined text and returns True
    when the candidate still reproduces the failure (callers wrap the
    oracle and must return False — not raise — on syntax errors).
    Returns a :class:`ShrinkResult`.
    """
    lines = [line for line in source.splitlines() if line.strip()]
    from_lines = len(lines)

    def line_predicate(candidate):
        if not candidate:
            return False
        return predicate("\n".join(candidate) + "\n")

    minimal, steps = ddmin(lines, line_predicate, max_steps=max_steps)

    # ddmin guarantees 1-minimality over its final granularity; one
    # extra sweep dropping single lines catches leftovers cheaply.
    changed = True
    while changed and steps < max_steps:
        changed = False
        for index in range(len(minimal)):
            candidate = minimal[:index] + minimal[index + 1 :]
            steps += 1
            if line_predicate(candidate):
                minimal = candidate
                changed = True
                break
            if steps >= max_steps:
                break

    return ShrinkResult(
        "\n".join(minimal) + "\n", from_lines, len(minimal), steps
    )
