"""JS operator semantics, shared by every tier of the VM.

The interpreter, the JIT's constant folder and the simulated-native
executor all evaluate guest operators through these functions.  Sharing
one implementation is what makes compile-time folding sound: folding
``a + b`` at compile time gives bit-identical results to executing it.
"""

import math

from repro.errors import JSTypeError
from repro.jsvm.bytecode import Op
from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.values import (
    NULL,
    UNDEFINED,
    is_number,
    js_equals,
    js_strict_equals,
    normalize_number,
    to_boolean,
    to_js_string,
    to_number,
    type_of,
)

_UINT32 = 2 ** 32
_INT32_SIGN = 2 ** 31


def to_int32(value):
    """Implement JS ToInt32."""
    number = to_number(value)
    if type(number) is int:
        n = number
    elif math.isnan(number) or math.isinf(number):
        return 0
    else:
        n = int(number)
    n &= _UINT32 - 1
    if n >= _INT32_SIGN:
        n -= _UINT32
    return n


def to_uint32(value):
    """Implement JS ToUint32."""
    number = to_number(value)
    if type(number) is int:
        n = number
    elif math.isnan(number) or math.isinf(number):
        return 0
    else:
        n = int(number)
    return n & (_UINT32 - 1)


_INT32_MIN = -(2 ** 31)
_INT32_MAX = 2 ** 31 - 1


def js_add(a, b):
    """The JS ``+`` operator: string concatenation or numeric addition."""
    if type(a) is int and type(b) is int:
        # Hot path: int32 + int32, normalized inline (identical to
        # normalize_number on an out-of-range int: widen to double).
        result = a + b
        if _INT32_MIN <= result <= _INT32_MAX:
            return result
        return float(result)
    if type(a) is str or type(b) is str:
        return to_js_string(a) + to_js_string(b)
    if isinstance(a, JSObject) or isinstance(b, JSObject):
        # ToPrimitive on objects/arrays yields strings in our subset.
        return to_js_string(a) + to_js_string(b)
    return _numeric(to_number(a) + to_number(b))


def _numeric(value):
    if type(value) is int:
        return normalize_number(value)
    return normalize_number(value)


def js_sub(a, b):
    """The JS ``-`` operator."""
    return _numeric(to_number(a) - to_number(b))


def js_mul(a, b):
    """The JS ``*`` operator.

    Python integer multiplication cannot produce -0, but JS can
    (``-3 * 0`` is the double -0), so the int×int path restores the
    sign explicitly.  The native tier's ``mul_i`` negative-zero bailout
    relies on this matching.
    """
    x, y = to_number(a), to_number(b)
    result = x * y
    if type(x) is int and type(y) is int and result == 0 and (x < 0) != (y < 0):
        return -0.0
    return _numeric(result)


def js_div(a, b):
    """The JS ``/`` operator (IEEE division; /0 gives infinities)."""
    x, y = to_number(a), to_number(b)
    fx, fy = float(x), float(y)
    if fy == 0.0:
        if fx == 0.0 or math.isnan(fx):
            return float("nan")
        sign = math.copysign(1.0, fx) * math.copysign(1.0, fy)
        return float("inf") * sign
    return normalize_number(fx / fy)


def js_mod(a, b):
    """The JS ``%`` operator (fmod semantics, dividend sign)."""
    x, y = float(to_number(a)), float(to_number(b))
    if y == 0.0 or math.isnan(x) or math.isnan(y) or math.isinf(x):
        return float("nan")
    if math.isinf(y):
        return normalize_number(x)
    if x == 0.0:
        return normalize_number(x)
    return normalize_number(math.fmod(x, y))


def js_neg(a):
    """The JS unary ``-`` operator (note: -0 is a double)."""
    number = to_number(a)
    if type(number) is int:
        if number == 0:
            return -0.0
        return normalize_number(-number)
    return -number


def js_compare(op, a, b):
    """Shared relational comparison for <, <=, >, >=."""
    if type(a) is int and type(b) is int:
        # Hot path: int32 comparison needs no float conversion (floats
        # represent every int32 exactly, so the result is identical)
        # and cannot involve NaN.
        if op == Op.LT:
            return a < b
        if op == Op.LE:
            return a <= b
        if op == Op.GT:
            return a > b
        return a >= b
    if type(a) is str and type(b) is str:
        if op == Op.LT:
            return a < b
        if op == Op.LE:
            return a <= b
        if op == Op.GT:
            return a > b
        return a >= b
    x, y = float(to_number(a)), float(to_number(b))
    if math.isnan(x) or math.isnan(y):
        return False
    if op == Op.LT:
        return x < y
    if op == Op.LE:
        return x <= y
    if op == Op.GT:
        return x > y
    return x >= y


def js_in(key, container):
    """The JS ``in`` operator."""
    if isinstance(container, JSArray):
        if is_number(key):
            index = int(key)
            return 0 <= index < container.length
        return container.has(to_js_string(key))
    if isinstance(container, JSObject):
        return container.has(to_js_string(key))
    raise JSTypeError("'in' requires an object, got %s" % type_of(container))


def _js_bitand(a, b):
    return to_int32(a) & to_int32(b)


def _js_bitor(a, b):
    return to_int32(a) | to_int32(b)


def _js_bitxor(a, b):
    return to_int32(a) ^ to_int32(b)


def _js_shl(a, b):
    shifted = (to_int32(a) << (to_uint32(b) & 31)) & (_UINT32 - 1)
    if shifted >= _INT32_SIGN:
        shifted -= _UINT32
    return shifted


def _js_shr(a, b):
    return to_int32(a) >> (to_uint32(b) & 31)


def _js_ushr(a, b):
    return normalize_number(to_uint32(a) >> (to_uint32(b) & 31))


def _js_ne(a, b):
    return not js_equals(a, b)


def _js_strictne(a, b):
    return not js_strict_equals(a, b)


def _js_lt(a, b):
    return js_compare(Op.LT, a, b)


def _js_le(a, b):
    return js_compare(Op.LE, a, b)


def _js_gt(a, b):
    return js_compare(Op.GT, a, b)


def _js_ge(a, b):
    return js_compare(Op.GE, a, b)


#: Dispatch table for :func:`binary_op`: one dict probe replaces the
#: historical if/elif decode chain (up to 18 comparisons per operator
#: evaluation on the generic path).  Each entry evaluates exactly the
#: same expression the chain did.
_BINARY_TABLE = {
    Op.ADD: js_add,
    Op.SUB: js_sub,
    Op.MUL: js_mul,
    Op.DIV: js_div,
    Op.MOD: js_mod,
    Op.BITAND: _js_bitand,
    Op.BITOR: _js_bitor,
    Op.BITXOR: _js_bitxor,
    Op.SHL: _js_shl,
    Op.SHR: _js_shr,
    Op.USHR: _js_ushr,
    Op.EQ: js_equals,
    Op.NE: _js_ne,
    Op.STRICTEQ: js_strict_equals,
    Op.STRICTNE: _js_strictne,
    Op.LT: _js_lt,
    Op.LE: _js_le,
    Op.GT: _js_gt,
    Op.GE: _js_ge,
    Op.IN: js_in,
}


def binary_op(op, a, b):
    """Evaluate one binary bytecode operator on guest values."""
    handler = _BINARY_TABLE.get(op)
    if handler is None:
        raise JSTypeError("unknown binary operator %r" % op)
    return handler(a, b)


def unary_op(op, a):
    """Evaluate one unary bytecode operator on a guest value."""
    if op == Op.NEG:
        return js_neg(a)
    if op == Op.POS or op == Op.TONUM:
        return normalize_number(to_number(a))
    if op == Op.NOT:
        return not to_boolean(a)
    if op == Op.BITNOT:
        return ~to_int32(a)
    if op == Op.TYPEOF:
        return type_of(a)
    raise JSTypeError("unknown unary operator %r" % op)


def get_property(value, name, runtime=None):
    """Generic property read, including string/array built-ins.

    ``runtime`` supplies the method tables for primitive receivers; it
    may be None when folding at compile time (then only data properties
    like ``length`` are available, which is exactly what the constant
    folder is allowed to fold — paper §2, "we can inline some
    properties from these types, such as the length constant").
    """
    if type(value) is str:
        if name == "length":
            return len(value)
        if runtime is not None:
            method = runtime.string_methods.get(name)
            if method is not None:
                return method
        return UNDEFINED
    if isinstance(value, JSArray):
        if name == "length":
            return value.length
        if value.has(name):
            return value.get(name)
        if runtime is not None:
            method = runtime.array_methods.get(name)
            if method is not None:
                return method
        return UNDEFINED
    if isinstance(value, JSObject):
        return value.get(name)
    if value is UNDEFINED or value is NULL:
        raise JSTypeError("cannot read property %r of %s" % (name, to_js_string(value)))
    if is_number(value) and runtime is not None:
        method = runtime.number_methods.get(name)
        if method is not None:
            return method
    return UNDEFINED


def set_property(value, name, new_value):
    """Generic property write."""
    if isinstance(value, JSObject):
        value.set(name, new_value)
        return
    if value is UNDEFINED or value is NULL:
        raise JSTypeError("cannot set property %r of %s" % (name, to_js_string(value)))
    # Writes to primitives are silently dropped (non-strict JS).


def get_element(value, index, runtime=None):
    """Generic indexed read: arrays, strings, objects."""
    if type(index) is int and isinstance(value, JSArray):
        # Hot path: int index into a dense array, read inline.
        elements = value.elements
        if 0 <= index < len(elements):
            return elements[index]
        return UNDEFINED
    if isinstance(value, JSArray) and is_number(index):
        return value.get_element(index)
    if type(value) is str:
        if is_number(index):
            i = int(index)
            if 0 <= i < len(value) and float(index) == i:
                return value[i]
            return UNDEFINED
        return get_property(value, to_js_string(index), runtime)
    return get_property(value, to_js_string(index), runtime)


def set_element(value, index, new_value):
    """Generic indexed write."""
    if isinstance(value, JSArray) and is_number(index):
        value.set_element(index, new_value)
        return
    set_property(value, to_js_string(index), new_value)
