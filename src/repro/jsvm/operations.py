"""JS operator semantics, shared by every tier of the VM.

The interpreter, the JIT's constant folder and the simulated-native
executor all evaluate guest operators through these functions.  Sharing
one implementation is what makes compile-time folding sound: folding
``a + b`` at compile time gives bit-identical results to executing it.
"""

import math

from repro.errors import JSTypeError
from repro.jsvm.bytecode import Op
from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.values import (
    NULL,
    UNDEFINED,
    is_number,
    js_equals,
    js_strict_equals,
    normalize_number,
    to_boolean,
    to_js_string,
    to_number,
    type_of,
)

_UINT32 = 2 ** 32
_INT32_SIGN = 2 ** 31


def to_int32(value):
    """Implement JS ToInt32."""
    number = to_number(value)
    if type(number) is int:
        n = number
    elif math.isnan(number) or math.isinf(number):
        return 0
    else:
        n = int(number)
    n &= _UINT32 - 1
    if n >= _INT32_SIGN:
        n -= _UINT32
    return n


def to_uint32(value):
    """Implement JS ToUint32."""
    number = to_number(value)
    if type(number) is int:
        n = number
    elif math.isnan(number) or math.isinf(number):
        return 0
    else:
        n = int(number)
    return n & (_UINT32 - 1)


def js_add(a, b):
    """The JS ``+`` operator: string concatenation or numeric addition."""
    if type(a) is str or type(b) is str:
        return to_js_string(a) + to_js_string(b)
    if isinstance(a, JSObject) or isinstance(b, JSObject):
        # ToPrimitive on objects/arrays yields strings in our subset.
        return to_js_string(a) + to_js_string(b)
    return _numeric(to_number(a) + to_number(b))


def _numeric(value):
    if type(value) is int:
        return normalize_number(value)
    return normalize_number(value)


def js_sub(a, b):
    """The JS ``-`` operator."""
    return _numeric(to_number(a) - to_number(b))


def js_mul(a, b):
    """The JS ``*`` operator.

    Python integer multiplication cannot produce -0, but JS can
    (``-3 * 0`` is the double -0), so the int×int path restores the
    sign explicitly.  The native tier's ``mul_i`` negative-zero bailout
    relies on this matching.
    """
    x, y = to_number(a), to_number(b)
    result = x * y
    if type(x) is int and type(y) is int and result == 0 and (x < 0) != (y < 0):
        return -0.0
    return _numeric(result)


def js_div(a, b):
    """The JS ``/`` operator (IEEE division; /0 gives infinities)."""
    x, y = to_number(a), to_number(b)
    fx, fy = float(x), float(y)
    if fy == 0.0:
        if fx == 0.0 or math.isnan(fx):
            return float("nan")
        sign = math.copysign(1.0, fx) * math.copysign(1.0, fy)
        return float("inf") * sign
    return normalize_number(fx / fy)


def js_mod(a, b):
    """The JS ``%`` operator (fmod semantics, dividend sign)."""
    x, y = float(to_number(a)), float(to_number(b))
    if y == 0.0 or math.isnan(x) or math.isnan(y) or math.isinf(x):
        return float("nan")
    if math.isinf(y):
        return normalize_number(x)
    if x == 0.0:
        return normalize_number(x)
    return normalize_number(math.fmod(x, y))


def js_neg(a):
    """The JS unary ``-`` operator (note: -0 is a double)."""
    number = to_number(a)
    if type(number) is int:
        if number == 0:
            return -0.0
        return normalize_number(-number)
    return -number


def js_compare(op, a, b):
    """Shared relational comparison for <, <=, >, >=."""
    if type(a) is str and type(b) is str:
        if op == Op.LT:
            return a < b
        if op == Op.LE:
            return a <= b
        if op == Op.GT:
            return a > b
        return a >= b
    x, y = float(to_number(a)), float(to_number(b))
    if math.isnan(x) or math.isnan(y):
        return False
    if op == Op.LT:
        return x < y
    if op == Op.LE:
        return x <= y
    if op == Op.GT:
        return x > y
    return x >= y


def js_in(key, container):
    """The JS ``in`` operator."""
    if isinstance(container, JSArray):
        if is_number(key):
            index = int(key)
            return 0 <= index < container.length
        return container.has(to_js_string(key))
    if isinstance(container, JSObject):
        return container.has(to_js_string(key))
    raise JSTypeError("'in' requires an object, got %s" % type_of(container))


def binary_op(op, a, b):
    """Evaluate one binary bytecode operator on guest values."""
    if op == Op.ADD:
        return js_add(a, b)
    if op == Op.SUB:
        return js_sub(a, b)
    if op == Op.MUL:
        return js_mul(a, b)
    if op == Op.DIV:
        return js_div(a, b)
    if op == Op.MOD:
        return js_mod(a, b)
    if op == Op.BITAND:
        return to_int32(a) & to_int32(b)
    if op == Op.BITOR:
        return to_int32(a) | to_int32(b)
    if op == Op.BITXOR:
        return to_int32(a) ^ to_int32(b)
    if op == Op.SHL:
        shifted = (to_int32(a) << (to_uint32(b) & 31)) & (_UINT32 - 1)
        if shifted >= _INT32_SIGN:
            shifted -= _UINT32
        return shifted
    if op == Op.SHR:
        return to_int32(a) >> (to_uint32(b) & 31)
    if op == Op.USHR:
        return normalize_number(to_uint32(a) >> (to_uint32(b) & 31))
    if op == Op.EQ:
        return js_equals(a, b)
    if op == Op.NE:
        return not js_equals(a, b)
    if op == Op.STRICTEQ:
        return js_strict_equals(a, b)
    if op == Op.STRICTNE:
        return not js_strict_equals(a, b)
    if op in (Op.LT, Op.LE, Op.GT, Op.GE):
        return js_compare(op, a, b)
    if op == Op.IN:
        return js_in(a, b)
    raise JSTypeError("unknown binary operator %r" % op)


def unary_op(op, a):
    """Evaluate one unary bytecode operator on a guest value."""
    if op == Op.NEG:
        return js_neg(a)
    if op == Op.POS or op == Op.TONUM:
        return normalize_number(to_number(a))
    if op == Op.NOT:
        return not to_boolean(a)
    if op == Op.BITNOT:
        return ~to_int32(a)
    if op == Op.TYPEOF:
        return type_of(a)
    raise JSTypeError("unknown unary operator %r" % op)


def get_property(value, name, runtime=None):
    """Generic property read, including string/array built-ins.

    ``runtime`` supplies the method tables for primitive receivers; it
    may be None when folding at compile time (then only data properties
    like ``length`` are available, which is exactly what the constant
    folder is allowed to fold — paper §2, "we can inline some
    properties from these types, such as the length constant").
    """
    if type(value) is str:
        if name == "length":
            return len(value)
        if runtime is not None:
            method = runtime.string_methods.get(name)
            if method is not None:
                return method
        return UNDEFINED
    if isinstance(value, JSArray):
        if name == "length":
            return value.length
        if name in value.properties:
            return value.properties[name]
        if runtime is not None:
            method = runtime.array_methods.get(name)
            if method is not None:
                return method
        return UNDEFINED
    if isinstance(value, JSObject):
        return value.get(name)
    if value is UNDEFINED or value is NULL:
        raise JSTypeError("cannot read property %r of %s" % (name, to_js_string(value)))
    if is_number(value) and runtime is not None:
        method = runtime.number_methods.get(name)
        if method is not None:
            return method
    return UNDEFINED


def set_property(value, name, new_value):
    """Generic property write."""
    if isinstance(value, JSObject):
        value.set(name, new_value)
        return
    if value is UNDEFINED or value is NULL:
        raise JSTypeError("cannot set property %r of %s" % (name, to_js_string(value)))
    # Writes to primitives are silently dropped (non-strict JS).


def get_element(value, index, runtime=None):
    """Generic indexed read: arrays, strings, objects."""
    if isinstance(value, JSArray) and is_number(index):
        return value.get_element(index)
    if type(value) is str:
        if is_number(index):
            i = int(index)
            if 0 <= i < len(value) and float(index) == i:
                return value[i]
            return UNDEFINED
        return get_property(value, to_js_string(index), runtime)
    return get_property(value, to_js_string(index), runtime)


def set_element(value, index, new_value):
    """Generic indexed write."""
    if isinstance(value, JSArray) and is_number(index):
        value.set_element(index, new_value)
        return
    set_property(value, to_js_string(index), new_value)
