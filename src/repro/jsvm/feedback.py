"""Type feedback: the profiling data the JIT speculates on.

IonMonkey leans on SpiderMonkey's type inference [Hackett & Shu 2012]
to know which unbox guards and type barriers to emit.  Our analogue is
call-site recording done by the interpreter once the engine attaches a
:class:`TypeFeedback` to a hot function's code object:

* argument type tags per parameter slot,
* result type tags per bytecode site (element/property/global loads
  and calls),
* ``this`` type tags.

The MIR builder turns monomorphic observations into typed unbox guards;
polymorphic sites stay boxed and generic.  Bailouts feed the observed
type back in, so recompilation stops speculating at that site.
"""

from repro.jsvm.values import type_tag

#: Sites never get more tags recorded than this; beyond it they are
#: treated as "anything" (megamorphic).
MAX_TAGS_PER_SITE = 4

#: Inline caches hold at most this many receiver shapes before the
#: site degrades to megamorphic (the classic PIC chain length).
MAX_IC_SHAPES = MAX_TAGS_PER_SITE

#: Sentinel stored in ``shape_ics`` once a site has overflowed: the
#: site is megamorphic and records (and speculates on) nothing further.
MEGAMORPHIC = "megamorphic"


def shape_ic_fingerprint(shape_ics):
    """Canonical snapshot of a per-site shape inline-cache table.

    Sites are sorted by pc, but each site's shape-id list keeps its
    recording order — the builder bakes the ids into ``guardshape``
    extras in exactly that order, so two ICs holding the same shapes
    in a different order are different compiles.  A megamorphic site
    fingerprints as its sentinel string.  This is both a component of
    the disk-cache content key (``cache/disk.py``) and, stamped into
    ``native.meta["ic_fingerprint"]``, the engine's retrain-noop
    detector (docs/DEOPTLESS.md).
    """
    return tuple(
        sorted(
            (pc, entries if isinstance(entries, str) else tuple(entries))
            for pc, entries in shape_ics.items()
        )
    )


class TypeFeedback(object):
    """Per-code-object profile of observed types."""

    __slots__ = ("arg_tags", "this_tags", "site_tags", "recv_tags", "shape_ics")

    def __init__(self, num_params):
        self.arg_tags = [set() for _ in range(num_params)]
        self.this_tags = set()
        self.site_tags = {}
        #: Receiver types observed at element/property access sites.
        self.recv_tags = {}
        #: Per-site inline caches: pc -> ordered list of receiver shape
        #: ids (mono/poly), or :data:`MEGAMORPHIC` once overflowed.
        self.shape_ics = {}

    # -- recording (called from the interpreter's hot loop) -----------------

    def record_args(self, args, this_value):
        nargs = len(args)
        tag = type_tag
        index = 0
        # Numeric tags are computed inline: this runs for every guest
        # call for the function's whole lifetime (monomorphic slots
        # never saturate), and arguments are overwhelmingly numbers.
        for slot in self.arg_tags:
            if len(slot) < MAX_TAGS_PER_SITE:
                if index < nargs:
                    value = args[index]
                    kind = type(value)
                    if kind is int:
                        slot.add(
                            "int" if -2147483648 <= value <= 2147483647 else "double"
                        )
                    elif kind is float:
                        slot.add("double")
                    else:
                        slot.add(tag(value))
                else:
                    slot.add("undefined")
            index += 1
        this_tags = self.this_tags
        if len(this_tags) < MAX_TAGS_PER_SITE:
            this_tags.add(tag(this_value))

    def record_site(self, pc, value):
        tags = self.site_tags.get(pc)
        if tags is None:
            tags = set()
            self.site_tags[pc] = tags
        if len(tags) < MAX_TAGS_PER_SITE:
            tags.add(type_tag(value))

    def record_site_tag(self, pc, tag):
        tags = self.site_tags.setdefault(pc, set())
        if len(tags) < MAX_TAGS_PER_SITE:
            tags.add(tag)

    def record_recv(self, pc, value):
        tags = self.recv_tags.get(pc)
        if tags is None:
            tags = set()
            self.recv_tags[pc] = tags
        if len(tags) < MAX_TAGS_PER_SITE:
            tags.add(type_tag(value))

    def record_shape(self, pc, shape_id):
        """Feed one receiver shape into the site's inline cache.

        Returns the IC outcome, which the interpreter turns into an
        ``ic.*`` trace event:

        * ``"hit"`` — the shape was already cached;
        * ``"transition"`` — the IC learned it (including the final
          learning step that tips the site into megamorphic);
        * ``"miss"`` — the site is megamorphic; nothing is recorded.
        """
        entries = self.shape_ics.get(pc)
        if entries is None:
            self.shape_ics[pc] = [shape_id]
            return "transition"
        if entries is MEGAMORPHIC:
            return "miss"
        if shape_id in entries:
            return "hit"
        if len(entries) < MAX_IC_SHAPES:
            entries.append(shape_id)
            return "transition"
        self.shape_ics[pc] = MEGAMORPHIC
        return "transition"

    def shape_record_would_change(self, pc, shape_id):
        """Whether :meth:`record_shape` at ``pc`` would alter the IC.

        False only when the recording is provably a no-op: the site is
        already megamorphic, or ``shape_id`` is already cached there.
        Unknown sites and an unknown shape (``None``) conservatively
        report True.  The engine's shape-retrain path uses this to
        skip discarding a binary the enriched IC would reproduce
        bit-identically (``retrain_noops`` in docs/STATS.md).
        """
        if shape_id is None:
            return True
        entries = self.shape_ics.get(pc)
        if entries is None:
            return True
        if entries is MEGAMORPHIC:
            return False
        return shape_id not in entries

    # -- queries (used by the MIR builder) ------------------------------------

    @staticmethod
    def _monomorphic(tags):
        """Reduce a tag set to a single speculation target, or None.

        ``{int}`` → int; ``{double}`` and ``{int, double}`` → double
        (numbers widen); anything else mixed → None.
        """
        if len(tags) == 1:
            tag = next(iter(tags))
            if tag in ("undefined", "null"):
                return None  # nothing useful to unbox
            return tag
        if tags and tags <= {"int", "double"}:
            return "double"
        return None

    def arg_speculation(self, index):
        if index >= len(self.arg_tags):
            return None
        return self._monomorphic(self.arg_tags[index])

    def this_speculation(self):
        return self._monomorphic(self.this_tags)

    def site_speculation(self, pc):
        tags = self.site_tags.get(pc)
        if not tags:
            return None
        return self._monomorphic(tags)

    def recv_speculation(self, pc):
        tags = self.recv_tags.get(pc)
        if not tags:
            return None
        return self._monomorphic(tags)

    def ic_state(self, pc):
        """The site's IC state: None, ``"mono"``, ``"poly"`` or ``"mega"``."""
        entries = self.shape_ics.get(pc)
        if entries is None:
            return None
        if entries is MEGAMORPHIC:
            return "mega"
        return "mono" if len(entries) == 1 else "poly"

    def shape_ids(self, pc):
        """The cached shape ids at ``pc``, in observation order.

        Empty for unvisited and megamorphic sites — the builder only
        emits a shape guard when this is non-empty.
        """
        entries = self.shape_ics.get(pc)
        if entries is None or entries is MEGAMORPHIC:
            return ()
        return tuple(entries)
