"""Hand-written lexer for the JavaScript subset.

Supports decimal and hex integer literals, float literals with
exponents, single- and double-quoted strings with the common escapes,
``//`` and ``/* */`` comments, and the punctuator set in
:mod:`repro.jsvm.tokens`.  Regular-expression literals are not part of
the subset.
"""

from repro.errors import JSSyntaxError
from repro.jsvm.tokens import KEYWORDS, PUNCTUATORS, Token, TokenType
from repro.jsvm.values import normalize_number

# Punctuators bucketed by first character, preserving the registry's
# longest-first order within each bucket (maximal munch).  The lexer
# probes one bucket (≤4 entries) instead of scanning all ~35 entries.
_PUNCT_BY_FIRST = {}
for _punct in PUNCTUATORS:
    _PUNCT_BY_FIRST.setdefault(_punct[0], []).append(_punct)
del _punct

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "\n": "",  # line continuation
}


class _Lexer(object):
    def __init__(self, source):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self.tokens = []

    def error(self, message):
        raise JSSyntaxError(message, self.line, self.column)

    def peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def advance(self, count=1):
        source = self.source
        pos = self.pos
        end = pos + count
        if end > len(source):
            end = len(source)
        line = self.line
        column = self.column
        while pos < end:
            if source[pos] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            pos += 1
        self.pos = pos
        self.line = line
        self.column = column

    def at_end(self):
        return self.pos >= len(self.source)

    def run(self):
        while True:
            self.skip_trivia()
            if self.at_end():
                self.tokens.append(Token(TokenType.EOF, None, self.line, self.column))
                return self.tokens
            ch = self.peek()
            if ch.isdigit() or (ch == "." and self.peek(1).isdigit()):
                self.lex_number()
            elif ch.isalpha() or ch in "_$":
                self.lex_identifier()
            elif ch in "'\"":
                self.lex_string()
            else:
                self.lex_punctuator()

    def skip_trivia(self):
        while not self.at_end():
            ch = self.peek()
            if ch in " \t\r\n":
                self.advance()
            elif ch == "/" and self.peek(1) == "/":
                while not self.at_end() and self.peek() != "\n":
                    self.advance()
            elif ch == "/" and self.peek(1) == "*":
                start_line, start_col = self.line, self.column
                self.advance(2)
                while not (self.peek() == "*" and self.peek(1) == "/"):
                    if self.at_end():
                        raise JSSyntaxError("unterminated comment", start_line, start_col)
                    self.advance()
                self.advance(2)
            else:
                return

    def lex_number(self):
        line, column = self.line, self.column
        start = self.pos
        if self.peek() == "0" and self.peek(1) in ("x", "X"):
            self.advance(2)
            if not self._ishex(self.peek()):
                self.error("malformed hex literal")
            while self._ishex(self.peek()):
                self.advance()
            value = int(self.source[start : self.pos], 16)
            self.tokens.append(Token(TokenType.NUMBER, normalize_number(value), line, column))
            return
        is_float = False
        while self.peek().isdigit():
            self.advance()
        if self.peek() == "." and self.peek(1).isdigit():
            is_float = True
            self.advance()
            while self.peek().isdigit():
                self.advance()
        elif self.peek() == ".":
            # trailing dot, as in "1."
            is_float = True
            self.advance()
        if self.peek() in "eE":
            probe = 1
            if self.peek(1) in "+-":
                probe = 2
            if self.peek(probe).isdigit():
                is_float = True
                self.advance(probe)
                while self.peek().isdigit():
                    self.advance()
        text = self.source[start : self.pos]
        value = float(text) if is_float else int(text)
        self.tokens.append(Token(TokenType.NUMBER, normalize_number(value), line, column))

    @staticmethod
    def _ishex(ch):
        return ch != "" and ch in "0123456789abcdefABCDEF"

    def lex_identifier(self):
        line, column = self.line, self.column
        start = self.pos
        while not self.at_end() and (self.peek().isalnum() or self.peek() in "_$"):
            self.advance()
        text = self.source[start : self.pos]
        kind = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENT
        self.tokens.append(Token(kind, text, line, column))

    def lex_string(self):
        line, column = self.line, self.column
        quote = self.peek()
        self.advance()
        parts = []
        while True:
            if self.at_end():
                raise JSSyntaxError("unterminated string", line, column)
            ch = self.peek()
            if ch == quote:
                self.advance()
                break
            if ch == "\n":
                raise JSSyntaxError("newline in string literal", line, column)
            if ch == "\\":
                self.advance()
                esc = self.peek()
                if esc == "x":
                    self.advance()
                    code = self.source[self.pos : self.pos + 2]
                    if len(code) < 2 or not all(self._ishex(c) for c in code):
                        self.error("malformed \\x escape")
                    parts.append(chr(int(code, 16)))
                    self.advance(2)
                elif esc == "u":
                    self.advance()
                    code = self.source[self.pos : self.pos + 4]
                    if len(code) < 4 or not all(self._ishex(c) for c in code):
                        self.error("malformed \\u escape")
                    parts.append(chr(int(code, 16)))
                    self.advance(4)
                elif esc in _ESCAPES:
                    parts.append(_ESCAPES[esc])
                    self.advance()
                else:
                    parts.append(esc)
                    self.advance()
            else:
                parts.append(ch)
                self.advance()
        self.tokens.append(Token(TokenType.STRING, "".join(parts), line, column))

    def lex_punctuator(self):
        line, column = self.line, self.column
        candidates = _PUNCT_BY_FIRST.get(self.source[self.pos])
        if candidates is not None:
            for punct in candidates:
                if self.source.startswith(punct, self.pos):
                    self.advance(len(punct))
                    self.tokens.append(Token(TokenType.PUNCT, punct, line, column))
                    return
        self.error("unexpected character %r" % self.peek())


def tokenize(source):
    """Tokenize ``source`` into a list ending with an EOF token."""
    return _Lexer(source).run()
