"""The bytecode interpreter (SpiderMonkey analogue).

The interpreter is the VM's first tier.  It exposes three hooks that
the JIT engine (:mod:`repro.engine.runtime_engine`) plugs into,
mirroring the interplay of Figure 5 in the paper:

* ``engine.try_native_call(function, this, args)`` — consulted on every
  guest call; the engine counts the call, may compile the function, may
  execute cached native code, and may finish a bailed-out execution.
* ``engine.on_backedge(frame, target_pc)`` — consulted on every loop
  back edge; the engine may trigger on-stack replacement (OSR) and
  either finish the function natively or hand back a resume state.
* ``profiler.record_call(function, args)`` — telemetry for the paper's
  Section 2 histograms.

Bailouts work in the other direction: the native executor rebuilds the
interpreter frame (arguments, locals, expression stack, pc) from the
guard's resume point and the interpreter continues from there.
"""

import sys

from repro.errors import CompilerError, JSRangeError, JSTypeError
from repro.jsvm import operations
from repro.jsvm.bytecode import Cell, Op
from repro.jsvm.bytecompiler import compile_source
from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.runtime import Runtime
from repro.jsvm.values import (
    UNDEFINED,
    JSFunction,
    NativeFunction,
    to_boolean,
    to_js_string,
)

#: Guest recursion limit (the interpreter's ``checkoverrecursed``).
MAX_CALL_DEPTH = 200

# Each guest frame costs several Python frames (interpreter dispatch,
# engine hooks, the native executor); make sure the *guest* limit is
# the one that fires.
if sys.getrecursionlimit() < 20000:
    sys.setrecursionlimit(20000)


class Frame(object):
    """One activation record of a guest function."""

    __slots__ = ("code", "function", "this_value", "args", "locals", "cells", "closure")

    def __init__(self, code, function=None, this_value=UNDEFINED, args=None, closure=()):
        self.code = code
        self.function = function
        self.this_value = this_value
        args = list(args) if args is not None else []
        # Missing arguments read as undefined; extras are dropped, as in JS.
        while len(args) < code.num_params:
            args.append(UNDEFINED)
        del args[code.num_params :]
        self.args = args
        self.locals = [UNDEFINED] * code.num_locals
        self.cells = [Cell() for _ in code.cell_names]
        self.closure = closure
        # Captured parameters live in their cell, seeded from the call.
        for index, name in enumerate(code.cell_names):
            if name in code.params:
                self.cells[index].value = self.args[code.params.index(name)]

    def cell_for(self, name):
        """Find the cell for ``name`` in own cells or the closure."""
        code = self.code
        if name in code.cell_names:
            return self.cells[code.cell_names.index(name)]
        if name in code.free_names:
            return self.closure[code.free_names.index(name)]
        raise CompilerError("no cell for %r in %s" % (name, code.name))


class Interpreter(object):
    """Executes bytecode; the VM's always-available tier."""

    def __init__(self, runtime=None, engine=None, profiler=None, tracer=None):
        self.runtime = runtime if runtime is not None else Runtime()
        self.runtime.interpreter = self
        self.engine = engine
        self.profiler = profiler
        #: Optional JIT event tracer (see repro.telemetry.tracing); the
        #: engine assigns its own tracer here so the ``interp`` channel
        #: can record guest calls.  None means zero tracing overhead.
        self.tracer = tracer
        self.call_depth = 0
        #: Count of bytecode instructions dispatched (for the cost model).
        self.ops_executed = 0

    # -- entry points ---------------------------------------------------------

    def run_source(self, source):
        """Compile and run a whole script; returns the printed output list."""
        code = compile_source(source)
        self.run_code(code)
        return self.runtime.printed

    def run_code(self, code):
        frame = Frame(code)
        return self.execute(frame)

    # -- calls -----------------------------------------------------------------

    def call_value(self, callee, this_value, args):
        """Call any callable guest value."""
        if isinstance(callee, NativeFunction):
            return callee(this_value, args)
        if isinstance(callee, JSFunction):
            return self.call_function(callee, this_value, args)
        raise JSTypeError("%s is not a function" % to_js_string(callee))

    def call_function(self, function, this_value, args):
        """Call a guest function, giving the JIT first refusal."""
        if self.profiler is not None:
            self.profiler.record_call(function, args)
        tracer = self.tracer
        if tracer is not None and tracer.wants("interp"):
            tracer.emit(
                "interp",
                "call",
                fn=function.code.name,
                code_id=function.code.code_id,
                nargs=len(args),
            )
        if self.engine is not None:
            handled, result = self.engine.try_native_call(function, this_value, args)
            if handled:
                return result
        frame = self.build_frame(function, this_value, args)
        return self.execute(frame)

    def build_frame(self, function, this_value, args):
        code = function.code
        closure = ()
        if code.has_frees:
            closure = function.scope
            if closure is None or len(closure) != len(code.free_names):
                raise CompilerError("closure mismatch for %s" % code.name)
        return Frame(code, function, this_value, args, closure)

    def construct(self, callee, args):
        """Implement ``new callee(...args)``."""
        if isinstance(callee, NativeFunction):
            # Host constructors (Array, String) ignore `this`.
            return callee(UNDEFINED, args)
        if not isinstance(callee, JSFunction):
            raise JSTypeError("%s is not a constructor" % to_js_string(callee))
        instance = JSObject()
        result = self.call_function(callee, instance, args)
        if isinstance(result, JSObject):
            return result
        return instance

    # -- the dispatch loop ---------------------------------------------------

    def execute(self, frame, pc=0, stack=None):
        """Run ``frame`` from ``pc`` with an optional initial stack.

        The non-default ``pc``/``stack`` form is used when resuming
        after a JIT bailout: the native executor rebuilt the frame and
        tells us where interpretation picks up.
        """
        self.call_depth += 1
        if self.call_depth > MAX_CALL_DEPTH:
            self.call_depth -= 1
            raise JSRangeError("too much recursion")
        try:
            return self._run(frame, pc, stack if stack is not None else [])
        finally:
            self.call_depth -= 1

    def _run(self, frame, pc, stack):
        code = frame.code
        instructions = code.instructions
        constants = code.constants
        names = code.names
        runtime = self.runtime
        feedback = code.feedback
        push = stack.append
        pop = stack.pop
        while True:
            instr = instructions[pc]
            op = instr.op
            self.ops_executed += 1
            pc += 1
            if op == Op.CONST:
                push(constants[instr.arg])
            elif op == Op.GETLOCAL:
                push(frame.locals[instr.arg])
            elif op == Op.SETLOCAL:
                frame.locals[instr.arg] = pop()
            elif op == Op.GETARG:
                push(frame.args[instr.arg])
            elif op == Op.SETARG:
                frame.args[instr.arg] = pop()
            elif op == Op.GETGLOBAL:
                value = runtime.get_global(names[instr.arg])
                if feedback is not None:
                    feedback.record_site(pc - 1, value)
                push(value)
            elif op == Op.SETGLOBAL:
                runtime.set_global(names[instr.arg], pop())
            elif op == Op.GETCELL:
                push(frame.cells[instr.arg].value)
            elif op == Op.SETCELL:
                frame.cells[instr.arg].value = pop()
            elif op == Op.GETFREE:
                push(frame.closure[instr.arg].value)
            elif op == Op.SETFREE:
                frame.closure[instr.arg].value = pop()
            elif op == Op.GETTHIS:
                push(frame.this_value)
            elif op == Op.UNDEF:
                push(UNDEFINED)
            elif op == Op.POP:
                pop()
            elif op == Op.DUP:
                push(stack[-1])
            elif op == Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op == Op.JUMP:
                target = instr.arg
                if target < pc - 1:
                    outcome = self._backedge(frame, target, stack)
                    if outcome is not None:
                        kind, payload = outcome
                        if kind == "return":
                            return payload
                        pc, stack = payload
                        push = stack.append
                        pop = stack.pop
                        continue
                pc = target
            elif op == Op.IFFALSE:
                value = pop()
                if not to_boolean(value):
                    target = instr.arg
                    if target < pc - 1:
                        outcome = self._backedge(frame, target, stack)
                        if outcome is not None:
                            kind, payload = outcome
                            if kind == "return":
                                return payload
                            pc, stack = payload
                            push = stack.append
                            pop = stack.pop
                            continue
                    pc = target
            elif op == Op.IFTRUE:
                value = pop()
                if to_boolean(value):
                    target = instr.arg
                    if target < pc - 1:
                        outcome = self._backedge(frame, target, stack)
                        if outcome is not None:
                            kind, payload = outcome
                            if kind == "return":
                                return payload
                            pc, stack = payload
                            push = stack.append
                            pop = stack.pop
                            continue
                    pc = target
            elif op == Op.ADD:
                right = pop()
                stack[-1] = operations.js_add(stack[-1], right)
            elif op == Op.SUB:
                right = pop()
                stack[-1] = operations.js_sub(stack[-1], right)
            elif op == Op.MUL:
                right = pop()
                stack[-1] = operations.js_mul(stack[-1], right)
            elif op in _BINARY_DISPATCH:
                right = pop()
                stack[-1] = operations.binary_op(op, stack[-1], right)
            elif op in _UNARY_DISPATCH:
                stack[-1] = operations.unary_op(op, stack[-1])
            elif op == Op.NEWARRAY:
                count = instr.arg
                if count:
                    elements = stack[-count:]
                    del stack[-count:]
                else:
                    elements = []
                push(JSArray(elements))
            elif op == Op.NEWOBJECT:
                count = instr.arg
                obj = JSObject()
                if count:
                    flat = stack[-2 * count :]
                    del stack[-2 * count :]
                    for index in range(count):
                        obj.set(to_js_string(flat[2 * index]), flat[2 * index + 1])
                push(obj)
            elif op == Op.GETPROP:
                receiver = pop()
                value = self.get_property(receiver, names[instr.arg])
                if feedback is not None:
                    feedback.record_site(pc - 1, value)
                    feedback.record_recv(pc - 1, receiver)
                push(value)
            elif op == Op.SETPROP:
                value = pop()
                target = pop()
                operations.set_property(target, names[instr.arg], value)
                push(value)
            elif op == Op.GETELEM:
                index = pop()
                value = operations.get_element(stack[-1], index, runtime)
                if feedback is not None:
                    feedback.record_site(pc - 1, value)
                    feedback.record_recv(pc - 1, stack[-1])
                stack[-1] = value
            elif op == Op.SETELEM:
                value = pop()
                index = pop()
                target = pop()
                if feedback is not None:
                    feedback.record_recv(pc - 1, target)
                operations.set_element(target, index, value)
                push(value)
            elif op == Op.DELPROP:
                target = pop()
                if isinstance(target, JSObject):
                    target.delete(names[instr.arg])
                push(True)
            elif op == Op.SELF:
                push(frame.function)
            elif op == Op.CLOSURE:
                push(self.make_closure(constants[instr.arg], frame))
            elif op == Op.CALL:
                count = instr.arg
                if count:
                    args = stack[-count:]
                    del stack[-count:]
                else:
                    args = []
                this_value = pop()
                callee = pop()
                value = self.call_value(callee, this_value, args)
                if feedback is not None:
                    feedback.record_site(pc - 1, value)
                push(value)
            elif op == Op.NEW:
                count = instr.arg
                if count:
                    args = stack[-count:]
                    del stack[-count:]
                else:
                    args = []
                callee = pop()
                push(self.construct(callee, args))
            elif op == Op.RETURN:
                return pop()
            elif op == Op.RETURN_UNDEF:
                return UNDEFINED
            else:
                raise CompilerError("unknown opcode %r" % op)

    def _backedge(self, frame, target, stack):
        """Give the engine an OSR opportunity on a loop back edge.

        Top-level scripts (``frame.function is None``) participate too:
        IonMonkey compiles hot global code the same way.
        """
        if self.engine is None:
            return None
        if stack:
            # Loop headers always have an empty expression stack in the
            # bytecode our compiler emits; OSR relies on this.
            return None
        return self.engine.on_backedge(self, frame, target)

    # -- helpers ------------------------------------------------------------------

    def make_closure(self, code, frame):
        """Instantiate a function value, capturing the needed cells."""
        closure = ()
        if code.has_frees:
            closure = tuple(frame.cell_for(name) for name in code.free_names)
        return JSFunction(code, closure)

    def get_property(self, value, name):
        """Property read including function statics (String.fromCharCode)."""
        if isinstance(value, NativeFunction):
            holder = self.runtime.function_statics.get(value)
            if holder is not None:
                return holder.get(name)
            return UNDEFINED
        if isinstance(value, JSFunction):
            if name == "name":
                return value.name or ""
            if name == "length":
                return value.code.num_params
            return UNDEFINED
        return operations.get_property(value, name, self.runtime)


_BINARY_DISPATCH = frozenset(
    [
        Op.DIV, Op.MOD, Op.BITAND, Op.BITOR, Op.BITXOR,
        Op.SHL, Op.SHR, Op.USHR,
        Op.EQ, Op.NE, Op.STRICTEQ, Op.STRICTNE,
        Op.LT, Op.LE, Op.GT, Op.GE, Op.IN,
    ]
)

_UNARY_DISPATCH = frozenset([Op.NEG, Op.POS, Op.NOT, Op.BITNOT, Op.TYPEOF, Op.TONUM])
