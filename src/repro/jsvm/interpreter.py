"""The bytecode interpreter (SpiderMonkey analogue).

The interpreter is the VM's first tier.  It exposes three hooks that
the JIT engine (:mod:`repro.engine.runtime_engine`) plugs into,
mirroring the interplay of Figure 5 in the paper:

* ``engine.try_native_call(function, this, args)`` — consulted on every
  guest call; the engine counts the call, may compile the function, may
  execute cached native code, and may finish a bailed-out execution.
* ``engine.on_backedge(frame, target_pc)`` — consulted on every loop
  back edge; the engine may trigger on-stack replacement (OSR) and
  either finish the function natively or hand back a resume state.
* ``profiler.record_call(function, args)`` — telemetry for the paper's
  Section 2 histograms.

Bailouts work in the other direction: the native executor rebuilds the
interpreter frame (arguments, locals, expression stack, pc) from the
guard's resume point and the interpreter continues from there.
"""

import sys

from repro.errors import CompilerError, JSRangeError, JSTypeError
from repro.jsvm import operations
from repro.jsvm.bytecode import Cell, Op
from repro.jsvm.bytecompiler import compile_source
from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.runtime import Runtime
from repro.jsvm.values import (
    UNDEFINED,
    JSFunction,
    NativeFunction,
    to_boolean,
    to_js_string,
)

#: Guest recursion limit (the interpreter's ``checkoverrecursed``).
MAX_CALL_DEPTH = 200

# Each guest frame costs several Python frames (interpreter dispatch,
# engine hooks, the native executor); make sure the *guest* limit is
# the one that fires.
if sys.getrecursionlimit() < 20000:
    sys.setrecursionlimit(20000)


class Frame(object):
    """One activation record of a guest function."""

    __slots__ = ("code", "function", "this_value", "args", "locals", "cells", "closure")

    def __init__(self, code, function=None, this_value=UNDEFINED, args=None, closure=()):
        self.code = code
        self.function = function
        self.this_value = this_value
        args = list(args) if args is not None else []
        # Missing arguments read as undefined; extras are dropped, as in JS.
        while len(args) < code.num_params:
            args.append(UNDEFINED)
        del args[code.num_params :]
        self.args = args
        self.locals = [UNDEFINED] * code.num_locals
        self.cells = [Cell() for _ in code.cell_names]
        self.closure = closure
        # Captured parameters live in their cell, seeded from the call.
        for index, name in enumerate(code.cell_names):
            if name in code.params:
                self.cells[index].value = self.args[code.params.index(name)]

    def cell_for(self, name):
        """Find the cell for ``name`` in own cells or the closure."""
        code = self.code
        if name in code.cell_names:
            return self.cells[code.cell_names.index(name)]
        if name in code.free_names:
            return self.closure[code.free_names.index(name)]
        raise CompilerError("no cell for %r in %s" % (name, code.name))


class Interpreter(object):
    """Executes bytecode; the VM's always-available tier."""

    def __init__(
        self, runtime=None, engine=None, profiler=None, tracer=None, cycle_profiler=None
    ):
        self.runtime = runtime if runtime is not None else Runtime()
        self.runtime.interpreter = self
        self.engine = engine
        self.profiler = profiler
        #: Optional JIT event tracer (see repro.telemetry.tracing); the
        #: engine assigns its own tracer here so the ``interp`` channel
        #: can record guest calls.  None means zero tracing overhead.
        self.tracer = tracer
        #: Optional cycle-exact profiler (repro.telemetry.profiler).
        #: The interpreter maintains its shadow call stack on guest
        #: call boundaries and charges dispatched ops to the current
        #: node.  None (the default) means zero overhead: the hot
        #: dispatch loop is selected once per activation.
        self.cycle_profiler = cycle_profiler
        self.call_depth = 0
        #: Count of bytecode instructions dispatched (for the cost model).
        self.ops_executed = 0
        #: Count of inline-cache transitions (a property site learning
        #: a new receiver shape, including the tip into megamorphic).
        #: Folded into EngineStats at finish, like ``ops_executed``.
        self.ic_transitions = 0

    # -- entry points ---------------------------------------------------------

    def run_source(self, source):
        """Compile and run a whole script; returns the printed output list."""
        code = compile_source(source)
        self.run_code(code)
        return self.runtime.printed

    def run_code(self, code):
        frame = Frame(code)
        cycle_profiler = self.cycle_profiler
        if cycle_profiler is None:
            return self.execute(frame)
        # Top-level scripts get a shadow-stack frame too, so their ops
        # (and any native OSR cycles) attribute to ``<toplevel>``.
        cycle_profiler.enter_call(code)
        try:
            return self.execute(frame)
        finally:
            cycle_profiler.exit_call()

    # -- calls -----------------------------------------------------------------

    def call_value(self, callee, this_value, args):
        """Call any callable guest value."""
        kind = type(callee)
        if kind is NativeFunction:
            # Exact-type fast path: invoke the host callable directly
            # (NativeFunction.__call__ is just this delegation).
            return callee.fn(this_value, args)
        if kind is JSFunction or isinstance(callee, JSFunction):
            return self.call_function(callee, this_value, args)
        if isinstance(callee, NativeFunction):
            return callee(this_value, args)
        raise JSTypeError("%s is not a function" % to_js_string(callee))

    def call_function(self, function, this_value, args):
        """Call a guest function, giving the JIT first refusal."""
        if self.profiler is not None:
            self.profiler.record_call(function, args)
        tracer = self.tracer
        if tracer is not None and tracer.wants("interp"):
            tracer.emit(
                "interp",
                "call",
                fn=function.code.name,
                code_id=function.code.code_id,
                nargs=len(args),
            )
        cycle_profiler = self.cycle_profiler
        if cycle_profiler is None:
            if self.engine is not None:
                handled, result = self.engine.try_native_call(function, this_value, args)
                if handled:
                    return result
            frame = self.build_frame(function, this_value, args)
            return self.execute(frame)
        # The shadow-stack frame spans the whole activation — native
        # execution, bailout-resumed interpretation and OSR included —
        # so every cycle of this call lands on the callee's node.
        cycle_profiler.enter_call(function.code)
        try:
            if self.engine is not None:
                handled, result = self.engine.try_native_call(function, this_value, args)
                if handled:
                    return result
            frame = self.build_frame(function, this_value, args)
            return self.execute(frame)
        finally:
            cycle_profiler.exit_call()

    def build_frame(self, function, this_value, args):
        code = function.code
        closure = ()
        if code.has_frees:
            closure = function.scope
            if closure is None or len(closure) != len(code.free_names):
                raise CompilerError("closure mismatch for %s" % code.name)
        return Frame(code, function, this_value, args, closure)

    def construct(self, callee, args):
        """Implement ``new callee(...args)``."""
        if isinstance(callee, NativeFunction):
            # Host constructors (Array, String) ignore `this`.
            return callee(UNDEFINED, args)
        if not isinstance(callee, JSFunction):
            raise JSTypeError("%s is not a constructor" % to_js_string(callee))
        instance = JSObject()
        result = self.call_function(callee, instance, args)
        if isinstance(result, JSObject):
            return result
        return instance

    # -- the dispatch loop ---------------------------------------------------

    def execute(self, frame, pc=0, stack=None):
        """Run ``frame`` from ``pc`` with an optional initial stack.

        The non-default ``pc``/``stack`` form is used when resuming
        after a JIT bailout: the native executor rebuilt the frame and
        tells us where interpretation picks up.
        """
        self.call_depth += 1
        if self.call_depth > MAX_CALL_DEPTH:
            self.call_depth -= 1
            raise JSRangeError("too much recursion")
        try:
            return self._run(frame, pc, stack if stack is not None else [])
        finally:
            self.call_depth -= 1

    def _run(self, frame, pc, stack):
        code = frame.code
        table = code.threaded
        if table is None:
            table = build_threaded(code)
            code.threaded = table
        ctx = _DispatchContext(self, frame, stack, code.feedback)
        if self.cycle_profiler is not None:
            return self._run_profiled(ctx, table, pc)
        # Threaded dispatch: each step is one table index and one call
        # of a pre-bound handler — no opcode compare chain, no operand
        # table indirection (arguments are pre-resolved at table-build
        # time: constants and names are fetched once, not per pass).
        # The live ``ops_executed`` increment stays here so the trace
        # clock ticks per bytecode op exactly as before.
        while True:
            handler, arg = table[pc]
            self.ops_executed += 1
            pc = handler(ctx, pc + 1, arg)
            if pc < 0:
                return ctx.return_value

    def _run_profiled(self, ctx, table, pc):
        """The dispatch loop with per-op profiler attribution.

        Identical to the hot loop in :meth:`_run` plus one counter
        increment on the profiler's current shadow-stack node.  The
        node is resolved once per activation: nested calls inside a
        handler push and pop the shadow stack symmetrically, so
        ``current`` is this activation's node again by the time the
        handler returns.
        """
        node = self.cycle_profiler.current
        while True:
            handler, arg = table[pc]
            self.ops_executed += 1
            node.interp_ops += 1
            pc = handler(ctx, pc + 1, arg)
            if pc < 0:
                return ctx.return_value

    def _backedge(self, frame, target, stack):
        """Give the engine an OSR opportunity on a loop back edge.

        Top-level scripts (``frame.function is None``) participate too:
        IonMonkey compiles hot global code the same way.
        """
        if self.engine is None:
            return None
        if stack:
            # Loop headers always have an empty expression stack in the
            # bytecode our compiler emits; OSR relies on this.
            return None
        return self.engine.on_backedge(self, frame, target)

    # -- helpers ------------------------------------------------------------------

    def make_closure(self, code, frame):
        """Instantiate a function value, capturing the needed cells."""
        closure = ()
        if code.has_frees:
            closure = tuple(frame.cell_for(name) for name in code.free_names)
        return JSFunction(code, closure)

    def get_property(self, value, name):
        """Property read including function statics (String.fromCharCode)."""
        if type(value) is JSObject:
            # Hot path: a plain object reads straight off its shape —
            # exactly what operations.get_property would do after its
            # string/array/function checks.
            return value.get(name)
        if isinstance(value, NativeFunction):
            holder = self.runtime.function_statics.get(value)
            if holder is not None:
                return holder.get(name)
            return UNDEFINED
        if isinstance(value, JSFunction):
            if name == "name":
                return value.name or ""
            if name == "length":
                return value.code.num_params
            return UNDEFINED
        return operations.get_property(value, name, self.runtime)


_BINARY_DISPATCH = frozenset(
    [
        Op.DIV, Op.MOD, Op.BITAND, Op.BITOR, Op.BITXOR,
        Op.SHL, Op.SHR, Op.USHR,
        Op.EQ, Op.NE, Op.STRICTEQ, Op.STRICTNE,
        Op.LT, Op.LE, Op.GT, Op.GE, Op.IN,
    ]
)

_UNARY_DISPATCH = frozenset([Op.NEG, Op.POS, Op.NOT, Op.BITNOT, Op.TYPEOF, Op.TONUM])


# -- threaded dispatch ---------------------------------------------------------
#
# Each CodeObject lazily gets a handler table parallel to its
# instruction list: entry ``pc`` is ``(handler, arg)`` where ``arg``
# has already been resolved as far as possible (the constant itself for
# CONST/CLOSURE, the name string for global/property ops, the opcode
# for the generic binary/unary handlers).  A handler is called as
# ``handler(ctx, pc, arg)`` with ``pc`` already advanced past the
# instruction — matching the reference loop, whose feedback sites key
# on ``pc - 1`` — and returns the next pc, negative meaning "frame
# done, result in ``ctx.return_value``".  Every handler body is a
# transliteration of the corresponding if/elif arm of the historical
# decode loop; semantics (feedback recording, backedge/OSR handling,
# the live ops_executed clock) are unchanged.


class _DispatchContext(object):
    """Per-activation state threaded through bytecode handlers."""

    __slots__ = ("interp", "frame", "stack", "feedback", "return_value")

    def __init__(self, interp, frame, stack, feedback):
        self.interp = interp
        self.frame = frame
        self.stack = stack
        self.feedback = feedback
        self.return_value = None


def _op_const(ctx, pc, value):
    ctx.stack.append(value)
    return pc


def _op_getlocal(ctx, pc, arg):
    ctx.stack.append(ctx.frame.locals[arg])
    return pc


def _op_setlocal(ctx, pc, arg):
    ctx.frame.locals[arg] = ctx.stack.pop()
    return pc


def _op_getarg(ctx, pc, arg):
    ctx.stack.append(ctx.frame.args[arg])
    return pc


def _op_setarg(ctx, pc, arg):
    ctx.frame.args[arg] = ctx.stack.pop()
    return pc


def _op_getglobal(ctx, pc, name):
    value = ctx.interp.runtime.get_global(name)
    feedback = ctx.feedback
    if feedback is not None:
        feedback.record_site(pc - 1, value)
    ctx.stack.append(value)
    return pc


def _op_setglobal(ctx, pc, name):
    ctx.interp.runtime.set_global(name, ctx.stack.pop())
    return pc


def _op_getcell(ctx, pc, arg):
    ctx.stack.append(ctx.frame.cells[arg].value)
    return pc


def _op_setcell(ctx, pc, arg):
    ctx.frame.cells[arg].value = ctx.stack.pop()
    return pc


def _op_getfree(ctx, pc, arg):
    ctx.stack.append(ctx.frame.closure[arg].value)
    return pc


def _op_setfree(ctx, pc, arg):
    ctx.frame.closure[arg].value = ctx.stack.pop()
    return pc


def _op_getthis(ctx, pc, arg):
    ctx.stack.append(ctx.frame.this_value)
    return pc


def _op_undef(ctx, pc, arg):
    ctx.stack.append(UNDEFINED)
    return pc


def _op_pop(ctx, pc, arg):
    ctx.stack.pop()
    return pc


def _op_dup(ctx, pc, arg):
    stack = ctx.stack
    stack.append(stack[-1])
    return pc


def _op_swap(ctx, pc, arg):
    stack = ctx.stack
    stack[-1], stack[-2] = stack[-2], stack[-1]
    return pc


def _take_backedge(ctx, pc, target):
    """Shared backward-jump tail for JUMP/IFFALSE/IFTRUE handlers.

    Gives the engine its OSR opportunity; on native completion stores
    the return value and signals frame exit, on a resume-state handoff
    rebinds the activation's stack and continues at the resume pc.
    """
    if target < pc - 1:
        outcome = ctx.interp._backedge(ctx.frame, target, ctx.stack)
        if outcome is not None:
            kind, payload = outcome
            if kind == "return":
                ctx.return_value = payload
                return -1
            pc, stack = payload
            ctx.stack = stack
            return pc
    return target


def _op_jump(ctx, pc, target):
    return _take_backedge(ctx, pc, target)


def _op_iffalse(ctx, pc, target):
    if not to_boolean(ctx.stack.pop()):
        return _take_backedge(ctx, pc, target)
    return pc


def _op_iftrue(ctx, pc, target):
    if to_boolean(ctx.stack.pop()):
        return _take_backedge(ctx, pc, target)
    return pc


def _op_add(ctx, pc, arg):
    stack = ctx.stack
    right = stack.pop()
    stack[-1] = operations.js_add(stack[-1], right)
    return pc


def _op_sub(ctx, pc, arg):
    stack = ctx.stack
    right = stack.pop()
    stack[-1] = operations.js_sub(stack[-1], right)
    return pc


def _op_mul(ctx, pc, arg):
    stack = ctx.stack
    right = stack.pop()
    stack[-1] = operations.js_mul(stack[-1], right)
    return pc


def _op_binary(ctx, pc, op):
    stack = ctx.stack
    right = stack.pop()
    stack[-1] = operations.binary_op(op, stack[-1], right)
    return pc


def _op_unary(ctx, pc, op):
    stack = ctx.stack
    stack[-1] = operations.unary_op(op, stack[-1])
    return pc


def _op_newarray(ctx, pc, count):
    stack = ctx.stack
    if count:
        elements = stack[-count:]
        del stack[-count:]
    else:
        elements = []
    stack.append(JSArray(elements))
    return pc


def _op_newobject(ctx, pc, count):
    stack = ctx.stack
    obj = JSObject()
    if count:
        flat = stack[-2 * count :]
        del stack[-2 * count :]
        for index in range(count):
            obj.set(to_js_string(flat[2 * index]), flat[2 * index + 1])
    stack.append(obj)
    return pc


def _record_ic(ctx, site, feedback, receiver, name):
    """Feed ``receiver``'s shape into the property site's inline cache.

    Counts transitions on the interpreter (folded into EngineStats at
    finish) and emits the matching ``ic.*`` trace event when the
    ``ic`` channel is subscribed.
    """
    shape_id = receiver.shape.shape_id
    outcome = feedback.record_shape(site, shape_id)
    interp = ctx.interp
    if outcome == "transition":
        interp.ic_transitions += 1
    tracer = interp.tracer
    if tracer is not None and tracer.wants("ic"):
        tracer.emit(
            "ic",
            outcome,
            fn=ctx.frame.code.name,
            code_id=ctx.frame.code.code_id,
            pc=site,
            name=name,
            shape=shape_id,
            state=feedback.ic_state(site),
        )


def _op_getprop(ctx, pc, name):
    stack = ctx.stack
    receiver = stack.pop()
    value = ctx.interp.get_property(receiver, name)
    feedback = ctx.feedback
    if feedback is not None:
        feedback.record_site(pc - 1, value)
        feedback.record_recv(pc - 1, receiver)
        if type(receiver) is JSObject:
            _record_ic(ctx, pc - 1, feedback, receiver, name)
    stack.append(value)
    return pc


def _op_setprop(ctx, pc, name):
    stack = ctx.stack
    value = stack.pop()
    target = stack.pop()
    feedback = ctx.feedback
    if feedback is not None:
        # Record before the store: the store itself may transition the
        # target's shape, and the compiled guard tests the *pre-store*
        # shape (the storeprop fast path performs the transition).
        feedback.record_recv(pc - 1, target)
        if type(target) is JSObject:
            _record_ic(ctx, pc - 1, feedback, target, name)
    operations.set_property(target, name, value)
    stack.append(value)
    return pc


def _op_getelem(ctx, pc, arg):
    stack = ctx.stack
    index = stack.pop()
    value = operations.get_element(stack[-1], index, ctx.interp.runtime)
    feedback = ctx.feedback
    if feedback is not None:
        feedback.record_site(pc - 1, value)
        feedback.record_recv(pc - 1, stack[-1])
    stack[-1] = value
    return pc


def _op_setelem(ctx, pc, arg):
    stack = ctx.stack
    value = stack.pop()
    index = stack.pop()
    target = stack.pop()
    feedback = ctx.feedback
    if feedback is not None:
        feedback.record_recv(pc - 1, target)
    operations.set_element(target, index, value)
    stack.append(value)
    return pc


def _op_delprop(ctx, pc, name):
    stack = ctx.stack
    target = stack.pop()
    if isinstance(target, JSObject):
        target.delete(name)
    stack.append(True)
    return pc


def _op_self(ctx, pc, arg):
    ctx.stack.append(ctx.frame.function)
    return pc


def _op_closure(ctx, pc, code):
    ctx.stack.append(ctx.interp.make_closure(code, ctx.frame))
    return pc


def _op_call(ctx, pc, count):
    stack = ctx.stack
    if count:
        args = stack[-count:]
        del stack[-count:]
    else:
        args = []
    this_value = stack.pop()
    callee = stack.pop()
    value = ctx.interp.call_value(callee, this_value, args)
    feedback = ctx.feedback
    if feedback is not None:
        feedback.record_site(pc - 1, value)
    stack.append(value)
    return pc


def _op_new(ctx, pc, count):
    stack = ctx.stack
    if count:
        args = stack[-count:]
        del stack[-count:]
    else:
        args = []
    callee = stack.pop()
    stack.append(ctx.interp.construct(callee, args))
    return pc


def _op_return(ctx, pc, arg):
    ctx.return_value = ctx.stack.pop()
    return -1


def _op_return_undef(ctx, pc, arg):
    ctx.return_value = UNDEFINED
    return -1


def _op_unknown(ctx, pc, op):
    raise CompilerError("unknown opcode %r" % op)


#: opcode -> (handler, arg resolution); "raw" passes ``instr.arg``
#: through, "const" pre-fetches ``constants[arg]``, "name" pre-fetches
#: ``names[arg]``, "op" passes the opcode itself (generic handlers).
_HANDLERS = {
    Op.CONST: (_op_const, "const"),
    Op.GETLOCAL: (_op_getlocal, "raw"),
    Op.SETLOCAL: (_op_setlocal, "raw"),
    Op.GETARG: (_op_getarg, "raw"),
    Op.SETARG: (_op_setarg, "raw"),
    Op.GETGLOBAL: (_op_getglobal, "name"),
    Op.SETGLOBAL: (_op_setglobal, "name"),
    Op.GETCELL: (_op_getcell, "raw"),
    Op.SETCELL: (_op_setcell, "raw"),
    Op.GETFREE: (_op_getfree, "raw"),
    Op.SETFREE: (_op_setfree, "raw"),
    Op.GETTHIS: (_op_getthis, "raw"),
    Op.UNDEF: (_op_undef, "raw"),
    Op.POP: (_op_pop, "raw"),
    Op.DUP: (_op_dup, "raw"),
    Op.SWAP: (_op_swap, "raw"),
    Op.JUMP: (_op_jump, "raw"),
    Op.IFFALSE: (_op_iffalse, "raw"),
    Op.IFTRUE: (_op_iftrue, "raw"),
    Op.ADD: (_op_add, "raw"),
    Op.SUB: (_op_sub, "raw"),
    Op.MUL: (_op_mul, "raw"),
    Op.NEWARRAY: (_op_newarray, "raw"),
    Op.NEWOBJECT: (_op_newobject, "raw"),
    Op.GETPROP: (_op_getprop, "name"),
    Op.SETPROP: (_op_setprop, "name"),
    Op.GETELEM: (_op_getelem, "raw"),
    Op.SETELEM: (_op_setelem, "raw"),
    Op.DELPROP: (_op_delprop, "name"),
    Op.SELF: (_op_self, "raw"),
    Op.CLOSURE: (_op_closure, "const"),
    Op.CALL: (_op_call, "raw"),
    Op.NEW: (_op_new, "raw"),
    Op.RETURN: (_op_return, "raw"),
    Op.RETURN_UNDEF: (_op_return_undef, "raw"),
}
for _op in _BINARY_DISPATCH:
    _HANDLERS[_op] = (_op_binary, "op")
for _op in _UNARY_DISPATCH:
    _HANDLERS[_op] = (_op_unary, "op")
del _op


def build_threaded(code):
    """Build the threaded handler table for ``code``.

    One ``(handler, resolved_arg)`` pair per instruction.  Cached on
    ``code.threaded`` by the dispatch loop; any pass that rewrites the
    instruction list (loop rotation) resets that cache.  Unknown
    opcodes get a raising handler so malformed streams still fail at
    execution time, exactly like the decode loop they replace.
    """
    constants = code.constants
    names = code.names
    table = []
    for instr in code.instructions:
        entry = _HANDLERS.get(instr.op)
        if entry is None:
            table.append((_op_unknown, instr.op))
            continue
        handler, resolution = entry
        if resolution == "raw":
            table.append((handler, instr.arg))
        elif resolution == "const":
            table.append((handler, constants[instr.arg]))
        elif resolution == "name":
            table.append((handler, names[instr.arg]))
        else:
            table.append((handler, instr.op))
    return table
