"""Heap objects: plain objects and arrays — with hidden-class shapes.

Objects are property maps; arrays add a dense element store.  The JIT's
``checkarray`` (bounds check), ``ld`` and ``st`` MIR instructions
operate directly on :class:`JSArray` element stores, matching how the
paper's Figure 6 accesses ``s[i]``.

Every object additionally carries a :class:`Shape` — a node in a
process-wide transition tree describing *which* properties the object
has, in insertion order.  Two objects built by the same code path share
a shape, so a single integer comparison (``shape.shape_id``) stands in
for "same property layout": the inline caches in the interpreter and
the ``guardshape`` LIR op in the JIT key on it.  Shape ids are assigned
in creation order from a shared root (id 0), which makes them
deterministic for a given guest program — identical across executor
backends, cache-cold vs cache-warm runs, and separate processes — so
they are safe to embed in persisted binaries and compare in stats.
"""

from repro.jsvm.values import UNDEFINED, normalize_number
from repro.errors import JSRangeError


class Shape(object):
    """One node of the hidden-class transition tree.

    A shape records the ordered property set of the objects that carry
    it.  ``transitions`` maps a property name to the child shape an
    add reaches; deleted layouts get their own nodes too (keyed in
    ``deletions``), so delete is not a silent wildcard — an object that
    loses a property moves to a distinct, equally cacheable shape.
    """

    __slots__ = ("shape_id", "names", "transitions", "deletions")

    def __init__(self, shape_id, names):
        self.shape_id = shape_id
        self.names = names
        self.transitions = {}
        self.deletions = {}

    def __repr__(self):
        return "<Shape %d {%s}>" % (self.shape_id, ", ".join(self.names))


class ShapeTree(object):
    """The shared transition tree; owns deterministic id numbering.

    Ids count up from the root's 0 in creation order.  Because guest
    programs create properties deterministically, the numbering is a
    pure function of the executed guest code — the property that lets
    shape ids round-trip through the persistent code cache and stay
    bit-identical across backends.  :func:`reset_shapes` rewinds the
    tree (tests and the differential oracle call it between variants so
    every variant numbers shapes from the same blank slate).
    """

    __slots__ = ("root", "next_id")

    def __init__(self):
        self.root = Shape(0, ())
        self.next_id = 1

    def transition_add(self, shape, name):
        """The child shape after adding ``name``; created on demand."""
        child = shape.transitions.get(name)
        if child is None:
            child = Shape(self.next_id, shape.names + (name,))
            self.next_id += 1
            shape.transitions[name] = child
        return child

    def transition_delete(self, shape, name):
        """The child shape after deleting ``name``; created on demand."""
        child = shape.deletions.get(name)
        if child is None:
            names = tuple(n for n in shape.names if n != name)
            child = Shape(self.next_id, names)
            self.next_id += 1
            shape.deletions[name] = child
        return child


#: The process-wide transition tree all JSObjects hang off.
SHAPE_TREE = ShapeTree()


def reset_shapes():
    """Rewind the shape tree to a fresh root (id 0, next id 1).

    Used by tests and the fuzz oracle to make shape numbering start
    identically for every run variant; live objects keep their old
    Shape nodes, which simply become unreachable from the new root.
    """
    global SHAPE_TREE
    SHAPE_TREE = ShapeTree()
    return SHAPE_TREE


class JSObject(object):
    """A plain JavaScript object: a mutable property map with a shape."""

    __slots__ = ("properties", "shape")

    def __init__(self, properties=None):
        self.properties = dict(properties) if properties else {}
        shape = SHAPE_TREE.root
        for name in self.properties:
            shape = SHAPE_TREE.transition_add(shape, name)
        self.shape = shape

    def get(self, name):
        """Read property ``name``; missing properties read as undefined."""
        return self.properties.get(name, UNDEFINED)

    def set(self, name, value):
        """Write property ``name``, transitioning shape on a new key."""
        if name not in self.properties:
            self.shape = SHAPE_TREE.transition_add(self.shape, name)
        self.properties[name] = value

    def has(self, name):
        """True when the object owns property ``name``."""
        return name in self.properties

    def delete(self, name):
        """Remove property ``name``, transitioning shape if it existed."""
        if name in self.properties:
            del self.properties[name]
            self.shape = SHAPE_TREE.transition_delete(self.shape, name)

    def __repr__(self):
        inner = ", ".join("%s: %r" % kv for kv in sorted(self.properties.items()))
        return "{%s}" % inner


class JSArray(JSObject):
    """A JavaScript array with a dense element store.

    Out-of-bounds reads return ``undefined`` (JS semantics); the JIT
    relies on explicit bounds checks to stay on the fast path, and the
    bounds-check-elimination pass (paper §3.6) removes those checks when
    range analysis proves the index in ``[0, length)``.
    """

    __slots__ = ("elements",)

    def __init__(self, elements=None):
        super().__init__()
        self.elements = list(elements) if elements is not None else []

    @property
    def length(self):
        return len(self.elements)

    def get_element(self, index):
        """Read ``a[index]``.  Non-integer or out-of-range → undefined."""
        if type(index) is float:
            if not index.is_integer():
                return UNDEFINED
            index = int(index)
        if type(index) is not int:
            return UNDEFINED
        if 0 <= index < len(self.elements):
            return self.elements[index]
        return UNDEFINED

    def set_element(self, index, value):
        """Write ``a[index] = value``, growing the array with holes."""
        if type(index) is float:
            if not index.is_integer():
                raise JSRangeError("non-integer array index: %r" % index)
            index = int(index)
        if index < 0:
            raise JSRangeError("negative array index: %d" % index)
        if index >= len(self.elements):
            self.elements.extend([UNDEFINED] * (index + 1 - len(self.elements)))
        self.elements[index] = value

    def set_length(self, new_length):
        """Implement assignment to ``a.length``."""
        if type(new_length) is float and new_length.is_integer():
            new_length = int(new_length)
        if type(new_length) is not int or new_length < 0:
            raise JSRangeError("invalid array length: %r" % (new_length,))
        if new_length < len(self.elements):
            del self.elements[new_length:]
        else:
            self.elements.extend([UNDEFINED] * (new_length - len(self.elements)))

    def push(self, value):
        self.elements.append(value)
        return normalize_number(len(self.elements))

    def pop(self):
        if not self.elements:
            return UNDEFINED
        return self.elements.pop()

    def get(self, name):
        if name == "length":
            return len(self.elements)
        return super().get(name)

    def set(self, name, value):
        if name == "length":
            self.set_length(value)
        else:
            super().set(name, value)

    def __repr__(self):
        return "[%s]" % ", ".join(repr(e) for e in self.elements)
