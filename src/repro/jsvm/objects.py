"""Heap objects: plain objects and arrays — with hidden-class shapes.

Objects are property maps; arrays add a dense element store.  The JIT's
``checkarray`` (bounds check), ``ld`` and ``st`` MIR instructions
operate directly on :class:`JSArray` element stores, matching how the
paper's Figure 6 accesses ``s[i]``.

Every object additionally carries a :class:`Shape` — a node in a
process-wide transition tree describing *which* properties the object
has, in insertion order.  Two objects built by the same code path share
a shape, so a single integer comparison (``shape.shape_id``) stands in
for "same property layout": the inline caches in the interpreter and
the ``guardshape`` LIR op in the JIT key on it.  Shape ids are assigned
in creation order from a shared root (id 0), which makes them
deterministic for a given guest program — identical across executor
backends, cache-cold vs cache-warm runs, and separate processes — so
they are safe to embed in persisted binaries and compare in stats.
"""

from repro.jsvm.values import UNDEFINED, normalize_number
from repro.errors import JSRangeError


class Shape(object):
    """One node of the hidden-class transition tree.

    A shape records the ordered property set of the objects that carry
    it.  ``transitions`` maps a property name to the child shape an
    add reaches; deleted layouts get their own nodes too (keyed in
    ``deletions``), so delete is not a silent wildcard — an object that
    loses a property moves to a distinct, equally cacheable shape.

    Because ``names`` is immutable, the *slot offset* of a property
    under a given shape is a compile-time constant: ``offset_of`` is
    what lets the executor backends replace a guarded name lookup with
    a direct index into the object's slot vector.
    """

    __slots__ = ("shape_id", "names", "transitions", "deletions", "_offsets")

    def __init__(self, shape_id, names):
        self.shape_id = shape_id
        self.names = names
        self.transitions = {}
        self.deletions = {}
        self._offsets = None

    def offset_of(self, name):
        """Slot index of ``name`` under this shape, or None.

        Shapes are immutable, so the answer never changes: backends may
        bake it into generated code guarded by this shape's id.
        """
        offsets = self._offsets
        if offsets is None:
            offsets = self._offsets = {
                slot_name: index for index, slot_name in enumerate(self.names)
            }
        return offsets.get(name)

    def __repr__(self):
        return "<Shape %d {%s}>" % (self.shape_id, ", ".join(self.names))


class ShapeTree(object):
    """The shared transition tree; owns deterministic id numbering.

    Ids count up from the root's 0 in creation order.  Because guest
    programs create properties deterministically, the numbering is a
    pure function of the executed guest code — the property that lets
    shape ids round-trip through the persistent code cache and stay
    bit-identical across backends.  :func:`reset_shapes` rewinds the
    tree (tests and the differential oracle call it between variants so
    every variant numbers shapes from the same blank slate).
    """

    __slots__ = ("root", "next_id", "by_id")

    def __init__(self):
        self.root = Shape(0, ())
        self.next_id = 1
        #: Every shape ever created, keyed by id: the JIT resolves the
        #: ids recorded in inline caches back to layouts at codegen
        #: time (:func:`common_slot_offset`).
        self.by_id = {0: self.root}

    def transition_add(self, shape, name):
        """The child shape after adding ``name``; created on demand."""
        child = shape.transitions.get(name)
        if child is None:
            child = Shape(self.next_id, shape.names + (name,))
            self.by_id[child.shape_id] = child
            self.next_id += 1
            shape.transitions[name] = child
        return child

    def transition_delete(self, shape, name):
        """The child shape after deleting ``name``; created on demand."""
        child = shape.deletions.get(name)
        if child is None:
            names = tuple(n for n in shape.names if n != name)
            child = Shape(self.next_id, names)
            self.by_id[child.shape_id] = child
            self.next_id += 1
            shape.deletions[name] = child
        return child


#: The process-wide transition tree all JSObjects hang off.
SHAPE_TREE = ShapeTree()


def reset_shapes():
    """Rewind the shape tree to a fresh root (id 0, next id 1).

    Used by tests and the fuzz oracle to make shape numbering start
    identically for every run variant; live objects keep their old
    Shape nodes, which simply become unreachable from the new root.
    """
    global SHAPE_TREE
    SHAPE_TREE = ShapeTree()
    return SHAPE_TREE


def install_shape_tree(tree):
    """Swap ``tree`` in as the live SHAPE_TREE and return the previous one.

    This is the tenant-isolation boundary used by ``repro.serving``:
    every tenant isolate owns a private ShapeTree, installs it for the
    duration of a request, and restores the previous tree afterwards.
    Because SHAPE_TREE is only ever referenced through this module's
    globals, the swap fully redirects shape allocation, transitions and
    ``common_slot_offset`` lookups to the tenant's tree — shape ids are
    then deterministic per tenant regardless of what other tenants do.
    """
    global SHAPE_TREE
    previous = SHAPE_TREE
    SHAPE_TREE = tree
    return previous


def common_slot_offset(shape_ids, name):
    """Slot offset of ``name`` shared by every shape in ``shape_ids``.

    The codegen backends call this when emitting a ``loadprop`` or
    ``storeprop`` protected by a ``guardshape`` over ``shape_ids``: a
    non-None result means every admissible layout stores ``name`` at
    the same index, so the guarded access compiles to a constant-offset
    slot read/write with no name lookup at all.  Returns None when the
    shapes disagree, when any shape lacks the property (a store that
    transitions), or when an id is unknown to the live tree (a binary
    thawed against a rewound tree) — all of which fall back to the
    generic named path, never to wrong code: the result is only ever
    used under the matching shape guard, and shapes are immutable.
    """
    offset = None
    by_id = SHAPE_TREE.by_id
    for shape_id in shape_ids:
        shape = by_id.get(shape_id)
        if shape is None:
            return None
        this_offset = shape.offset_of(name)
        if this_offset is None:
            return None
        if offset is None:
            offset = this_offset
        elif this_offset != offset:
            return None
    return offset


class JSObject(object):
    """A plain JavaScript object: shape-indexed slot storage.

    Property values live in ``slots``, a list parallel to the shape's
    ``names`` tuple — the property at ``shape.names[i]`` is stored at
    ``slots[i]``.  The shape *is* the property map: name lookups go
    through the shape's cached offset table, and JIT code that has
    already guarded the shape skips even that, indexing ``slots``
    directly at a baked-in constant offset.
    """

    __slots__ = ("slots", "shape")

    def __init__(self, properties=None):
        self.shape = SHAPE_TREE.root
        self.slots = []
        if properties:
            for name, value in properties.items():
                self.set(name, value)

    @property
    def properties(self):
        """The property map as a dict (diagnostics / generic callers)."""
        return dict(zip(self.shape.names, self.slots))

    def get(self, name):
        """Read property ``name``; missing properties read as undefined."""
        # Inlined Shape.offset_of — property reads are the hottest
        # object operation and the extra method call is measurable.
        shape = self.shape
        offsets = shape._offsets
        if offsets is None:
            offsets = shape._offsets = {
                slot_name: index for index, slot_name in enumerate(shape.names)
            }
        offset = offsets.get(name)
        if offset is None:
            return UNDEFINED
        return self.slots[offset]

    def set(self, name, value):
        """Write property ``name``, transitioning shape on a new key."""
        offset = self.shape.offset_of(name)
        if offset is None:
            self.shape = SHAPE_TREE.transition_add(self.shape, name)
            self.slots.append(value)
        else:
            self.slots[offset] = value

    def has(self, name):
        """True when the object owns property ``name``."""
        return self.shape.offset_of(name) is not None

    def delete(self, name):
        """Remove property ``name``, transitioning shape if it existed."""
        offset = self.shape.offset_of(name)
        if offset is not None:
            del self.slots[offset]
            self.shape = SHAPE_TREE.transition_delete(self.shape, name)

    def __repr__(self):
        inner = ", ".join(
            "%s: %r" % kv for kv in sorted(zip(self.shape.names, self.slots))
        )
        return "{%s}" % inner


class JSArray(JSObject):
    """A JavaScript array with a dense element store.

    Out-of-bounds reads return ``undefined`` (JS semantics); the JIT
    relies on explicit bounds checks to stay on the fast path, and the
    bounds-check-elimination pass (paper §3.6) removes those checks when
    range analysis proves the index in ``[0, length)``.
    """

    __slots__ = ("elements",)

    def __init__(self, elements=None):
        super().__init__()
        self.elements = list(elements) if elements is not None else []

    @property
    def length(self):
        return len(self.elements)

    def get_element(self, index):
        """Read ``a[index]``.  Non-integer or out-of-range → undefined."""
        if type(index) is float:
            if not index.is_integer():
                return UNDEFINED
            index = int(index)
        if type(index) is not int:
            return UNDEFINED
        if 0 <= index < len(self.elements):
            return self.elements[index]
        return UNDEFINED

    def set_element(self, index, value):
        """Write ``a[index] = value``, growing the array with holes."""
        if type(index) is float:
            if not index.is_integer():
                raise JSRangeError("non-integer array index: %r" % index)
            index = int(index)
        if index < 0:
            raise JSRangeError("negative array index: %d" % index)
        if index >= len(self.elements):
            self.elements.extend([UNDEFINED] * (index + 1 - len(self.elements)))
        self.elements[index] = value

    def set_length(self, new_length):
        """Implement assignment to ``a.length``."""
        if type(new_length) is float and new_length.is_integer():
            new_length = int(new_length)
        if type(new_length) is not int or new_length < 0:
            raise JSRangeError("invalid array length: %r" % (new_length,))
        if new_length < len(self.elements):
            del self.elements[new_length:]
        else:
            self.elements.extend([UNDEFINED] * (new_length - len(self.elements)))

    def push(self, value):
        self.elements.append(value)
        return normalize_number(len(self.elements))

    def pop(self):
        if not self.elements:
            return UNDEFINED
        return self.elements.pop()

    def get(self, name):
        if name == "length":
            return len(self.elements)
        return super().get(name)

    def set(self, name, value):
        if name == "length":
            self.set_length(value)
        else:
            super().set(name, value)

    def __repr__(self):
        return "[%s]" % ", ".join(repr(e) for e in self.elements)
