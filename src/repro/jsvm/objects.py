"""Heap objects: plain objects and arrays.

Objects are property maps; arrays add a dense element store.  The JIT's
``checkarray`` (bounds check), ``ld`` and ``st`` MIR instructions
operate directly on :class:`JSArray` element stores, matching how the
paper's Figure 6 accesses ``s[i]``.
"""

from repro.jsvm.values import UNDEFINED, normalize_number
from repro.errors import JSRangeError


class JSObject(object):
    """A plain JavaScript object: a mutable property map."""

    __slots__ = ("properties",)

    def __init__(self, properties=None):
        self.properties = dict(properties) if properties else {}

    def get(self, name):
        """Read property ``name``; missing properties read as undefined."""
        return self.properties.get(name, UNDEFINED)

    def set(self, name, value):
        self.properties[name] = value

    def has(self, name):
        return name in self.properties

    def delete(self, name):
        self.properties.pop(name, None)

    def __repr__(self):
        inner = ", ".join("%s: %r" % kv for kv in sorted(self.properties.items()))
        return "{%s}" % inner


class JSArray(JSObject):
    """A JavaScript array with a dense element store.

    Out-of-bounds reads return ``undefined`` (JS semantics); the JIT
    relies on explicit bounds checks to stay on the fast path, and the
    bounds-check-elimination pass (paper §3.6) removes those checks when
    range analysis proves the index in ``[0, length)``.
    """

    __slots__ = ("elements",)

    def __init__(self, elements=None):
        super().__init__()
        self.elements = list(elements) if elements is not None else []

    @property
    def length(self):
        return len(self.elements)

    def get_element(self, index):
        """Read ``a[index]``.  Non-integer or out-of-range → undefined."""
        if type(index) is float:
            if not index.is_integer():
                return UNDEFINED
            index = int(index)
        if type(index) is not int:
            return UNDEFINED
        if 0 <= index < len(self.elements):
            return self.elements[index]
        return UNDEFINED

    def set_element(self, index, value):
        """Write ``a[index] = value``, growing the array with holes."""
        if type(index) is float:
            if not index.is_integer():
                raise JSRangeError("non-integer array index: %r" % index)
            index = int(index)
        if index < 0:
            raise JSRangeError("negative array index: %d" % index)
        if index >= len(self.elements):
            self.elements.extend([UNDEFINED] * (index + 1 - len(self.elements)))
        self.elements[index] = value

    def set_length(self, new_length):
        """Implement assignment to ``a.length``."""
        if type(new_length) is float and new_length.is_integer():
            new_length = int(new_length)
        if type(new_length) is not int or new_length < 0:
            raise JSRangeError("invalid array length: %r" % (new_length,))
        if new_length < len(self.elements):
            del self.elements[new_length:]
        else:
            self.elements.extend([UNDEFINED] * (new_length - len(self.elements)))

    def push(self, value):
        self.elements.append(value)
        return normalize_number(len(self.elements))

    def pop(self):
        if not self.elements:
            return UNDEFINED
        return self.elements.pop()

    def get(self, name):
        if name == "length":
            return len(self.elements)
        return super().get(name)

    def set(self, name, value):
        if name == "length":
            self.set_length(value)
        else:
            super().set(name, value)

    def __repr__(self):
        return "[%s]" % ", ".join(repr(e) for e in self.elements)
