"""Token kinds and the token record used by the lexer and parser."""


class TokenType(object):
    """Enumeration of token kinds (plain strings keep reprs readable)."""

    NUMBER = "NUMBER"
    STRING = "STRING"
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = frozenset(
    [
        "var",
        "function",
        "return",
        "if",
        "else",
        "while",
        "do",
        "for",
        "break",
        "continue",
        "true",
        "false",
        "null",
        "undefined",
        "typeof",
        "new",
        "this",
        "delete",
        "in",
        "instanceof",
        "switch",
        "case",
        "default",
        "throw",
        "try",
        "catch",
        "finally",
        "void",
        "let",
        "const",
    ]
)

# Multi-character punctuators, longest first so the lexer can use
# greedy matching.
PUNCTUATORS = [
    ">>>=",
    "===",
    "!==",
    ">>>",
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "!",
    "~",
    "?",
    ":",
    "=",
    ".",
]


class Token(object):
    """One lexical token with its source position."""

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, token_type, value, line, column):
        self.type = token_type
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (self.type, self.value, self.line, self.column)

    def is_punct(self, value):
        return self.type == TokenType.PUNCT and self.value == value

    def is_keyword(self, value):
        return self.type == TokenType.KEYWORD and self.value == value
