"""The global object and host builtins.

A :class:`Runtime` owns the global variable map and the method tables
for primitive receivers (strings, arrays, numbers).  It provides the
handful of builtins the workload suites need: ``print``, ``Math``,
``String.fromCharCode``, ``Array``, ``parseInt``/``parseFloat``,
``isNaN``, and the usual string/array methods.

Pure ``Math`` builtins are marked ``foldable`` so the JIT's constant
folder may evaluate them at compile time when all arguments are
specialized constants.
"""

import math

from repro.errors import JSRangeError, JSTypeError
from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.values import (
    NULL,
    UNDEFINED,
    NativeFunction,
    is_number,
    normalize_number,
    to_js_string,
    to_number,
)


def _check_string_this(this, method):
    if type(this) is not str:
        raise JSTypeError("String.prototype.%s called on non-string" % method)
    return this


def _check_array_this(this, method):
    if not isinstance(this, JSArray):
        raise JSTypeError("Array.prototype.%s called on non-array" % method)
    return this


def _arg(args, index, default=UNDEFINED):
    return args[index] if index < len(args) else default


def _int_arg(args, index, default=0):
    if index >= len(args):
        return default
    value = args[index]
    if type(value) is int:
        # Hot path: charAt/charCodeAt-style calls pass an int32.
        return value
    if value is UNDEFINED:
        return default
    number = to_number(value)
    if type(number) is float:
        if math.isnan(number):
            return default
        number = int(number)
    return number


class Runtime(object):
    """Host environment: globals plus primitive method tables."""

    def __init__(self, output=None):
        #: Collected output of ``print`` calls (one string per call).
        self.printed = output if output is not None else []
        self.globals = {}
        self.string_methods = {}
        self.array_methods = {}
        self.number_methods = {}
        self._install_globals()
        self._install_string_methods()
        self._install_array_methods()
        self._install_number_methods()

    # -- installation -------------------------------------------------------

    def _native(self, name, fn, foldable=False):
        return NativeFunction(name, fn, foldable)

    def _install_globals(self):
        def js_print(_this, args):
            self.printed.append(" ".join(to_js_string(a) for a in args))
            return UNDEFINED

        self.globals["print"] = self._native("print", js_print)

        def js_array_ctor(_this, args):
            if len(args) == 1 and is_number(args[0]):
                length = int(args[0])
                if length < 0 or float(args[0]) != length:
                    raise JSRangeError("invalid array length")
                return JSArray([UNDEFINED] * length)
            return JSArray(list(args))

        self.globals["Array"] = self._native("Array", js_array_ctor)

        def js_string_ctor(_this, args):
            return to_js_string(_arg(args, 0, ""))

        string_fn = self._native("String", js_string_ctor)
        self.globals["String"] = string_fn

        def js_parse_int(_this, args):
            text = to_js_string(_arg(args, 0)).strip()
            radix = _int_arg(args, 1, 10) or 10
            sign = 1
            if text[:1] in ("+", "-"):
                if text[0] == "-":
                    sign = -1
                text = text[1:]
            if radix == 16 and text[:2].lower() == "0x":
                text = text[2:]
            digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:radix]
            end = 0
            while end < len(text) and text[end].lower() in digits:
                end += 1
            if end == 0:
                return float("nan")
            return normalize_number(sign * int(text[:end], radix))

        self.globals["parseInt"] = self._native("parseInt", js_parse_int, foldable=True)

        def js_parse_float(_this, args):
            text = to_js_string(_arg(args, 0)).strip()
            end = 0
            seen_dot = seen_e = False
            while end < len(text):
                ch = text[end]
                if ch.isdigit() or (ch in "+-" and end == 0):
                    end += 1
                elif ch == "." and not seen_dot and not seen_e:
                    seen_dot = True
                    end += 1
                elif ch in "eE" and not seen_e and end > 0:
                    seen_e = True
                    end += 1
                    if end < len(text) and text[end] in "+-":
                        end += 1
                else:
                    break
            try:
                return normalize_number(float(text[:end]))
            except ValueError:
                return float("nan")

        self.globals["parseFloat"] = self._native("parseFloat", js_parse_float, foldable=True)

        def js_is_nan(_this, args):
            number = to_number(_arg(args, 0))
            return type(number) is float and math.isnan(number)

        self.globals["isNaN"] = self._native("isNaN", js_is_nan, foldable=True)

        def js_is_finite(_this, args):
            number = float(to_number(_arg(args, 0)))
            return not (math.isnan(number) or math.isinf(number))

        self.globals["isFinite"] = self._native("isFinite", js_is_finite, foldable=True)

        self.globals["NaN"] = float("nan")
        self.globals["Infinity"] = float("inf")
        self.globals["undefined"] = UNDEFINED
        self.globals["Math"] = self._make_math()
        self._install_string_statics(string_fn)

    def _make_math(self):
        math_obj = JSObject()

        def unary(name, fn, foldable=True):
            def wrapper(_this, args):
                return normalize_number(fn(float(to_number(_arg(args, 0)))))

            math_obj.set(name, self._native("Math." + name, wrapper, foldable))

        unary("floor", math.floor)
        unary("ceil", math.ceil)
        unary("sqrt", lambda x: math.sqrt(x) if x >= 0 else float("nan"))
        unary("sin", math.sin)
        unary("cos", math.cos)
        unary("tan", math.tan)
        unary("exp", math.exp)
        unary("log", lambda x: math.log(x) if x > 0 else (float("-inf") if x == 0 else float("nan")))
        unary("atan", math.atan)
        unary("asin", lambda x: math.asin(x) if -1 <= x <= 1 else float("nan"))
        unary("acos", lambda x: math.acos(x) if -1 <= x <= 1 else float("nan"))

        def js_abs(_this, args):
            number = to_number(_arg(args, 0))
            if type(number) is int:
                return normalize_number(abs(number))
            return abs(number)

        math_obj.set("abs", self._native("Math.abs", js_abs, foldable=True))

        def js_round(_this, args):
            x = float(to_number(_arg(args, 0)))
            if math.isnan(x) or math.isinf(x):
                return x
            return normalize_number(math.floor(x + 0.5))

        math_obj.set("round", self._native("Math.round", js_round, foldable=True))

        def js_pow(_this, args):
            base = float(to_number(_arg(args, 0)))
            exponent = float(to_number(_arg(args, 1)))
            try:
                result = math.pow(base, exponent)
            except (OverflowError, ValueError):
                result = float("nan") if base < 0 else float("inf")
            return normalize_number(result)

        math_obj.set("pow", self._native("Math.pow", js_pow, foldable=True))

        def js_max(_this, args):
            if not args:
                return float("-inf")
            numbers = [to_number(a) for a in args]
            if any(type(n) is float and math.isnan(n) for n in numbers):
                return float("nan")
            return normalize_number(max(float(n) for n in numbers))

        def js_min(_this, args):
            if not args:
                return float("inf")
            numbers = [to_number(a) for a in args]
            if any(type(n) is float and math.isnan(n) for n in numbers):
                return float("nan")
            return normalize_number(min(float(n) for n in numbers))

        math_obj.set("max", self._native("Math.max", js_max, foldable=True))
        math_obj.set("min", self._native("Math.min", js_min, foldable=True))
        math_obj.set("atan2", self._native(
            "Math.atan2",
            lambda _t, a: normalize_number(
                math.atan2(float(to_number(_arg(a, 0))), float(to_number(_arg(a, 1))))
            ),
            foldable=True,
        ))

        # A deterministic LCG so benchmark runs are reproducible; the
        # paper's suites use Math.random only for workload generation.
        state = [123456789]

        def js_random(_this, _args):
            state[0] = (1103515245 * state[0] + 12345) % (2 ** 31)
            return state[0] / float(2 ** 31)

        math_obj.set("random", self._native("Math.random", js_random, foldable=False))
        math_obj.set("PI", math.pi)
        math_obj.set("E", math.e)
        math_obj.set("LN2", math.log(2))
        math_obj.set("LN10", math.log(10))
        math_obj.set("SQRT2", math.sqrt(2))
        return math_obj

    def _install_string_statics(self, string_fn):
        # String.fromCharCode lives as a property on a wrapper object
        # stored under the global name; our subset models it as a
        # global "String" NativeFunction that also owns properties.
        def from_char_code(_this, args):
            return "".join(chr(int(to_number(a)) & 0xFFFF) for a in args)

        holder = JSObject()
        holder.set("fromCharCode", self._native("String.fromCharCode", from_char_code, foldable=True))
        # GETPROP on a NativeFunction value consults this table:
        self.function_statics = {string_fn: holder}

    def _install_string_methods(self):
        methods = self.string_methods

        def char_at(this, args):
            s = _check_string_this(this, "charAt")
            i = _int_arg(args, 0)
            return s[i] if 0 <= i < len(s) else ""

        def char_code_at(this, args):
            s = _check_string_this(this, "charCodeAt")
            i = _int_arg(args, 0)
            return ord(s[i]) if 0 <= i < len(s) else float("nan")

        def index_of(this, args):
            s = _check_string_this(this, "indexOf")
            needle = to_js_string(_arg(args, 0))
            start = _int_arg(args, 1)
            return s.find(needle, max(start, 0))

        def last_index_of(this, args):
            s = _check_string_this(this, "lastIndexOf")
            return s.rfind(to_js_string(_arg(args, 0)))

        def substring(this, args):
            s = _check_string_this(this, "substring")
            start = max(0, min(_int_arg(args, 0), len(s)))
            end_arg = _arg(args, 1)
            end = len(s) if end_arg is UNDEFINED else max(0, min(_int_arg(args, 1), len(s)))
            if start > end:
                start, end = end, start
            return s[start:end]

        def substr(this, args):
            s = _check_string_this(this, "substr")
            start = _int_arg(args, 0)
            if start < 0:
                start = max(0, len(s) + start)
            length = _int_arg(args, 1, len(s) - start)
            return s[start : start + max(0, length)]

        def slice_(this, args):
            s = _check_string_this(this, "slice")
            start = _int_arg(args, 0)
            end_arg = _arg(args, 1)
            end = len(s) if end_arg is UNDEFINED else _int_arg(args, 1)
            return s[slice(start, end)] if (start >= 0 and end >= 0) else s[start:end]

        def split(this, args):
            s = _check_string_this(this, "split")
            separator = _arg(args, 0)
            if separator is UNDEFINED:
                return JSArray([s])
            separator = to_js_string(separator)
            if separator == "":
                return JSArray(list(s))
            return JSArray(s.split(separator))

        def to_upper(this, _args):
            return _check_string_this(this, "toUpperCase").upper()

        def to_lower(this, _args):
            return _check_string_this(this, "toLowerCase").lower()

        def concat(this, args):
            return _check_string_this(this, "concat") + "".join(to_js_string(a) for a in args)

        def replace(this, args):
            s = _check_string_this(this, "replace")
            return s.replace(to_js_string(_arg(args, 0)), to_js_string(_arg(args, 1)), 1)

        def to_string(this, _args):
            return _check_string_this(this, "toString")

        methods["charAt"] = self._native("charAt", char_at, foldable=True)
        methods["charCodeAt"] = self._native("charCodeAt", char_code_at, foldable=True)
        methods["indexOf"] = self._native("indexOf", index_of, foldable=True)
        methods["lastIndexOf"] = self._native("lastIndexOf", last_index_of, foldable=True)
        methods["substring"] = self._native("substring", substring, foldable=True)
        methods["substr"] = self._native("substr", substr, foldable=True)
        methods["slice"] = self._native("slice", slice_, foldable=True)
        methods["split"] = self._native("split", split)
        methods["toUpperCase"] = self._native("toUpperCase", to_upper, foldable=True)
        methods["toLowerCase"] = self._native("toLowerCase", to_lower, foldable=True)
        methods["concat"] = self._native("concat", concat, foldable=True)
        methods["replace"] = self._native("replace", replace, foldable=True)
        methods["toString"] = self._native("toString", to_string, foldable=True)

    def _install_array_methods(self):
        methods = self.array_methods

        def push(this, args):
            array = _check_array_this(this, "push")
            result = len(array.elements)
            for value in args:
                result = array.push(value)
            return result

        def pop(this, _args):
            return _check_array_this(this, "pop").pop()

        def shift(this, _args):
            array = _check_array_this(this, "shift")
            if not array.elements:
                return UNDEFINED
            return array.elements.pop(0)

        def unshift(this, args):
            array = _check_array_this(this, "unshift")
            array.elements[:0] = list(args)
            return len(array.elements)

        def join(this, args):
            array = _check_array_this(this, "join")
            separator = _arg(args, 0)
            separator = "," if separator is UNDEFINED else to_js_string(separator)
            return separator.join(
                "" if e is UNDEFINED or e is NULL else to_js_string(e) for e in array.elements
            )

        def reverse(this, _args):
            array = _check_array_this(this, "reverse")
            array.elements.reverse()
            return array

        def index_of(this, args):
            array = _check_array_this(this, "indexOf")
            from repro.jsvm.values import js_strict_equals

            target = _arg(args, 0)
            for index, element in enumerate(array.elements):
                if js_strict_equals(element, target):
                    return index
            return -1

        def slice_(this, args):
            array = _check_array_this(this, "slice")
            start = _int_arg(args, 0)
            end_arg = _arg(args, 1)
            end = len(array.elements) if end_arg is UNDEFINED else _int_arg(args, 1)
            return JSArray(array.elements[start:end] if start >= 0 and end >= 0 else array.elements[start:end])

        def concat(this, args):
            array = _check_array_this(this, "concat")
            elements = list(array.elements)
            for value in args:
                if isinstance(value, JSArray):
                    elements.extend(value.elements)
                else:
                    elements.append(value)
            return JSArray(elements)

        def sort(this, args):
            array = _check_array_this(this, "sort")
            comparator = _arg(args, 0)
            if comparator is UNDEFINED:
                array.elements.sort(key=to_js_string)
            else:
                import functools

                interpreter = self.interpreter
                if interpreter is None:
                    raise JSTypeError("sort with comparator requires an interpreter")

                def compare(a, b):
                    result = to_number(interpreter.call_value(comparator, UNDEFINED, [a, b]))
                    return -1 if float(result) < 0 else (1 if float(result) > 0 else 0)

                array.elements.sort(key=functools.cmp_to_key(compare))
            return array

        def to_string(this, _args):
            return to_js_string(this)

        methods["push"] = self._native("push", push)
        methods["pop"] = self._native("pop", pop)
        methods["shift"] = self._native("shift", shift)
        methods["unshift"] = self._native("unshift", unshift)
        methods["join"] = self._native("join", join)
        methods["reverse"] = self._native("reverse", reverse)
        methods["indexOf"] = self._native("indexOf", index_of)
        methods["slice"] = self._native("slice", slice_)
        methods["concat"] = self._native("concat", concat)
        methods["sort"] = self._native("sort", sort)
        methods["toString"] = self._native("toString", to_string)

    def _install_number_methods(self):
        def to_string(this, args):
            radix = _int_arg(args, 0, 10)
            if radix == 10:
                return to_js_string(this)
            digits = "0123456789abcdefghijklmnopqrstuvwxyz"
            n = int(to_number(this))
            if n == 0:
                return "0"
            sign = "-" if n < 0 else ""
            n = abs(n)
            out = []
            while n:
                out.append(digits[n % radix])
                n //= radix
            return sign + "".join(reversed(out))

        def to_fixed(this, args):
            precision = _int_arg(args, 0, 0)
            return "%.*f" % (precision, float(to_number(this)))

        self.number_methods["toString"] = self._native("toString", to_string, foldable=True)
        self.number_methods["toFixed"] = self._native("toFixed", to_fixed, foldable=True)

    #: Set by the interpreter when it adopts this runtime, so builtins
    #: that call back into guest code (Array.prototype.sort) work.
    interpreter = None

    # -- global access ----------------------------------------------------------

    def get_global(self, name):
        try:
            return self.globals[name]
        except KeyError:
            from repro.errors import JSReferenceError

            raise JSReferenceError("%s is not defined" % name)

    def set_global(self, name, value):
        self.globals[name] = value

    def has_global(self, name):
        return name in self.globals
