"""AST → stack bytecode compiler.

Two passes per function:

1. *Scope analysis* builds a tree of :class:`FunctionScope` records,
   hoists ``var`` and function declarations, and computes which locals
   are captured by nested closures (cell variables) and which names a
   closure imports from enclosing functions (free variables).
2. *Code generation* walks the AST emitting stack bytecode, resolving
   each identifier to an argument slot, local slot, cell, free
   variable, or global.

Calls use an explicit ``this`` slot on the stack (``CALL`` pops
``[callee, this, args...]``), which keeps method calls and plain calls
uniform for both the interpreter and the MIR builder.
"""

from repro.errors import CompilerError
from repro.jsvm import ast_nodes as ast
from repro.jsvm.bytecode import CodeObject, Op
from repro.jsvm.parser import parse
from repro.jsvm.values import UNDEFINED

_UNARY_OPCODES = {
    "-": Op.NEG,
    "+": Op.POS,
    "!": Op.NOT,
    "~": Op.BITNOT,
    "typeof": Op.TYPEOF,
}

_BINARY_OPCODES = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "%": Op.MOD,
    "&": Op.BITAND,
    "|": Op.BITOR,
    "^": Op.BITXOR,
    "<<": Op.SHL,
    ">>": Op.SHR,
    ">>>": Op.USHR,
    "==": Op.EQ,
    "!=": Op.NE,
    "===": Op.STRICTEQ,
    "!==": Op.STRICTNE,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
    "in": Op.IN,
}


class FunctionScope(object):
    """Scope-analysis record for one function (or the top level)."""

    def __init__(self, name, params, parent):
        self.name = name
        self.params = list(params)
        self.parent = parent
        self.declared = list(params)  # params + hoisted vars + fn decls
        self.referenced = set()
        self.children = []
        self.cells = set()  # locals captured by nested functions
        self.frees = set()  # names imported from enclosing functions
        self.function_decls = []  # hoisted FunctionDecl nodes
        self.self_name = None  # named function expression self-binding
        if parent is not None:
            parent.children.append(self)

    @property
    def is_toplevel(self):
        return self.parent is None

    def declare(self, name):
        if name not in self.declared:
            self.declared.append(name)

    def ancestors_declare(self, name):
        scope = self.parent
        while scope is not None and not scope.is_toplevel:
            if name in scope.declared:
                return True
            scope = scope.parent
        return False


def _collect(node, scope):
    """Scope-analysis walk: record declarations and references."""
    if node is None:
        return
    if isinstance(node, list):
        for item in node:
            _collect(item, scope)
        return
    node_type = type(node)
    if node_type is ast.Identifier:
        scope.referenced.add(node.name)
        return
    if node_type is ast.VarDecl:
        for name, init in node.declarations:
            scope.declare(name)
            _collect(init, scope)
        return
    if node_type is ast.FunctionDecl:
        scope.declare(node.name)
        scope.function_decls.append(node)
        child = FunctionScope(node.name, node.params, scope)
        node.scope = child
        _collect_body(node.body, child)
        return
    if node_type is ast.FunctionExpression:
        child = FunctionScope(node.name or "<anonymous>", node.params, scope)
        if node.name:
            # A named function expression can call itself by name.
            child.declare(node.name)
            child.self_name = node.name
        node.scope = child
        _collect_body(node.body, child)
        return
    if node_type is ast.Member:
        _collect(node.object, scope)
        if node.computed:
            _collect(node.property, scope)
        return
    if node_type is ast.ObjectLiteral:
        for _key, value in node.properties:
            _collect(value, scope)
        return
    for field in node._fields():
        value = getattr(node, field)
        if isinstance(value, (ast.Node, list)):
            _collect(value, scope)


def _collect_body(body, scope):
    for statement in body:
        _collect(statement, scope)


def _resolve_captures(scope):
    """Post-order pass computing cell and free variable sets."""
    needed_from_children = set()
    for child in scope.children:
        needed_from_children |= _resolve_captures(child)
    for name in needed_from_children:
        if name in scope.declared and not scope.is_toplevel:
            scope.cells.add(name)
    unresolved = set()
    for name in scope.referenced | needed_from_children:
        if name in scope.declared:
            continue
        if not scope.is_toplevel and scope.ancestors_declare(name):
            scope.frees.add(name)
        unresolved.add(name)
    return unresolved


class _Label(object):
    """A forward-patchable jump target."""

    __slots__ = ("position",)

    def __init__(self):
        self.position = None


class _FunctionCompiler(object):
    """Emits bytecode for a single function scope."""

    def __init__(self, scope, body):
        self.scope = scope
        self.body = body
        self.code = CodeObject(scope.name, scope.params)
        self.code.cell_names = sorted(scope.cells)
        self.code.free_names = sorted(scope.frees)
        if not scope.is_toplevel:
            for name in scope.declared:
                if name not in scope.params and name not in scope.cells:
                    self.code.local_names.append(name)
        self.pending_jumps = []  # (instruction index, label)
        self.loop_stack = []  # (break label, continue label)
        self.scratch_count = 0

    # -- emission helpers ----------------------------------------------------

    def emit(self, op, arg=None, line=0):
        return self.code.emit(op, arg, line)

    def emit_jump(self, op, label, line=0):
        index = self.emit(op, None, line)
        self.pending_jumps.append((index, label))
        return index

    def bind(self, label):
        label.position = len(self.code.instructions)

    def patch_jumps(self):
        for index, label in self.pending_jumps:
            if label.position is None:
                raise CompilerError("unbound label in %s" % self.code.name)
            self.code.instructions[index].arg = label.position

    def scratch_slot(self):
        """Allocate a hidden local used for member-assignment shuffles."""
        name = "%scratch" + str(self.scratch_count)
        self.scratch_count += 1
        self.code.local_names.append(name)
        return len(self.code.local_names) - 1

    def emit_const(self, value, line=0):
        self.emit(Op.CONST, self.code.const_index(value), line)

    # -- name resolution -------------------------------------------------------

    def emit_load(self, name, line=0):
        scope, code = self.scope, self.code
        if scope.is_toplevel:
            self.emit(Op.GETGLOBAL, code.name_index(name), line)
        elif name in scope.cells:
            self.emit(Op.GETCELL, code.cell_names.index(name), line)
        elif name in scope.params:
            self.emit(Op.GETARG, scope.params.index(name), line)
        elif name in code.local_names:
            self.emit(Op.GETLOCAL, code.local_names.index(name), line)
        elif name in scope.frees:
            self.emit(Op.GETFREE, code.free_names.index(name), line)
        else:
            self.emit(Op.GETGLOBAL, code.name_index(name), line)

    def emit_store(self, name, line=0):
        """Pop the stack top into ``name``."""
        scope, code = self.scope, self.code
        if scope.is_toplevel:
            self.emit(Op.SETGLOBAL, code.name_index(name), line)
        elif name in scope.cells:
            self.emit(Op.SETCELL, code.cell_names.index(name), line)
        elif name in scope.params:
            self.emit(Op.SETARG, scope.params.index(name), line)
        elif name in code.local_names:
            self.emit(Op.SETLOCAL, code.local_names.index(name), line)
        elif name in scope.frees:
            self.emit(Op.SETFREE, code.free_names.index(name), line)
        else:
            self.emit(Op.SETGLOBAL, code.name_index(name), line)

    # -- driver -----------------------------------------------------------------

    def compile(self):
        # Named function expressions can refer to themselves by name.
        if self.scope.self_name is not None:
            self.code.self_name = self.scope.self_name
            self.emit(Op.SELF)
            self.emit_store(self.scope.self_name)
        # Hoisted function declarations bind first, so forward calls work.
        for decl in self.scope.function_decls:
            child_code = compile_function(decl.scope, decl.body)
            self.emit(Op.CLOSURE, self.code.const_index(child_code), decl.line)
            self.emit_store(decl.name, decl.line)
        for statement in self.body:
            self.compile_statement(statement)
        self.emit(Op.RETURN_UNDEF)
        self.patch_jumps()
        self.code.validate()
        return self.code

    # -- statements ----------------------------------------------------------

    def compile_statement(self, node):
        node_type = type(node)
        if node_type is ast.ExpressionStatement:
            self.compile_expression(node.expression)
            self.emit(Op.POP, None, node.line)
        elif node_type is ast.VarDecl:
            for name, init in node.declarations:
                if init is not None:
                    self.compile_expression(init)
                    self.emit_store(name, node.line)
        elif node_type is ast.FunctionDecl:
            pass  # hoisted in compile()
        elif node_type is ast.Block:
            for statement in node.body:
                self.compile_statement(statement)
        elif node_type is ast.If:
            self.compile_if(node)
        elif node_type is ast.While:
            self.compile_while(node)
        elif node_type is ast.DoWhile:
            self.compile_do_while(node)
        elif node_type is ast.For:
            self.compile_for(node)
        elif node_type is ast.Return:
            if node.argument is None:
                self.emit(Op.RETURN_UNDEF, None, node.line)
            else:
                self.compile_expression(node.argument)
                self.emit(Op.RETURN, None, node.line)
        elif node_type is ast.Break:
            if not self.loop_stack:
                raise CompilerError("break outside loop")
            self.emit_jump(Op.JUMP, self.loop_stack[-1][0], node.line)
        elif node_type is ast.Continue:
            if not self.loop_stack:
                raise CompilerError("continue outside loop")
            self.emit_jump(Op.JUMP, self.loop_stack[-1][1], node.line)
        elif node_type is ast.Empty:
            pass
        else:
            raise CompilerError("cannot compile statement %r" % node)

    def compile_if(self, node):
        else_label = _Label()
        self.compile_expression(node.test)
        self.emit_jump(Op.IFFALSE, else_label, node.line)
        self.compile_statement(node.consequent)
        if node.alternate is not None:
            end_label = _Label()
            self.emit_jump(Op.JUMP, end_label)
            self.bind(else_label)
            self.compile_statement(node.alternate)
            self.bind(end_label)
        else:
            self.bind(else_label)

    def compile_while(self, node):
        start_label, end_label = _Label(), _Label()
        self.bind(start_label)
        self.compile_expression(node.test)
        self.emit_jump(Op.IFFALSE, end_label, node.line)
        self.loop_stack.append((end_label, start_label))
        self.compile_statement(node.body)
        self.loop_stack.pop()
        self.emit_jump(Op.JUMP, start_label)
        self.bind(end_label)

    def compile_do_while(self, node):
        start_label, continue_label, end_label = _Label(), _Label(), _Label()
        self.bind(start_label)
        self.loop_stack.append((end_label, continue_label))
        self.compile_statement(node.body)
        self.loop_stack.pop()
        self.bind(continue_label)
        self.compile_expression(node.test)
        self.emit_jump(Op.IFTRUE, start_label, node.line)
        self.bind(end_label)

    def compile_for(self, node):
        start_label, continue_label, end_label = _Label(), _Label(), _Label()
        if node.init is not None:
            self.compile_statement(node.init)
        self.bind(start_label)
        if node.test is not None:
            self.compile_expression(node.test)
            self.emit_jump(Op.IFFALSE, end_label, node.line)
        self.loop_stack.append((end_label, continue_label))
        self.compile_statement(node.body)
        self.loop_stack.pop()
        self.bind(continue_label)
        if node.update is not None:
            self.compile_expression(node.update)
            self.emit(Op.POP)
        self.emit_jump(Op.JUMP, start_label)
        self.bind(end_label)

    # -- expressions -----------------------------------------------------------

    def compile_expression(self, node):
        node_type = type(node)
        if node_type is ast.NumberLiteral or node_type is ast.StringLiteral:
            self.emit_const(node.value, node.line)
        elif node_type is ast.BooleanLiteral:
            self.emit_const(node.value, node.line)
        elif node_type is ast.NullLiteral:
            from repro.jsvm.values import NULL

            self.emit_const(NULL, node.line)
        elif node_type is ast.UndefinedLiteral:
            self.emit(Op.UNDEF, None, node.line)
        elif node_type is ast.ThisExpression:
            self.code.uses_this = True
            self.emit(Op.GETTHIS, None, node.line)
        elif node_type is ast.Identifier:
            self.emit_load(node.name, node.line)
        elif node_type is ast.ArrayLiteral:
            for element in node.elements:
                self.compile_expression(element)
            self.emit(Op.NEWARRAY, len(node.elements), node.line)
        elif node_type is ast.ObjectLiteral:
            for key, value in node.properties:
                self.emit_const(key, node.line)
                self.compile_expression(value)
            self.emit(Op.NEWOBJECT, len(node.properties), node.line)
        elif node_type is ast.FunctionExpression:
            child_code = compile_function(node.scope, node.body)
            self.emit(Op.CLOSURE, self.code.const_index(child_code), node.line)
        elif node_type is ast.Unary:
            self.compile_unary(node)
        elif node_type is ast.Binary:
            self.compile_expression(node.left)
            self.compile_expression(node.right)
            opcode = _BINARY_OPCODES.get(node.operator)
            if opcode is None:
                raise CompilerError("unsupported binary operator %r" % node.operator)
            self.emit(opcode, None, node.line)
        elif node_type is ast.Logical:
            self.compile_logical(node)
        elif node_type is ast.Conditional:
            self.compile_conditional(node)
        elif node_type is ast.Assignment:
            self.compile_assignment(node)
        elif node_type is ast.Update:
            self.compile_update(node)
        elif node_type is ast.Call:
            self.compile_call(node)
        elif node_type is ast.New:
            self.compile_expression(node.callee)
            for argument in node.arguments:
                self.compile_expression(argument)
            self.emit(Op.NEW, len(node.arguments), node.line)
        elif node_type is ast.Member:
            self.compile_member_load(node)
        elif node_type is ast.Sequence:
            for index, expression in enumerate(node.expressions):
                self.compile_expression(expression)
                if index < len(node.expressions) - 1:
                    self.emit(Op.POP)
        else:
            raise CompilerError("cannot compile expression %r" % node)

    def compile_unary(self, node):
        if node.operator == "void":
            self.compile_expression(node.operand)
            self.emit(Op.POP, None, node.line)
            self.emit(Op.UNDEF, None, node.line)
            return
        if node.operator == "delete":
            operand = node.operand
            if isinstance(operand, ast.Member) and not operand.computed:
                self.compile_expression(operand.object)
                self.emit(Op.DELPROP, self.code.name_index(operand.property), node.line)
            else:
                # `delete identifier` / computed deletes: evaluate for
                # effects and yield true (non-strict JS semantics for
                # non-configurable cases are out of the subset's scope).
                self.compile_expression(operand)
                self.emit(Op.POP, None, node.line)
                self.emit(Op.CONST, self.code.const_index(True), node.line)
            return
        self.compile_expression(node.operand)
        self.emit(_UNARY_OPCODES[node.operator], None, node.line)

    def compile_logical(self, node):
        end_label = _Label()
        self.compile_expression(node.left)
        self.emit(Op.DUP, None, node.line)
        if node.operator == "&&":
            self.emit_jump(Op.IFFALSE, end_label, node.line)
        else:
            self.emit_jump(Op.IFTRUE, end_label, node.line)
        self.emit(Op.POP)
        self.compile_expression(node.right)
        self.bind(end_label)

    def compile_conditional(self, node):
        else_label, end_label = _Label(), _Label()
        self.compile_expression(node.test)
        self.emit_jump(Op.IFFALSE, else_label, node.line)
        self.compile_expression(node.consequent)
        self.emit_jump(Op.JUMP, end_label)
        self.bind(else_label)
        self.compile_expression(node.alternate)
        self.bind(end_label)

    def compile_member_load(self, node):
        self.compile_expression(node.object)
        if node.computed:
            self.compile_expression(node.property)
            self.emit(Op.GETELEM, None, node.line)
        else:
            self.emit(Op.GETPROP, self.code.name_index(node.property), node.line)

    def compile_assignment(self, node):
        target = node.target
        if isinstance(target, ast.Identifier):
            if node.operator:
                self.emit_load(target.name, node.line)
                self.compile_expression(node.value)
                self.emit(_BINARY_OPCODES[node.operator], None, node.line)
            else:
                self.compile_expression(node.value)
            self.emit(Op.DUP, None, node.line)
            self.emit_store(target.name, node.line)
            return
        # Member targets.
        if not node.operator:
            self.compile_expression(target.object)
            if target.computed:
                self.compile_expression(target.property)
                self.compile_expression(node.value)
                self.emit(Op.SETELEM, None, node.line)
            else:
                self.compile_expression(node.value)
                self.emit(Op.SETPROP, self.code.name_index(target.property), node.line)
            return
        # Compound member assignment uses scratch locals to re-read the
        # same object (and index) without re-evaluating side effects.
        obj_slot = self.scratch_slot()
        self.compile_expression(target.object)
        self.emit(Op.SETLOCAL, obj_slot, node.line)
        if target.computed:
            index_slot = self.scratch_slot()
            self.compile_expression(target.property)
            self.emit(Op.SETLOCAL, index_slot)
            self.emit(Op.GETLOCAL, obj_slot)
            self.emit(Op.GETLOCAL, index_slot)
            self.emit(Op.GETELEM)
            self.compile_expression(node.value)
            self.emit(_BINARY_OPCODES[node.operator], None, node.line)
            value_slot = self.scratch_slot()
            self.emit(Op.SETLOCAL, value_slot)
            self.emit(Op.GETLOCAL, obj_slot)
            self.emit(Op.GETLOCAL, index_slot)
            self.emit(Op.GETLOCAL, value_slot)
            self.emit(Op.SETELEM)
        else:
            name_idx = self.code.name_index(target.property)
            self.emit(Op.GETLOCAL, obj_slot)
            self.emit(Op.GETPROP, name_idx)
            self.compile_expression(node.value)
            self.emit(_BINARY_OPCODES[node.operator], None, node.line)
            value_slot = self.scratch_slot()
            self.emit(Op.SETLOCAL, value_slot)
            self.emit(Op.GETLOCAL, obj_slot)
            self.emit(Op.GETLOCAL, value_slot)
            self.emit(Op.SETPROP, name_idx)

    def compile_update(self, node):
        opcode = Op.ADD if node.operator == "++" else Op.SUB
        target = node.target
        if isinstance(target, ast.Identifier):
            self.emit_load(target.name, node.line)
            self.emit(Op.TONUM, None, node.line)
            if node.prefix:
                self.emit_const(1)
                self.emit(opcode)
                self.emit(Op.DUP)
                self.emit_store(target.name, node.line)
            else:
                self.emit(Op.DUP)
                self.emit_const(1)
                self.emit(opcode)
                self.emit_store(target.name, node.line)
            return
        obj_slot = self.scratch_slot()
        self.compile_expression(target.object)
        self.emit(Op.SETLOCAL, obj_slot, node.line)
        index_slot = None
        if target.computed:
            index_slot = self.scratch_slot()
            self.compile_expression(target.property)
            self.emit(Op.SETLOCAL, index_slot)

        def load_target():
            self.emit(Op.GETLOCAL, obj_slot)
            if target.computed:
                self.emit(Op.GETLOCAL, index_slot)
                self.emit(Op.GETELEM)
            else:
                self.emit(Op.GETPROP, self.code.name_index(target.property))

        def store_from_slot(slot):
            self.emit(Op.GETLOCAL, obj_slot)
            if target.computed:
                self.emit(Op.GETLOCAL, index_slot)
                self.emit(Op.GETLOCAL, slot)
                self.emit(Op.SETELEM)
            else:
                self.emit(Op.GETLOCAL, slot)
                self.emit(Op.SETPROP, self.code.name_index(target.property))

        load_target()
        self.emit(Op.TONUM)
        value_slot = self.scratch_slot()
        if node.prefix:
            self.emit_const(1)
            self.emit(opcode)
            self.emit(Op.SETLOCAL, value_slot)
            store_from_slot(value_slot)  # SETELEM/SETPROP leave the value
        else:
            self.emit(Op.DUP)
            self.emit_const(1)
            self.emit(opcode)
            self.emit(Op.SETLOCAL, value_slot)
            store_from_slot(value_slot)
            self.emit(Op.POP)  # drop stored value, keep the old one

    def compile_call(self, node):
        callee = node.callee
        if isinstance(callee, ast.Member):
            # Method call: this = receiver object.
            obj_slot = self.scratch_slot()
            self.compile_expression(callee.object)
            self.emit(Op.SETLOCAL, obj_slot, node.line)
            self.emit(Op.GETLOCAL, obj_slot)
            if callee.computed:
                self.compile_expression(callee.property)
                self.emit(Op.GETELEM)
            else:
                self.emit(Op.GETPROP, self.code.name_index(callee.property))
            self.emit(Op.GETLOCAL, obj_slot)  # this
        else:
            self.compile_expression(callee)
            self.emit(Op.UNDEF)  # this = undefined for plain calls
        for argument in node.arguments:
            self.compile_expression(argument)
        self.emit(Op.CALL, len(node.arguments), node.line)


def compile_function(scope, body):
    """Compile one analyzed :class:`FunctionScope` into a CodeObject."""
    return _FunctionCompiler(scope, body).compile()


def compile_program(program):
    """Compile a parsed :class:`ast.Program` into a top-level CodeObject."""
    toplevel = FunctionScope("<toplevel>", [], None)
    _collect_body(program.body, toplevel)
    _resolve_captures(toplevel)
    compiler = _FunctionCompiler(toplevel, program.body)
    # The top level keeps declared names global, so nothing extra to do.
    return compiler.compile()


def compile_source(source):
    """Parse and compile JavaScript-subset source text."""
    return compile_program(parse(source))
