"""Recursive-descent parser for the JavaScript subset.

The grammar covers everything the workload suites need: functions
(declarations and expressions, including closures), ``var``/``let``,
``if``/``else``, ``while``, ``do``/``while``, 3-clause ``for``,
``break``/``continue``/``return``, the full C-like expression grammar
(assignment through primary, including ``?:``, short-circuit logic,
bitwise and shift operators, ``typeof``, ``new``, ``this``, update
expressions), array and object literals, calls and member accesses.

Statement-level automatic semicolon insertion is supported in the
common cases (end of line / before ``}`` / at EOF).
"""

from repro.errors import JSSyntaxError
from repro.jsvm import ast_nodes as ast
from repro.jsvm.lexer import tokenize
from repro.jsvm.tokens import TokenType

# Binary operator precedence levels, loosest first.  Logical operators
# are handled separately because they short-circuit.
_BINARY_LEVELS = [
    ["|"],
    ["^"],
    ["&"],
    ["==", "!=", "===", "!=="],
    ["<", ">", "<=", ">=", "instanceof", "in"],
    ["<<", ">>", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_ASSIGNMENT_OPS = {
    "=": "",
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
    "&=": "&",
    "|=": "|",
    "^=": "^",
    "<<=": "<<",
    ">>=": ">>",
    ">>>=": ">>>",
}


class Parser(object):
    """Parses a token stream into an AST ``Program``."""

    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset=0):
        tokens = self.tokens
        index = self.pos + offset
        if index >= len(tokens):
            index = len(tokens) - 1
        return tokens[index]

    def advance(self):
        token = self.tokens[self.pos]
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message, token=None):
        token = token or self.peek()
        raise JSSyntaxError(message, token.line, token.column)

    def expect_punct(self, value):
        token = self.peek()
        if not token.is_punct(value):
            if token.type == TokenType.EOF:
                self.error("expected %r before end of input" % (value,))
            self.error("expected %r, found %r" % (value, token.value))
        return self.advance()

    def expect_keyword(self, value):
        token = self.peek()
        if not token.is_keyword(value):
            self.error("expected keyword %r, found %r" % (value, token.value))
        return self.advance()

    def expect_ident(self):
        token = self.peek()
        if token.type != TokenType.IDENT:
            self.error("expected identifier, found %r" % (token.value,))
        return self.advance()

    def match_punct(self, value):
        if self.peek().is_punct(value):
            self.advance()
            return True
        return False

    def consume_semicolon(self):
        """Require ``;`` or allow automatic insertion before ``}``/EOF/newline."""
        token = self.peek()
        if token.is_punct(";"):
            self.advance()
            return
        if token.is_punct("}") or token.type == TokenType.EOF:
            return
        previous = self.tokens[self.pos - 1] if self.pos > 0 else None
        if previous is not None and token.line > previous.line:
            return
        self.error("expected ';' after statement")

    # -- top level ---------------------------------------------------------

    def parse_program(self):
        body = []
        while self.peek().type != TokenType.EOF:
            body.append(self.parse_statement())
        return ast.Program(body, line=1)

    # -- statements ----------------------------------------------------------

    def parse_statement(self):
        token = self.peek()
        if token.type == TokenType.KEYWORD:
            keyword = token.value
            if keyword in ("var", "let", "const"):
                return self.parse_var()
            if keyword == "function":
                return self.parse_function_decl()
            if keyword == "if":
                return self.parse_if()
            if keyword == "while":
                return self.parse_while()
            if keyword == "do":
                return self.parse_do_while()
            if keyword == "for":
                return self.parse_for()
            if keyword == "return":
                return self.parse_return()
            if keyword == "break":
                self.advance()
                self.consume_semicolon()
                return ast.Break(line=token.line)
            if keyword == "continue":
                self.advance()
                self.consume_semicolon()
                return ast.Continue(line=token.line)
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_punct(";"):
            self.advance()
            return ast.Empty(line=token.line)
        expression = self.parse_expression()
        self.consume_semicolon()
        return ast.ExpressionStatement(expression, line=token.line)

    def parse_var(self):
        token = self.advance()  # var / let / const
        declarations = []
        while True:
            name = self.expect_ident().value
            init = None
            if self.match_punct("="):
                init = self.parse_assignment()
            declarations.append((name, init))
            if not self.match_punct(","):
                break
        self.consume_semicolon()
        return ast.VarDecl(declarations, line=token.line)

    def parse_function_decl(self):
        token = self.expect_keyword("function")
        name = self.expect_ident().value
        params, body = self.parse_function_rest()
        return ast.FunctionDecl(name, params, body, line=token.line)

    def parse_function_rest(self):
        self.expect_punct("(")
        params = []
        if not self.peek().is_punct(")"):
            while True:
                params.append(self.expect_ident().value)
                if not self.match_punct(","):
                    break
        self.expect_punct(")")
        body = self.parse_block()
        return params, body.body

    def parse_block(self):
        token = self.expect_punct("{")
        body = []
        while not self.peek().is_punct("}"):
            if self.peek().type == TokenType.EOF:
                # Blame the unmatched opener, not end-of-file: in a
                # long script the opening brace is the actionable
                # position.
                self.error("unbalanced braces: block opened here is never closed", token)
            body.append(self.parse_statement())
        self.expect_punct("}")
        return ast.Block(body, line=token.line)

    def parse_if(self):
        token = self.expect_keyword("if")
        self.expect_punct("(")
        test = self.parse_expression()
        self.expect_punct(")")
        consequent = self.parse_statement()
        alternate = None
        if self.peek().is_keyword("else"):
            self.advance()
            alternate = self.parse_statement()
        return ast.If(test, consequent, alternate, line=token.line)

    def parse_while(self):
        token = self.expect_keyword("while")
        self.expect_punct("(")
        test = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.While(test, body, line=token.line)

    def parse_do_while(self):
        token = self.expect_keyword("do")
        body = self.parse_statement()
        self.expect_keyword("while")
        self.expect_punct("(")
        test = self.parse_expression()
        self.expect_punct(")")
        self.consume_semicolon()
        return ast.DoWhile(body, test, line=token.line)

    def parse_for(self):
        token = self.expect_keyword("for")
        self.expect_punct("(")
        init = None
        if not self.peek().is_punct(";"):
            if self.peek().type == TokenType.KEYWORD and self.peek().value in ("var", "let"):
                init = self.parse_for_var()
            else:
                init = ast.ExpressionStatement(self.parse_expression(), line=self.peek().line)
                self.expect_punct(";")
        else:
            self.expect_punct(";")
        test = None
        if not self.peek().is_punct(";"):
            test = self.parse_expression()
        self.expect_punct(";")
        update = None
        if not self.peek().is_punct(")"):
            update = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.For(init, test, update, body, line=token.line)

    def parse_for_var(self):
        """``var`` clause of a for statement (no trailing semicolon logic)."""
        token = self.advance()
        declarations = []
        while True:
            name = self.expect_ident().value
            init = None
            if self.match_punct("="):
                init = self.parse_assignment()
            declarations.append((name, init))
            if not self.match_punct(","):
                break
        self.expect_punct(";")
        return ast.VarDecl(declarations, line=token.line)

    def parse_return(self):
        token = self.expect_keyword("return")
        argument = None
        nxt = self.peek()
        ends_statement = (
            nxt.is_punct(";") or nxt.is_punct("}") or nxt.type == TokenType.EOF or nxt.line > token.line
        )
        if not ends_statement:
            argument = self.parse_expression()
        self.consume_semicolon()
        return ast.Return(argument, line=token.line)

    # -- expressions ---------------------------------------------------------

    def parse_expression(self):
        first = self.parse_assignment()
        if not self.peek().is_punct(","):
            return first
        expressions = [first]
        while self.match_punct(","):
            expressions.append(self.parse_assignment())
        return ast.Sequence(expressions, line=first.line)

    def parse_assignment(self):
        left = self.parse_conditional()
        token = self.peek()
        if token.type == TokenType.PUNCT and token.value in _ASSIGNMENT_OPS:
            if not isinstance(left, (ast.Identifier, ast.Member)):
                self.error("invalid assignment target")
            self.advance()
            value = self.parse_assignment()
            return ast.Assignment(_ASSIGNMENT_OPS[token.value], left, value, line=token.line)
        return left

    def parse_conditional(self):
        test = self.parse_logical_or()
        if self.peek().is_punct("?"):
            token = self.advance()
            consequent = self.parse_assignment()
            self.expect_punct(":")
            alternate = self.parse_assignment()
            return ast.Conditional(test, consequent, alternate, line=token.line)
        return test

    def parse_logical_or(self):
        left = self.parse_logical_and()
        while self.peek().is_punct("||"):
            token = self.advance()
            right = self.parse_logical_and()
            left = ast.Logical("||", left, right, line=token.line)
        return left

    def parse_logical_and(self):
        left = self.parse_binary(0)
        while self.peek().is_punct("&&"):
            token = self.advance()
            right = self.parse_binary(0)
            left = ast.Logical("&&", left, right, line=token.line)
        return left

    def parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        operators = _BINARY_LEVELS[level]
        left = self.parse_binary(level + 1)
        while True:
            token = self.peek()
            matches = (
                token.type == TokenType.PUNCT or token.type == TokenType.KEYWORD
            ) and token.value in operators
            if not matches:
                return left
            self.advance()
            right = self.parse_binary(level + 1)
            left = ast.Binary(token.value, left, right, line=token.line)

    def parse_unary(self):
        token = self.peek()
        if token.type == TokenType.PUNCT and token.value in ("-", "+", "!", "~"):
            self.advance()
            return ast.Unary(token.value, self.parse_unary(), line=token.line)
        if token.is_keyword("typeof") or token.is_keyword("void") or token.is_keyword("delete"):
            self.advance()
            return ast.Unary(token.value, self.parse_unary(), line=token.line)
        if token.is_punct("++") or token.is_punct("--"):
            self.advance()
            target = self.parse_unary()
            if not isinstance(target, (ast.Identifier, ast.Member)):
                self.error("invalid update target")
            return ast.Update(token.value, target, prefix=True, line=token.line)
        return self.parse_postfix()

    def parse_postfix(self):
        expression = self.parse_call_member()
        token = self.peek()
        if (token.is_punct("++") or token.is_punct("--")) and token.line == self.tokens[self.pos - 1].line:
            if not isinstance(expression, (ast.Identifier, ast.Member)):
                self.error("invalid update target")
            self.advance()
            return ast.Update(token.value, expression, prefix=False, line=token.line)
        return expression

    def parse_call_member(self):
        if self.peek().is_keyword("new"):
            token = self.advance()
            callee = self.parse_member_only(self.parse_primary())
            arguments = []
            if self.peek().is_punct("("):
                arguments = self.parse_arguments()
            expression = ast.New(callee, arguments, line=token.line)
        else:
            expression = self.parse_primary()
        while True:
            token = self.peek()
            if token.is_punct("("):
                arguments = self.parse_arguments()
                expression = ast.Call(expression, arguments, line=token.line)
            elif token.is_punct("."):
                self.advance()
                name_token = self.peek()
                if name_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                    self.error("expected property name")
                self.advance()
                expression = ast.Member(expression, name_token.value, computed=False, line=token.line)
            elif token.is_punct("["):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expression = ast.Member(expression, index, computed=True, line=token.line)
            else:
                return expression

    def parse_member_only(self, expression):
        """Member accesses that bind tighter than ``new``'s argument list."""
        while True:
            token = self.peek()
            if token.is_punct("."):
                self.advance()
                name_token = self.expect_ident()
                expression = ast.Member(expression, name_token.value, computed=False, line=token.line)
            elif token.is_punct("["):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expression = ast.Member(expression, index, computed=True, line=token.line)
            else:
                return expression

    def parse_arguments(self):
        self.expect_punct("(")
        arguments = []
        if not self.peek().is_punct(")"):
            while True:
                arguments.append(self.parse_assignment())
                if not self.match_punct(","):
                    break
        self.expect_punct(")")
        return arguments

    def parse_primary(self):
        token = self.peek()
        if token.type == TokenType.NUMBER:
            self.advance()
            return ast.NumberLiteral(token.value, line=token.line)
        if token.type == TokenType.STRING:
            self.advance()
            return ast.StringLiteral(token.value, line=token.line)
        if token.type == TokenType.IDENT:
            self.advance()
            return ast.Identifier(token.value, line=token.line)
        if token.type == TokenType.KEYWORD:
            keyword = token.value
            if keyword == "true":
                self.advance()
                return ast.BooleanLiteral(True, line=token.line)
            if keyword == "false":
                self.advance()
                return ast.BooleanLiteral(False, line=token.line)
            if keyword == "null":
                self.advance()
                return ast.NullLiteral(line=token.line)
            if keyword == "undefined":
                self.advance()
                return ast.UndefinedLiteral(line=token.line)
            if keyword == "this":
                self.advance()
                return ast.ThisExpression(line=token.line)
            if keyword == "function":
                self.advance()
                name = None
                if self.peek().type == TokenType.IDENT:
                    name = self.advance().value
                params, body = self.parse_function_rest()
                return ast.FunctionExpression(name, params, body, line=token.line)
        if token.is_punct("("):
            self.advance()
            expression = self.parse_expression()
            self.expect_punct(")")
            return expression
        if token.is_punct("["):
            return self.parse_array_literal()
        if token.is_punct("{"):
            return self.parse_object_literal()
        self.error("unexpected token %r" % (token.value,))

    def parse_array_literal(self):
        token = self.expect_punct("[")
        elements = []
        while not self.peek().is_punct("]"):
            elements.append(self.parse_assignment())
            if not self.match_punct(","):
                break
        self.expect_punct("]")
        return ast.ArrayLiteral(elements, line=token.line)

    def parse_object_literal(self):
        token = self.expect_punct("{")
        properties = []
        while not self.peek().is_punct("}"):
            key_token = self.peek()
            if key_token.type in (TokenType.IDENT, TokenType.KEYWORD):
                key = key_token.value
                self.advance()
            elif key_token.type == TokenType.STRING:
                key = key_token.value
                self.advance()
            elif key_token.type == TokenType.NUMBER:
                from repro.jsvm.values import format_number

                key = format_number(key_token.value)
                self.advance()
            else:
                self.error("invalid object literal key")
            self.expect_punct(":")
            properties.append((key, self.parse_assignment()))
            if not self.match_punct(","):
                break
        self.expect_punct("}")
        return ast.ObjectLiteral(properties, line=token.line)


def parse(source):
    """Parse JavaScript-subset ``source`` into an :class:`ast.Program`."""
    return Parser(source).parse_program()
