"""AST node classes produced by the parser.

Nodes are plain data holders; all behaviour lives in the bytecode
compiler (:mod:`repro.jsvm.bytecompiler`).  Every node carries the
source line for diagnostics.
"""


class Node(object):
    """Base class for all AST nodes."""

    __slots__ = ("line",)

    def __init__(self, line=0):
        self.line = line

    def _fields(self):
        seen = []
        for cls in type(self).__mro__:
            for name in getattr(cls, "__slots__", ()):
                if name not in ("line", "scope") and name not in seen:
                    seen.append(name)
        return seen

    def __repr__(self):
        fields = ", ".join("%s=%r" % (f, getattr(self, f)) for f in self._fields())
        return "%s(%s)" % (type(self).__name__, fields)

    def __eq__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in self._fields())

    def __hash__(self):
        return object.__hash__(self)


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


class Program(Node):
    """A whole script: a list of top-level statements."""

    __slots__ = ("body",)

    def __init__(self, body, line=0):
        super().__init__(line)
        self.body = body


class FunctionDecl(Node):
    """``function name(params) { body }`` as a statement.

    ``scope`` is filled in by the bytecode compiler's scope analysis.
    """

    __slots__ = ("name", "params", "body", "scope")

    def __init__(self, name, params, body, line=0):
        super().__init__(line)
        self.name = name
        self.params = params
        self.body = body
        self.scope = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class VarDecl(Node):
    """``var x = init, y;`` — declarations is a list of (name, init|None)."""

    __slots__ = ("declarations",)

    def __init__(self, declarations, line=0):
        super().__init__(line)
        self.declarations = declarations


class ExpressionStatement(Node):
    """An expression evaluated for its effects."""

    __slots__ = ("expression",)

    def __init__(self, expression, line=0):
        super().__init__(line)
        self.expression = expression


class Block(Node):
    """``{ ... }`` — a statement list."""

    __slots__ = ("body",)

    def __init__(self, body, line=0):
        super().__init__(line)
        self.body = body


class If(Node):
    """``if (test) consequent [else alternate]``."""

    __slots__ = ("test", "consequent", "alternate")

    def __init__(self, test, consequent, alternate=None, line=0):
        super().__init__(line)
        self.test = test
        self.consequent = consequent
        self.alternate = alternate


class While(Node):
    """``while (test) body``."""

    __slots__ = ("test", "body")

    def __init__(self, test, body, line=0):
        super().__init__(line)
        self.test = test
        self.body = body


class DoWhile(Node):
    """``do body while (test);``."""

    __slots__ = ("body", "test")

    def __init__(self, body, test, line=0):
        super().__init__(line)
        self.body = body
        self.test = test


class For(Node):
    """``for (init; test; update) body`` — any clause may be None."""

    __slots__ = ("init", "test", "update", "body")

    def __init__(self, init, test, update, body, line=0):
        super().__init__(line)
        self.init = init
        self.test = test
        self.update = update
        self.body = body


class Return(Node):
    """``return [argument];``."""

    __slots__ = ("argument",)

    def __init__(self, argument=None, line=0):
        super().__init__(line)
        self.argument = argument


class Break(Node):
    """``break;``."""

    __slots__ = ()


class Continue(Node):
    """``continue;``."""

    __slots__ = ()


class Empty(Node):
    """The empty statement ``;``."""

    __slots__ = ()


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class NumberLiteral(Node):
    """A numeric literal (int32 or double)."""

    __slots__ = ("value",)

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value


class StringLiteral(Node):
    """A string literal."""

    __slots__ = ("value",)

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value


class BooleanLiteral(Node):
    """``true`` or ``false``."""

    __slots__ = ("value",)

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value


class NullLiteral(Node):
    """``null``."""

    __slots__ = ()


class UndefinedLiteral(Node):
    """``undefined``."""

    __slots__ = ()


class ThisExpression(Node):
    """``this``."""

    __slots__ = ()


class Identifier(Node):
    """A variable reference."""

    __slots__ = ("name",)

    def __init__(self, name, line=0):
        super().__init__(line)
        self.name = name


class ArrayLiteral(Node):
    """``[e1, e2, ...]``."""

    __slots__ = ("elements",)

    def __init__(self, elements, line=0):
        super().__init__(line)
        self.elements = elements


class ObjectLiteral(Node):
    """``{key: value, ...}`` — properties is a list of (name, expr)."""

    __slots__ = ("properties",)

    def __init__(self, properties, line=0):
        super().__init__(line)
        self.properties = properties


class FunctionExpression(Node):
    """``function [name](params) { body }`` as an expression.

    ``scope`` is filled in by the bytecode compiler's scope analysis.
    """

    __slots__ = ("name", "params", "body", "scope")

    def __init__(self, name, params, body, line=0):
        super().__init__(line)
        self.name = name
        self.params = params
        self.body = body
        self.scope = None


class Unary(Node):
    """Prefix operator: ``-``, ``+``, ``!``, ``~``, ``typeof``, ``void``."""

    __slots__ = ("operator", "operand")

    def __init__(self, operator, operand, line=0):
        super().__init__(line)
        self.operator = operator
        self.operand = operand


class Binary(Node):
    """A non-short-circuiting binary operator application."""

    __slots__ = ("operator", "left", "right")

    def __init__(self, operator, left, right, line=0):
        super().__init__(line)
        self.operator = operator
        self.left = left
        self.right = right


class Logical(Node):
    """Short-circuiting ``&&`` / ``||``."""

    __slots__ = ("operator", "left", "right")

    def __init__(self, operator, left, right, line=0):
        super().__init__(line)
        self.operator = operator
        self.left = left
        self.right = right


class Conditional(Node):
    """``test ? consequent : alternate``."""

    __slots__ = ("test", "consequent", "alternate")

    def __init__(self, test, consequent, alternate, line=0):
        super().__init__(line)
        self.test = test
        self.consequent = consequent
        self.alternate = alternate


class Assignment(Node):
    """``target op= value`` where op may be empty (plain assignment)."""

    __slots__ = ("operator", "target", "value")

    def __init__(self, operator, target, value, line=0):
        super().__init__(line)
        self.operator = operator
        self.target = target
        self.value = value


class Update(Node):
    """``++x``, ``x++``, ``--x``, ``x--``."""

    __slots__ = ("operator", "target", "prefix")

    def __init__(self, operator, target, prefix, line=0):
        super().__init__(line)
        self.operator = operator
        self.target = target
        self.prefix = prefix


class Call(Node):
    """``callee(arguments...)``."""

    __slots__ = ("callee", "arguments")

    def __init__(self, callee, arguments, line=0):
        super().__init__(line)
        self.callee = callee
        self.arguments = arguments


class New(Node):
    """``new callee(arguments...)``."""

    __slots__ = ("callee", "arguments")

    def __init__(self, callee, arguments, line=0):
        super().__init__(line)
        self.callee = callee
        self.arguments = arguments


class Member(Node):
    """``object.property`` (computed=False) or ``object[property]``."""

    __slots__ = ("object", "property", "computed")

    def __init__(self, object_, property_, computed, line=0):
        super().__init__(line)
        self.object = object_
        self.property = property_
        self.computed = computed


class Sequence(Node):
    """Comma expression ``a, b, c``."""

    __slots__ = ("expressions",)

    def __init__(self, expressions, line=0):
        super().__init__(line)
        self.expressions = expressions
