"""Stack bytecode: the SpiderMonkey-analogue instruction set.

A :class:`CodeObject` is the unit of execution: the interpreter runs it
directly, and the JIT's MIR builder abstractly interprets it to build
the SSA graph.  The design follows SpiderMonkey's: a stack machine with
a constant pool, a name table for globals/properties, argument and
local slots, and CPython-style cells for variables captured by nested
closures.
"""

from repro.errors import CompilerError


class Op(object):
    """Opcode name constants.

    Stack effects are written ``[before] -> [after]`` with the stack
    top on the right.
    """

    # Constants and simple pushes
    CONST = "CONST"  # [] -> [constants[arg]]
    UNDEF = "UNDEF"  # [] -> [undefined]

    # Slots
    GETARG = "GETARG"  # [] -> [args[arg]]
    SETARG = "SETARG"  # [v] -> [] (writes args[arg])
    GETLOCAL = "GETLOCAL"  # [] -> [locals[arg]]
    SETLOCAL = "SETLOCAL"  # [v] -> []
    GETGLOBAL = "GETGLOBAL"  # [] -> [globals[names[arg]]]
    SETGLOBAL = "SETGLOBAL"  # [v] -> [] (writes globals[names[arg]])
    GETCELL = "GETCELL"  # [] -> [cells[arg].value]
    SETCELL = "SETCELL"  # [v] -> []
    GETFREE = "GETFREE"  # [] -> [closure[arg].value]
    SETFREE = "SETFREE"  # [v] -> []
    GETTHIS = "GETTHIS"  # [] -> [this]

    # Stack shuffling
    POP = "POP"  # [v] -> []
    DUP = "DUP"  # [v] -> [v, v]
    SWAP = "SWAP"  # [a, b] -> [b, a]

    # Arithmetic / logic (all pop operands, push result)
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"
    DIV = "DIV"
    MOD = "MOD"
    BITAND = "BITAND"
    BITOR = "BITOR"
    BITXOR = "BITXOR"
    SHL = "SHL"
    SHR = "SHR"  # arithmetic >>
    USHR = "USHR"  # logical >>>
    NEG = "NEG"
    POS = "POS"  # unary +, i.e. ToNumber
    NOT = "NOT"
    BITNOT = "BITNOT"
    TYPEOF = "TYPEOF"
    TONUM = "TONUM"  # explicit ToNumber (for ++/--)
    EQ = "EQ"
    NE = "NE"
    STRICTEQ = "STRICTEQ"
    STRICTNE = "STRICTNE"
    LT = "LT"
    LE = "LE"
    GT = "GT"
    GE = "GE"
    IN = "IN"

    # Control flow (arg = target instruction index)
    JUMP = "JUMP"
    IFFALSE = "IFFALSE"  # [v] -> [] ; jump if falsy
    IFTRUE = "IFTRUE"  # [v] -> [] ; jump if truthy

    # Heap
    NEWARRAY = "NEWARRAY"  # [e1..en] -> [array]
    NEWOBJECT = "NEWOBJECT"  # [k1, v1, .., kn, vn] -> [object]
    GETPROP = "GETPROP"  # [obj] -> [obj.names[arg]]
    SETPROP = "SETPROP"  # [obj, v] -> [v]
    GETELEM = "GETELEM"  # [obj, idx] -> [obj[idx]]
    SETELEM = "SETELEM"  # [obj, idx, v] -> [v]
    DELPROP = "DELPROP"  # [obj] -> [true]

    # Functions
    SELF = "SELF"  # [] -> [currently executing function]
    CLOSURE = "CLOSURE"  # [] -> [function]; arg = constant-pool index of CodeObject
    CALL = "CALL"  # [callee, a1..an] -> [result]; arg = n
    NEW = "NEW"  # [ctor, a1..an] -> [object]; arg = n
    RETURN = "RETURN"  # [v] -> (function exits)
    RETURN_UNDEF = "RETURN_UNDEF"  # (function exits with undefined)


# Opcodes that transfer control; ``arg`` is an instruction index.
JUMP_OPS = frozenset([Op.JUMP, Op.IFFALSE, Op.IFTRUE])

# Opcodes after which control never falls through.
TERMINATOR_OPS = frozenset([Op.JUMP, Op.RETURN, Op.RETURN_UNDEF])

_BINARY_OPS = frozenset(
    [
        Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
        Op.BITAND, Op.BITOR, Op.BITXOR, Op.SHL, Op.SHR, Op.USHR,
        Op.EQ, Op.NE, Op.STRICTEQ, Op.STRICTNE,
        Op.LT, Op.LE, Op.GT, Op.GE, Op.IN,
    ]
)

_UNARY_OPS = frozenset([Op.NEG, Op.POS, Op.NOT, Op.BITNOT, Op.TYPEOF, Op.TONUM])


def is_binary_op(op):
    """True for opcodes that pop two operands and push one result."""
    return op in _BINARY_OPS


def is_unary_op(op):
    """True for opcodes that pop one operand and push one result."""
    return op in _UNARY_OPS


class Instr(object):
    """One bytecode instruction: an opcode and an optional operand."""

    __slots__ = ("op", "arg", "line")

    def __init__(self, op, arg=None, line=0):
        self.op = op
        self.arg = arg
        self.line = line

    def __repr__(self):
        if self.arg is None:
            return self.op.lower()
        return "%s %r" % (self.op.lower(), self.arg)


class CodeObject(object):
    """Compiled bytecode for one function (or for the top-level script).

    Attributes:
        name: function name, or ``"<toplevel>"``.
        params: parameter names, in order.
        local_names: names of local slots (parameters excluded).
        cell_names: names of locals captured by nested functions; their
            slots hold :class:`Cell` objects.
        free_names: names captured from enclosing functions; resolved
            through the closure at call time.
        constants: the constant pool (may contain nested CodeObjects).
        names: global/property name table.
        instructions: list of :class:`Instr`.
        uses_this: whether the body references ``this``.
    """

    _next_id = 0

    def __init__(self, name, params):
        self.name = name
        self.params = list(params)
        self.local_names = []
        self.cell_names = []
        self.free_names = []
        self.constants = []
        self.names = []
        self.instructions = []
        self.uses_this = False
        #: For named function expressions: the local name bound to the
        #: function itself (enables self-recursion).
        self.self_name = None
        #: Type feedback attached by the JIT engine once the function
        #: is warm; None while cold (zero profiling overhead when cold).
        self.feedback = None
        #: Threaded handler table, built lazily by the interpreter's
        #: dispatch loop; reset by any pass that rewrites
        #: ``instructions`` (loop rotation).
        self.threaded = None
        self.code_id = CodeObject._next_id
        CodeObject._next_id = CodeObject._next_id + 1

    # -- table interning ---------------------------------------------------

    def const_index(self, value):
        """Intern ``value`` in the constant pool and return its index."""
        for index, existing in enumerate(self.constants):
            if existing is value or (
                type(existing) is type(value)
                and type(value) in (int, float, str, bool)
                and existing == value
            ):
                return index
        self.constants.append(value)
        return len(self.constants) - 1

    def name_index(self, name):
        try:
            return self.names.index(name)
        except ValueError:
            self.names.append(name)
            return len(self.names) - 1

    # -- introspection -------------------------------------------------------

    @property
    def num_params(self):
        return len(self.params)

    @property
    def num_locals(self):
        return len(self.local_names)

    @property
    def has_cells(self):
        return bool(self.cell_names)

    @property
    def has_frees(self):
        return bool(self.free_names)

    def emit(self, op, arg=None, line=0):
        self.instructions.append(Instr(op, arg, line))
        return len(self.instructions) - 1

    def jump_targets(self):
        """The set of instruction indices that are jump targets."""
        targets = set()
        for instr in self.instructions:
            if instr.op in JUMP_OPS:
                targets.add(instr.arg)
        return targets

    def validate(self):
        """Check structural invariants; raises CompilerError on failure."""
        count = len(self.instructions)
        for index, instr in enumerate(self.instructions):
            if instr.op in JUMP_OPS:
                if not isinstance(instr.arg, int) or not 0 <= instr.arg < count:
                    raise CompilerError(
                        "instruction %d of %s jumps out of range: %r"
                        % (index, self.name, instr.arg)
                    )
        if count == 0 or self.instructions[-1].op not in TERMINATOR_OPS:
            raise CompilerError("code object %s does not end in a terminator" % self.name)

    def disassemble(self):
        """Human-readable listing, one instruction per line."""
        targets = self.jump_targets()
        lines = []
        for index, instr in enumerate(self.instructions):
            marker = ">>" if index in targets else "  "
            if instr.op == Op.CLOSURE:
                detail = "<code %s>" % self.constants[instr.arg].name
            elif instr.op == Op.CONST:
                detail = repr(self.constants[instr.arg])
            elif instr.op in (Op.GETGLOBAL, Op.SETGLOBAL, Op.GETPROP, Op.SETPROP, Op.DELPROP):
                detail = repr(self.names[instr.arg])
            elif instr.arg is not None:
                detail = str(instr.arg)
            else:
                detail = ""
            lines.append("%s %4d  %-12s %s" % (marker, index, instr.op.lower(), detail))
        return "\n".join(lines)

    def __repr__(self):
        return "<CodeObject %s (%d instrs)>" % (self.name, len(self.instructions))


class Cell(object):
    """A heap box for one captured variable (CPython-style)."""

    __slots__ = ("value",)

    def __init__(self, value=None):
        from repro.jsvm.values import UNDEFINED

        self.value = UNDEFINED if value is None else value

    def __repr__(self):
        return "Cell(%r)" % (self.value,)
