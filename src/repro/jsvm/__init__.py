"""The JavaScript-subset virtual machine (SpiderMonkey analogue).

This subpackage contains everything needed to run guest programs
without the JIT: lexer, parser, bytecode compiler, value model and a
profiling stack interpreter.  The JIT in :mod:`repro.engine` plugs into
the interpreter's profiling hooks.
"""

from repro.jsvm.values import (
    JSUndefined,
    JSNull,
    UNDEFINED,
    NULL,
    JSFunction,
    type_of,
    type_tag,
    to_boolean,
    to_number,
    to_js_string,
    js_equals,
    js_strict_equals,
    value_key,
)
from repro.jsvm.objects import JSObject, JSArray
from repro.jsvm.lexer import tokenize
from repro.jsvm.parser import parse
from repro.jsvm.bytecompiler import compile_program, compile_source
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.runtime import Runtime

__all__ = [
    "JSUndefined",
    "JSNull",
    "UNDEFINED",
    "NULL",
    "JSFunction",
    "JSObject",
    "JSArray",
    "type_of",
    "type_tag",
    "to_boolean",
    "to_number",
    "to_js_string",
    "js_equals",
    "js_strict_equals",
    "value_key",
    "tokenize",
    "parse",
    "compile_program",
    "compile_source",
    "Interpreter",
    "Runtime",
]
