"""The JavaScript value model.

Guest values map onto Python values as follows:

===============  =========================================
JS value         Python representation
===============  =========================================
number (int32)   ``int`` in ``[-2**31, 2**31 - 1]``
number (double)  ``float``
boolean          ``bool``
string           ``str``
undefined        the :data:`UNDEFINED` singleton
null             the :data:`NULL` singleton
object           :class:`repro.jsvm.objects.JSObject`
array            :class:`repro.jsvm.objects.JSArray`
function         :class:`JSFunction`
===============  =========================================

The int32/double split mirrors what IonMonkey's type inference does:
numbers that fit an int32 are represented and typed as integers, which
is what makes integer arithmetic cheap in the JIT (paper, §3).  Helper
functions here implement the JS coercion semantics the interpreter,
constant folder and native executor all share — keeping these three in
agreement is what makes constant folding sound.
"""

import math

INT32_MIN = -(2 ** 31)
INT32_MAX = 2 ** 31 - 1
_UINT32 = 2 ** 32


class JSUndefined(object):
    """The singleton type of ``undefined``."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "undefined"

    def __bool__(self):
        return False


class JSNull(object):
    """The singleton type of ``null``."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "null"

    def __bool__(self):
        return False


UNDEFINED = JSUndefined()
NULL = JSNull()


class JSFunction(object):
    """A guest function value: code object plus defining environment.

    ``code`` is a :class:`repro.jsvm.bytecode.CodeObject`.  ``scope`` is
    the :class:`repro.jsvm.interpreter.Environment` the function closes
    over (``None`` for top-level functions that only see globals).
    """

    __slots__ = ("code", "scope", "function_id")

    _next_id = 0

    def __init__(self, code, scope=None):
        self.code = code
        self.scope = scope
        self.function_id = JSFunction._next_id
        JSFunction._next_id += 1

    @property
    def name(self):
        return self.code.name

    def __repr__(self):
        return "<function %s#%d>" % (self.name or "<anonymous>", self.function_id)


class NativeFunction(object):
    """A host (builtin) function exposed to guest code, e.g. ``Math.floor``."""

    __slots__ = ("name", "fn", "foldable")

    def __init__(self, name, fn, foldable=False):
        self.name = name
        self.fn = fn
        #: Whether the constant folder may evaluate this function at
        #: compile time (true only for pure math builtins).
        self.foldable = foldable

    def __call__(self, this, args):
        return self.fn(this, args)

    def __repr__(self):
        return "<native function %s>" % self.name


def is_int32(value):
    """True if ``value`` is a guest int32 (excludes bools)."""
    return type(value) is int and INT32_MIN <= value <= INT32_MAX


def is_number(value):
    """True if ``value`` is a guest number (int32 or double)."""
    return type(value) is int or type(value) is float


def normalize_number(value):
    """Canonicalize a Python number into the guest representation.

    Integral floats that fit int32 become ints; ints outside int32
    become floats.  This mirrors IonMonkey representing a number as an
    integer whenever type inference allows it.
    """
    if type(value) is int:
        if INT32_MIN <= value <= INT32_MAX:
            return value
        return float(value)
    if type(value) is float:
        if value.is_integer() and INT32_MIN <= value <= INT32_MAX:
            # Preserve the float -0.0, which is distinct from int 0 in JS.
            if value == 0.0 and math.copysign(1.0, value) < 0:
                return value
            return int(value)
        return value
    raise TypeError("not a number: %r" % (value,))


# Lazily-bound object classes (repro.jsvm.objects imports this module,
# so a top-level import here would be circular).  Bound once, on first
# use, instead of re-importing inside every type_of/type_tag call —
# both sit on the per-call feedback path.
_JSArray = None
_JSObject = None


def _object_classes():
    """Bind and return ``(JSArray, JSObject)`` on first use."""
    global _JSArray, _JSObject
    if _JSObject is None:
        from repro.jsvm.objects import JSArray, JSObject

        _JSArray, _JSObject = JSArray, JSObject
    return _JSArray, _JSObject


def type_of(value):
    """Implement the JS ``typeof`` operator."""
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "object"
    if type(value) is bool:
        return "boolean"
    if is_number(value):
        return "number"
    if type(value) is str:
        return "string"
    if isinstance(value, (JSFunction, NativeFunction)):
        return "function"
    if isinstance(value, _object_classes()[1]):
        return "object"
    raise TypeError("not a JS value: %r" % (value,))


def type_tag(value):
    """A fine-grained type tag used by telemetry and type inference.

    Unlike :func:`type_of`, this distinguishes ``int`` from ``double``,
    ``array`` from ``object``, and ``null`` from ``object`` — the
    categories of the paper's Figure 4.  This runs for every argument
    of every guest call: ints (whose tag depends on the value's range)
    are handled inline, and every other tag is a function of the exact
    class alone, memoized in ``_TAG_BY_TYPE``.
    """
    kind = type(value)
    if kind is int:
        if INT32_MIN <= value <= INT32_MAX:
            return "int"
        return "double"  # un-normalized wide integer: still a JS number
    tag = _TAG_BY_TYPE.get(kind)
    if tag is not None:
        return tag
    if value is UNDEFINED:
        tag = "undefined"
    elif value is NULL:
        tag = "null"
    elif isinstance(value, (JSFunction, NativeFunction)):
        tag = "function"
    else:
        array_class, object_class = _object_classes()
        if isinstance(value, array_class):
            tag = "array"
        elif isinstance(value, object_class):
            tag = "object"
        else:
            raise TypeError("not a JS value: %r" % (value,))
    _TAG_BY_TYPE[kind] = tag
    return tag


#: Exact-type tag memo for :func:`type_tag`.  Sound because every tag
#: except ``int``/``double`` (handled before the probe) is determined
#: by the value's class; unseen classes (e.g. JSObject subclasses) are
#: resolved once through the isinstance ladder and cached.
_TAG_BY_TYPE = {
    float: "double",
    str: "string",
    bool: "bool",
    JSUndefined: "undefined",
    JSNull: "null",
    JSFunction: "function",
    NativeFunction: "function",
}


def to_boolean(value):
    """Implement JS ToBoolean."""
    if value is UNDEFINED or value is NULL:
        return False
    if type(value) is bool:
        return value
    if type(value) is int:
        return value != 0
    if type(value) is float:
        return value != 0.0 and not math.isnan(value)
    if type(value) is str:
        return len(value) > 0
    return True


def to_number(value):
    """Implement JS ToNumber for the subset we support."""
    if type(value) is int or type(value) is float:
        return value
    if type(value) is bool:
        return 1 if value else 0
    if value is UNDEFINED:
        return float("nan")
    if value is NULL:
        return 0
    if type(value) is str:
        text = value.strip()
        if not text:
            return 0
        try:
            return normalize_number(int(text, 0) if text.lower().startswith(("0x", "-0x")) else int(text))
        except ValueError:
            pass
        try:
            return normalize_number(float(text))
        except ValueError:
            return float("nan")
    # Objects: the full spec calls valueOf/toString; our subset coerces
    # arrays through their string form and other objects to NaN.
    from repro.jsvm.objects import JSArray

    if isinstance(value, JSArray):
        return to_number(to_js_string(value))
    return float("nan")


def format_number(value):
    """Render a guest number the way JS ``String(n)`` does."""
    if type(value) is int:
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value.is_integer() and abs(value) < 1e21:
        return str(int(value))
    return repr(value)


def to_js_string(value):
    """Implement JS ToString for the subset we support."""
    from repro.jsvm.objects import JSArray, JSObject

    if type(value) is str:
        return value
    if type(value) is bool:
        return "true" if value else "false"
    if is_number(value):
        return format_number(value)
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "null"
    if isinstance(value, JSFunction):
        return "function %s() { [code] }" % (value.name or "")
    if isinstance(value, NativeFunction):
        return "function %s() { [native code] }" % value.name
    if isinstance(value, JSArray):
        return ",".join(
            "" if e is UNDEFINED or e is NULL else to_js_string(e) for e in value.elements
        )
    if isinstance(value, JSObject):
        return "[object Object]"
    raise TypeError("not a JS value: %r" % (value,))


def js_strict_equals(a, b):
    """Implement the JS ``===`` operator."""
    ta, tb = type_of(a), type_of(b)
    if ta != tb:
        return False
    if ta == "number":
        return float(a) == float(b)
    if ta in ("string", "boolean"):
        return a == b
    if a is UNDEFINED or a is NULL:
        # typeof null is "object"; handle identity below for objects.
        return a is b
    return a is b


def js_equals(a, b):
    """Implement the JS ``==`` operator (abstract equality)."""
    ta, tb = type_of(a), type_of(b)
    if ta == tb:
        return js_strict_equals(a, b)
    nullish = (UNDEFINED, NULL)
    if a in nullish and b in nullish:
        return True
    if a in nullish or b in nullish:
        return False
    if ta == "number" and tb == "string":
        return js_equals(a, to_number(b))
    if ta == "string" and tb == "number":
        return js_equals(to_number(a), b)
    if ta == "boolean":
        return js_equals(to_number(a), b)
    if tb == "boolean":
        return js_equals(a, to_number(b))
    if ta in ("object", "function") and tb in ("number", "string"):
        return js_equals(to_js_string(a), b)
    if tb in ("object", "function") and ta in ("number", "string"):
        return js_equals(a, to_js_string(b))
    return False


def value_key(value):
    """A hashable identity key for one argument value.

    The specialization cache (paper §4, "Specialization policy") decides
    whether a call's arguments match the cached ones.  Primitives match
    by value *and* representation type; objects, arrays and functions
    match by identity — exactly the notion under which specialized code
    remains valid (an object constant is a baked-in reference).
    """
    name = _KEY_TYPE_NAMES.get(type(value))
    if name is not None:
        return (name, value)
    if value is UNDEFINED:
        return ("undefined",)
    if value is NULL:
        return ("null",)
    return ("ref", id(value))


#: Primitive types keyed by value in :func:`value_key`; one dict probe
#: replaces four identity checks plus a ``__name__`` lookup on the
#: per-call specialization-cache path.
_KEY_TYPE_NAMES = {int: "int", float: "float", bool: "bool", str: "str"}


def arguments_key(args):
    """The cache key for a full argument list."""
    return tuple([value_key(a) for a in args])
