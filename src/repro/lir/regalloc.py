"""Linear-scan register allocation (Poletto–Sarkar style).

The simulated target has eight general-purpose registers.  Liveness is
computed with a standard backward dataflow over the linearized LIR
(loops handled by iteration), live intervals are built per virtual
register, and the linear scan assigns registers, spilling the interval
with the furthest end point to a stack slot when pressure exceeds the
register file.

Snapshot (bailout-metadata) references count as uses: a value the
interpreter would need after a bailout must survive in *some* location
until its guard executes.  This is the register-pressure cost of
guards — and why parameter specialization, which deletes parameter
values and guards wholesale, "improves the time of the register
allocator, given that it reduces register pressure substantially"
(paper §4).
"""

NUM_REGS = 8


class _Region(object):
    """One straight-line region of the LIR stream (a lowered block)."""

    __slots__ = ("block_id", "start", "end", "successor_ids", "live_in", "live_out")

    def __init__(self, block_id, start, end):
        self.block_id = block_id
        self.start = start
        self.end = end  # exclusive
        self.successor_ids = []
        self.live_in = set()
        self.live_out = set()


def _build_regions(lir):
    starts = sorted(lir.block_starts.items(), key=lambda item: item[1])
    regions = []
    for index, (block_id, start) in enumerate(starts):
        end = starts[index + 1][1] if index + 1 < len(starts) else len(lir.instructions)
        regions.append(_Region(block_id, start, end))
    by_id = {region.block_id: region for region in regions}
    for region in regions:
        if region.end == region.start:
            # Empty region: falls through to the next one.
            continue
        last = lir.instructions[region.end - 1]
        if last.targets is not None:
            region.successor_ids = list(last.targets)
        elif last.op != "return":
            # Fallthrough (shouldn't happen in well-formed streams, but
            # stay conservative).
            position = regions.index(region)
            if position + 1 < len(regions):
                region.successor_ids = [regions[position + 1].block_id]
    return regions, by_id


def _instruction_uses(instruction):
    """Virtual registers an instruction reads (immediates excluded).

    After immediate folding some sources are ``("imm", index)`` tuples
    — baked-in constants that never occupy a register.
    """
    uses = [vreg for vreg in instruction.srcs if type(vreg) is int]
    if instruction.snapshot is not None:
        uses.extend(vreg for vreg in instruction.snapshot.vregs if type(vreg) is int)
    return uses


def _compute_liveness(regions, by_id, defs_uses):
    """Backward liveness fixpoint over the region graph.

    ``defs_uses`` is the per-position ``(dest, uses)`` table.  Each
    region's transfer function ``live_in = gen ∪ (live_out − kill)`` is
    precomputed once (gen = upward-exposed uses, kill = definitions),
    so fixpoint rounds are pure set operations instead of re-walking
    every instruction's operand lists each iteration.
    """
    transfers = []
    for region in regions:
        gen = set()
        kill = set()
        for position in range(region.end - 1, region.start - 1, -1):
            dest, uses = defs_uses[position]
            if dest is not None:
                kill.add(dest)
                gen.discard(dest)
            for use in uses:
                gen.add(use)
        transfers.append((region, gen, kill))
    transfers.reverse()
    changed = True
    while changed:
        changed = False
        for region, gen, kill in transfers:
            live_out = set()
            for successor_id in region.successor_ids:
                successor = by_id.get(successor_id)
                if successor is not None:
                    live_out |= successor.live_in
            live = gen | (live_out - kill)
            if live_out != region.live_out or live != region.live_in:
                region.live_out = live_out
                region.live_in = live
                changed = True
    return regions


class Interval(object):
    """Live interval of one virtual register over linear positions."""

    __slots__ = ("vreg", "start", "end")

    def __init__(self, vreg, start, end):
        self.vreg = vreg
        self.start = start
        self.end = end

    def __repr__(self):
        return "v%d:[%d,%d]" % (self.vreg, self.start, self.end)


def snapshot_only_vregs(lir):
    """Virtual registers referenced *only* by guard snapshots.

    These values exist purely so a bailout can rebuild the interpreter
    frame; they are never read on the fast path.  A real engine keeps
    them in spill slots without letting them compete for registers —
    we do the same (they are written once and read only by the bailout
    machinery, which is off the cycle-counted fast path).
    """
    real = set()
    snap = set()
    for instruction in lir.instructions:
        for vreg in instruction.srcs:
            if type(vreg) is int:
                real.add(vreg)
        if instruction.snapshot is not None:
            snap.update(v for v in instruction.snapshot.vregs if type(v) is int)
    return snap - real


def build_intervals(lir):
    """Compute one conservative live interval per virtual register."""
    regions, by_id = _build_regions(lir)
    defs_uses = [
        (instruction.dest, _instruction_uses(instruction))
        for instruction in lir.instructions
    ]
    _compute_liveness(regions, by_id, defs_uses)
    ranges = {}

    def extend(vreg, start, end):
        found = ranges.get(vreg)
        if found is None:
            ranges[vreg] = [start, end]
        else:
            if start < found[0]:
                found[0] = start
            if end > found[1]:
                found[1] = end

    for region in regions:
        for vreg in region.live_out:
            extend(vreg, region.start, region.end)
        for position in range(region.end - 1, region.start - 1, -1):
            dest, uses = defs_uses[position]
            if dest is not None:
                extend(dest, position, position)
            for use in uses:
                extend(use, region.start, position)
    intervals = [Interval(vreg, span[0], span[1]) for vreg, span in ranges.items()]
    intervals.sort(key=lambda interval: (interval.start, interval.end))
    return intervals


class Allocation(object):
    """Result of register allocation."""

    def __init__(self, locations, num_slots, num_intervals, num_spills):
        #: vreg -> location (0..NUM_REGS-1 registers, >=NUM_REGS slots).
        self.locations = locations
        self.num_slots = num_slots
        self.num_intervals = num_intervals
        self.num_spills = num_spills

    def location_of(self, vreg):
        return self.locations[vreg]


def _move_hints(lir):
    """Copy-coalescing hints: vregs connected by ``move``s prefer to
    share a register, which turns the move into a no-op the code
    generator deletes.  Phi webs (loop-carried variables) are exactly
    such chains."""
    hints = {}
    for instruction in lir.instructions:
        if instruction.op != "move" or not instruction.srcs:
            continue
        src = instruction.srcs[0]
        dest = instruction.dest
        if type(src) is not int or dest is None:
            continue
        hints.setdefault(dest, []).append(src)
        hints.setdefault(src, []).append(dest)
    return hints


def _loop_depths(lir):
    """Approximate loop depth per position from backward branches."""
    instructions = lir.instructions
    starts = {block_id: start for block_id, start in lir.block_starts.items()}
    delta = [0] * (len(instructions) + 1)
    for index, instruction in enumerate(instructions):
        if instruction.targets is None:
            continue
        for target_id in instruction.targets:
            target = starts.get(target_id)
            if target is not None and target <= index:
                delta[target] += 1
                delta[index + 1] -= 1
    depths = []
    depth = 0
    for index in range(len(instructions)):
        depth += delta[index]
        depths.append(depth)
    return depths


def _use_weights(lir):
    """Spill weights: each use counts 8^loop-depth (a use inside a
    loop matters roughly a trip-count more than one outside)."""
    depths = _loop_depths(lir)
    weights = {}
    for position, instruction in enumerate(lir.instructions):
        weight = 8 ** min(depths[position], 4)
        for vreg in instruction.srcs:
            if type(vreg) is int:
                weights[vreg] = weights.get(vreg, 0) + weight
        if instruction.dest is not None:
            weights[instruction.dest] = weights.get(instruction.dest, 0) + weight
    return weights


def allocate_registers(lir):
    """Run linear scan over ``lir``; returns an :class:`Allocation`."""
    intervals = build_intervals(lir)
    locations = {}
    active = []  # sorted by end
    free_registers = list(range(NUM_REGS))
    next_slot = NUM_REGS
    spills = 0
    hints = _move_hints(lir)

    # Bailout-snapshot-only values go straight to slots; they never
    # compete with fast-path values for registers.
    shadow = snapshot_only_vregs(lir)
    remaining = []
    for interval in intervals:
        if interval.vreg in shadow:
            locations[interval.vreg] = next_slot
            next_slot += 1
        else:
            remaining.append(interval)
    intervals = remaining

    def pick_register(vreg):
        """Prefer a hint partner's register when it is free."""
        for partner in hints.get(vreg, ()):
            partner_location = locations.get(partner)
            if partner_location is not None and partner_location in free_registers:
                free_registers.remove(partner_location)
                return partner_location
        return free_registers.pop()

    for interval in intervals:
        # Expire intervals that end where this one starts: sources are
        # read before the destination is written, so an interval whose
        # last use *is* this definition's instruction can hand over its
        # register (this is what lets move coalescing fire on the
        # adjacent intervals of a phi web).
        still_active = []
        for old in active:
            if old.end <= interval.start:
                location = locations[old.vreg]
                if location < NUM_REGS:
                    free_registers.append(location)
            else:
                still_active.append(old)
        active = still_active

        if free_registers:
            locations[interval.vreg] = pick_register(interval.vreg)
            active.append(interval)
            active.sort(key=lambda item: item.end)
        else:
            # Classic Poletto–Sarkar choice: spill the interval with
            # the furthest end point.
            victim = active[-1]
            if victim.end > interval.end:
                locations[interval.vreg] = locations[victim.vreg]
                locations[victim.vreg] = next_slot
                next_slot += 1
                active.pop()
                active.append(interval)
                active.sort(key=lambda item: item.end)
            else:
                locations[interval.vreg] = next_slot
                next_slot += 1
            spills += 1

    # Virtual registers that never appeared (dead defs) get slots so
    # lookups stay total.
    for vreg in range(lir.num_vregs):
        if vreg not in locations:
            locations[vreg] = next_slot
            next_slot += 1

    return Allocation(locations, next_slot - NUM_REGS, len(intervals), spills)
